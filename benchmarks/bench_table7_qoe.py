"""E-T7 — Table 7: visual quality, frame rate, responsiveness (2 players).

Visual quality is SSIM between what each system actually displays and the
all-local reference frame:

* Thin-client / Multi-Furion display a *decoded* stream of the (whole)
  frame, so every pixel carries codec loss — paper SSIM ~0.90-0.95;
* Coterie renders FI and near BE locally and only decodes the far BE, so
  it scores *higher* (paper: 0.937-0.979) while also being the only system
  at 60 FPS with sub-16.7 ms responsiveness.

FPS/responsiveness come from the system simulations; SSIM from really
rendering, encoding, decoding, and merging frames at sampled viewpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import PAPER, fmt, once, report
from repro.codec import FrameCodec
from repro.core.merger import compose_display
from repro.render import RenderConfig
from repro.render.rasterizer import merge_layers
from repro.render.splitter import (
    eye_at,
    reference_frame,
    render_far_be,
    render_fi,
    render_near_be,
    render_whole_be,
)
from repro.similarity import ssim
from repro.systems import run_coterie, run_multi_furion, run_thin_client
from repro.trace import avatars_at, generate_party
from repro.world import load_game

GAMES = ("viking", "cts", "racing")
SSIM_SAMPLES = 6
CFG = RenderConfig()


def _offline_ssim(world, artifacts, system: str) -> float:
    """Displayed-vs-reference SSIM at sampled 2-player viewpoints."""
    codec = FrameCodec()
    party = generate_party(world, 2, duration_s=20, seed=41)
    stride = max(1, len(party[0]) // SSIM_SAMPLES)
    scores = []
    for index in range(0, len(party[0]), stride)[:SSIM_SAMPLES]:
        sample = party[0][index]
        other = party[1][min(index, len(party[1]) - 1)]
        eye = eye_at(world.scene, sample.position, world.spec.player.eye_height)
        avatars = avatars_at(world, [sample.position, other.position], exclude_player=0)
        reference = reference_frame(world.scene, eye, CFG, avatars=avatars)
        fi_layer = render_fi(avatars, eye, CFG)
        if system in ("thin_client", "multi_furion"):
            whole = render_whole_be(world.scene, eye, CFG)
            if system == "thin_client":
                # Server renders BE+FI together; the whole stream is lossy.
                streamed = merge_layers(whole, fi_layer)
                displayed = codec.decode(codec.encode(streamed))
            else:
                # BE decoded from video, FI rendered locally on top.
                decoded = codec.decode(codec.encode(whole.image))
                displayed = compose_display(decoded, fi_layer)
        else:  # coterie
            cutoff = artifacts.cutoff_map.cutoff_for(sample.position)
            far = render_far_be(world.scene, eye, CFG, cutoff)
            decoded = codec.decode(codec.encode(far.image))
            near = render_near_be(world.scene, eye, CFG, cutoff)
            displayed = compose_display(decoded, near, fi_layer)
        scores.append(ssim(displayed, reference))
    return float(np.mean(scores))


def _run_all(config, artifacts):
    rows = []
    data = {}
    for game in GAMES:
        world = load_game(game)
        runs = {
            "thin_client": run_thin_client(world, 2, config),
            "multi_furion": run_multi_furion(world, 2, config),
            "coterie": run_coterie(world, 2, config, artifacts[game]),
        }
        for system, result in runs.items():
            quality = _offline_ssim(world, artifacts[game], system)
            paper = PAPER["table7"][(system, game)]
            rows.append(
                (
                    f"{game} ({system[0].upper()})",
                    f"{quality:.3f} ({paper[0]:.3f})",
                    f"{result.mean_fps:.0f} ({paper[1]})",
                    f"{result.mean_responsiveness_ms:.1f} ({paper[2]})",
                )
            )
            data[(game, system)] = (quality, result.mean_fps, result.mean_responsiveness_ms)
    return rows, data


@pytest.mark.benchmark(group="table7")
def test_table7_qoe(benchmark, session_config, headline_artifacts):
    rows, data = once(benchmark, _run_all, session_config, headline_artifacts)
    report(
        "table7_qoe",
        ["app (system)", "SSIM (paper)", "FPS (paper)", "resp ms (paper)"],
        rows,
        notes="T=Thin-client, M=Multi-Furion, C=Coterie; 2 players.",
    )
    for game in GAMES:
        # Coterie's local near BE + FI avoid codec loss: best quality.
        assert data[(game, "coterie")][0] >= data[(game, "multi_furion")][0]
        assert data[(game, "coterie")][0] > 0.9
        # Frame rate ordering: Coterie 60 > Multi-Furion > Thin-client.
        assert data[(game, "coterie")][1] > 57
        assert data[(game, "multi_furion")][1] > data[(game, "thin_client")][1]
        # Responsiveness: only Coterie meets the sub-16.7 ms bar.
        assert data[(game, "coterie")][2] < 16.7
        assert data[(game, "thin_client")][2] > 30.0
