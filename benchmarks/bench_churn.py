"""E-R2 — supervisor overhead and churn outcomes.

The session-supervision subsystem promises that its churn-free path is
(nearly) free: all membership machinery is gated on ``config.churn``, so
a ``churn=None`` run executes the pre-supervision code path bit-for-bit,
and even a *supervised* run with an empty schedule — supervisor seated,
monitor scanning, heartbeats recorded every frame — must stay under 5%
wall-time overhead while producing identical frame-level outputs.

This benchmark pins both, plus the membership outcomes of a scripted
churn storm:

* **overhead** — min-of-repeats wall time of a plain run vs. a
  supervised-idle run (empty :class:`~repro.faults.ChurnSchedule`); the
  ratio must stay under :data:`MAX_OVERHEAD`;
* **fidelity** — the supervised-idle run's per-player metrics, BE and FI
  traffic must equal the plain run's exactly;
* **churn outcomes** — a join/leave/crash/rejoin storm completes with
  zero invariant violations and reports join-latency / warm-up / eviction
  numbers.

Results land in ``benchmarks/results/BENCH_churn.json``.  Run
standalone with
``python benchmarks/bench_churn.py`` (add ``--smoke`` for the CI quick
mode: shorter run, fewer repeats, relaxed overhead gate — the fidelity
and invariant gates never relax).
"""

from __future__ import annotations

import dataclasses
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.faults import ChurnSchedule
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game

GAME = "racing"
SEED = 1
PLAYERS = 3
CHURN_SPEC = "join@800,crash@1500:1,leave@2200:0,rejoin@2600:0"

DURATION_S = 4.0
REPEATS = 5
MAX_OVERHEAD = 0.05  # supervised-idle wall time may exceed plain by <= 5%

SMOKE_DURATION_S = 2.0
SMOKE_REPEATS = 2
# One-shot CI runners are noisy; the smoke gate only catches disasters
# (e.g. the supervisor scheduling per-frame events on the clean path).
SMOKE_MAX_OVERHEAD = 0.50
# The smoke horizon is 2 s, so its storm is front-loaded: the crash must
# land early enough for the heartbeat detector to evict (suspect after
# 400 ms silence, evict after 1200 ms) before the run ends.
SMOKE_CHURN_SPEC = "join@300,crash@500:1,leave@900:0,rejoin@1100:0"


def _config(duration_s, churn):
    return SessionConfig(duration_s=duration_s, seed=SEED, churn=churn)


def _metrics_key(result):
    """Frame-level outputs that must match bit-for-bit.

    The membership bookkeeping fields (epochs_survived, incarnations, …)
    are nonzero on a supervised run by design, so they are normalized
    out: the gate is about the *frame* path being untouched.
    """
    return (
        [
            dataclasses.replace(
                p.metrics, join_latency_ms=0.0, warmup_ms=0.0,
                epochs_survived=0, evictions=0, incarnations=0,
            )
            for p in result.players
        ],
        result.be_mbps,
        result.fi_kbps,
    )


def _timed_runs(world, artifacts, duration_s, repeats):
    """Min-of-repeats wall time for plain vs supervised-idle variants.

    The variants run in adjacent pairs — alternating which goes first,
    so warm-cache carry-over from a pair's first run never favors one
    side systematically — and the overhead is the *median per-pair
    ratio*: genuine supervisor cost is present in every pair, while
    one-sided noise only skews outlier pairs.  The supervised variant
    carries a live supervisor (seating epochs, monitor scans, a
    heartbeat per frame iteration) with an empty schedule — the pure
    cost of supervision.
    """
    def timed(churn):
        t0 = time.perf_counter()
        result = run_coterie(
            world, PLAYERS, _config(duration_s, churn), artifacts
        )
        return time.perf_counter() - t0, result

    plain_s, supervised_s, ratios = [], [], []
    baseline = supervised = None
    for rep in range(repeats):
        if rep % 2 == 0:
            wall_p, baseline = timed(None)
            wall_s, supervised = timed(ChurnSchedule())
        else:
            wall_s, supervised = timed(ChurnSchedule())
            wall_p, baseline = timed(None)
        plain_s.append(wall_p)
        supervised_s.append(wall_s)
        ratios.append(wall_s / wall_p)
    overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    return min(plain_s), min(supervised_s), overhead, baseline, supervised


def run_benchmark(smoke=False):
    """Run all three variants; returns the measurement record pieces."""
    duration_s = SMOKE_DURATION_S if smoke else DURATION_S
    repeats = SMOKE_REPEATS if smoke else REPEATS
    churn_spec = SMOKE_CHURN_SPEC if smoke else CHURN_SPEC
    world = load_game(GAME)
    artifacts = prepare_artifacts(
        world, SessionConfig(duration_s=duration_s, seed=SEED)
    )
    plain_s, supervised_s, overhead, baseline, supervised = _timed_runs(
        world, artifacts, duration_s, repeats
    )

    churned = run_coterie(
        world, PLAYERS,
        _config(duration_s, ChurnSchedule.parse(churn_spec)), artifacts,
    )
    member = churned.membership
    admitted = [s for s in member.stats if s.join_latency_ms > 0]
    return {
        "smoke": smoke,
        "duration_s": duration_s,
        "repeats": repeats,
        "plain_s": plain_s,
        "supervised_s": supervised_s,
        "overhead": overhead,
        "idle_epochs": supervised.membership.n_epochs,
        "churn_spec": churn_spec,
        "churn_epochs": member.n_epochs,
        "joins_admitted": member.joins_admitted,
        "joins_rejected": member.joins_rejected,
        "leaves": member.leaves,
        "evictions": member.evictions,
        "invariant_checks": member.invariant_checks,
        "invariant_violations": member.invariant_violations,
        "join_latency_ms": sorted(s.join_latency_ms for s in admitted),
        "warmup_ms": sorted(s.warmup_ms for s in admitted),
        "_baseline": baseline,
        "_supervised": supervised,
        "_churned": churned,
    }


def _acceptance(m):
    """Named gates; fidelity/invariant gates are identical in both modes."""
    max_overhead = SMOKE_MAX_OVERHEAD if m["smoke"] else MAX_OVERHEAD
    member = m["_churned"].membership
    return {
        "overhead_under_limit": m["overhead"] < max_overhead,
        "idle_metrics_bit_identical": (
            _metrics_key(m["_baseline"]) == _metrics_key(m["_supervised"])
        ),
        "idle_run_only_seating_epochs": m["idle_epochs"] == PLAYERS,
        "churn_zero_invariant_violations": (
            member.invariant_violations == 0 and member.invariant_checks > 0
        ),
        "churn_roster_changed": (
            member.joins_admitted >= 1 and member.leaves >= 1
            and member.evictions >= 1
        ),
        "join_latency_measured": all(x > 0 for x in m["join_latency_ms"]),
    }


def _record(m, checks):
    payload = {
        "benchmark": "churn",
        "game": GAME,
        "seed": SEED,
        "players": PLAYERS,
        **{k: v for k, v in m.items() if not k.startswith("_")},
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_churn.json", payload)
    lat = m["join_latency_ms"]
    report(
        "BENCH_churn_table",
        ("mode", "plain s", "supervised s", "overhead", "epochs", "evictions"),
        [(
            "smoke" if m["smoke"] else "full",
            fmt(m["plain_s"], 3),
            fmt(m["supervised_s"], 3),
            f"{100 * m['overhead']:+.1f}%",
            m["churn_epochs"],
            m["evictions"],
        )],
        notes=f"{GAME}, {PLAYERS} players, {m['duration_s']:g}s; "
        f"min of {m['repeats']} repeats; churn '{m['churn_spec']}'; "
        f"join latency {[fmt(x, 1) for x in lat]} ms; "
        f"{m['invariant_checks']} invariant checks, "
        f"{m['invariant_violations']} violations",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: measure, record, verify the gates."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    m = run_benchmark(smoke=smoke)
    checks = _acceptance(m)
    _record(m, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:32}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="session")
    def test_churn_overhead(benchmark):
        """All supervisor-overhead and churn acceptance gates hold."""
        from harness import once

        m = once(benchmark, run_benchmark)
        checks = _acceptance(m)
        _record(m, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
