"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure from the paper's
evaluation.  The harness provides:

* ``PAPER`` — the published reference numbers, so each report prints
  paper-vs-measured side by side;
* ``report(...)`` — formatted table output, also persisted under
  ``benchmarks/results/`` for EXPERIMENTS.md;
* ``once(benchmark, fn)`` — run an experiment exactly once under
  pytest-benchmark (these are minutes-long system simulations, not
  microbenchmarks);
* ``write_bench(name, payload)`` — the single path for machine-readable
  ``BENCH_*.json`` artifacts: everything lands in ``benchmarks/results/``
  (never the repo root), which is the directory CI uploads and the
  perf-regression gate reads.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"

# Wall-clock origin for per-result cost reporting (module import ~ run start).
_RUN_START = time.monotonic()


def run_cost() -> Dict[str, float]:
    """Reproduction cost so far: wall-clock seconds and peak RSS (MB).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to megabytes.
    """
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1e6 if sys.platform == "darwin" else 1e3
    return {
        "wall_s": round(time.monotonic() - _RUN_START, 3),
        "peak_rss_mb": round(maxrss / divisor, 1),
    }

# ----------------------------------------------------------------------
# Published reference numbers (the paper's tables)
# ----------------------------------------------------------------------

PAPER = {
    # Table 1: (FPS, inter-frame ms, net delay ms) per (system, game, players)
    "table1": {
        ("mobile", "viking", 1): (26, 38.2, None),
        ("mobile", "cts", 1): (24, 42.0, None),
        ("mobile", "racing", 1): (27, 38.2, None),
        ("mobile", "viking", 2): (24, 42.5, None),
        ("mobile", "cts", 2): (21, 48.3, None),
        ("mobile", "racing", 2): (25, 40.3, None),
        ("thin_client", "viking", 1): (24, 41.1, 9.7),
        ("thin_client", "cts", 1): (20, 50.3, 9.9),
        ("thin_client", "racing", 1): (20, 50.0, 11.3),
        ("thin_client", "viking", 2): (19, 52.2, 19.8),
        ("thin_client", "cts", 2): (16, 59.0, 20.1),
        ("thin_client", "racing", 2): (15, 64.1, 21.2),
        ("multi_furion", "viking", 1): (60, 16.0, 9.2),
        ("multi_furion", "cts", 1): (60, 16.6, 7.5),
        ("multi_furion", "racing", 1): (60, 16.5, 9.3),
        ("multi_furion", "viking", 2): (45, 22.2, 18.3),
        ("multi_furion", "cts", 2): (48, 20.8, 16.2),
        ("multi_furion", "racing", 2): (42, 23.8, 18.5),
    },
    # Table 3: (leaf regions, avg depth, max depth, proc hours)
    "table3": {
        "viking": (2944, 5.87, 6, 6.60),
        "cts": (235, 3.81, 4, 1.30),
        "racing": (136, 3.70, 4, 1.25),
        "ds": (160, 3.80, 4, 1.66),
        "fps": (208, 3.92, 4, 1.10),
        "soccer": (136, 3.88, 4, 1.18),
        "pool": (19, 2.68, 3, 0.14),
        "bowling": (16, 2.00, 2, 0.13),
        "corridor": (40, 2.80, 3, 0.29),
    },
    # Table 5: Viking cache hit ratios per version x players (%).
    "table5": {
        (1, 1): 0.0, (1, 2): 0.0, (1, 3): 0.0, (1, 4): 0.0,
        (2, 1): 0.0, (2, 2): 0.0, (2, 3): 0.0, (2, 4): 0.0,
        (3, 1): 80.8, (3, 2): 80.8, (3, 3): 80.8, (3, 4): 80.8,
        (4, 1): 0.0, (4, 2): 63.9, (4, 3): 67.2, (4, 4): 65.4,
        (5, 1): 80.8, (5, 2): 80.4, (5, 3): 80.4, (5, 4): 87.7,
    },
    # Table 6: average cache hit ratios (%).
    "table6": {"viking": 80.8, "racing": 82.3, "cts": 88.4},
    # Table 7: (SSIM, FPS, responsiveness ms) per (system, game), 2 players.
    "table7": {
        ("thin_client", "viking"): (0.912, 19, 41.0),
        ("thin_client", "cts"): (0.904, 16, 50.0),
        ("thin_client", "racing"): (0.949, 15, 42.2),
        ("multi_furion", "viking"): (0.915, 45, 22.0),
        ("multi_furion", "cts"): (0.907, 48, 20.1),
        ("multi_furion", "racing"): (0.953, 42, 21.2),
        ("coterie", "viking"): (0.937, 60, 15.8),
        ("coterie", "cts"): (0.979, 60, 15.9),
        ("coterie", "racing"): (0.975, 60, 15.6),
    },
    # Table 8: Coterie detail: (FPS, inter ms, CPU %, GPU %, frame kB, net ms)
    "table8": {
        ("viking", 1): (60, 16.0, 31.76, 55.51, 280, 7.0),
        ("cts", 1): (60, 16.6, 27.76, 44.81, 150, 6.0),
        ("racing", 1): (60, 16.0, 26.99, 39.18, 194, 6.5),
        ("viking", 2): (60, 16.5, 31.89, 57.24, 280, 8.9),
        ("cts", 2): (60, 16.6, 28.13, 46.89, 150, 6.3),
        ("racing", 2): (60, 16.2, 28.98, 43.25, 194, 7.5),
    },
    # Table 9: BE Mbps / FI Kbps: Multi-Furion 1P and Coterie 1-4P.
    "table9": {
        "viking": {"furion_1p": (276, 1), "coterie": {1: (26, 1), 2: (52, 71), 3: (76, 153), 4: (100, 266)}},
        "cts": {"furion_1p": (264, 1), "coterie": {1: (14, 1), 2: (27, 68), 3: (42, 151), 4: (56, 260)}},
        "racing": {"furion_1p": (283, 1), "coterie": {1: (11, 1), 2: (22, 52), 3: (34, 129), 4: (42, 275)}},
    },
    # Table 10: user-study score distribution (%).
    "table10": {1: 0.0, 2: 0.0, 3: 5.5, 4: 29.2, 5: 65.3},
    # Figure 1: fraction of adjacent frame pairs with SSIM > 0.9.
    "fig1_before": (0.0, 0.20),   # range across the 9 games
    "fig1_after_outdoor": (0.85, 1.0),
    "fig1_after_indoor": (0.65, 0.90),
    # Figure 11: FPS vs players (viking, multi-furion vs coterie).
    "fig11_furion_4p_max": 30,
    "fig11_coterie_4p_min": 55,
}


def write_bench(name: str, payload: Dict) -> Path:
    """Persist one machine-readable benchmark artifact.

    ``name`` is the bare artifact name (e.g. ``BENCH_churn.json``); the
    file is written under :data:`RESULTS_DIR` only — the repo root stays
    clean, and both CI artifact uploads and ``check_regression.py`` agree
    on this one location.  Returns the written path.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / name
    target.write_text(json.dumps(payload, indent=1, default=str))
    return target


def once(benchmark, fn: Callable, *args, **kwargs):
    """Run a (long) experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(name: str, header: Sequence[str], rows: List[Sequence], notes: str = "") -> None:
    """Print a table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = []
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = f"== {name} ==\n" + "\n".join(lines)
    if notes:
        text += f"\n{notes}"
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {"name": name, "header": list(header), "rows": [list(r) for r in rows], "notes": notes, "cost": run_cost()}
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1, default=str))


def fmt(value, digits=1):
    """Compact numeric formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)
