"""E-F6 — Figure 6: Constraint-1 violations vs. the sample count K.

The adaptive scheme samples K locations per region; too small a K misses
dense pockets and produces leaf radii that violate Constraint 1 at some
trajectory locations.  The paper finds K=10 keeps violations under 0.25 %.
"""

from __future__ import annotations

import pytest

from harness import fmt, once, report
from repro.core import (
    CutoffSchemeConfig,
    build_cutoff_map,
    measure_fi_budget,
)
from repro.render import PIXEL2, RenderCostModel
from repro.trace import generate_trajectory
from repro.world import load_game

GAMES = ("viking", "racing", "cts")
K_VALUES = (1, 2, 5, 10, 20)


def _violation_rate(game: str, k: int) -> float:
    world = load_game(game)
    model = RenderCostModel(PIXEL2)
    budget = measure_fi_budget(model, world.spec.fi_triangles)
    reachable = None
    if world.track is not None:
        reachable = lambda p: world.grid.is_reachable(world.grid.snap(p))
    cutoff_map = build_cutoff_map(
        world.scene, model, budget,
        config=CutoffSchemeConfig(k_samples=k),
        reachable=reachable, seed=5,
    )
    trajectory = generate_trajectory(world, duration_s=30, seed=13)
    violations = 0
    checked = 0
    for sample in trajectory.samples[::6]:
        radius = cutoff_map.cutoff_for(sample.position)
        cost = model.near_be_ms(world.scene, sample.position, radius)
        checked += 1
        if cost >= budget.near_be_budget_ms / budget.headroom:
            # Violates the paper's raw Constraint 1 (headroom removed).
            violations += 1
    return violations / checked


def _run_all():
    rows = []
    rates = {}
    for game in GAMES:
        row = [game]
        for k in K_VALUES:
            rate = _violation_rate(game, k)
            rates[(game, k)] = rate
            row.append(fmt(100 * rate, 2) + "%")
        rows.append(tuple(row))
    return rows, rates


@pytest.mark.benchmark(group="fig6")
def test_fig6_constraint_violations_vs_k(benchmark):
    rows, rates = once(benchmark, _run_all)
    report(
        "fig6_k_sweep",
        ["game"] + [f"K={k}" for k in K_VALUES],
        rows,
        notes="Percentage of trajectory locations whose leaf cutoff radius "
        "violates Constraint 1 (paper: < 0.25% at K=10).",
    )
    for game in GAMES:
        # At the paper's K=10, violations are rare.
        assert rates[(game, 10)] < 0.05, f"{game}: too many violations at K=10"
        # More samples never make things dramatically worse.
        assert rates[(game, 10)] <= rates[(game, 1)] + 0.02
