"""E-FL1 — fleet serving: shared render farm vs isolated, join latency.

The fleet package (``repro.fleet``) claims that cross-session panorama
dedup turns into *serving capacity*: far-BE panoramas are pure functions
of (world, grid point), so sessions of the same game share renders, the
admission controller discounts demand by the store's observed miss
ratio, and the same GPU budget admits — and completes — more sessions
than per-session isolated serving.  This benchmark pins that claim plus
the fleet's player-facing outcomes:

* **workload legs** — one fleet run per canonical arrival process
  (``poisson``, ``diurnal``, ``flash``), recording sessions/sec and join
  latency p50/p99 (every value is sim-time deterministic);
* **comparison leg** — the same flash-crowd arrivals and GPU budget
  served twice, ``shared=True`` vs ``shared=False``; the gate requires
  shared serving to complete strictly more sessions/sec;
* **identity leg** — a one-session fleet run under ``fidelity="full"``
  must replay bit-identically to the equivalent standalone
  ``repro run`` (the fleet layer adds capacity, never perturbs a
  session);
* **determinism leg** — the same fleet config run twice must produce
  ``==`` summaries.

Results land in ``benchmarks/results/BENCH_fleet.json``.  Run standalone
with ``python benchmarks/bench_fleet.py`` (add ``--smoke`` for the CI
quick mode: shorter arrival horizons, same gates).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.cli import _first_divergence
from repro.fleet import (
    WORKLOADS,
    ArrivalTrace,
    FleetBudget,
    FleetConfig,
    LobbyConfig,
    PlayerArrival,
    run_fleet,
)
from repro.systems import SessionConfig, run_system

GAME = "racing"
SEED = 7
RATE_PER_S = 1.0

DURATION_S = 30.0
SMOKE_DURATION_S = 12.0
SESSION_DURATION_S = 8.0
SMOKE_SESSION_DURATION_S = 5.0

# The comparison leg runs the same config in both modes and must show a
# capacity win, so its budget is deliberately tight: a flash crowd on
# two GPU slots binds Constraint 1, and only the shared store's falling
# miss ratio frees enough render budget to admit the surge.
COMPARISON = dict(
    workload="flash",
    rate_per_s=1.0,
    duration_s=20.0,
    session_duration_s=6.0,
    gpu_slots=2,
)

IDENTITY_PLAYERS = 4
IDENTITY_DURATION_S = 4.0


def _lobby():
    return LobbyConfig(session_size=4, min_session_size=2)


def _workload_config(workload, smoke):
    return FleetConfig(
        workload=workload,
        rate_per_s=RATE_PER_S,
        duration_s=SMOKE_DURATION_S if smoke else DURATION_S,
        seed=SEED,
        games=(GAME,),
        lobby=_lobby(),
        session_duration_s=(
            SMOKE_SESSION_DURATION_S if smoke else SESSION_DURATION_S
        ),
    )


def _comparison_config(shared):
    return FleetConfig(
        workload=COMPARISON["workload"],
        rate_per_s=COMPARISON["rate_per_s"],
        duration_s=COMPARISON["duration_s"],
        seed=SEED,
        games=(GAME,),
        lobby=_lobby(),
        session_duration_s=COMPARISON["session_duration_s"],
        budget=FleetBudget(gpu_slots=COMPARISON["gpu_slots"]),
        shared=shared,
    )


def _workload_row(summary):
    return {
        "arrivals": summary.arrivals,
        "sessions_completed": summary.sessions_completed,
        "sessions_rejected": summary.sessions_rejected,
        "sessions_per_s": summary.sessions_per_s,
        "join_p50_ms": summary.join_p50_ms,
        "join_p99_ms": summary.join_p99_ms,
        "dedup_ratio": summary.dedup_ratio,
        "farm_queue_peak": summary.farm.queue_peak,
        "deadline_misses": summary.farm.deadline_misses,
    }


def run_benchmark(smoke=False):
    """Run the workload, comparison, identity, and determinism legs."""
    workloads = {}
    for workload in WORKLOADS:
        summary = run_fleet(_workload_config(workload, smoke)).summary
        workloads[workload] = _workload_row(summary)

    shared = run_fleet(_comparison_config(True)).summary
    isolated = run_fleet(_comparison_config(False)).summary
    comparison = {
        "gpu_slots": COMPARISON["gpu_slots"],
        "shared_sessions_completed": shared.sessions_completed,
        "isolated_sessions_completed": isolated.sessions_completed,
        "shared_sessions_per_s": shared.sessions_per_s,
        "isolated_sessions_per_s": isolated.sessions_per_s,
        "sessions_per_s_ratio": (
            shared.sessions_per_s / isolated.sessions_per_s
            if isolated.sessions_per_s > 0 else float("inf")
        ),
        "shared_renders": shared.farm.renders,
        "isolated_renders": isolated.farm.renders,
        "dedup_hit_ratio": shared.dedup_ratio,
    }

    # Identity: one full-fidelity fleet session vs the standalone engine.
    trace = ArrivalTrace(
        [PlayerArrival(0.0, GAME) for _ in range(IDENTITY_PLAYERS)]
    )
    fleet = run_fleet(FleetConfig(
        arrivals=trace,
        seed=SEED,
        games=(GAME,),
        lobby=LobbyConfig(session_size=IDENTITY_PLAYERS,
                          min_session_size=IDENTITY_PLAYERS),
        session_duration_s=IDENTITY_DURATION_S,
        fidelity="full",
    ))
    standalone = run_system(
        "coterie", GAME, IDENTITY_PLAYERS,
        SessionConfig(duration_s=IDENTITY_DURATION_S, seed=SEED),
    )
    if len(fleet.session_runs) != 1:
        identity_divergence = (
            f"expected 1 session replay, got {len(fleet.session_runs)}"
        )
    else:
        identity_divergence = _first_divergence(
            fleet.session_runs[0], standalone
        )
    identity = {
        "mismatches": 0 if identity_divergence is None else 1,
        "divergence": identity_divergence,
    }

    # Determinism: the poisson leg replayed must be bit-identical.
    a = run_fleet(_workload_config("poisson", smoke))
    b = run_fleet(_workload_config("poisson", smoke))
    determinism = {
        "mismatches": 0 if (a.summary == b.summary
                            and a.sessions == b.sessions) else 1,
    }

    return {
        "smoke": smoke,
        "workloads": workloads,
        "comparison": comparison,
        "identity": identity,
        "determinism": determinism,
    }


def _acceptance(m):
    """Named gates; the capacity-win and identity gates never relax."""
    comparison = m["comparison"]
    checks = {
        "shared_beats_isolated_sessions_per_s": (
            comparison["sessions_per_s_ratio"] > 1.0
        ),
        "dedup_actually_happens": comparison["dedup_hit_ratio"] >= 0.3,
        "shared_renders_fewer": (
            comparison["shared_renders"] < comparison["isolated_renders"]
        ),
        "single_session_bit_identical": m["identity"]["mismatches"] == 0,
        "fleet_replay_bit_identical": m["determinism"]["mismatches"] == 0,
    }
    for workload, row in m["workloads"].items():
        checks[f"{workload}_completed_sessions"] = (
            row["sessions_completed"] >= 1
        )
        checks[f"{workload}_join_p99_reported"] = row["join_p99_ms"] > 0.0
    return checks


def _record(m, checks):
    payload = {
        "benchmark": "fleet",
        "game": GAME,
        "seed": SEED,
        "rate_per_s": RATE_PER_S,
        **{k: v for k, v in m.items() if not k.startswith("_")},
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_fleet.json", payload)
    rows = []
    for workload, row in m["workloads"].items():
        rows.append((
            workload,
            str(row["sessions_completed"]),
            fmt(row["sessions_per_s"], 4),
            fmt(row["join_p50_ms"], 1),
            fmt(row["join_p99_ms"], 1),
            f"{100 * row['dedup_ratio']:.1f}%",
            str(row["farm_queue_peak"]),
        ))
    comparison = m["comparison"]
    rows.append((
        "flash (shared, tight)",
        str(comparison["shared_sessions_completed"]),
        fmt(comparison["shared_sessions_per_s"], 4),
        "-", "-",
        f"{100 * comparison['dedup_hit_ratio']:.1f}%",
        "-",
    ))
    rows.append((
        "flash (isolated, tight)",
        str(comparison["isolated_sessions_completed"]),
        fmt(comparison["isolated_sessions_per_s"], 4),
        "-", "-", "0.0%", "-",
    ))
    report(
        "BENCH_fleet_table",
        ("workload", "sessions", "sessions/s", "join p50 ms",
         "join p99 ms", "dedup", "queue peak"),
        rows,
        notes=f"{GAME}, rate {RATE_PER_S:g}/s, seed {SEED}; comparison "
        f"legs on {comparison['gpu_slots']} GPU slots — shared/isolated "
        f"sessions-per-s ratio {comparison['sessions_per_s_ratio']:.3f}",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: measure, record, verify the gates."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    m = run_benchmark(smoke=smoke)
    checks = _acceptance(m)
    _record(m, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:40}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="fleet")
    def test_fleet_shared_serving_wins(benchmark):
        """All fleet-serving acceptance gates hold."""
        from harness import once

        m = once(benchmark, run_benchmark)
        checks = _acceptance(m)
        _record(m, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
