"""E-T45 — Tables 4 and 5: the five frame-cache configurations.

Replays 1-4 player movement traces against per-player caches under the
five lookup configurations of Table 4:

  V1  reuse own frames, exact grid-point match only
  V2  reuse overheard (other players') frames, exact match only
  V3  reuse own frames, similarity lookup (the Coterie design)
  V4  reuse overheard frames, similarity lookup
  V5  both sources, similarity lookup

Paper findings on Viking Village (Table 5): exact matching never hits
(V1/V2 = 0 %); V3 alone reaches ~80 %; V4 reaches 64-67 % with 2+ players;
V5 adds almost nothing over V3 — the justification for dropping
inter-player reuse from the final design.

As the paper notes, no pixels are needed: "the cache lookup outcome is
determined by the frame locations in the game".
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.core import FrameCache
from repro.trace import generate_party
from repro.world import load_game

VERSIONS = {
    1: dict(own=True, overheard=False, exact=True),
    2: dict(own=False, overheard=True, exact=True),
    3: dict(own=True, overheard=False, exact=False),
    4: dict(own=False, overheard=True, exact=False),
    5: dict(own=True, overheard=True, exact=False),
}
PLAYERS = (1, 2, 3, 4)
FRAME_BYTES = 280_000


def _replay(world, artifacts, version: int, n_players: int, duration_s: float = 25.0):
    """Replay the party's movement against version-configured caches."""
    config = VERSIONS[version]
    # Tight-proximity party, as in the paper's closely-playing groups.
    party = generate_party(world, n_players, duration_s, seed=31,
                           follow_radius=2.0)
    caches = [FrameCache(exact_only=config["exact"]) for _ in range(n_players)]
    cutoff_map = artifacts.cutoff_map
    dist_map = artifacts.dist_thresh_map
    scene = world.scene
    grid = world.grid
    significance = 0.05

    max_len = max(len(t) for t in party)
    for index in range(max_len):
        for player, trajectory in enumerate(party):
            sample = trajectory[min(index, len(trajectory) - 1)]
            grid_point = grid.snap(sample.position)
            snapped = grid.to_world(grid_point)
            leaf, cutoff = cutoff_map.leaf_for(snapped)
            near_ids = scene.near_object_ids(
                snapped, cutoff, min_radius=significance * cutoff
            )
            dist_thresh = 0.0 if config["exact"] else dist_map.threshold_for(snapped)
            hit = caches[player].lookup(
                grid_point, snapped, leaf, near_ids, dist_thresh, sample.t_ms
            )
            if hit is None:
                # Fetch from the server; the reply populates the caches the
                # version allows ("the reply from the server is overheard
                # and cached by all the players", §4.6).
                from repro.core import CachedFrame

                def frame(origin):
                    return CachedFrame(
                        grid_point=grid_point,
                        position=snapped,
                        leaf=leaf,
                        near_ids=near_ids,
                        payload=None,
                        size_bytes=FRAME_BYTES,
                        inserted_ms=sample.t_ms,
                        last_used_ms=sample.t_ms,
                        origin_player=player,
                    )

                if config["own"]:
                    caches[player].insert(frame(player))
                if config["overheard"]:
                    for other in range(n_players):
                        if other != player:
                            caches[other].insert(frame(player))
    ratios = [c.stats.hit_ratio for c in caches]
    return sum(ratios) / len(ratios)


def _run_all(artifacts):
    world = load_game("viking")
    rows = []
    measured = {}
    for version in sorted(VERSIONS):
        row = [f"V{version}"]
        for n in PLAYERS:
            ratio = _replay(world, artifacts, version, n)
            measured[(version, n)] = ratio
            paper = PAPER["table5"][(version, n)]
            row.append(f"{100 * ratio:.1f}% ({paper:.0f})")
        rows.append(tuple(row))
    return rows, measured


@pytest.mark.benchmark(group="table5")
def test_table5_cache_versions(benchmark, headline_artifacts):
    rows, measured = once(benchmark, _run_all, headline_artifacts["viking"])
    report(
        "table5_cache_versions",
        ["version"] + [f"{n}P (paper %)" for n in PLAYERS],
        rows,
        notes="Viking Village cache hit ratios under the five Table 4 "
        "configurations; V1/V2 exact matching, V3-V5 similarity lookup.",
    )
    # Exact matching essentially never hits: players rarely revisit exact
    # grid points.  (Our tight-proximity followers hover near the leader
    # and occasionally re-cross their own 3 cm grid cells, so a few
    # percent leak through at 3-4 players; the paper's humans roam more.)
    for n in PLAYERS:
        assert measured[(1, n)] < 0.05
        assert measured[(2, n)] < 0.05
    # Similar self-reuse captures the bulk of the benefit.
    for n in PLAYERS:
        assert measured[(3, n)] > 0.6
    # Inter-player-only reuse works at 2+ players but below V3.  (Our
    # follower model overlaps viewpoints less than the paper's human
    # parties, so V4's absolute level is lower; the ordering is the claim.)
    assert measured[(4, 1)] < 0.02
    for n in (2, 3, 4):
        assert measured[(4, n)] > 0.08
        assert measured[(4, n)] < measured[(3, n)] + 0.05
    # V5 adds little over V3 — the design decision's justification.
    for n in (2, 3, 4):
        assert abs(measured[(5, n)] - measured[(3, n)]) < 0.12
