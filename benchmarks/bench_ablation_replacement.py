"""Ablation — cache replacement: LRU vs FLF under memory pressure.

The paper explores both policies and reports that "both LRU and FLF work
effectively as spatial locality and temporal locality coincide well in
each player's movement" (§7), omitting details for space.  This ablation
supplies them: hit ratios for both policies across cache capacities from
plentiful to starved.
"""

from __future__ import annotations

import pytest

from harness import fmt, once, report
from repro.core import FLF, LRU, FrameCache, Prefetcher
from repro.trace import generate_trajectory
from repro.world import load_game

# 0.5 MB holds only a frame or two; 512 MB is effectively unbounded.
CAPACITIES_MB = (0.5, 1, 2, 8, 512)


def _replay(world, artifacts, policy: str, capacity_mb: float) -> float:
    cache = FrameCache(
        capacity_bytes=int(capacity_mb * 1024 * 1024), policy=policy
    )
    prefetcher = Prefetcher(
        world.scene, world.grid, artifacts.cutoff_map,
        artifacts.dist_thresh_map, cache,
    )
    trajectory = generate_trajectory(world, duration_s=25, seed=23)
    for sample in trajectory.samples:
        decision = prefetcher.plan(sample.position, sample.heading, sample.t_ms)
        if decision.needs_fetch:
            size = artifacts.far_size_model.sample(decision.grid_point)
            prefetcher.admit(decision, None, size, sample.t_ms)
    return cache.stats.hit_ratio


def _run_all(artifacts):
    world = load_game("viking")
    rows = []
    data = {}
    for capacity in CAPACITIES_MB:
        lru = _replay(world, artifacts, LRU, capacity)
        flf = _replay(world, artifacts, FLF, capacity)
        data[capacity] = (lru, flf)
        rows.append(
            (f"{capacity} MB", fmt(100 * lru) + "%", fmt(100 * flf) + "%")
        )
    return rows, data


@pytest.mark.benchmark(group="ablation")
def test_ablation_replacement_policy(benchmark, headline_artifacts):
    rows, data = once(benchmark, _run_all, headline_artifacts["viking"])
    report(
        "ablation_replacement",
        ["cache capacity", "LRU hits", "FLF hits"],
        rows,
        notes="Viking Village, single player, 25 s trace. The paper's "
        "claim: the two policies track each other because spatial and "
        "temporal locality coincide in player movement.",
    )
    generous = data[CAPACITIES_MB[-1]]
    for capacity, (lru, flf) in data.items():
        # The policies stay close at every capacity.
        assert abs(lru - flf) < 0.15, f"{capacity} MB: policies diverge"
        # Hit ratio never exceeds the unconstrained cache's.
        assert lru <= generous[0] + 0.02
        assert flf <= generous[1] + 0.02
    # A starved cache costs hits; a plentiful one recovers them.
    assert generous[0] >= data[CAPACITIES_MB[0]][0]
