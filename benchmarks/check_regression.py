"""CI perf-regression gate over the ``BENCH_*.json`` artifacts.

Compares a fresh benchmark run against committed baselines and exits
nonzero when a watched metric regresses beyond tolerance.  Three metric
kinds cover the artifacts' shapes:

* ``wall`` — lower is better, multiplicative: fresh > base * (1 + tol)
  fails.  Wall clocks are noisy across runner generations, so
  ``--ratio-only`` skips this kind entirely (CI compares machine-relative
  ratios only; absolute walls are still reported for humans);
* ``ratio_high`` — higher is better, multiplicative: a speedup ratio
  falling below base * (1 - tol) fails even under ``--ratio-only``
  (both legs ran on the same machine, so the ratio is noise-immune);
* ``abs_low`` — lower is better, additive: fresh > base + tol fails
  (for small fractions like tracer overhead where a multiplicative
  band around ~0 is meaningless).

Usage (the CI perf job)::

    python benchmarks/check_regression.py \
        --baseline-dir benchmarks/results/smoke \
        --fresh-dir benchmarks/results --ratio-only --tolerance 0.35

Baselines are re-pinned by re-running the benches on a quiet machine and
committing the refreshed artifacts::

    python benchmarks/check_regression.py \
        --update-baselines \
        --baseline-dir benchmarks/results/smoke \
        --fresh-dir benchmarks/results

``--update-baselines`` copies every spec'd fresh artifact (validated as
JSON first) over the baseline directory instead of comparing, then
reports what changed; commit the result (see README "Performance gate").
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional

#: Watched metrics per artifact: (dotted path into the JSON, kind).
#: Paths missing from BOTH baseline and fresh artifacts are skipped
#: (bench payloads grow fields over time); present-on-one-side-only is
#: a failure — a silently vanished metric must not pass the gate.
SPECS = {
    "BENCH_kernels.json": [
        ("speedup.vector", "ratio_high"),
        ("speedup.vector+reuse", "ratio_high"),
        ("legs.scalar.wall_s", "wall"),
        ("legs.vector.wall_s", "wall"),
        ("legs.vector+reuse.wall_s", "wall"),
    ],
    "BENCH_online.json": [
        ("speedup.vector", "ratio_high"),
        ("speedup.vector+reuse", "ratio_high"),
        ("legs.scalar.wall_s", "wall"),
        ("legs.vector.wall_s", "wall"),
        ("legs.vector+reuse.wall_s", "wall"),
    ],
    "BENCH_preprocess.json": [
        ("speedup.parallel", "ratio_high"),
        ("speedup.warm", "ratio_high"),
        ("legs.serial.wall_s", "wall"),
        ("legs.parallel.wall_s", "wall"),
        ("legs.warm.wall_s", "wall"),
    ],
    "BENCH_trace.json": [
        ("overhead", "abs_low"),
        ("untraced_s", "wall"),
        ("traced_s", "wall"),
    ],
    "BENCH_metrics.json": [
        ("overhead", "abs_low"),
        ("unmetered_s", "wall"),
        ("metered_s", "wall"),
    ],
    "BENCH_churn.json": [
        ("overhead", "abs_low"),
        ("plain_s", "wall"),
        ("supervised_s", "wall"),
    ],
    # Speculation must keep improving the hit ratio on most trajectory
    # genres (the deterministic genre count is noise-immune), and the
    # desync validator must never false-alarm on a clean run.
    "BENCH_prediction.json": [
        ("improvement.genres_improved", "ratio_high"),
        ("clean.desync_alarms", "abs_low"),
    ],
    # Deadline-miss rates are fractions in [0, 1]; the additive abs_low
    # band keeps adaptive Coterie from quietly sliding back toward the
    # fixed-CRF miss rates under any committed trace.
    "BENCH_adaptive.json": [
        ("traces.cellular.adaptive.deadline_miss_rate", "abs_low"),
        ("traces.bufferbloat.adaptive.deadline_miss_rate", "abs_low"),
        ("traces.contention.adaptive.deadline_miss_rate", "abs_low"),
    ],
    # Shared serving must keep beating isolated serving on sessions/sec
    # at the same GPU budget, and dedup must stay effective.  Join p99s
    # and both identity pins are sim-time deterministic, so the additive
    # abs_low band amounts to an exact hold.
    "BENCH_fleet.json": [
        ("comparison.sessions_per_s_ratio", "ratio_high"),
        ("comparison.dedup_hit_ratio", "ratio_high"),
        ("workloads.poisson.join_p99_ms", "abs_low"),
        ("workloads.diurnal.join_p99_ms", "abs_low"),
        ("workloads.flash.join_p99_ms", "abs_low"),
        ("identity.mismatches", "abs_low"),
        ("determinism.mismatches", "abs_low"),
    ],
}


@dataclass(frozen=True)
class Comparison:
    """One metric's verdict: the values compared and whether it regressed."""

    artifact: str
    metric: str
    kind: str
    baseline: Optional[float]
    fresh: Optional[float]
    regressed: bool
    skipped: bool = False

    def line(self) -> str:
        """One human-readable report row."""
        def show(v):
            return "-" if v is None else f"{v:.3f}"

        if self.skipped:
            verdict = "SKIP"
        else:
            verdict = "FAIL" if self.regressed else "ok"
        return (f"  {self.artifact:24} {self.metric:28} {self.kind:10} "
                f"base {show(self.baseline):>8}  fresh {show(self.fresh):>8}"
                f"  {verdict}")


def lookup(document, path: str) -> Optional[float]:
    """Resolve a dotted path to a float, or None when any key is absent."""
    node = document
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def compare_metric(
    artifact: str,
    metric: str,
    kind: str,
    baseline: Optional[float],
    fresh: Optional[float],
    tolerance: float,
    ratio_only: bool,
) -> Comparison:
    """Judge one metric against its baseline."""
    if baseline is None and fresh is None:
        return Comparison(artifact, metric, kind, None, None, False, skipped=True)
    if baseline is None or fresh is None:
        # A metric that vanished (or appeared without a baseline) is a
        # gate failure: silence must never read as "no regression".
        return Comparison(artifact, metric, kind, baseline, fresh, True)
    if kind == "wall":
        if ratio_only:
            return Comparison(
                artifact, metric, kind, baseline, fresh, False, skipped=True
            )
        regressed = fresh > baseline * (1.0 + tolerance)
    elif kind == "ratio_high":
        regressed = fresh < baseline * (1.0 - tolerance)
    elif kind == "abs_low":
        regressed = fresh > baseline + tolerance
    else:
        raise ValueError(f"unknown metric kind {kind!r}")
    return Comparison(artifact, metric, kind, baseline, fresh, regressed)


def compare_dirs(
    baseline_dir: Path,
    fresh_dir: Path,
    tolerance: float,
    ratio_only: bool,
    artifacts: Optional[Iterable[str]] = None,
) -> List[Comparison]:
    """Compare every watched artifact present in the baseline directory.

    ``artifacts`` narrows the set (CI only runs a subset of benches); by
    default every SPECS artifact with a committed baseline is checked.
    A baseline artifact whose fresh counterpart is missing fails the
    gate outright — the bench silently not running is itself a
    regression.
    """
    names = list(artifacts) if artifacts is not None else sorted(SPECS)
    results: List[Comparison] = []
    for name in names:
        if name not in SPECS:
            raise ValueError(f"no metric spec for {name!r}")
        base_path = baseline_dir / name
        fresh_path = fresh_dir / name
        if not base_path.exists():
            if artifacts is None:
                continue  # no baseline committed: nothing to hold against
            results.append(
                Comparison(name, "<baseline file>", "-", None, None, True)
            )
            continue
        if not fresh_path.exists():
            results.append(
                Comparison(name, "<fresh file>", "-", None, None, True)
            )
            continue
        try:
            base_doc = json.loads(base_path.read_text())
            fresh_doc = json.loads(fresh_path.read_text())
        except json.JSONDecodeError:
            # One corrupt artifact must fail the gate without hiding the
            # other artifacts' comparisons: emit a failing row, move on.
            results.append(
                Comparison(name, "<parse error>", "-", None, None, True)
            )
            continue
        for metric, kind in SPECS[name]:
            results.append(compare_metric(
                name, metric, kind,
                lookup(base_doc, metric), lookup(fresh_doc, metric),
                tolerance, ratio_only,
            ))
    return results


def _is_bench_artifact(name: str) -> bool:
    """Whether ``name`` follows the BENCH_*.json artifact convention."""
    return name.startswith("BENCH_") and name.endswith(".json")


def update_baselines(
    baseline_dir: Path,
    fresh_dir: Path,
    artifacts: Optional[Iterable[str]] = None,
) -> List[str]:
    """Re-pin committed baselines from a fresh bench run.

    Copies each artifact present in ``fresh_dir`` over ``baseline_dir``
    (created if needed), validating that the fresh file parses as JSON
    first — a half-written artifact must never become the new baseline.
    Returns the artifact names that were updated.

    Unlike :func:`compare_dirs`, this accepts artifacts without a SPECS
    entry as long as they follow the ``BENCH_*.json`` convention: when a
    benchmark is first introduced its baseline must be pinnable before
    (or in the same change as) its spec lands.  By default every spec'd
    artifact plus every ``BENCH_*.json`` file in ``fresh_dir`` is
    considered.
    """
    if artifacts is not None:
        names = list(artifacts)
    else:
        fresh_names = {
            p.name for p in fresh_dir.glob("BENCH_*.json")
        } if fresh_dir.is_dir() else set()
        names = sorted(set(SPECS) | fresh_names)
    updated: List[str] = []
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name not in SPECS and not _is_bench_artifact(name):
            raise ValueError(
                f"no metric spec for {name!r} and it does not follow "
                "the BENCH_*.json naming convention"
            )
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            continue
        text = fresh_path.read_text()
        try:
            json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fresh artifact {fresh_path} is not valid "
                             f"JSON: {exc}") from exc
        (baseline_dir / name).write_text(text)
        updated.append(name)
    return updated


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 0 (clean), 1 (regression), 2 (usage)."""
    parser = argparse.ArgumentParser(
        description="fail when fresh BENCH_*.json artifacts regress "
        "against committed baselines"
    )
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).parent / "results",
                        help="directory of committed baseline artifacts")
    parser.add_argument("--fresh-dir", type=Path,
                        default=Path(__file__).parent / "results",
                        help="directory the fresh bench run wrote to")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative (or additive, for abs_low) "
                             "slack before a metric counts as regressed")
    parser.add_argument("--ratio-only", action="store_true",
                        help="skip absolute wall-clock metrics (CI runners "
                             "are not comparable to the baseline machine)")
    parser.add_argument("--artifacts", nargs="*", default=None,
                        help="restrict to these artifact names (default: "
                             "every spec'd artifact with a baseline)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="re-pin: copy fresh spec'd artifacts over the "
                             "baseline directory instead of comparing")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        print("tolerance must be non-negative", file=sys.stderr)
        return 2
    if args.update_baselines:
        try:
            updated = update_baselines(
                args.baseline_dir, args.fresh_dir, args.artifacts
            )
        except (OSError, ValueError) as exc:
            print(f"cannot update baselines: {exc}", file=sys.stderr)
            return 2
        if not updated:
            print("no spec'd artifacts found in "
                  f"{args.fresh_dir} — nothing re-pinned", file=sys.stderr)
            return 2
        for name in updated:
            print(f"  re-pinned {name} -> {args.baseline_dir / name}")
        print(f"baselines updated: {len(updated)} artifact(s); "
              "review and commit the diff")
        return 0
    if not args.baseline_dir.is_dir():
        print(f"baseline dir {args.baseline_dir} does not exist",
              file=sys.stderr)
        return 2
    try:
        results = compare_dirs(
            args.baseline_dir, args.fresh_dir, args.tolerance,
            args.ratio_only, args.artifacts,
        )
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"cannot compare: {exc}", file=sys.stderr)
        return 2
    print(f"perf gate: {args.fresh_dir} vs baseline {args.baseline_dir} "
          f"(tolerance {args.tolerance:g}"
          f"{', ratio-only' if args.ratio_only else ''})")
    for comparison in results:
        print(comparison.line())
    failures = [c for c in results if c.regressed]
    checked = sum(1 for c in results if not c.skipped)
    if not checked:
        print("perf gate: no metrics compared — missing baselines?",
              file=sys.stderr)
        return 2
    if failures:
        print(f"perf gate: {len(failures)} regression(s) in "
              f"{checked} checked metric(s)", file=sys.stderr)
        return 1
    print(f"perf gate: clean ({checked} metric(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
