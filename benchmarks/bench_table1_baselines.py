"""E-T1 — Table 1: Mobile / Thin-client / Multi-Furion at 1 and 2 players.

Regenerates the scaling experiment of §3: the three pre-Coterie designs on
the three headline games.  The shape under test: Mobile is GPU-bound around
~25 FPS regardless of player count; Thin-client is latency-bound in the
40-60 ms range and degrades with players; Multi-Furion hits 60 FPS alone
but loses it at two players as the shared medium saturates.
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.systems import SessionConfig, run_system

GAMES = ("viking", "cts", "racing")
SYSTEMS = ("mobile", "thin_client", "multi_furion")


def _run_all(config):
    rows = []
    for system in SYSTEMS:
        for game in GAMES:
            for players in (1, 2):
                result = run_system(system, game, players, config)
                paper = PAPER["table1"].get((system, game, players))
                player0 = result.players[0]
                rows.append(
                    (
                        system,
                        f"{game} ({players}P)",
                        fmt(result.mean_fps, 0),
                        fmt(paper[0], 0) if paper else "-",
                        fmt(result.mean_inter_frame_ms),
                        fmt(paper[1]) if paper else "-",
                        fmt(player0.metrics.net_delay_ms),
                        fmt(paper[2]) if paper and paper[2] else "-",
                        fmt(player0.metrics.frame_kb, 0),
                        fmt(100 * player0.metrics.cpu_utilization, 0),
                        fmt(100 * player0.metrics.gpu_utilization, 0),
                    )
                )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_baselines(benchmark, session_config):
    rows = once(benchmark, _run_all, session_config)
    report(
        "table1_baselines",
        ["system", "app", "FPS", "paperFPS", "inter ms", "paper",
         "net ms", "paper", "KB", "CPU%", "GPU%"],
        rows,
        notes="Paper columns from Table 1; absolute values are simulator-"
        "calibrated, shapes (Mobile ~25 FPS flat, Multi-Furion 60->sub-60 "
        "at 2P, ~2x net delay at 2P) are the reproduction target.",
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # Mobile: well below 60 FPS and roughly flat from 1P to 2P.
    for game in GAMES:
        fps_1p = float(by_key[("mobile", f"{game} (1P)")][2])
        fps_2p = float(by_key[("mobile", f"{game} (2P)")][2])
        assert fps_1p < 45
        assert abs(fps_1p - fps_2p) < 6
    # Multi-Furion: 60 FPS at 1P; at 2P the net delay roughly doubles and
    # at least the heaviest game loses its 60 FPS.  (Our CTS/racing
    # whole-BE frames compress a bit better than the paper's, so their 2P
    # runs can sit right at the edge; the unambiguous degradation for all
    # games is asserted at 3-4 players in the Fig. 11 bench.)
    degraded = 0
    for game in GAMES:
        assert float(by_key[("multi_furion", f"{game} (1P)")][2]) >= 55
        if float(by_key[("multi_furion", f"{game} (2P)")][2]) <= 58.0:
            degraded += 1
        net_1p = float(by_key[("multi_furion", f"{game} (1P)")][6])
        net_2p = float(by_key[("multi_furion", f"{game} (2P)")][6])
        assert net_2p > 1.4 * net_1p
    assert degraded >= 1, "no game lost 60 FPS at 2 players"
    # Thin-client: slowest of the three.
    for game in GAMES:
        assert float(by_key[("thin_client", f"{game} (1P)")][4]) > 35
