"""E-P1 — offline preprocessing speedup: serial vs parallel vs warm cache.

The workload replays what the benchmark suite actually does to the offline
stage.  One full-fidelity study of a game runs several system variants
(Coterie, Coterie-w/o-cache, the cache-version ablations of Table 5) over
the *same* trajectories, and the seed-era code gave each variant a fresh
in-memory :class:`PanoramaStore` — so the identical far-BE panorama demand
was re-rendered from scratch ``R`` times per study.

Three legs over the same demand stream (one racing drive, ``R`` replays):

* **serial** — the seed behaviour: every replay renders + encodes its own
  panoramas, nothing persists;
* **parallel** — the 4-worker driver pre-renders the demand's union once
  into the content-addressed disk store, then every replay serves from it;
* **warm** — the parallel leg rerun against the already-populated cache
  directory: no panorama is rendered at all.

Wall clocks, speedups, and per-leg ``perf.report()`` profiles land in
``BENCH_preprocess.json`` (repo root, plus ``benchmarks/results/``).

Run standalone with ``python benchmarks/bench_preprocess_speedup.py`` or
under pytest-benchmark via ``pytest benchmarks/bench_preprocess_speedup.py``.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import RESULTS_DIR, fmt, report, run_cost

from repro import perf
from repro.codec import FrameCodec
from repro.core.preprocess import (
    PanoramaStore,
    PreprocessOptions,
    preprocess_game,
)
from repro.render import RenderCostModel
from repro.render.rasterizer import RenderConfig
from repro.systems.base import SessionConfig
from repro.world import load_game

GAME = "racing"  # outdoor (Table 3's headline trio)
SCALE = 0.15
CONFIG = RenderConfig(width=64, height=32)
REPLAYS = 4  # system variants sharing one demand stream (Table 5 runs 5+)
DEMAND_POINTS = 72  # unique far-BE grid points in one drive
WORKERS = 4
SIZE_SAMPLES = 2
SEED = 0


def _demand_stream(world):
    """Grid points a drive along the racing track requests far BE for."""
    seen = []
    for index in range(DEMAND_POINTS * 3):
        arc = index * world.track.length() / (DEMAND_POINTS * 3)
        snapped = world.grid.snap(world.track.point_at(arc))
        if snapped not in seen:
            seen.append(snapped)
        if len(seen) == DEMAND_POINTS:
            break
    return seen


def _replay(world, codec, artifacts, demand):
    """Serve one variant's far-BE demand from a fresh panorama store."""
    store = PanoramaStore(
        world,
        CONFIG,
        codec,
        cutoff_map=artifacts.cutoff_map,
        kind="far",
        eye_height=world.spec.player.eye_height,
        disk_cache=artifacts.disk_cache,
    )
    total_bytes = 0
    for grid_point in demand:
        total_bytes += store.frame_for(grid_point).wire_bytes
    return store.renders, total_bytes


def _leg(world, codec, demand, options):
    """One preprocessing-plus-replays leg; returns its timing record."""
    perf.reset()
    start = time.perf_counter()
    artifacts = preprocess_game(
        world,
        RenderCostModel(SessionConfig().device),
        CONFIG,
        codec,
        seed=SEED,
        size_samples=SIZE_SAMPLES,
        options=options,
    )
    renders = 0
    checksum = 0
    for _ in range(REPLAYS):
        replay_renders, replay_bytes = _replay(world, codec, artifacts, demand)
        renders += replay_renders
        checksum += replay_bytes
    elapsed = time.perf_counter() - start
    return {
        "wall_s": round(elapsed, 3),
        "replay_renders": renders,
        "eager_renders": perf.counter("preprocess.panoramas_rendered"),
        "bytes_served": checksum,
        "stages": {
            name: round(total, 3) for name, total in perf.stage_names().items()
        },
        "profile": perf.report(),
    }


def run_legs():
    """Run all three legs and return (records, speedups)."""
    world = load_game(GAME, scale=SCALE)
    codec = FrameCodec()
    demand = _demand_stream(world)
    with tempfile.TemporaryDirectory() as cache_root:
        cache_dir = str(Path(cache_root) / "panoramas")
        parallel_options = PreprocessOptions(
            workers=WORKERS,
            cache_dir=cache_dir,
            panorama_grid_points=demand,
        )
        legs = {
            "serial": _leg(world, codec, demand, None),
            "parallel": _leg(world, codec, demand, parallel_options),
            "warm": _leg(world, codec, demand, parallel_options),
        }
    serial_s = legs["serial"]["wall_s"]
    speedups = {
        name: round(serial_s / legs[name]["wall_s"], 2)
        for name in ("parallel", "warm")
    }
    # Same demand served in every leg — byte-identical panoramas.
    assert len({leg["bytes_served"] for leg in legs.values()}) == 1
    return legs, speedups, len(demand)


def _record(legs, speedups, demand_size):
    payload = {
        "benchmark": "preprocess_speedup",
        "game": GAME,
        "scale": SCALE,
        "render": [CONFIG.width, CONFIG.height],
        "replays": REPLAYS,
        "workers": WORKERS,
        "demand_points": demand_size,
        "legs": legs,
        "speedup": speedups,
        "cost": run_cost(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    for target in (
        Path(__file__).resolve().parent.parent / "BENCH_preprocess.json",
        RESULTS_DIR / "BENCH_preprocess.json",
    ):
        target.write_text(json.dumps(payload, indent=1))
    rows = [
        (
            name,
            fmt(leg["wall_s"], 2),
            leg["eager_renders"] + leg["replay_renders"],
            fmt(speedups.get(name, 1.0), 2) + "x",
        )
        for name, leg in legs.items()
    ]
    report(
        "BENCH_preprocess_table",
        ("leg", "wall s", "panorama renders", "speedup"),
        rows,
        notes=f"{GAME} @ scale {SCALE}, {demand_size} demand points x "
        f"{REPLAYS} replays, {WORKERS} workers",
    )
    return payload


def main() -> int:
    """Standalone entry point: run, record, and verify the acceptance bar."""
    legs, speedups, demand_size = run_legs()
    _record(legs, speedups, demand_size)
    print(f"\nparallel speedup: {speedups['parallel']}x  "
          f"warm-cache speedup: {speedups['warm']}x")
    ok = speedups["parallel"] >= 2.0 and speedups["warm"] >= 5.0
    print("acceptance:", "PASS" if ok else "FAIL (>=2x parallel, >=5x warm)")
    return 0 if ok else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="preprocess_speedup")
    def test_preprocess_speedup(benchmark):
        """Parallel+cache >= 2x over serial; warm rerun >= 5x."""
        from harness import once

        legs, speedups, demand_size = once(benchmark, run_legs)
        _record(legs, speedups, demand_size)
        assert speedups["parallel"] >= 2.0
        assert speedups["warm"] >= 5.0


if __name__ == "__main__":
    sys.exit(main())
