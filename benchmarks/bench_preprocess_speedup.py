"""E-P1 — offline preprocessing speedup: serial vs parallel vs warm cache.

The workload replays what the benchmark suite actually does to the offline
stage.  One full-fidelity study of a game runs several system variants
(Coterie, Coterie-w/o-cache, the cache-version ablations of Table 5) over
the *same* trajectories, and the seed-era code gave each variant a fresh
in-memory :class:`PanoramaStore` — so the identical far-BE panorama demand
was re-rendered from scratch ``R`` times per study.

Three legs over the same demand stream (one racing drive, ``R`` replays):

* **serial** — the seed behaviour: every replay renders + encodes its own
  panoramas, nothing persists;
* **parallel** — the 4-worker driver pre-renders the demand's union once
  into the content-addressed disk store, then every replay serves from it;
* **warm** — the parallel leg rerun against the already-populated cache
  directory: no panorama is rendered at all.

Wall clocks, speedups, and per-leg ``perf.report()`` profiles land in
``benchmarks/results/BENCH_preprocess.json``.

Run standalone with ``python benchmarks/bench_preprocess_speedup.py``
(add ``--smoke`` for the CI quick mode: fewer demand points and replays,
relaxed speedup gates — byte-identity across legs never relaxes) or
under pytest-benchmark via ``pytest benchmarks/bench_preprocess_speedup.py``.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro import perf
from repro.codec import FrameCodec
from repro.core.preprocess import (
    PanoramaStore,
    PreprocessOptions,
    preprocess_game,
)
from repro.render import RenderCostModel
from repro.render.rasterizer import RenderConfig
from repro.systems.base import SessionConfig
from repro.world import load_game

GAME = "racing"  # outdoor (Table 3's headline trio)
SCALE = 0.15
# Scalar kernels on purpose: this benchmark isolates the *parallel driver
# and disk cache* speedups, so the per-frame render cost must stay heavy
# enough to dominate worker-pool startup (bench_kernels.py owns the
# kernel-mode comparison).
CONFIG = RenderConfig(width=64, height=32, kernels="scalar")
REPLAYS = 4  # system variants sharing one demand stream (Table 5 runs 5+)
DEMAND_POINTS = 72  # unique far-BE grid points in one drive
WORKERS = 4
SIZE_SAMPLES = 2
SEED = 0

# CI quick mode: a shorter drive and fewer replays keep the job under a
# minute; the speedup gates relax accordingly (see GATES).
SMOKE_REPLAYS = 2
SMOKE_DEMAND_POINTS = 48

# Acceptance gates per mode: (min parallel speedup, min warm speedup).
# The smoke workload barely amortises worker-pool startup, so its parallel
# gate only demands "not slower than serial" minus CI scheduling noise;
# the full run keeps the real >=2x / >=5x bar.
GATES = {False: (2.0, 5.0), True: (0.9, 2.0)}


def _demand_stream(world, demand_points):
    """Grid points a drive along the racing track requests far BE for."""
    seen = []
    for index in range(demand_points * 3):
        arc = index * world.track.length() / (demand_points * 3)
        snapped = world.grid.snap(world.track.point_at(arc))
        if snapped not in seen:
            seen.append(snapped)
        if len(seen) == demand_points:
            break
    return seen


def _replay(world, codec, artifacts, demand):
    """Serve one variant's far-BE demand from a fresh panorama store."""
    store = PanoramaStore(
        world,
        CONFIG,
        codec,
        cutoff_map=artifacts.cutoff_map,
        kind="far",
        eye_height=world.spec.player.eye_height,
        disk_cache=artifacts.disk_cache,
    )
    total_bytes = 0
    for grid_point in demand:
        total_bytes += store.frame_for(grid_point).wire_bytes
    return store.renders, total_bytes


def _leg(world, codec, demand, options, replays):
    """One preprocessing-plus-replays leg; returns its timing record."""
    perf.reset()
    start = time.perf_counter()
    artifacts = preprocess_game(
        world,
        RenderCostModel(SessionConfig().device),
        CONFIG,
        codec,
        seed=SEED,
        size_samples=SIZE_SAMPLES,
        options=options,
    )
    renders = 0
    checksum = 0
    for _ in range(replays):
        replay_renders, replay_bytes = _replay(world, codec, artifacts, demand)
        renders += replay_renders
        checksum += replay_bytes
    elapsed = time.perf_counter() - start
    return {
        "wall_s": round(elapsed, 3),
        "replay_renders": renders,
        "eager_renders": perf.counter("preprocess.panoramas_rendered"),
        "bytes_served": checksum,
        "stages": {
            name: round(total, 3) for name, total in perf.stage_names().items()
        },
        "profile": perf.report(),
    }


def run_legs(smoke: bool = False):
    """Run all three legs and return (records, speedups, demand size)."""
    world = load_game(GAME, scale=SCALE)
    codec = FrameCodec()
    demand_points = SMOKE_DEMAND_POINTS if smoke else DEMAND_POINTS
    replays = SMOKE_REPLAYS if smoke else REPLAYS
    demand = _demand_stream(world, demand_points)
    with tempfile.TemporaryDirectory() as cache_root:
        cache_dir = str(Path(cache_root) / "panoramas")
        parallel_options = PreprocessOptions(
            workers=WORKERS,
            cache_dir=cache_dir,
            panorama_grid_points=demand,
        )
        legs = {
            "serial": _leg(world, codec, demand, None, replays),
            "parallel": _leg(world, codec, demand, parallel_options, replays),
            "warm": _leg(world, codec, demand, parallel_options, replays),
        }
    serial_s = legs["serial"]["wall_s"]
    speedups = {
        name: round(serial_s / legs[name]["wall_s"], 2)
        for name in ("parallel", "warm")
    }
    # Same demand served in every leg — byte-identical panoramas.
    assert len({leg["bytes_served"] for leg in legs.values()}) == 1
    return legs, speedups, len(demand)


def _record(legs, speedups, demand_size, smoke=False):
    replays = SMOKE_REPLAYS if smoke else REPLAYS
    payload = {
        "benchmark": "preprocess_speedup",
        "game": GAME,
        "scale": SCALE,
        "render": [CONFIG.width, CONFIG.height],
        "replays": replays,
        "workers": WORKERS,
        "demand_points": demand_size,
        "smoke": smoke,
        "legs": legs,
        "speedup": speedups,
        "cost": run_cost(),
    }
    write_bench("BENCH_preprocess.json", payload)
    rows = [
        (
            name,
            fmt(leg["wall_s"], 2),
            leg["eager_renders"] + leg["replay_renders"],
            fmt(speedups.get(name, 1.0), 2) + "x",
        )
        for name, leg in legs.items()
    ]
    report(
        "BENCH_preprocess_table",
        ("leg", "wall s", "panorama renders", "speedup"),
        rows,
        notes=f"{GAME} @ scale {SCALE}, {demand_size} demand points x "
        f"{replays} replays, {WORKERS} workers",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: run, record, and verify the acceptance bar."""
    smoke = "--smoke" in (sys.argv[1:] if argv is None else argv)
    legs, speedups, demand_size = run_legs(smoke=smoke)
    _record(legs, speedups, demand_size, smoke=smoke)
    min_parallel, min_warm = GATES[smoke]
    print(f"\nparallel speedup: {speedups['parallel']}x  "
          f"warm-cache speedup: {speedups['warm']}x")
    ok = speedups["parallel"] >= min_parallel and speedups["warm"] >= min_warm
    print("acceptance:", "PASS" if ok else
          f"FAIL (>={min_parallel}x parallel, >={min_warm}x warm)")
    return 0 if ok else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="preprocess_speedup")
    def test_preprocess_speedup(benchmark):
        """Parallel+cache >= 2x over serial; warm rerun >= 5x."""
        from harness import once

        legs, speedups, demand_size = once(benchmark, run_legs)
        _record(legs, speedups, demand_size)
        assert speedups["parallel"] >= 2.0
        assert speedups["warm"] >= 5.0


if __name__ == "__main__":
    sys.exit(main())
