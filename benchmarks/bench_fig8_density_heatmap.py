"""E-F8 — Figure 8: cutoff radius vs. triangle density (Viking Village).

The paper's heatmap over 420 leaf regions shows a clear negative
correlation: the denser the region (triangles per square metre), the
smaller the generated cutoff radius.  We regenerate the scatter from the
actual quadtree leaves and test the correlation.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import fmt, once, report
from repro.core import build_cutoff_map, measure_fi_budget
from repro.metrics import histogram
from repro.render import PIXEL2, RenderCostModel
from repro.world import load_game


def _collect():
    world = load_game("viking")
    model = RenderCostModel(PIXEL2)
    budget = measure_fi_budget(model, world.spec.fi_triangles)
    cutoff_map = build_cutoff_map(world.scene, model, budget, seed=3)
    densities = []
    radii = []
    for leaf in cutoff_map.tree.leaves():
        center = leaf.region.center
        densities.append(world.scene.triangle_density(center, probe_radius=8.0))
        radii.append(leaf.payload.cutoff_radius)
    return np.array(densities), np.array(radii)


@pytest.mark.benchmark(group="fig8")
def test_fig8_radius_vs_density(benchmark):
    densities, radii = once(benchmark, _collect)
    # Bucket like the paper's heatmap: median density per radius band.
    bands = [(0, 8), (8, 16), (16, 32), (32, 64), (64, 181)]
    rows = []
    for lo, hi in bands:
        mask = (radii >= lo) & (radii < hi)
        if not mask.any():
            rows.append((f"{lo}-{hi} m", 0, "-"))
            continue
        rows.append(
            (
                f"{lo}-{hi} m",
                int(mask.sum()),
                fmt(float(np.median(densities[mask])), 0),
            )
        )
    corr = float(np.corrcoef(np.log1p(densities), radii)[0, 1])
    report(
        "fig8_density_heatmap",
        ["cutoff band", "leaves", "median tri/m^2"],
        rows,
        notes=f"Viking Village leaves; corr(log density, radius) = {corr:.2f} "
        "(paper: clear negative correlation).",
    )
    assert corr < -0.4, "density-radius correlation too weak"
    # The densest decile of leaves has clearly smaller radii than the
    # sparsest decile.
    dense_r = radii[densities >= np.percentile(densities, 90)]
    sparse_r = radii[densities <= np.percentile(densities, 10)]
    assert np.median(dense_r) < np.median(sparse_r)
