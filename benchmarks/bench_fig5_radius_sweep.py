"""E-F5 — Figure 5: adjacent far-BE SSIM vs. cutoff radius.

At four randomly sampled Viking Village locations, sweep the near/far
cutoff radius and measure the SSIM between the far-BE frames of two
adjacent viewpoints.  The paper's curve rises quickly and monotonically:
from 0.63-0.83 at radius 0 to above 0.9 by ~4 m.
"""

from __future__ import annotations

import numpy as np
import pytest

from ascii_plot import ascii_series
from harness import fmt, once, report
from repro.geometry import Vec2
from repro.render import RenderConfig
from repro.render.splitter import eye_at, render_far_be
from repro.similarity import ssim
from repro.world import load_game

CFG = RenderConfig()
RADII = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
STEP_M = 0.25  # adjacent viewpoints


def _sweep():
    world = load_game("viking")
    rng = np.random.default_rng(17)
    locations = []
    while len(locations) < 4:
        p = world.bounds.sample(rng, 1)[0]
        # Like the paper's example spots, pick locations with near content.
        if world.scene.objects_within(p, 3.0):
            locations.append(p)
    curves = []
    for p in locations:
        eye_a = eye_at(world.scene, p, 1.7)
        eye_b = eye_at(world.scene, Vec2(p.x + STEP_M, p.y), 1.7)
        curve = []
        for radius in RADII:
            a = render_far_be(world.scene, eye_a, CFG, radius).image
            b = render_far_be(world.scene, eye_b, CFG, radius).image
            curve.append(ssim(a, b))
        curves.append((p, curve))
    return curves


@pytest.mark.benchmark(group="fig5")
def test_fig5_similarity_vs_cutoff(benchmark):
    curves = once(benchmark, _sweep)
    rows = [
        (f"({p.x:.0f},{p.y:.0f})", *[fmt(v, 3) for v in curve])
        for p, curve in curves
    ]
    plot = ascii_series(
        {
            f"({p.x:.0f},{p.y:.0f})": list(zip(RADII, curve))
            for p, curve in curves
        },
        x_label="cutoff radius (m)",
        y_label="adjacent far-BE SSIM",
    )
    report(
        "fig5_radius_sweep",
        ["location"] + [f"r={r:g}m" for r in RADII],
        rows,
        notes="Adjacent far-BE SSIM vs cutoff radius at 4 sampled Viking "
        "locations (paper: 0.63-0.83 at r=0, >0.9 by r~4 m, monotone).\n" + plot,
    )
    for _, curve in curves:
        # Rises overall and ends high.
        assert curve[-1] > curve[0]
        assert curve[-1] > 0.9
        # Largely monotone: allow small local dips from texture noise.
        dips = sum(1 for a, b in zip(curve, curve[1:]) if b < a - 0.02)
        assert dips <= 1
