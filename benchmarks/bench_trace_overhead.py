"""E-T1 — tracer overhead: tracing must observe the run, not slow it.

The telemetry design promises two things (DESIGN.md §8): a traced run is
*bit-identical* to an untraced one — spans are stamped retroactively in
sim time, never scheduled — and the cost of carrying a live
:class:`~repro.telemetry.SpanTracer` through a full online run stays
under 5% of wall time.  This benchmark pins both on a 2-player faulted
Coterie run:

* **overhead** — min-of-repeats wall time with tracing off vs. on; the
  ratio must stay under :data:`MAX_OVERHEAD`;
* **fidelity** — the traced run's per-player metrics must equal the
  untraced run's exactly (no perturbation), the Chrome export must
  validate against the trace-event schema with >= 4 stage lanes per
  player, and every frame's budget attribution must sum to its display
  interval within 1%.

Results land in ``benchmarks/results/BENCH_trace.json``.  Run
standalone with
``python benchmarks/bench_trace_overhead.py`` (add ``--smoke`` for the
CI quick mode: shorter run, fewer repeats, relaxed overhead gate — the
fidelity gates never relax).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.faults import FaultSchedule
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.telemetry import (
    FrameBudgetReport,
    SpanTracer,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.world import load_game

GAME = "racing"
SEED = 1
PLAYERS = 2
FAULT_SPEC = "dip@1000-2500:0.05,stall@500-700:20"

DURATION_S = 4.0
REPEATS = 5
MAX_OVERHEAD = 0.05  # traced wall time may exceed untraced by <= 5%

SMOKE_DURATION_S = 2.0
SMOKE_REPEATS = 2
# One-shot CI runners are noisy; the smoke gate only catches disasters
# (e.g. tracing accidentally scheduling events).  The 5% bar is enforced
# by the full run.
SMOKE_MAX_OVERHEAD = 0.50

MIN_STAGE_LANES = 4  # distinct per-player stage lanes the trace must show
MAX_RESIDUAL_FRACTION = 0.01  # per-frame attribution must sum within 1%


def _config(duration_s, tracer):
    return SessionConfig(
        duration_s=duration_s, seed=SEED, tracer=tracer,
        faults=FaultSchedule.parse(FAULT_SPEC),
    )


def _metrics_key(result):
    """Everything that must match bit-for-bit between traced/untraced."""
    return (
        [p.metrics for p in result.players],
        result.be_mbps,
        result.fi_kbps,
    )


def _timed_runs(world, artifacts, duration_s, repeats):
    """Min-of-repeats wall time for the untraced and traced variants.

    The two variants alternate (cold-cache and thermal drift hit both
    equally) and each repeat uses a fresh tracer so record-list growth
    never compounds across repeats.
    """
    untraced_s, traced_s = [], []
    baseline = traced = None
    tracer = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        baseline = run_coterie(
            world, PLAYERS, _config(duration_s, None), artifacts
        )
        untraced_s.append(time.perf_counter() - t0)

        tracer = SpanTracer()
        t0 = time.perf_counter()
        traced = run_coterie(
            world, PLAYERS, _config(duration_s, tracer), artifacts
        )
        traced_s.append(time.perf_counter() - t0)
    return min(untraced_s), min(traced_s), baseline, traced, tracer


def run_benchmark(smoke=False):
    """Run both variants; returns the measurement record pieces."""
    duration_s = SMOKE_DURATION_S if smoke else DURATION_S
    repeats = SMOKE_REPEATS if smoke else REPEATS
    world = load_game(GAME)
    artifacts = prepare_artifacts(
        world, SessionConfig(duration_s=duration_s, seed=SEED)
    )
    untraced_s, traced_s, baseline, traced, tracer = _timed_runs(
        world, artifacts, duration_s, repeats
    )
    overhead = (traced_s - untraced_s) / untraced_s
    events = to_chrome_trace(tracer.records)
    budget = FrameBudgetReport.from_records(tracer.records)
    return {
        "smoke": smoke,
        "duration_s": duration_s,
        "repeats": repeats,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead": overhead,
        "records": len(tracer),
        "chrome_events": len(events),
        "frames_attributed": len(budget.frames),
        "max_residual_ms": budget.max_residual_ms(),
        "_baseline": baseline,
        "_traced": traced,
        "_tracer": tracer,
        "_events": events,
        "_budget": budget,
    }


def _acceptance(m):
    """Named gates; the fidelity gates are identical in both modes."""
    tracer, events, budget = m["_tracer"], m["_events"], m["_budget"]
    try:
        validate_chrome_trace(events)
        chrome_valid = True
    except ValueError:
        chrome_valid = False
    lanes_ok = all(
        len(set(tracer.lanes(p)) - {"frame", "wait"}) >= MIN_STAGE_LANES
        for p in range(PLAYERS)
    )
    residual_ok = all(
        abs(f.residual_ms) <= MAX_RESIDUAL_FRACTION * f.interval_ms + 1e-9
        for f in budget.frames
    )
    max_overhead = SMOKE_MAX_OVERHEAD if m["smoke"] else MAX_OVERHEAD
    return {
        "overhead_under_limit": m["overhead"] < max_overhead,
        "traced_metrics_bit_identical": (
            _metrics_key(m["_baseline"]) == _metrics_key(m["_traced"])
        ),
        "chrome_trace_validates": chrome_valid,
        "stage_lanes_per_player": lanes_ok,
        "frames_attributed": m["frames_attributed"] > 0,
        "attribution_sums_within_1pct": residual_ok,
    }


def _record(m, checks):
    payload = {
        "benchmark": "trace_overhead",
        "game": GAME,
        "seed": SEED,
        "players": PLAYERS,
        "fault_spec": FAULT_SPEC,
        **{k: v for k, v in m.items() if not k.startswith("_")},
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_trace.json", payload)
    report(
        "BENCH_trace_table",
        ("mode", "untraced s", "traced s", "overhead", "records", "frames"),
        [(
            "smoke" if m["smoke"] else "full",
            fmt(m["untraced_s"], 3),
            fmt(m["traced_s"], 3),
            f"{100 * m['overhead']:+.1f}%",
            m["records"],
            m["frames_attributed"],
        )],
        notes=f"{GAME}, {PLAYERS} players, {m['duration_s']:g}s faulted run; "
        f"min of {m['repeats']} repeats; "
        f"max attribution residual {m['max_residual_ms']:.2e} ms",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: measure, record, verify the gates."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    m = run_benchmark(smoke=smoke)
    checks = _acceptance(m)
    _record(m, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:32}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="telemetry")
    def test_trace_overhead(benchmark):
        """All tracer-overhead acceptance gates hold."""
        from harness import once

        m = once(benchmark, run_benchmark)
        checks = _acceptance(m)
        _record(m, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
