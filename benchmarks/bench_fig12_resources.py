"""E-F12 — Figure 12: resource usage over a 30-minute session, 1-4 players.

CPU/GPU load stay steady and player-count-independent (Coterie's local
work does not depend on N); power draw sits near 4 W; the SoC temperature
rises gradually but stays under the Pixel 2's 52 C throttle limit, so all
three games sustain 2.5+ hours on battery.
"""

from __future__ import annotations

import pytest

from harness import fmt, once, report
from repro.metrics import (
    PIXEL2_THERMAL_LIMIT_C,
    PowerModel,
    build_timeline,
)
from repro.systems import run_coterie
from repro.world import load_game

GAMES = ("viking", "cts", "racing")
PLAYERS = (1, 2, 3, 4)
SESSION_MINUTES = 30


def _run_all(config, artifacts):
    rows = []
    data = {}
    for game in GAMES:
        world = load_game(game)
        for n in PLAYERS:
            result = run_coterie(world, n, config, artifacts[game])
            player = result.players[0]
            cpu = player.metrics.cpu_utilization
            gpu = player.metrics.gpu_utilization
            net = result.per_player_be_mbps()
            # 30-minute resource trajectory at the measured steady load.
            timeline = build_timeline(
                cpu, gpu, net, duration_s=SESSION_MINUTES * 60.0
            )
            power = timeline.mean_power_w
            life_h = PowerModel().battery_life_hours(power)
            data[(game, n)] = (
                cpu, gpu, power, timeline.peak_temperature_c, life_h
            )
            rows.append(
                (
                    f"{game} ({n}P)",
                    fmt(100 * cpu, 0) + "%",
                    fmt(100 * gpu, 0) + "%",
                    fmt(power, 2) + "W",
                    fmt(timeline.peak_temperature_c) + "C",
                    fmt(life_h) + "h",
                )
            )
    return rows, data


@pytest.mark.benchmark(group="fig12")
def test_fig12_resource_usage(benchmark, session_config, headline_artifacts):
    rows, data = once(benchmark, _run_all, session_config, headline_artifacts)
    report(
        "fig12_resources",
        ["app", "CPU", "GPU", "power", "SoC @30min", "battery life"],
        rows,
        notes="Coterie steady-state resources; paper: <=40% CPU, <=65% GPU, "
        "~4 W, under the 52 C limit, >2.5 h battery. Known deviation: our "
        "cts GPU runs ~85% (densest scene + conservative FI budget floor); "
        "it stays below saturation and flat across player counts.",
    )
    for (game, n), (cpu, gpu, power, temp, life) in data.items():
        assert cpu < 0.40, f"{game} {n}P CPU too high"
        # Paper reports <=65% GPU.  Our simulated cts runs hotter (~85%):
        # its scene is the densest (Table 3) and our conservative FI budget
        # floor keeps the GPU busier per frame.  Still below saturation and
        # steady across player counts, which is the claim Fig. 12 makes.
        assert gpu < 0.90, f"{game} {n}P GPU too high"
        assert 2.5 < power < 5.2, f"{game} {n}P power {power:.2f} W"
        assert temp < PIXEL2_THERMAL_LIMIT_C, f"{game} {n}P would throttle"
        assert life > 2.0, f"{game} {n}P battery life {life:.1f} h"
    # Load independent of player count: compare 1P vs 4P.
    for game in GAMES:
        assert abs(data[(game, 1)][1] - data[(game, 4)][1]) < 0.08  # GPU
        assert abs(data[(game, 1)][0] - data[(game, 4)][0]) < 0.08  # CPU
