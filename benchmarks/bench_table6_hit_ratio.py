"""E-T6 — Table 6: average frame-cache hit ratio, three headline games.

Paper: Viking 80.8 %, Racing 82.3 %, CTS 88.4 % across 4 players — and the
implied 5.2x / 5.6x / 8.6x reductions in far-BE prefetch frequency.
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.systems import run_coterie
from repro.world import load_game

GAMES = ("viking", "racing", "cts")


def _run_all(session_config, headline_artifacts):
    rows = []
    ratios = {}
    for game in GAMES:
        world = load_game(game)
        # A longer horizon than the default so racing laps cover both the
        # forest sections and the open valley (the paper plays 10 minutes).
        from repro.systems import SessionConfig

        config = SessionConfig(
            duration_s=40.0, seed=session_config.seed,
            render_config=session_config.render_config,
        )
        result = run_coterie(
            world, 4, config, headline_artifacts[game], use_cache=True
        )
        ratio = result.mean_cache_hit_ratio
        ratios[game] = ratio
        reduction = 1.0 / (1.0 - ratio) if ratio < 1 else float("inf")
        paper_ratio = PAPER["table6"][game]
        rows.append(
            (
                game,
                fmt(100 * ratio) + "%",
                fmt(paper_ratio) + "%",
                fmt(reduction) + "x",
                {"viking": "5.2x", "racing": "5.6x", "cts": "8.6x"}[game],
            )
        )
    return rows, ratios


@pytest.mark.benchmark(group="table6")
def test_table6_cache_hit_ratio(benchmark, session_config, headline_artifacts):
    rows, ratios = once(benchmark, _run_all, session_config, headline_artifacts)
    report(
        "table6_hit_ratio",
        ["game", "hit ratio", "paper", "prefetch reduction", "paper"],
        rows,
        notes="Average across 4 Coterie players; reduction = 1/(1-hit).",
    )
    for game, ratio in ratios.items():
        assert ratio > 0.6, f"{game} hit ratio below the paper's regime"
        # Prefetch frequency reduced several-fold.
        assert 1.0 / (1.0 - ratio) > 2.5
    # CTS (uniform, heavy world -> big cutoffs) reuses best, as in Table 6.
    assert ratios["cts"] >= max(ratios["viking"], ratios["racing"]) - 0.02
