"""E-T9 — Table 9: network bandwidth for BE frames and FI sync.

Multi-Furion needs ~270-283 Mbps *per player*; Coterie's per-player BE
traffic is 10.6x-25.7x lower and FI sync stays 2-4 orders of magnitude
below BE even at 4 players.
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.systems import SessionConfig, run_coterie, run_multi_furion
from repro.world import load_game

GAMES = ("viking", "cts", "racing")
PLAYERS = (1, 2, 3, 4)


def _run_all(config, artifacts):
    rows = []
    data = {}
    for game in GAMES:
        world = load_game(game)
        furion = run_multi_furion(world, 1, config)
        entries = {"furion_1p": (furion.be_mbps, furion.fi_kbps)}
        for n in PLAYERS:
            result = run_coterie(world, n, config, artifacts[game])
            entries[n] = (result.be_mbps, result.fi_kbps)
        data[game] = entries
        paper = PAPER["table9"][game]
        rows.append(
            (
                game,
                f"{entries['furion_1p'][0]:.0f}/{entries['furion_1p'][1]:.0f} "
                f"({paper['furion_1p'][0]}/{paper['furion_1p'][1]})",
                *[
                    f"{entries[n][0]:.0f}/{entries[n][1]:.0f} "
                    f"({paper['coterie'][n][0]}/{paper['coterie'][n][1]})"
                    for n in PLAYERS
                ],
            )
        )
    return rows, data


@pytest.mark.benchmark(group="table9")
def test_table9_network_bandwidth(benchmark, session_config, headline_artifacts):
    rows, data = once(benchmark, _run_all, session_config, headline_artifacts)
    report(
        "table9_bandwidth",
        ["game", "Furion 1P Mbps/Kbps (paper)"]
        + [f"Coterie {n}P (paper)" for n in PLAYERS],
        rows,
        notes="BE traffic in Mbps / FI sync in Kbps. Paper's headline: "
        "10.6x-25.7x per-player reduction.",
    )
    for game in GAMES:
        entries = data[game]
        furion_per_player = entries["furion_1p"][0]
        coterie_per_player = entries[1][0]
        reduction = furion_per_player / max(coterie_per_player, 1e-9)
        # The headline reduction: roughly an order of magnitude or more.
        assert reduction > 6.0, f"{game}: only {reduction:.1f}x reduction"
        # Coterie BE traffic grows roughly linearly with players...
        assert entries[4][0] > 2.5 * entries[1][0]
        # ...but stays far below the link capacity at 4 players.
        assert entries[4][0] < 180.0
        # FI orders of magnitude below BE.
        assert entries[4][1] < entries[4][0] * 1000.0 / 50.0
        # FI grows superlinearly with players (N^2 fan-out).
        assert entries[4][1] > 3.0 * entries[2][1]
