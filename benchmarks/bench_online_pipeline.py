"""E-K2 — online frame-loop throughput: scalar vs batched kernels.

The online hot path (decode → cache lookup → SSIM → merge → display) runs
once per player per display interval.  This benchmark replays the same
multi-player tick schedule — real trajectory generators over the default
game set, real encoded far-BE panoramas, prerendered near-BE/FI layers —
through :class:`repro.core.online.OnlineFrameLoop` under each kernel
mode and reports:

* **frames/sec and speedups** — online frames processed per wall-clock
  second, per mode;
* **bit-identity** — one SHA-256 over every displayed frame's bytes,
  every SSIM value, and every frame interval must be *equal across all
  modes*, and the session metrics (fetches, cache hits, SSIM values)
  must match exactly;
* **batching counters** — players per batch, stacked decode/SSIM job
  counts, and arena reuse ratios under ``vector+reuse``.

Mode mapping: ``scalar`` is the float64 one-player-at-a-time oracle;
``vector`` runs the stacked float32 kernels with plain allocations;
``vector+reuse`` adds the preallocated :class:`repro.perf.FrameArena`
(zero steady-state per-frame large allocations).

Results land in ``benchmarks/results/BENCH_online.json``.  Run standalone
with ``python benchmarks/bench_online_pipeline.py`` (add ``--smoke`` for
the CI quick mode: one game, fewer ticks, relaxed speedup gate — the
bit-identity gate never relaxes) or via ``pytest``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro import perf
from repro.codec import FrameCodec
from repro.core.online import OnlineFrameLoop, PlayerFrameInput
from repro.core.preprocess import PanoramaStore, preprocess_game
from repro.perf import FrameArena
from repro.render import KERNEL_MODES, RenderCostModel
from repro.render.rasterizer import RenderConfig
from repro.render.splitter import eye_at, reference_frame, render_fi, render_near_be
from repro.systems.base import SessionConfig
from repro.trace import avatars_at, generate_party
from repro.world import load_game

SEED = 0
WIDTH, HEIGHT = 32, 16
N_PLAYERS = 6
SSIM_STRIDE = 1
SSIM_BATCH_TARGET = 54
# Panorama granularity: viewpoints snap to ~3 m cells, so a moving player
# reuses each far-BE frame for a run of ticks (the paper's ~80 % cache hit
# regime) and decodes only when crossing into a new cell.
PANORAMA_CELL_M = 3.0

# The default game set: Table 3's headline trio. (game, scale, ticks)
GAME_SET = (
    ("racing", 0.15, 110),
    ("viking", 0.12, 80),
    ("cts", 0.15, 80),
)
SMOKE_GAME_SET = (("racing", 0.15, 36),)

# Minimum frames/sec speedup of the fully batched mode ("vector+reuse":
# stacked float32 kernels + arena allocator) over the scalar online path.
# The full gate is the acceptance bar; the smoke gate only catches a
# batching regression outright.  "vector" (batched without the arena)
# carries a looser sanity floor — allocation churn costs it ~10 %.
GATES = {False: 2.0, True: 1.2}
VECTOR_GATES = {False: 1.5, True: 1.1}

COUNTER_NAMES = (
    "online.batch_ticks",
    "online.players_per_batch",
    "decode.batched_frames",
    "decode.batches",
    "ssim.batched_pairs",
    "arena.hits",
    "arena.growths",
)


def build_inputs(game_set=GAME_SET, n_players=N_PLAYERS):
    """The shared tick schedule: one list of ticks across all games.

    All frame preparation (panorama render+encode, near-BE/FI layers,
    all-local references) happens here, outside the timed legs — the legs
    measure only the online loop.  Every mode replays the identical
    schedule.
    """
    codec = FrameCodec()
    config = RenderConfig(width=WIDTH, height=HEIGHT)
    ticks = []
    for game, scale, n_ticks in game_set:
        world = load_game(game, scale=scale)
        artifacts = preprocess_game(
            world,
            RenderCostModel(SessionConfig().device),
            config,
            codec,
            seed=SEED,
            size_samples=2,
        )
        store = PanoramaStore(
            world,
            config,
            codec,
            cutoff_map=artifacts.cutoff_map,
            kind="far",
            eye_height=world.spec.player.eye_height,
        )
        duration_s = n_ticks / 60.0 + 0.5
        party = generate_party(world, n_players, duration_s, seed=SEED)
        eye_height = world.spec.player.eye_height
        grid = world.grid
        cell = max(1, int(round(PANORAMA_CELL_M / grid.pitch)))
        for tick_index in range(n_ticks):
            positions = [
                party[p][min(tick_index, len(party[p]) - 1)].position
                for p in range(n_players)
            ]
            tick = []
            for player in range(n_players):
                i, j = grid.snap(positions[player])
                grid_point = (
                    min(int(round(i / cell)) * cell, grid.nx - 1),
                    min(int(round(j / cell)) * cell, grid.ny - 1),
                )
                snapped = world.grid.to_world(grid_point)
                leaf, cutoff = artifacts.cutoff_map.leaf_for(snapped)
                near_ids = world.scene.near_object_ids(
                    snapped, cutoff, min_radius=0.05 * cutoff
                )
                stored = store.frame_for(grid_point)
                eye = eye_at(world.scene, positions[player], eye_height)
                avatars = avatars_at(world, positions, exclude_player=player)
                tick.append(
                    PlayerFrameInput(
                        grid_point=grid_point,
                        position=snapped,
                        leaf=leaf,
                        near_ids=near_ids,
                        dist_thresh=artifacts.dist_thresh_map.threshold_for(
                            snapped
                        ),
                        encoded=stored.encoded,
                        wire_bytes=stored.wire_bytes,
                        near_layer=render_near_be(
                            world.scene, eye, config, cutoff
                        ),
                        fi_layer=render_fi(avatars, eye, config),
                        reference=reference_frame(
                            world.scene, eye, config, avatars=avatars
                        ),
                    )
                )
            ticks.append(tick)
    return ticks


def _mode_leg(loop, mode, repeats=2):
    """Timed passes of the online loop under one kernel mode.

    Each leg runs ``repeats`` times and keeps the best wall time, so the
    first mode doesn't absorb process warmup that later modes skip;
    counters and results come from the final pass.
    """
    batched = mode != "scalar"
    elapsed = None
    for _ in range(repeats):
        perf.reset()
        arena = FrameArena() if mode == "vector+reuse" else None
        start = time.perf_counter()
        result = loop.run(batched=batched, arena=arena)
        wall = time.perf_counter() - start
        elapsed = wall if elapsed is None else min(elapsed, wall)
    counters = {
        name: perf.counter(name) for name in COUNTER_NAMES if perf.counter(name)
    }
    record = {
        "wall_s": round(elapsed, 3),
        "fps": round(result.frames / elapsed, 1),
        "frames": result.frames,
        "fetches": result.fetches,
        "cache_hits": result.cache_hits,
        "mean_ssim": round(
            sum(result.ssim_values) / max(1, len(result.ssim_values)), 6
        ),
        "digest": result.digest,
        "counters": counters,
    }
    if arena is not None:
        record["arena_reuse_ratio"] = round(arena.reuse_ratio, 4)
        record["arena_pooled_mb"] = round(arena.pooled_bytes / 1e6, 2)
    return record, result


def run_modes(smoke: bool = False):
    """All kernel modes over the shared schedule; returns (legs, speedups).

    Asserts the bit-identity invariant: every mode must produce the same
    displayed bytes, SSIM values, intervals, and session metrics.
    """
    game_set = SMOKE_GAME_SET if smoke else GAME_SET
    loop = OnlineFrameLoop(
        ticks=build_inputs(game_set),
        ssim_stride=SSIM_STRIDE,
        ssim_batch_target=SSIM_BATCH_TARGET,
    )
    legs = {}
    metrics = {}
    for mode in KERNEL_MODES:
        legs[mode], result = _mode_leg(loop, mode)
        metrics[mode] = result.metrics()
    digests = {leg["digest"] for leg in legs.values()}
    assert len(digests) == 1, f"kernel modes diverged: {digests}"
    scalar_metrics = metrics["scalar"]
    for mode in KERNEL_MODES:
        assert metrics[mode] == scalar_metrics, f"{mode} metrics diverged"
    speedups = {
        mode: round(legs["scalar"]["wall_s"] / legs[mode]["wall_s"], 2)
        for mode in ("vector", "vector+reuse")
    }
    return legs, speedups


def _record(legs, speedups, smoke=False):
    game_set = SMOKE_GAME_SET if smoke else GAME_SET
    payload = {
        "benchmark": "online_pipeline",
        "games": [
            {"game": g, "scale": s, "ticks": t} for g, s, t in game_set
        ],
        "render": [WIDTH, HEIGHT],
        "players": N_PLAYERS,
        "ssim_stride": SSIM_STRIDE,
        "ssim_batch_target": SSIM_BATCH_TARGET,
        "seed": SEED,
        "smoke": smoke,
        "bit_identical": True,  # run_modes asserts it before we get here
        "legs": legs,
        "speedup": speedups,
        "cost": run_cost(),
    }
    write_bench("BENCH_online.json", payload)
    rows = [
        (
            mode,
            fmt(leg["wall_s"], 2),
            fmt(leg["fps"], 0),
            fmt(speedups.get(mode, 1.0), 2) + "x",
            fmt(100 * leg.get("arena_reuse_ratio", 0.0), 1) + "%",
        )
        for mode, leg in legs.items()
    ]
    report(
        "BENCH_online_table",
        ("mode", "wall s", "frames/s", "speedup", "arena reuse"),
        rows,
        notes=f"{len(game_set)} game(s) @ {WIDTH}x{HEIGHT}, "
        f"{N_PLAYERS} players; identical digests and metrics across modes",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: run, record, and verify the acceptance bar."""
    smoke = "--smoke" in (sys.argv[1:] if argv is None else argv)
    legs, speedups = run_modes(smoke=smoke)
    _record(legs, speedups, smoke=smoke)
    gate = GATES[smoke]
    vector_gate = VECTOR_GATES[smoke]
    print(f"\nvector speedup: {speedups['vector']}x  "
          f"vector+reuse speedup: {speedups['vector+reuse']}x")
    ok = (
        speedups["vector+reuse"] >= gate
        and speedups["vector"] >= vector_gate
    )
    print(
        "acceptance:",
        "PASS" if ok
        else f"FAIL (>={gate}x vector+reuse, >={vector_gate}x vector)",
    )
    return 0 if ok else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="online")
    def test_online_speedup(benchmark):
        """Batched float32 online loop >= 2x over scalar, bit-identical."""
        from harness import once

        legs, speedups = once(benchmark, run_modes)
        _record(legs, speedups)
        assert speedups["vector+reuse"] >= GATES[False]
        assert speedups["vector"] >= VECTOR_GATES[False]


if __name__ == "__main__":
    sys.exit(main())
