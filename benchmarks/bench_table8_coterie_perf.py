"""E-T8 — Table 8: Coterie's detailed per-player performance (1P and 2P).

FPS, inter-frame latency, CPU/GPU load, far-BE frame size, and network
delay for the three headline games.  The shapes under test: 60 FPS with
sub-16.7 ms intervals at both player counts; GPU usage that does *not*
grow with players; far-BE transfer delay under ~9 ms; frame sizes roughly
half the whole-BE sizes of Table 1.
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.systems import run_coterie
from repro.world import load_game

GAMES = ("viking", "cts", "racing")


def _run_all(config, artifacts):
    rows = []
    results = {}
    for game in GAMES:
        world = load_game(game)
        for players in (1, 2):
            result = run_coterie(world, players, config, artifacts[game])
            player0 = result.players[0]
            paper = PAPER["table8"][(game, players)]
            rows.append(
                (
                    f"{game} ({players}P)",
                    fmt(result.mean_fps, 0),
                    fmt(result.mean_inter_frame_ms),
                    f"{fmt(100 * player0.metrics.cpu_utilization)} ({paper[2]:.0f})",
                    f"{fmt(100 * player0.metrics.gpu_utilization)} ({paper[3]:.0f})",
                    f"{fmt(player0.metrics.frame_kb, 0)} ({paper[4]})",
                    f"{fmt(player0.metrics.net_delay_ms)} ({paper[5]})",
                )
            )
            results[(game, players)] = result
    return rows, results


@pytest.mark.benchmark(group="table8")
def test_table8_coterie_performance(benchmark, session_config, headline_artifacts):
    rows, results = once(benchmark, _run_all, session_config, headline_artifacts)
    report(
        "table8_coterie_perf",
        ["app", "FPS", "inter ms", "CPU% (paper)", "GPU% (paper)",
         "frame KB (paper)", "net ms (paper)"],
        rows,
        notes="Coterie on the three headline games, 1 and 2 players.",
    )
    for (game, players), result in results.items():
        player0 = result.players[0]
        assert result.mean_fps >= 58, f"{game} {players}P below 60 FPS"
        assert result.mean_inter_frame_ms < 17.5
        assert player0.metrics.net_delay_ms < 12.0
        assert player0.metrics.cpu_utilization < 0.40
        assert player0.metrics.gpu_utilization < 0.70
    # GPU load does not grow with the player count (local work is constant).
    for game in GAMES:
        gpu1 = results[(game, 1)].players[0].metrics.gpu_utilization
        gpu2 = results[(game, 2)].players[0].metrics.gpu_utilization
        assert abs(gpu1 - gpu2) < 0.06
