"""E-T10 — Table 10: the user study on frame discontinuity.

The paper replays 6 single-player traces (2 per headline game, 20 s each)
to 12 participants who grade the Coterie-vs-Multi-Furion difference from
1 (very annoying) to 5 (imperceptible); 94.5 % answer 4 or 5.

We replay full-fidelity Coterie runs, record the SSIM across every far-BE
source *switch* (the visible discontinuity events), and feed them to the
participant model.
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.metrics import MOS_LABELS, run_user_study
from repro.systems import SessionConfig, run_coterie
from repro.world import load_game

GAMES = ("viking", "cts", "racing")
TRACE_SECONDS = 10.0
TRACES_PER_GAME = 2


def _collect_traces(base_config, artifacts):
    switch_traces = []
    for game in GAMES:
        world = load_game(game)
        for trace_index in range(TRACES_PER_GAME):
            config = SessionConfig(
                duration_s=TRACE_SECONDS,
                seed=100 + 17 * trace_index,
                render_frames=True,
                render_config=base_config.render_config,
            )
            result = run_coterie(
                world, 1, config, artifacts[game], ssim_stride=10**9
            )
            switches = result.players[0].switch_ssims
            if switches:
                switch_traces.append(switches)
    return switch_traces


def _run_all(base_config, artifacts):
    switch_traces = _collect_traces(base_config, artifacts)
    result = run_user_study(switch_traces, n_participants=12, seed=7)
    rows = [
        (
            score,
            MOS_LABELS[score],
            fmt(result.percentages[score]) + "%",
            fmt(PAPER["table10"][score]) + "%",
        )
        for score in sorted(MOS_LABELS)
    ]
    return rows, result, switch_traces


@pytest.mark.benchmark(group="table10")
def test_table10_user_study(benchmark, session_config, headline_artifacts):
    rows, result, traces = once(
        benchmark, _run_all, session_config, headline_artifacts
    )
    report(
        "table10_user_study",
        ["score", "meaning", "measured", "paper"],
        rows,
        notes=f"12 simulated participants x {len(traces)} replay traces; "
        "grades driven by each trace's worst far-BE switch discontinuity.",
    )
    # The paper's core claim: discontinuity is almost always acceptable.
    acceptable = result.percentages[4] + result.percentages[5]
    assert acceptable > 60.0, f"only {acceptable:.0f}% scored 4-5"
    assert result.percentages[1] < 10.0
    assert result.mean_score > 3.7
