"""Pytest configuration for the benchmark suite.

Adds the benchmarks directory to the import path so every bench module can
``import harness``, and provides session-scoped fixtures for the expensive
shared artifacts (game worlds and offline preprocessing), so regenerating
all tables reuses one preprocessing pass per game.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.systems import SessionConfig, prepare_artifacts
from repro.world import load_game

HEADLINE = ("viking", "cts", "racing")


@pytest.fixture(scope="session")
def session_config():
    """The default emulated-fidelity configuration used across benches."""
    return SessionConfig(duration_s=12.0, seed=7)


@pytest.fixture(scope="session")
def headline_artifacts(session_config):
    """Offline preprocessing for the three §7 evaluation games."""
    return {
        game: prepare_artifacts(load_game(game), session_config)
        for game in HEADLINE
    }
