"""E-F7 — Figure 7: CDF of the leaf regions' cutoff radii, all 9 games.

Paper shapes: most games' radii sit in a narrow small range; DS spreads
half its radii between 10 and 100 m (dense start/finish vs. empty track),
and Racing Mountain spreads all the way to ~180 m (forest sections vs.
open valley).  Indoor radii are the smallest.
"""

from __future__ import annotations

import numpy as np
import pytest

from ascii_plot import ascii_cdf
from harness import fmt, once, report
from repro.core import build_cutoff_map, measure_fi_budget
from repro.render import PIXEL2, RenderCostModel
from repro.similarity import similarity_cdf
from repro.world import ALL_GAMES, INDOOR_GAMES, load_game


def _run_all():
    model = RenderCostModel(PIXEL2)
    rows = []
    radii_by_game = {}
    for game in ALL_GAMES:
        world = load_game(game)
        budget = measure_fi_budget(model, world.spec.fi_triangles)
        reachable = None
        if world.track is not None:
            reachable = lambda p, w=world: w.grid.is_reachable(w.grid.snap(p))
        cutoff_map = build_cutoff_map(
            world.scene, model, budget, reachable=reachable, seed=3
        )
        radii = np.array(cutoff_map.leaf_radii())
        radii_by_game[game] = radii
        rows.append(
            (
                game,
                "indoor" if game in INDOOR_GAMES else "outdoor",
                len(radii),
                fmt(float(np.min(radii))),
                fmt(float(np.percentile(radii, 25))),
                fmt(float(np.median(radii))),
                fmt(float(np.percentile(radii, 75))),
                fmt(float(np.max(radii))),
            )
        )
    return rows, radii_by_game


@pytest.mark.benchmark(group="fig7")
def test_fig7_cutoff_radius_cdf(benchmark):
    rows, radii = once(benchmark, _run_all)
    plot = ascii_cdf(
        {name: radii[name].tolist() for name in ("viking", "racing", "ds", "cts")},
        x_label="cutoff radius (m)",
        x_min=0.0,
        x_max=180.0,
    )
    report(
        "fig7_radius_cdf",
        ["game", "type", "leaves", "min", "p25", "median", "p75", "max"],
        rows,
        notes="Leaf-region cutoff radius distribution (Fig. 7's CDFs, "
        "summarized by quartiles). Paper: Viking 2-28 m, DS half spread "
        "10-100 m, Racing spread 10-180 m, indoor smallest.\n" + plot,
    )
    # Racing games have by far the widest spreads.
    racing_spread = np.percentile(radii["racing"], 90) - np.percentile(radii["racing"], 10)
    viking_spread = np.percentile(radii["viking"], 90) - np.percentile(radii["viking"], 10)
    assert racing_spread > viking_spread
    assert np.max(radii["racing"]) > 120.0
    # Indoor radii are small and tight.
    for game in INDOOR_GAMES:
        assert np.max(radii[game]) < 20.0
    # Every radius is positive and bounded by the search ceiling.
    for game, values in radii.items():
        assert np.all(values >= 0.0)
        assert np.all(values <= 180.0)
