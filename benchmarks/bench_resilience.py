"""E-R1 — resilience sweep: Coterie under lossy links and scripted faults.

The paper evaluates Coterie on a clean 802.11ac link; this benchmark asks
what the graceful-degradation machinery buys when the link is *not* clean.
Three legs, all on the racing game with shared offline artifacts:

* **loss sweep** — bursty (Gilbert-Elliott) packet loss in {0%, 5%, 15%}
  crossed with {1, 2, 4} players.  0% loss must match the clean baseline
  exactly (the impairment path is identity); >=5% loss must finish without
  deadlock, report a nonzero prefetch deadline-miss rate, and keep the
  stale-frame fallback age bounded;
* **outage** — a scripted 5 s link collapse (capacity x0.02 + 20% loss)
  mid-run; clients must ride it out on stale cached panoramas and recover
  to 60 FPS after the link heals, with a measured recovery time;
* **determinism** — the outage leg rerun bit-for-bit: same schedule + seed
  must reproduce identical FPS, traffic, and resilience counters.

Results land in ``benchmarks/results/BENCH_resilience.json``.  Run
standalone with
``python benchmarks/bench_resilience.py`` or under pytest-benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.faults import FaultSchedule
from repro.net import ImpairmentConfig
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game

GAME = "racing"
SEED = 1
SWEEP_DURATION_S = 4.0
LOSS_RATES = (0.0, 0.05, 0.15)
PLAYER_COUNTS = (1, 2, 4)

OUTAGE_DURATION_S = 12.0
OUTAGE_PLAYERS = 4
# 5 s near-total link collapse: capacity x0.02 plus 20% bursty loss.
OUTAGE_SPEC = "dip@3000-8000:0.02,loss@3000-8000:0.2"
OUTAGE_END_MS = 8000.0
MAX_STALE_AGE_MS = 2000.0  # bounded-staleness acceptance ceiling
MAX_RECOVERY_MS = 3000.0  # 60 FPS must return within 3 s of link healing


def _summarize(result):
    """Flatten one run into the record the sweep table needs."""
    metrics = [p.metrics for p in result.players]
    return {
        "fps": round(result.mean_fps, 3),
        "inter_frame_ms": round(result.mean_inter_frame_ms, 3),
        "be_mbps": round(result.be_mbps, 3),
        "deadline_miss_rate": round(
            sum(m.deadline_miss_rate for m in metrics) / len(metrics), 4
        ),
        "stale_frames": sum(m.stale_frames for m in metrics),
        "max_stale_age_ms": round(max(m.max_stale_age_ms for m in metrics), 2),
        "fetch_retries": sum(m.fetch_retries for m in metrics),
        "fetches_abandoned": sum(m.fetches_abandoned for m in metrics),
    }


def _sweep(world, artifacts):
    """Loss-rate x player-count grid, plus matching clean baselines."""
    cells = []
    for players in PLAYER_COUNTS:
        clean = run_coterie(
            world, players,
            SessionConfig(duration_s=SWEEP_DURATION_S, seed=SEED),
            artifacts,
        )
        for loss in LOSS_RATES:
            config = SessionConfig(
                duration_s=SWEEP_DURATION_S, seed=SEED,
                impairment=ImpairmentConfig.bursty(loss, seed=SEED),
            )
            run = run_coterie(world, players, config, artifacts)
            cell = {"players": players, "loss": loss, **_summarize(run)}
            cell["clean_fps"] = round(clean.mean_fps, 3)
            cell["matches_clean"] = (
                run.mean_fps == clean.mean_fps and run.be_mbps == clean.be_mbps
            )
            cells.append(cell)
    return cells


def _outage(world, artifacts):
    """Scripted 5 s link collapse; returns (record, raw results x2)."""
    config = SessionConfig(
        duration_s=OUTAGE_DURATION_S, seed=SEED,
        faults=FaultSchedule.parse(OUTAGE_SPEC),
    )
    first = run_coterie(world, OUTAGE_PLAYERS, config, artifacts)
    second = run_coterie(world, OUTAGE_PLAYERS, config, artifacts)
    recoveries = [p.recovery_ms(OUTAGE_END_MS) for p in first.players]
    record = {
        "spec": OUTAGE_SPEC,
        "players": OUTAGE_PLAYERS,
        "duration_s": OUTAGE_DURATION_S,
        **_summarize(first),
        "recovery_ms": [
            None if r is None else round(r, 2) for r in recoveries
        ],
        "deterministic": (
            first.mean_fps == second.mean_fps
            and first.be_mbps == second.be_mbps
            and _summarize(first) == _summarize(second)
        ),
    }
    return record, recoveries


def run_benchmark():
    """Run all legs; returns (sweep cells, outage record, recoveries)."""
    world = load_game(GAME)
    artifacts = prepare_artifacts(
        world, SessionConfig(duration_s=SWEEP_DURATION_S, seed=SEED)
    )
    cells = _sweep(world, artifacts)
    outage, recoveries = _outage(world, artifacts)
    return cells, outage, recoveries


def _acceptance(cells, outage, recoveries):
    """The ISSUE's acceptance gates; returns a dict of named booleans."""
    zero_loss = [c for c in cells if c["loss"] == 0.0]
    lossy = [c for c in cells if c["loss"] >= 0.05]
    return {
        "zero_loss_matches_clean": all(c["matches_clean"] for c in zero_loss),
        "lossy_runs_complete": all(c["fps"] > 0 for c in lossy),
        "lossy_misses_deadlines": all(
            c["deadline_miss_rate"] > 0 for c in lossy
        ),
        "stale_age_bounded": all(
            c["max_stale_age_ms"] < MAX_STALE_AGE_MS for c in lossy
        ),
        "outage_recovers": all(
            r is not None and r < MAX_RECOVERY_MS for r in recoveries
        ),
        "outage_deterministic": outage["deterministic"],
    }


def _record(cells, outage, checks):
    payload = {
        "benchmark": "resilience",
        "game": GAME,
        "seed": SEED,
        "loss_rates": list(LOSS_RATES),
        "player_counts": list(PLAYER_COUNTS),
        "sweep": cells,
        "outage": outage,
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_resilience.json", payload)
    rows = [
        (
            c["players"],
            f"{100 * c['loss']:g}%",
            fmt(c["fps"]),
            f"{100 * c['deadline_miss_rate']:.1f}%",
            c["stale_frames"],
            fmt(c["max_stale_age_ms"], 0),
            c["fetch_retries"],
        )
        for c in cells
    ]
    recovery = ", ".join(
        "-" if r is None else f"{r:.0f}" for r in outage["recovery_ms"]
    )
    report(
        "BENCH_resilience_table",
        ("players", "loss", "fps", "miss", "stale", "max age ms", "retries"),
        rows,
        notes=f"{GAME}, {SWEEP_DURATION_S:g}s sweep; outage {OUTAGE_SPEC}: "
        f"fps {fmt(outage['fps'])}, recovery [{recovery}] ms",
    )
    return payload


def main() -> int:
    """Standalone entry point: run, record, and verify the acceptance bar."""
    cells, outage, recoveries = run_benchmark()
    checks = _acceptance(cells, outage, recoveries)
    _record(cells, outage, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:28}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="resilience")
    def test_resilience(benchmark):
        """All resilience acceptance gates hold."""
        from harness import once

        cells, outage, recoveries = once(benchmark, run_benchmark)
        checks = _acceptance(cells, outage, recoveries)
        _record(cells, outage, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
