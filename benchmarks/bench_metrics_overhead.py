"""E-T12 — metrics overhead: metering must observe the run, not steer it.

The metrics pipeline makes the same promise the tracer does (DESIGN.md
§12): a metered run is *bit-identical* to an unmetered one — samples are
stamped retroactively on sim-time boundaries, never scheduled — and the
cost of carrying a live :class:`~repro.telemetry.MetricsHub` through a
full online run stays under 5% of wall time.  This benchmark pins both
on a 2-player Coterie run over the cellular capacity trace with a
scripted loss dip, a condition chosen so the deadline-miss SLO *fires*:

* **overhead** — min-of-repeats wall time with metrics off vs. on; the
  ratio must stay under :data:`MAX_OVERHEAD`;
* **fidelity** — the metered run's per-player metrics must equal the
  unmetered run's exactly, the burn-rate alerts must fire (and fire at
  the same sim times on every repeat), the OpenMetrics exposition must
  be well-formed, and the JSONL series dump must round-trip losslessly.

Results land in ``benchmarks/results/BENCH_metrics.json``.  Run
standalone with ``python benchmarks/bench_metrics_overhead.py`` (add
``--smoke`` for the CI quick mode: shorter run, fewer repeats, relaxed
overhead gate — the fidelity gates never relax).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.faults import FaultSchedule
from repro.net import ImpairmentConfig, RateTrace
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.telemetry import (
    MetricsHub,
    SloEngine,
    read_metrics_jsonl,
    to_openmetrics,
    write_metrics_jsonl,
)
from repro.world import load_game

GAME = "racing"
SEED = 1
PLAYERS = 2
TRACE_PROFILE = "cellular"
# The dip sits inside the smoke horizon so the deadline-miss SLO fires
# (rising-edge alerts) in both smoke and full modes.
FAULT_SPEC = "dip@500-1500:0.05"

DURATION_S = 4.0
REPEATS = 5
MAX_OVERHEAD = 0.05  # metered wall time may exceed unmetered by <= 5%

SMOKE_DURATION_S = 2.0
SMOKE_REPEATS = 2
# One-shot CI runners are noisy; the smoke gate only catches disasters
# (e.g. metering accidentally scheduling events).  The 5% bar is
# enforced by the full run.
SMOKE_MAX_OVERHEAD = 0.50

MIN_SERIES = 20  # a metered Coterie run must expose at least this many


def _config(duration_s, hub):
    impairment = ImpairmentConfig(
        rate_trace=RateTrace.named(
            TRACE_PROFILE, seed=SEED, duration_ms=duration_s * 1000.0
        )
    )
    return SessionConfig(
        duration_s=duration_s, seed=SEED, metrics=hub,
        impairment=impairment, faults=FaultSchedule.parse(FAULT_SPEC),
    )


def _metrics_key(result):
    """Everything that must match bit-for-bit between metered/unmetered."""
    return (
        [p.metrics for p in result.players],
        result.be_mbps,
        result.fi_kbps,
    )


def _alert_signature(hub):
    """Deterministic fingerprint of every burn-rate alert firing."""
    results = SloEngine().evaluate(hub.series)
    return tuple(
        (a.slo, round(a.t_ms, 6), a.short_ms, a.long_ms, a.threshold)
        for r in results
        for a in r.alerts
    )


def _timed_runs(world, artifacts, duration_s, repeats):
    """Min-of-repeats wall time for the unmetered and metered variants.

    The two variants alternate (cold-cache and thermal drift hit both
    equally) and each repeat uses a fresh hub so ring growth never
    compounds across repeats.  Every metered repeat's alert signature is
    kept, so the determinism gate sees all of them.
    """
    unmetered_s, metered_s = [], []
    signatures = []
    baseline = metered = hub = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        baseline = run_coterie(
            world, PLAYERS, _config(duration_s, None), artifacts
        )
        unmetered_s.append(time.perf_counter() - t0)

        hub = MetricsHub()
        t0 = time.perf_counter()
        metered = run_coterie(
            world, PLAYERS, _config(duration_s, hub), artifacts
        )
        metered_s.append(time.perf_counter() - t0)
        signatures.append(_alert_signature(hub))
    return min(unmetered_s), min(metered_s), baseline, metered, hub, signatures


def _openmetrics_valid(text):
    """Minimal well-formedness: typed families, EOF terminator."""
    if not text.endswith("# EOF\n"):
        return False
    lines = [ln for ln in text.splitlines() if ln and not ln.startswith("#")]
    if not lines:
        return False
    return all(len(ln.rsplit(" ", 1)) == 2 for ln in lines)


def _dump_round_trips(hub):
    """JSONL dump reads back to exactly the sampled series."""
    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        write_metrics_jsonl(path, hub,
                            slo_results=SloEngine().evaluate(hub.series))
        dump = read_metrics_jsonl(path)
    finally:
        os.unlink(path)
    expected = {
        name: [(round(t, 6), float(v)) for t, v in ring]
        for name, ring in hub.series.items()
    }
    return dump.series == expected and dump.series_types == hub.series_types()


def run_benchmark(smoke=False):
    """Run both variants; returns the measurement record pieces."""
    duration_s = SMOKE_DURATION_S if smoke else DURATION_S
    repeats = SMOKE_REPEATS if smoke else REPEATS
    world = load_game(GAME)
    artifacts = prepare_artifacts(
        world, SessionConfig(duration_s=duration_s, seed=SEED)
    )
    unmetered_s, metered_s, baseline, metered, hub, signatures = _timed_runs(
        world, artifacts, duration_s, repeats
    )
    overhead = (metered_s - unmetered_s) / unmetered_s
    return {
        "smoke": smoke,
        "duration_s": duration_s,
        "repeats": repeats,
        "unmetered_s": unmetered_s,
        "metered_s": metered_s,
        "overhead": overhead,
        "series": len(hub.series),
        "samples": hub.samples_taken,
        "alerts": len(signatures[-1]),
        "_baseline": baseline,
        "_metered": metered,
        "_hub": hub,
        "_signatures": signatures,
    }


def _acceptance(m):
    """Named gates; the fidelity gates are identical in both modes."""
    hub, signatures = m["_hub"], m["_signatures"]
    max_overhead = SMOKE_MAX_OVERHEAD if m["smoke"] else MAX_OVERHEAD
    return {
        "overhead_under_limit": m["overhead"] < max_overhead,
        "metered_metrics_bit_identical": (
            _metrics_key(m["_baseline"]) == _metrics_key(m["_metered"])
        ),
        "series_instrumented": len(hub.series) >= MIN_SERIES,
        "slo_alerts_fired": len(signatures[-1]) >= 1,
        "slo_alerts_deterministic": len(set(signatures)) == 1,
        "openmetrics_exposition_valid": _openmetrics_valid(
            to_openmetrics(hub)
        ),
        "series_dump_round_trips": _dump_round_trips(hub),
    }


def _record(m, checks):
    payload = {
        "benchmark": "metrics_overhead",
        "game": GAME,
        "seed": SEED,
        "players": PLAYERS,
        "trace_profile": TRACE_PROFILE,
        "fault_spec": FAULT_SPEC,
        **{k: v for k, v in m.items() if not k.startswith("_")},
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_metrics.json", payload)
    report(
        "BENCH_metrics_table",
        ("mode", "unmetered s", "metered s", "overhead", "series", "alerts"),
        [(
            "smoke" if m["smoke"] else "full",
            fmt(m["unmetered_s"], 3),
            fmt(m["metered_s"], 3),
            f"{100 * m['overhead']:+.1f}%",
            m["series"],
            m["alerts"],
        )],
        notes=f"{GAME}, {PLAYERS} players, {m['duration_s']:g}s over the "
        f"{TRACE_PROFILE} trace with {FAULT_SPEC}; "
        f"min of {m['repeats']} repeats; {m['samples']} sample boundaries",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: measure, record, verify the gates."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    m = run_benchmark(smoke=smoke)
    checks = _acceptance(m)
    _record(m, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:32}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="telemetry")
    def test_metrics_overhead(benchmark):
        """All metrics-overhead acceptance gates hold."""
        from harness import once

        m = once(benchmark, run_benchmark)
        checks = _acceptance(m)
        _record(m, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
