"""E-F1 — Figure 1: intra-player BE frame similarity, before/after split.

For each of the 9 games, render the panoramic BE frame at consecutive
trajectory viewpoints and measure adjacent-pair SSIM, (a) for the whole BE
and (b) for the far BE behind the adaptive cutoff.  The paper's result:
before decoupling 0-20 % of pairs exceed SSIM 0.9; after decoupling 85-100 %
(outdoor) and 65-90 % (indoor).
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.core import measure_fi_budget, build_cutoff_map
from repro.render import PIXEL2, RenderCostModel, RenderConfig
from repro.render.splitter import eye_at, render_far_be, render_whole_be
from repro.similarity import adjacent_similarities, fraction_above
from repro.trace import generate_trajectory
from repro.world import ALL_GAMES, INDOOR_GAMES, load_game

PAIRS_PER_GAME = 50
CFG = RenderConfig()


def _game_similarity(game: str):
    world = load_game(game)
    model = RenderCostModel(PIXEL2)
    budget = measure_fi_budget(model, world.spec.fi_triangles)
    reachable = None
    if world.track is not None:
        reachable = lambda p: world.grid.is_reachable(world.grid.snap(p))
    cutoff_map = build_cutoff_map(
        world.scene, model, budget, reachable=reachable, seed=3
    )
    trajectory = generate_trajectory(world, duration_s=30, seed=11)
    # "Adjacent" pairs are consecutive frames (= consecutive grid points)
    # along the trace; pair start points are strided so the PAIRS_PER_GAME
    # pairs span the whole trajectory.
    stride = max(1, len(trajectory) // PAIRS_PER_GAME)
    eye_height = world.spec.player.eye_height

    whole_sims = []
    far_sims = []
    for start in list(range(0, len(trajectory) - 1, stride))[:PAIRS_PER_GAME]:
        pair_positions = (
            trajectory[start].position,
            trajectory[start + 1].position,
        )
        whole_pair = []
        far_pair = []
        for position in pair_positions:
            eye = eye_at(world.scene, position, eye_height)
            whole_pair.append(render_whole_be(world.scene, eye, CFG).image)
            cutoff = cutoff_map.cutoff_for(position)
            far_pair.append(render_far_be(world.scene, eye, CFG, cutoff).image)
        whole_sims.append(adjacent_similarities(whole_pair)[0])
        far_sims.append(adjacent_similarities(far_pair)[0])
    return fraction_above(whole_sims), fraction_above(far_sims)


def _run_all():
    rows = []
    results = {}
    for game in ALL_GAMES:
        before, after = _game_similarity(game)
        indoor = game in INDOOR_GAMES
        rows.append(
            (
                game,
                "indoor" if indoor else "outdoor",
                fmt(100 * before, 0) + "%",
                "0-20%",
                fmt(100 * after, 0) + "%",
                "65-90%" if indoor else "85-100%",
            )
        )
        results[game] = (before, after)
    return rows, results


@pytest.mark.benchmark(group="fig1")
def test_fig1_intra_player_similarity(benchmark):
    rows, results = once(benchmark, _run_all)
    report(
        "fig1_intra_similarity",
        ["game", "type", ">0.9 before", "paper", ">0.9 after (far BE)", "paper"],
        rows,
        notes="Fraction of adjacent BE frame pairs with SSIM > 0.9 along a "
        "single-player trajectory, whole BE vs far BE at the adaptive "
        "cutoff (Fig. 1a/1b).",
    )
    lo, hi = PAPER["fig1_before"]
    for game, (before, after) in results.items():
        # Before decoupling: similarity is rare (paper: 0-20 %).
        assert before <= hi + 0.15, f"{game} before-split too similar"
        # After decoupling similarity improves drastically.
        assert after > before, f"{game} split did not improve similarity"
    outdoor_after = [
        after for game, (_, after) in results.items()
        if game not in INDOOR_GAMES
    ]
    assert sum(a > 0.6 for a in outdoor_after) >= 4, "outdoor far-BE gains too weak"
