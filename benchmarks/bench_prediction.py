"""E-R4 — speculative prefetch effectiveness and desync detection.

The speculation subsystem (``repro.predict``) promises three things:

* **effectiveness** — dead-reckoning pose forecasts warm the far-BE
  cache ahead of motion, so the cache hit ratio improves over the
  non-speculative baseline on most trajectory genres (racing/chasing,
  group adventure, competing shooting — the three movement models);
* **safety** — a speculative frame is only displayed after its oracle
  digest check passes; a scripted corruption storm
  (``speccorrupt@a-b``) must be fully absorbed by rollbacks with the
  display cadence intact;
* **sync hygiene** — the cross-peer desync validator raises *zero*
  alarms on clean runs (false alarms would make the detector useless).

Each genre runs twice from the same seed — ``predict=None`` baseline,
then ``PredictConfig()`` with the sync validator attached — plus one
corruption-storm leg on the racing genre.  Results land in
``benchmarks/results/BENCH_prediction.json``.  Run standalone with
``python benchmarks/bench_prediction.py`` (add ``--smoke`` for the CI
quick mode: shorter runs; the safety and false-alarm gates never
relax).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.faults import FaultSchedule
from repro.predict import PredictConfig
from repro.session import SyncConfig
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game

#: One game per trajectory genre (racing/chasing, group adventure,
#: competing shooting) — the movement models speculation must handle.
GAMES = ("racing", "cts", "viking")
SEED = 1
PLAYERS = 2

DURATION_S = 4.0
CORRUPT_FAULTS = "speccorrupt@500-2500"

SMOKE_DURATION_S = 2.0
SMOKE_CORRUPT_FAULTS = "speccorrupt@300-1500"

#: Displayed-cadence band: speculation (and its rollbacks) must not
#: cost frames — each predict run holds its own baseline's frame rate
#: to within this many fps (some genres pace below 60 by design).
FPS_TOLERANCE = 0.1


def _run(world, artifacts, duration_s, predict=None, sync=None, faults=None):
    """One coterie run with the given speculation/sync/fault config."""
    config = SessionConfig(
        duration_s=duration_s, seed=SEED,
        predict=predict, sync=sync, faults=faults,
    )
    return run_coterie(world, PLAYERS, config, artifacts)


def _totals(result):
    """Summed speculation/sync counters across the run's players."""
    metrics = [p.metrics for p in result.players]
    return {
        "spec_predictions": sum(m.spec_predictions for m in metrics),
        "spec_prefetches": sum(m.spec_prefetches for m in metrics),
        "spec_confirms": sum(m.spec_confirms for m in metrics),
        "spec_rollbacks": sum(m.spec_rollbacks for m in metrics),
        "spec_expired": sum(m.spec_expired for m in metrics),
        "spec_mispredictions": sum(m.spec_mispredictions for m in metrics),
        "desync_alarms": sum(m.desync_alarms for m in metrics),
        "resyncs": sum(m.resyncs for m in metrics),
    }


def run_benchmark(smoke=False):
    """Baseline-vs-predict per genre, plus the corruption-storm leg."""
    duration_s = SMOKE_DURATION_S if smoke else DURATION_S
    corrupt_spec = SMOKE_CORRUPT_FAULTS if smoke else CORRUPT_FAULTS
    genres = {}
    clean_alarms = clean_resyncs = 0
    for game in GAMES:
        world = load_game(game)
        artifacts = prepare_artifacts(
            world, SessionConfig(duration_s=duration_s, seed=SEED)
        )
        base = _run(world, artifacts, duration_s)
        spec = _run(world, artifacts, duration_s,
                    predict=PredictConfig(), sync=SyncConfig())
        totals = _totals(spec)
        base_hit = base.mean_cache_hit_ratio
        spec_hit = spec.mean_cache_hit_ratio
        clean_alarms += totals["desync_alarms"]
        clean_resyncs += totals["resyncs"]
        genres[game] = {
            "genre": world.spec.genre,
            "base_hit_ratio": base_hit,
            "predict_hit_ratio": spec_hit,
            "hit_gain": spec_hit - base_hit,
            "improved": spec_hit > base_hit,
            "base_fps": base.mean_fps,
            "predict_fps": spec.mean_fps,
            **totals,
        }

    racing_world = load_game(GAMES[0])
    racing_artifacts = prepare_artifacts(
        racing_world, SessionConfig(duration_s=duration_s, seed=SEED)
    )
    corrupt = _run(
        racing_world, racing_artifacts, duration_s,
        predict=PredictConfig(), sync=SyncConfig(),
        faults=FaultSchedule.parse(corrupt_spec),
    )
    corrupt_totals = _totals(corrupt)
    improved = sum(1 for g in genres.values() if g["improved"])
    return {
        "smoke": smoke,
        "duration_s": duration_s,
        "genres": genres,
        "improvement": {
            "genres_improved": improved,
            "mean_hit_gain": sum(g["hit_gain"] for g in genres.values())
            / len(genres),
        },
        "clean": {
            "desync_alarms": clean_alarms,
            "resyncs": clean_resyncs,
        },
        "corrupt": {
            "faults": corrupt_spec,
            "fps": corrupt.mean_fps,
            "frames": sum(len(p.records) for p in corrupt.players),
            **corrupt_totals,
        },
        "_corrupt_result": corrupt,
    }


def _acceptance(m):
    """Named gates; safety and false-alarm gates never relax in smoke."""
    genres = m["genres"]
    corrupt = m["corrupt"]
    return {
        "hit_ratio_improves_on_majority": (
            m["improvement"]["genres_improved"] >= 2
        ),
        "speculation_active_every_genre": all(
            g["spec_prefetches"] > 0 and g["spec_confirms"] > 0
            for g in genres.values()
        ),
        "clean_zero_false_alarms": (
            m["clean"]["desync_alarms"] == 0 and m["clean"]["resyncs"] == 0
        ),
        "predict_full_rate": all(
            g["predict_fps"] >= g["base_fps"] - FPS_TOLERANCE
            for g in genres.values()
        ),
        "corrupt_rollbacks_detected": corrupt["spec_rollbacks"] >= 1,
        "corrupt_run_recovers": (
            corrupt["fps"] >= genres[GAMES[0]]["base_fps"] - FPS_TOLERANCE
            and corrupt["desync_alarms"] == 0
        ),
    }


def _record(m, checks):
    payload = {
        "benchmark": "prediction",
        "seed": SEED,
        "players": PLAYERS,
        **{k: v for k, v in m.items() if not k.startswith("_")},
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_prediction.json", payload)
    rows = [
        (
            game,
            g["genre"],
            f"{100 * g['base_hit_ratio']:.1f}%",
            f"{100 * g['predict_hit_ratio']:.1f}%",
            f"{100 * g['hit_gain']:+.1f}pp",
            g["spec_prefetches"],
            g["spec_confirms"],
        )
        for game, g in m["genres"].items()
    ]
    report(
        "BENCH_prediction_table",
        ("game", "genre", "base hit", "predict hit", "gain",
         "prefetches", "confirms"),
        rows,
        notes=f"{PLAYERS} players, {m['duration_s']:g}s, seed {SEED}; "
        f"{m['improvement']['genres_improved']}/{len(m['genres'])} genres "
        f"improved; clean alarms {m['clean']['desync_alarms']}; corrupt "
        f"storm '{m['corrupt']['faults']}': "
        f"{m['corrupt']['spec_rollbacks']} rollbacks at "
        f"{fmt(m['corrupt']['fps'], 1)} fps",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: measure, record, verify the gates."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    m = run_benchmark(smoke=smoke)
    checks = _acceptance(m)
    _record(m, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:32}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="predict")
    def test_prediction_effectiveness(benchmark):
        """All speculation-effectiveness and desync gates hold."""
        from harness import once

        m = once(benchmark, run_benchmark)
        checks = _acceptance(m)
        _record(m, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
