"""E-F11 — Figure 11: FPS vs. number of players, four system variants.

Multi-Furion (with or without its useless exact-match cache) degrades
toward ~24 FPS at 4 players; Coterie without its cache degrades more
slowly (far-BE frames are 2-3x smaller); Coterie with the cache holds
60 FPS through 4 players.
"""

from __future__ import annotations

import pytest

from harness import PAPER, fmt, once, report
from repro.systems import SessionConfig, run_system

GAMES = ("viking", "cts", "racing")
VARIANTS = ("multi_furion", "multi_furion_cache", "coterie_nocache", "coterie")
PLAYERS = (1, 2, 3, 4)


def _run_all(config):
    fps = {}
    for game in GAMES:
        for variant in VARIANTS:
            for n in PLAYERS:
                result = run_system(variant, game, n, config)
                fps[(game, variant, n)] = result.mean_fps
    return fps


@pytest.mark.benchmark(group="fig11")
def test_fig11_scalability(benchmark, session_config):
    fps = once(benchmark, _run_all, session_config)
    for game in GAMES:
        rows = [
            (variant, *[fmt(fps[(game, variant, n)]) for n in PLAYERS])
            for variant in VARIANTS
        ]
        report(
            f"fig11_scalability_{game}",
            ["variant"] + [f"{n}P" for n in PLAYERS],
            rows,
            notes="FPS vs player count (paper Fig. 11: Multi-Furion decays "
            "to ~24 FPS at 4P, Coterie holds 60).",
        )
    for game in GAMES:
        # Everyone does 60 at one player (network unconstrained).
        for variant in VARIANTS:
            assert fps[(game, variant, 1)] > 55
        # Multi-Furion decays with players; its exact cache doesn't help.
        assert fps[(game, "multi_furion", 4)] < PAPER["fig11_furion_4p_max"] + 8
        assert fps[(game, "multi_furion", 4)] < fps[(game, "multi_furion", 2)]
        assert abs(
            fps[(game, "multi_furion_cache", 4)] - fps[(game, "multi_furion", 4)]
        ) < 6
        # Coterie w/o cache sits between Furion and full Coterie.
        assert fps[(game, "coterie_nocache", 4)] > fps[(game, "multi_furion", 4)]
        # Coterie holds 60 through 4 players.
        assert fps[(game, "coterie", 4)] > PAPER["fig11_coterie_4p_min"]
