"""E-R3 — closed-loop adaptive streaming vs fixed CRF under rate traces.

The adaptation subsystem (``repro.adapt``) claims that, on a link whose
capacity varies over time, a client that *closes the loop* — estimating
delivery rate from its own transfers, stepping a CRF ladder, throttling
the prefetcher, and dropping doomed transfers — misses fewer prefetch
deadlines than a client that streams at a fixed CRF and only reacts
(stale fallbacks, background retries).  This benchmark pins that claim
on the three committed synthetic traces:

* **cellular** — seeded multiplicative random-walk capacity;
* **bufferbloat** — deterministic ramp into a deep trough, then recovery;
* **contention** — a square wave alternating full and quarter capacity.

For every trace both variants run with the *same* (trace, seed, config);
the gates require the adaptive run to be no worse on deadline-miss rate
under every trace, to have actually adapted (ladder steps observed), and
to replay bit-identically.  The full (non-smoke) mode adds a
``render_frames`` leg that scores mean displayed SSIM for both variants
— the CRF ladder only changes wire sizes, so displayed quality must not
collapse (differences come from stale-frame fallbacks, which adaptation
reduces).

Results land in ``benchmarks/results/BENCH_adaptive.json``.  Run
standalone with ``python benchmarks/bench_adaptive.py`` (add ``--smoke``
for the CI quick mode: shorter horizon, no SSIM leg).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt, report, run_cost, write_bench

from repro.adapt import AbrConfig
from repro.net import TRACE_PROFILES, ImpairmentConfig, RateTrace
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game

GAME = "racing"
SEED = 1
PLAYERS = 4

DURATION_S = 8.0
SMOKE_DURATION_S = 3.0

# The SSIM leg really renders/encodes/decodes frames, so it runs shorter
# and with fewer players; displayed SSIM is a per-frame mean, not a
# duration-scaled quantity, so the shorter horizon does not bias it.
SSIM_DURATION_S = 2.0
SSIM_PLAYERS = 2
# The ladder only rescales wire bytes (pixels are not re-encoded per
# rung), so adaptive displayed SSIM may differ from fixed only through
# stale-fallback frames; a collapse beyond this band means the drop or
# throttle policy is showing badly stale panoramas.
SSIM_SLACK = 0.02


def _impairment(trace_name, duration_s):
    return ImpairmentConfig(
        rate_trace=RateTrace.named(
            trace_name, seed=SEED, duration_ms=duration_s * 1000.0
        )
    )


def _config(trace_name, duration_s, adapt, render=False):
    return SessionConfig(
        duration_s=duration_s, seed=SEED, render_frames=render,
        impairment=_impairment(trace_name, duration_s), adapt=adapt,
    )


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _row(result):
    """Per-variant outcomes, averaged (or summed) over players."""
    ms = [p.metrics for p in result.players if p.metrics.frames]
    ssims = [m.mean_ssim for m in ms if m.mean_ssim is not None]
    return {
        "fps": result.mean_fps,
        "deadline_miss_rate": _mean(m.deadline_miss_rate for m in ms),
        "drop_rate": _mean(m.drop_rate for m in ms),
        "stale_frames": sum(m.stale_frames for m in ms),
        "max_stale_age_ms": max(m.max_stale_age_ms for m in ms),
        "abr_steps_down": sum(m.abr_steps_down for m in ms),
        "abr_steps_up": sum(m.abr_steps_up for m in ms),
        "abr_drops": sum(m.abr_drops for m in ms),
        "abr_mean_crf": _mean(m.abr_mean_crf for m in ms),
        "abr_degraded_ms": _mean(m.abr_degraded_ms for m in ms),
        "mean_ssim": _mean(ssims) if ssims else None,
    }


def _metrics_key(result):
    """Everything a replay must reproduce bit-for-bit."""
    return ([p.metrics for p in result.players], result.be_mbps,
            result.fi_kbps)


def run_benchmark(smoke=False):
    """Run fixed vs adaptive Coterie under every trace profile."""
    duration_s = SMOKE_DURATION_S if smoke else DURATION_S
    world = load_game(GAME)
    artifacts = prepare_artifacts(
        world, SessionConfig(duration_s=duration_s, seed=SEED)
    )
    traces = {}
    replay_identical = True
    for name in TRACE_PROFILES:
        fixed = run_coterie(
            world, PLAYERS, _config(name, duration_s, None), artifacts
        )
        adaptive = run_coterie(
            world, PLAYERS, _config(name, duration_s, AbrConfig()), artifacts
        )
        replay = run_coterie(
            world, PLAYERS, _config(name, duration_s, AbrConfig()), artifacts
        )
        replay_identical = replay_identical and (
            _metrics_key(adaptive) == _metrics_key(replay)
        )
        traces[name] = {"fixed": _row(fixed), "adaptive": _row(adaptive)}

    if not smoke:
        render_artifacts = prepare_artifacts(
            world,
            SessionConfig(
                duration_s=SSIM_DURATION_S, seed=SEED, render_frames=True
            ),
        )
        for name in TRACE_PROFILES:
            for variant, adapt in (("fixed", None), ("adaptive", AbrConfig())):
                result = run_coterie(
                    world, SSIM_PLAYERS,
                    _config(name, SSIM_DURATION_S, adapt, render=True),
                    render_artifacts,
                )
                traces[name][variant]["mean_ssim"] = _row(result)["mean_ssim"]

    return {
        "smoke": smoke,
        "duration_s": duration_s,
        "traces": traces,
        "replay_identical": replay_identical,
    }


def _acceptance(m):
    """Named gates; the miss-rate and replay gates never relax."""
    traces = m["traces"]
    checks = {
        f"adaptive_no_worse_on_miss_{name}": (
            traces[name]["adaptive"]["deadline_miss_rate"]
            <= traces[name]["fixed"]["deadline_miss_rate"]
        )
        for name in traces
    }
    checks["ladder_actually_stepped"] = any(
        traces[name]["adaptive"]["abr_steps_down"] > 0 for name in traces
    )
    checks["fixed_never_adapts"] = all(
        traces[name]["fixed"]["abr_steps_down"] == 0
        and traces[name]["fixed"]["drop_rate"] == 0.0
        for name in traces
    )
    checks["replay_bit_identical"] = m["replay_identical"]
    if not m["smoke"]:
        checks["displayed_ssim_holds"] = all(
            traces[name]["adaptive"]["mean_ssim"] is not None
            and traces[name]["fixed"]["mean_ssim"] is not None
            and traces[name]["adaptive"]["mean_ssim"]
            >= traces[name]["fixed"]["mean_ssim"] - SSIM_SLACK
            for name in traces
        )
    return checks


def _record(m, checks):
    payload = {
        "benchmark": "adaptive",
        "game": GAME,
        "seed": SEED,
        "players": PLAYERS,
        **{k: v for k, v in m.items() if not k.startswith("_")},
        "acceptance": checks,
        "cost": run_cost(),
    }
    write_bench("BENCH_adaptive.json", payload)
    rows = []
    for name, pair in m["traces"].items():
        fx, ad = pair["fixed"], pair["adaptive"]
        rows.append((
            name,
            f"{100 * fx['deadline_miss_rate']:.1f}%",
            f"{100 * ad['deadline_miss_rate']:.1f}%",
            f"{100 * ad['drop_rate']:.1f}%",
            f"{ad['abr_steps_down']}/{ad['abr_steps_up']}",
            fmt(ad["abr_mean_crf"], 1),
            fmt(fx["mean_ssim"], 4) if fx["mean_ssim"] is not None else "-",
            fmt(ad["mean_ssim"], 4) if ad["mean_ssim"] is not None else "-",
        ))
    report(
        "BENCH_adaptive_table",
        ("trace", "fixed miss", "adaptive miss", "drops", "steps dn/up",
         "mean CRF", "fixed SSIM", "adaptive SSIM"),
        rows,
        notes=f"{GAME}, {PLAYERS} players, {m['duration_s']:g}s per trace, "
        f"seed {SEED}; adaptive = AbrConfig() defaults; SSIM leg "
        f"{'skipped (smoke)' if m['smoke'] else f'{SSIM_PLAYERS} players, {SSIM_DURATION_S:g}s, render_frames'}",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: measure, record, verify the gates."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    m = run_benchmark(smoke=smoke)
    checks = _acceptance(m)
    _record(m, checks)
    print()
    for name, ok in checks.items():
        print(f"  {name:32}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(checks.values()) else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="adapt")
    def test_adaptive_beats_fixed(benchmark):
        """All adaptive-streaming acceptance gates hold."""
        from harness import once

        m = once(benchmark, run_benchmark)
        checks = _acceptance(m)
        _record(m, checks)
        assert all(checks.values()), checks


if __name__ == "__main__":
    sys.exit(main())
