"""Ablation — the SSIM reuse threshold behind dist_thresh.

The paper adopts 0.90 from Kahawai's human-subject study.  Sweeping the
threshold exposes the quality/bandwidth trade the design sits on: a looser
bar buys longer reuse distances (higher hit ratios, less traffic) at the
cost of visibly staler far BE; a stricter bar does the opposite.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import fmt, once, report
from repro.core import FrameCache, Prefetcher
from repro.core.dist_thresh import DistThreshMap
from repro.render import RenderConfig
from repro.trace import generate_trajectory
from repro.world import load_game

THRESHOLDS = (0.80, 0.90, 0.95)
CFG = RenderConfig()


class _ThresholdedMap(DistThreshMap):
    """DistThreshMap with a configurable SSIM bar."""

    def __init__(self, ssim_bar, **kwargs):
        super().__init__(**kwargs)
        self._ssim_bar = ssim_bar

    def threshold_for(self, point):
        key, cutoff = self.cutoff_map.leaf_for(point)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.core.dist_thresh import measure_dist_thresh
        from repro.geometry import Rect

        region = Rect(*key)
        rng = np.random.default_rng(self.seed ^ hash(key) & 0x7FFFFFFF)
        values = []
        for sample_point in region.sample(rng, self.k_samples):
            clamped = self.scene.bounds.clamp(sample_point)
            values.append(
                measure_dist_thresh(
                    self.scene, self.config, clamped, cutoff, rng,
                    eye_height=self.eye_height, threshold=self._ssim_bar,
                )
            )
        value = min(values)
        self._cache[key] = value
        return value


def _replay(world, artifacts, ssim_bar):
    dist_map = _ThresholdedMap(
        ssim_bar,
        scene=world.scene, config=CFG, cutoff_map=artifacts.cutoff_map,
        k_samples=1, seed=4,
    )
    cache = FrameCache()
    prefetcher = Prefetcher(
        world.scene, world.grid, artifacts.cutoff_map, dist_map, cache
    )
    trajectory = generate_trajectory(world, duration_s=15, seed=29)
    for sample in trajectory.samples:
        decision = prefetcher.plan(sample.position, sample.heading, sample.t_ms)
        if decision.needs_fetch:
            prefetcher.admit(decision, None, 280_000, sample.t_ms)
    mean_thresh = float(np.mean(list(dist_map._cache.values())))
    return cache.stats.hit_ratio, mean_thresh


def _run_all(artifacts):
    world = load_game("viking")
    rows = []
    data = {}
    for bar in THRESHOLDS:
        hit, thresh = _replay(world, artifacts, bar)
        data[bar] = (hit, thresh)
        rows.append(
            (
                fmt(bar, 2),
                fmt(thresh, 2) + " m",
                fmt(100 * hit) + "%",
            )
        )
    return rows, data


@pytest.mark.benchmark(group="ablation")
def test_ablation_ssim_threshold(benchmark, headline_artifacts):
    rows, data = once(benchmark, _run_all, headline_artifacts["viking"])
    report(
        "ablation_ssim_threshold",
        ["SSIM bar", "mean dist_thresh", "cache hit ratio"],
        rows,
        notes="Viking Village, single player. The paper's 0.90 bar sits on "
        "the quality/bandwidth trade; looser bars stretch reuse distances.",
    )
    # Looser quality bar -> longer reuse distances -> more hits.
    assert data[0.80][1] >= data[0.95][1]
    assert data[0.80][0] >= data[0.95][0] - 0.02
    # The paper's operating point still reuses most frames.
    assert data[0.90][0] > 0.5
