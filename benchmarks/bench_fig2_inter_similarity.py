"""E-F2 — Figure 2: inter-player best-case BE similarity, before/after split.

Two players play each game simultaneously in close proximity; for each of
player 1's BE frames we search player 2's frames for the most similar one
(best-case oracle).  Before decoupling the best case is still poor; after
decoupling, outdoor games reach high inter-player similarity while indoor
games stay low (players do not follow each other closely there).
"""

from __future__ import annotations

import pytest

from harness import fmt, once, report
from repro.core import build_cutoff_map, measure_fi_budget
from repro.render import PIXEL2, RenderCostModel, RenderConfig
from repro.render.splitter import eye_at, render_far_be, render_whole_be
from repro.similarity import best_case_similarities, fraction_above
from repro.trace import generate_party
from repro.world import ALL_GAMES, INDOOR_GAMES, load_game

CFG = RenderConfig()
FRAMES_A = 12  # player-1 query frames
FRAMES_B = 60  # player-2 candidate frames


def _frames_along(world, cutoff_map, trajectory, count):
    stride = max(1, len(trajectory) // count)
    whole, far = [], []
    for sample in trajectory.samples[::stride][:count]:
        eye = eye_at(world.scene, sample.position, world.spec.player.eye_height)
        whole.append(render_whole_be(world.scene, eye, CFG).image)
        cutoff = cutoff_map.cutoff_for(sample.position)
        far.append(render_far_be(world.scene, eye, CFG, cutoff).image)
    return whole, far


def _game_inter_similarity(game):
    world = load_game(game)
    model = RenderCostModel(PIXEL2)
    budget = measure_fi_budget(model, world.spec.fi_triangles)
    reachable = None
    if world.track is not None:
        reachable = lambda p: world.grid.is_reachable(world.grid.snap(p))
    cutoff_map = build_cutoff_map(
        world.scene, model, budget, reachable=reachable, seed=3
    )
    # Tight proximity, as in the paper's closely-interacting parties.
    party = generate_party(world, 2, duration_s=25, seed=21, follow_radius=2.0)
    whole_a, far_a = _frames_along(world, cutoff_map, party[0], FRAMES_A)
    whole_b, far_b = _frames_along(world, cutoff_map, party[1], FRAMES_B)
    before = fraction_above(best_case_similarities(whole_a, whole_b))
    after = fraction_above(best_case_similarities(far_a, far_b))
    return before, after


def _run_all():
    rows, results = [], {}
    for game in ALL_GAMES:
        before, after = _game_inter_similarity(game)
        indoor = game in INDOOR_GAMES
        rows.append(
            (
                game,
                "indoor" if indoor else "outdoor",
                fmt(100 * before, 0) + "%",
                "~0%",
                fmt(100 * after, 0) + "%",
                "2-33%" if indoor else "55-100%",
            )
        )
        results[game] = (before, after)
    return rows, results


@pytest.mark.benchmark(group="fig2")
def test_fig2_inter_player_similarity(benchmark):
    rows, results = once(benchmark, _run_all)
    report(
        "fig2_inter_similarity",
        ["game", "type", ">0.9 before", "paper", ">0.9 after (far BE)", "paper"],
        rows,
        notes="Best-case SSIM between two co-playing players' BE frames "
        "(Fig. 2a/2b): the oracle picks player 2's most similar frame for "
        "each of player 1's frames.",
    )
    for game, (before, after) in results.items():
        assert after >= before, f"{game}: split reduced inter-player similarity"
    outdoor_gains = [
        after for game, (_, after) in results.items() if game not in INDOOR_GAMES
    ]
    # Most outdoor games see substantial best-case similarity after split.
    assert sum(a >= 0.5 for a in outdoor_gains) >= 4
