"""E-F3 — Figure 3: the "near-object" effect, demonstrated on one pair.

Two nearby viewpoints in Viking Village: the whole-BE pair scores low SSIM
(the paper's example: 0.67) while the same pair with near objects removed
scores high (0.96).  The effect must emerge from perspective projection,
not from parameter tuning, so this bench also verifies the underlying
angular-displacement asymmetry.
"""

from __future__ import annotations

import math

import pytest

from harness import fmt, once, report
from repro.geometry import Vec2, angular_displacement
from repro.render import RenderConfig
from repro.render.splitter import eye_at, render_far_be, render_whole_be
from repro.similarity import ssim
from repro.world import load_game

CFG = RenderConfig()
STEP_M = 0.3  # "slight displacement of the player location"
CUTOFF_M = 12.0


def _measure():
    world = load_game("viking")
    # A spot in the village with nearby objects.
    best = None
    for x, y in ((60, 60), (90, 70), (40, 80), (110, 60), (70, 90)):
        p = Vec2(float(x), float(y))
        near_objects = world.scene.objects_within(p, 4.0)
        if near_objects and (best is None or len(near_objects) > best[1]):
            best = (p, len(near_objects))
    point = best[0]
    moved = Vec2(point.x + STEP_M, point.y)
    eye_a = eye_at(world.scene, point, 1.7)
    eye_b = eye_at(world.scene, moved, 1.7)

    whole = ssim(
        render_whole_be(world.scene, eye_a, CFG).image,
        render_whole_be(world.scene, eye_b, CFG).image,
    )
    without_near = ssim(
        render_far_be(world.scene, eye_a, CFG, CUTOFF_M).image,
        render_far_be(world.scene, eye_b, CFG, CUTOFF_M).image,
    )
    return whole, without_near


@pytest.mark.benchmark(group="fig3")
def test_fig3_near_object_effect(benchmark):
    whole, without_near = once(benchmark, _measure)
    report(
        "fig3_near_object",
        ["condition", "SSIM", "paper"],
        [
            ("whole BE (with near objects)", fmt(whole, 3), "0.67"),
            (f"near objects removed (cutoff {CUTOFF_M} m)", fmt(without_near, 3), "0.96"),
        ],
        notes=f"Viking Village, {STEP_M} m viewpoint displacement.",
    )
    assert without_near > whole + 0.05
    assert without_near > 0.85

    # The projection law behind the effect: equal displacement moves a
    # near object's image ~20x more than a far object's.
    near_shift = angular_displacement(STEP_M, 2.0)
    far_shift = angular_displacement(STEP_M, 40.0)
    assert near_shift > 15 * far_shift
