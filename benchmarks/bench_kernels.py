"""E-K1 — frame-pipeline kernel speedup: scalar vs vector vs vector+reuse.

The offline stage (§6) is raster-bound: every far-BE panorama, size-model
calibration frame, and dist-thresh probe walks the per-object scanline
loop.  This benchmark runs the same end-to-end preprocessing workload —
``preprocess_game`` plus a far-BE panorama demand stream plus lazy
per-leaf dist-thresh searches — once per kernel mode over the default
game set, and reports:

* **wall clocks and speedups** — end-to-end per mode, plus per-stage
  (raster / encode / dist_thresh) attribution from ``perf.report()``;
* **reuse counters** — dirty-block codec hit ratios
  (``codec.blocks_reused / codec.blocks_total``) and shared-moment SSIM
  row reuse under ``vector+reuse``;
* **bit-identity** — a running SHA-256 over every encoded panorama's
  bytes and every dist-thresh value must be *equal across all three
  modes* (the kernels are drop-in replacements, not approximations).

Results land in ``benchmarks/results/BENCH_kernels.json``.  Run
standalone with ``python benchmarks/bench_kernels.py`` (add ``--smoke``
for the CI quick mode: one game, smaller demand, relaxed speedup gate —
the bit-identity gate never relaxes) or under pytest-benchmark via
``pytest benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import hashlib
import struct
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from harness import fmt, report, run_cost, write_bench

from repro import perf
from repro.codec import FrameCodec
from repro.core.preprocess import PanoramaStore, preprocess_game
from repro.geometry import Vec2
from repro.render import KERNEL_MODES, RenderCostModel
from repro.render.rasterizer import RenderConfig
from repro.systems.base import SessionConfig
from repro.world import load_game

SEED = 0
WIDTH, HEIGHT = 64, 32
SIZE_SAMPLES = 2

# The default game set: Table 3's headline trio, scaled so one mode's leg
# stays in tens-of-seconds territory.  (game, scale, demand, thresh points)
GAME_SET = (
    ("racing", 0.15, 40, 2),
    ("viking", 0.12, 24, 2),
    ("cts", 0.15, 24, 2),
)
SMOKE_GAME_SET = (("racing", 0.15, 10, 1),)

# Minimum end-to-end vector+reuse speedup over scalar per mode.  The full
# gate is the ISSUE's acceptance bar; the smoke gate only catches a
# vectorization regression outright (CI runners are noisy and the smoke
# workload amortizes less fixed cost).
GATES = {False: 2.0, True: 1.2}

# Counters worth carrying into the artifact verbatim.
COUNTER_NAMES = (
    "codec.blocks_total",
    "codec.blocks_recomputed",
    "codec.blocks_reused",
    "codec.ref_hits",
    "codec.ref_misses",
    "ssim.rows_total",
    "ssim.rows_reused",
    "raster.vector.units",
    "raster.vector.buckets",
    "panorama.renders",
    "dist_thresh.probes",
)


def _demand(world, count):
    """A deterministic panorama demand stream for any game.

    Low-discrepancy points over the scene bounds, snapped to the prefetch
    grid and deduplicated — game-agnostic (not every game has a track).
    """
    bounds = world.scene.bounds
    seen = []
    index = 0
    while len(seen) < count and index < count * 8:
        index += 1
        tx = (index * 0.6180339887498949) % 1.0  # golden-ratio sequence
        ty = (index * 0.7548776662466927) % 1.0  # plastic-number sequence
        snapped = world.grid.snap(Vec2(
            bounds.x_min + tx * (bounds.x_max - bounds.x_min),
            bounds.y_min + ty * (bounds.y_max - bounds.y_min),
        ))
        if snapped not in seen:
            seen.append(snapped)
    return seen


def _game_leg(game, scale, demand_n, thresh_n, mode, digest):
    """One game's preprocessing workload under one kernel mode."""
    world = load_game(game, scale=scale)
    config = RenderConfig(width=WIDTH, height=HEIGHT, kernels=mode)
    codec = FrameCodec()
    artifacts = preprocess_game(
        world,
        RenderCostModel(SessionConfig().device),
        config,
        codec,
        seed=SEED,
        size_samples=SIZE_SAMPLES,
    )
    store = PanoramaStore(
        world,
        config,
        codec,
        cutoff_map=artifacts.cutoff_map,
        kind="far",
        eye_height=world.spec.player.eye_height,
    )
    for grid_point in _demand(world, demand_n):
        digest.update(store.frame_for(grid_point).encoded.data)
    rng = np.random.default_rng(SEED)
    for position in world.scene.bounds.sample(rng, thresh_n):
        thresh = artifacts.dist_thresh_map.threshold_for(position)
        digest.update(struct.pack("<d", thresh))


def _mode_leg(mode, game_set):
    """Run the whole game set under one kernel mode; returns its record."""
    perf.reset()
    digest = hashlib.sha256()
    start = time.perf_counter()
    for game, scale, demand_n, thresh_n in game_set:
        _game_leg(game, scale, demand_n, thresh_n, mode, digest)
    elapsed = time.perf_counter() - start
    counters = {
        name: perf.counter(name)
        for name in COUNTER_NAMES
        if perf.counter(name)
    }
    record = {
        "wall_s": round(elapsed, 3),
        "digest": digest.hexdigest(),
        "stages": {
            name: round(total, 3) for name, total in perf.stage_names().items()
        },
        "counters": counters,
        "profile": perf.report(),
    }
    total = counters.get("codec.blocks_total", 0)
    if total:
        record["block_hit_ratio"] = round(
            counters.get("codec.blocks_reused", 0) / total, 4
        )
    rows = counters.get("ssim.rows_total", 0)
    if rows:
        record["ssim_row_reuse"] = round(
            counters.get("ssim.rows_reused", 0) / rows, 4
        )
    return record


def run_modes(smoke: bool = False):
    """All three kernel modes over the game set; returns (legs, speedups).

    Asserts the bit-identity invariant: every mode must produce the same
    encoded panorama bytes and dist-thresh values.
    """
    game_set = SMOKE_GAME_SET if smoke else GAME_SET
    legs = {mode: _mode_leg(mode, game_set) for mode in KERNEL_MODES}
    digests = {leg["digest"] for leg in legs.values()}
    assert len(digests) == 1, f"kernel modes diverged: {digests}"
    scalar = legs["scalar"]
    speedups = {}
    for mode in ("vector", "vector+reuse"):
        speedups[mode] = round(scalar["wall_s"] / legs[mode]["wall_s"], 2)
        stage_speedups = {}
        for stage, scalar_s in scalar["stages"].items():
            mode_s = legs[mode]["stages"].get(stage)
            if mode_s and scalar_s:
                stage_speedups[stage] = round(scalar_s / mode_s, 2)
        legs[mode]["stage_speedups"] = stage_speedups
    return legs, speedups


def _record(legs, speedups, smoke=False):
    game_set = SMOKE_GAME_SET if smoke else GAME_SET
    payload = {
        "benchmark": "kernels",
        "games": [
            {"game": g, "scale": s, "demand": d, "thresh_points": t}
            for g, s, d, t in game_set
        ],
        "render": [WIDTH, HEIGHT],
        "seed": SEED,
        "smoke": smoke,
        "bit_identical": True,  # run_modes asserts it before we get here
        "legs": legs,
        "speedup": speedups,
        "cost": run_cost(),
    }
    write_bench("BENCH_kernels.json", payload)
    rows = []
    for mode, leg in legs.items():
        rows.append((
            mode,
            fmt(leg["wall_s"], 2),
            fmt(leg["stages"].get("raster", 0.0), 2),
            fmt(speedups.get(mode, 1.0), 2) + "x",
            fmt(100 * leg.get("block_hit_ratio", 0.0), 1) + "%",
        ))
    report(
        "BENCH_kernels_table",
        ("mode", "wall s", "raster s", "speedup", "block reuse"),
        rows,
        notes=f"{len(game_set)} game(s) @ {WIDTH}x{HEIGHT}; "
        "identical output digests across modes",
    )
    return payload


def main(argv=None) -> int:
    """Standalone entry point: run, record, and verify the acceptance bar."""
    smoke = "--smoke" in (sys.argv[1:] if argv is None else argv)
    legs, speedups = run_modes(smoke=smoke)
    _record(legs, speedups, smoke=smoke)
    gate = GATES[smoke]
    print(f"\nvector speedup: {speedups['vector']}x  "
          f"vector+reuse speedup: {speedups['vector+reuse']}x")
    ok = speedups["vector+reuse"] >= gate
    print("acceptance:", "PASS" if ok else f"FAIL (>={gate}x vector+reuse)")
    return 0 if ok else 1


try:
    import pytest
except ImportError:  # standalone run without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="kernels")
    def test_kernel_speedup(benchmark):
        """vector+reuse >= 2x over scalar end-to-end, bit-identical."""
        from harness import once

        legs, speedups = once(benchmark, run_modes)
        _record(legs, speedups)
        assert speedups["vector+reuse"] >= GATES[False]


if __name__ == "__main__":
    sys.exit(main())
