"""Ablation — system-level inter-player overhearing (the rejected design).

§4.6 concludes that caching frames overheard from other players adds
almost nothing once a client already reuses its own similar frames
(Table 5: V5 ~ V3), and the final Coterie drops it (also because Android
NICs block promiscuous mode).  This ablation re-validates the decision on
the *full system*: 4 players with and without overhearing.
"""

from __future__ import annotations

import pytest

from harness import fmt, once, report
from repro.systems import SessionConfig, run_coterie
from repro.world import load_game

GAMES = ("viking", "cts")


def _run_all(config, artifacts):
    rows = []
    data = {}
    for game in GAMES:
        world = load_game(game)
        plain = run_coterie(world, 4, config, artifacts[game])
        overhear = run_coterie(world, 4, config, artifacts[game], overhear=True)
        data[game] = (plain, overhear)
        rows.append(
            (
                game,
                fmt(100 * plain.mean_cache_hit_ratio) + "%",
                fmt(100 * overhear.mean_cache_hit_ratio) + "%",
                fmt(plain.be_mbps, 0),
                fmt(overhear.be_mbps, 0),
            )
        )
    return rows, data


@pytest.mark.benchmark(group="ablation")
def test_ablation_overhearing(benchmark, session_config, headline_artifacts):
    rows, data = once(benchmark, _run_all, session_config, headline_artifacts)
    report(
        "ablation_overhearing",
        ["game", "hit (self only)", "hit (+overhear)", "BE Mbps", "BE Mbps (+ovh)"],
        rows,
        notes="4 Coterie players. The paper's rejection of inter-player "
        "reuse: self-similar reuse already reaps most of the benefit.",
    )
    for game, (plain, overhear) in data.items():
        gain = overhear.mean_cache_hit_ratio - plain.mean_cache_hit_ratio
        # Overhearing never hurts and gains only marginally.
        assert gain > -0.05, f"{game}: overhearing lost hits"
        assert gain < 0.15, f"{game}: overhearing gained too much to reject"
        assert plain.mean_fps > 55 and overhear.mean_fps > 55
