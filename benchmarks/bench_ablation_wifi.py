"""Ablation — WiFi capacity: where does each architecture break?

The paper's testbed measures ~500 Mbps of 802.11ac goodput.  Sweeping the
link capacity shows the architectural margins: Multi-Furion needs most of
a 500 Mbps link for a single player, while Coterie's cached prefetching
keeps 4 players comfortable even on a ~100 Mbps link — i.e. Coterie would
survive 802.11n-class networks the prior art cannot use at all.
"""

from __future__ import annotations

import pytest

from harness import fmt, once, report
from repro.systems import SessionConfig, run_coterie, run_multi_furion
from repro.world import load_game

CAPACITIES_MBPS = (100.0, 200.0, 350.0, 500.0)


def _run_all(artifacts):
    world = load_game("viking")
    rows = []
    data = {}
    for capacity in CAPACITIES_MBPS:
        config = SessionConfig(duration_s=8.0, seed=3, wifi_mbps=capacity)
        furion = run_multi_furion(world, 2, config)
        coterie = run_coterie(world, 4, config, artifacts)
        data[capacity] = (furion.mean_fps, coterie.mean_fps)
        rows.append(
            (
                f"{capacity:.0f} Mbps",
                fmt(furion.mean_fps),
                fmt(coterie.mean_fps),
            )
        )
    return rows, data


@pytest.mark.benchmark(group="ablation")
def test_ablation_wifi_capacity(benchmark, headline_artifacts):
    rows, data = once(benchmark, _run_all, headline_artifacts["viking"])
    report(
        "ablation_wifi",
        ["link capacity", "Multi-Furion 2P FPS", "Coterie 4P FPS"],
        rows,
        notes="Viking Village. Coterie's ~10x lower per-player load keeps "
        "4 players viable at under half the 802.11ac operating point.",
    )
    # Coterie tolerates heavy capacity cuts; Multi-Furion does not.
    assert data[200.0][1] > 45.0, "Coterie 4P should survive ~200 Mbps"
    assert data[100.0][0] < 30.0, "Multi-Furion should collapse at 100 Mbps"
    # Even at 100 Mbps, 4 Coterie players beat 2 Multi-Furion players.
    assert data[100.0][1] > 2.0 * data[100.0][0]
    # Both improve monotonically(ish) with capacity.
    furion_series = [data[c][0] for c in CAPACITIES_MBPS]
    assert furion_series[-1] >= furion_series[0]
