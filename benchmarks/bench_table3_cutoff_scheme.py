"""E-T3 — Table 3: game stats and the adaptive cutoff scheme's output.

For each of the 9 games: world dimension, (estimated) reachable grid
points, the quadtree's average/max depth and leaf-region count, and the
modeled offline processing time.  The paper's shapes: larger worlds get
deeper quadtrees; Viking's high density *variation* gives it by far the
most leaf regions despite a modest world; indoor games are smallest on
every column.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import PAPER, fmt, once, report
from repro.core import build_cutoff_map, measure_fi_budget
from repro.render import PIXEL2, RenderCostModel
from repro.world import ALL_GAMES, INDOOR_GAMES, game_spec, load_game


def _run_all():
    model = RenderCostModel(PIXEL2)
    rows = []
    stats = {}
    for game in ALL_GAMES:
        world = load_game(game)
        spec = game_spec(game)
        budget = measure_fi_budget(model, spec.fi_triangles)
        reachable = None
        if world.track is not None:
            reachable = lambda p, w=world: w.grid.is_reachable(w.grid.snap(p))
        cutoff_map = build_cutoff_map(
            world.scene, model, budget, reachable=reachable, seed=3
        )
        tree_stats = cutoff_map.stats()
        grid_points = world.grid_point_count(np.random.default_rng(1))
        hours = cutoff_map.modeled_processing_hours()
        paper = PAPER["table3"][game]
        rows.append(
            (
                game,
                f"{spec.dimensions[0]:g}x{spec.dimensions[1]:g}",
                fmt(grid_points / 1e6, 2) + "M",
                f"{tree_stats.avg_depth:.2f}/{tree_stats.max_depth}",
                f"{paper[1]:.2f}/{paper[2]}",
                tree_stats.leaf_count,
                paper[0],
                fmt(hours, 2),
                fmt(paper[3], 2),
            )
        )
        stats[game] = (tree_stats, grid_points, hours)
    return rows, stats


@pytest.mark.benchmark(group="table3")
def test_table3_adaptive_cutoff_scheme(benchmark):
    rows, stats = once(benchmark, _run_all)
    report(
        "table3_cutoff_scheme",
        ["game", "dim (m)", "grid pts", "depth", "paper", "leaves", "paper",
         "proc h", "paper"],
        rows,
        notes="Adaptive cutoff scheme output per game. Grid points from the "
        "1/32 m lattice with reachability masks; processing hours from the "
        "on-device measurement-time model.",
    )
    # Grid point counts track Table 3's scale (full-area games exact by
    # construction; track games via the reachable fraction).
    expected_m = {"viking": 24.9, "cts": 268.4, "fps": 5.09, "soccer": 14.9,
                  "pool": 0.13, "bowling": 1.43, "corridor": 1.54}
    for game, millions in expected_m.items():
        measured = stats[game][1] / 1e6
        assert 0.5 * millions < measured < 2.0 * millions, game
    # Outdoor quadtrees are deeper and leafier than indoor ones.
    outdoor_leaves = [stats[g][0].leaf_count for g in ALL_GAMES if g not in INDOOR_GAMES]
    indoor_leaves = [stats[g][0].leaf_count for g in INDOOR_GAMES]
    assert min(outdoor_leaves) >= max(indoor_leaves)
    # Offline processing is "at most a few hours" for every game.
    for game in ALL_GAMES:
        assert stats[game][2] < 8.0
