"""Terminal-friendly plots for the figure benchmarks.

The paper's figures are CDFs and line series; these helpers render them as
ASCII so a benchmark run shows the *curve*, not just summary numbers, and
the persisted reports in ``benchmarks/results/`` stay self-contained.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

# Sparklines live with the dashboard machinery (one normalization, one
# glyph ramp); re-exported here so bench scripts keep a single plotting
# import surface.
from repro.telemetry.dashboard import SPARK_LEVELS, sparkline  # noqa: F401


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    x_label: str,
    width: int = 60,
    height: int = 12,
    x_min: float = None,
    x_max: float = None,
) -> str:
    """Render empirical CDFs of several series on one ASCII canvas.

    Each series gets a distinct marker; y runs 0..1 bottom-to-top.
    """
    if not series:
        raise ValueError("series must be non-empty")
    values_all = [v for vs in series.values() for v in vs]
    if not values_all:
        raise ValueError("series contain no values")
    lo = min(values_all) if x_min is None else x_min
    hi = max(values_all) if x_max is None else x_max
    if hi <= lo:
        hi = lo + 1.0
    markers = "*o+x#@%&"
    canvas = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        ordered = sorted(values)
        n = len(ordered)
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            fraction = sum(1 for v in ordered if v <= x) / n
            row = height - 1 - int(round(fraction * (height - 1)))
            if canvas[row][col] == " ":
                canvas[row][col] = marker
    lines = []
    for row_index, row in enumerate(canvas):
        y = 1.0 - row_index / (height - 1)
        lines.append(f"{y:4.1f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<10.3g}{'':^{max(0, width - 20)}}{hi:>10.3g}")
    lines.append(f"      {x_label}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_series(
    series: Dict[str, List[Tuple[float, float]]],
    x_label: str,
    y_label: str,
    width: int = 60,
    height: int = 12,
) -> str:
    """Render (x, y) line series as an ASCII scatter."""
    if not series:
        raise ValueError("series must be non-empty")
    points_all = [p for pts in series.values() for p in pts]
    if not points_all:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points_all]
    ys = [p[1] for p in points_all]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    markers = "*o+x#@%&"
    canvas = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        for x, y in points:
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            canvas[row][col] = marker
    lines = [f"{y_label} (range {y_lo:g}..{y_hi:g})"]
    for row in canvas:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   {x_lo:<10.3g}{'':^{max(0, width - 20)}}{x_hi:>10.3g}")
    lines.append(f"   {x_label}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append("   " + legend)
    return "\n".join(lines)
