"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` under
PEP 517; this shim lets the legacy editable path
(``pip install -e . --no-use-pep517``) work offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
