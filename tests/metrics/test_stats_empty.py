"""Pin the unified empty-input contract of ``repro.metrics.stats``.

Every aggregate in the module raises the same documented
``ValueError("<fn>: empty input sequence")`` on empty input — including
``histogram``, which historically returned all-zero counts and let an
empty series masquerade as a measured one.  These tests pin the message
shape so callers can rely on it, and pin that numpy arrays (whose truth
value is ambiguous under ``if not values``) take the same path as lists.
"""

import numpy as np
import pytest

from repro.metrics.stats import (
    cdf_points,
    histogram,
    mean,
    percentile,
    percentiles,
    tail_summary,
)

CASES = [
    ("mean", lambda v: mean(v)),
    ("percentile", lambda v: percentile(v, 50.0)),
    ("percentiles", lambda v: percentiles(v, (50.0, 95.0))),
    ("tail_summary", lambda v: tail_summary(v)),
    ("cdf_points", lambda v: cdf_points(v)),
    ("histogram", lambda v: histogram(v, [0.0, 1.0])),
]


class TestEmptyInputContract:
    @pytest.mark.parametrize("name,call", CASES, ids=[c[0] for c in CASES])
    def test_empty_list_raises_named_valueerror(self, name, call):
        with pytest.raises(ValueError, match=f"{name}: empty input sequence"):
            call([])

    @pytest.mark.parametrize("name,call", CASES, ids=[c[0] for c in CASES])
    def test_empty_numpy_array_raises_same(self, name, call):
        with pytest.raises(ValueError, match=f"{name}: empty input sequence"):
            call(np.array([]))

    @pytest.mark.parametrize("name,call", CASES, ids=[c[0] for c in CASES])
    def test_singleton_is_accepted(self, name, call):
        call([1.0])  # must not raise

    def test_histogram_no_longer_returns_zero_counts_on_empty(self):
        # The old behavior — silently returning all-zero buckets — must
        # never come back: an empty series is not a measured series.
        with pytest.raises(ValueError):
            histogram([], [0.0, 10.0, 20.0])
