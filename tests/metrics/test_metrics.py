"""Tests for the metrics package: collector, models, MOS study, stats."""

import pytest

from repro.metrics import (
    BATTERY_WH,
    CpuModel,
    FrameRecord,
    MOS_LABELS,
    MetricsCollector,
    PIXEL2_THERMAL_LIMIT_C,
    PowerModel,
    ThermalModel,
    cdf_points,
    histogram,
    mean,
    mos_for_jump,
    percentile,
    run_user_study,
    running_average,
    trace_jumps,
)


def record(t, interval=16.7, render=8.0, resp=15.0, **kw):
    return FrameRecord(
        t_ms=t, interval_ms=interval, render_ms=render, responsiveness_ms=resp, **kw
    )


class TestFrameRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            record(0, interval=0)
        with pytest.raises(ValueError):
            record(0, render=-1)


class TestCollector:
    def test_fps_capped_at_60(self):
        c = MetricsCollector()
        for i in range(10):
            c.add(record(i * 10.0, interval=10.0))
        assert c.fps() == 60.0

    def test_fps_from_intervals(self):
        c = MetricsCollector()
        for i in range(10):
            c.add(record(i * 40.0, interval=40.0))
        assert c.fps() == pytest.approx(25.0)

    def test_empty_collector_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().fps()

    def test_net_delay_only_over_fetching_frames(self):
        c = MetricsCollector()
        c.add(record(0, net_delay_ms=10.0, frame_bytes=100_000))
        c.add(record(17))  # cache hit: no bytes, no net delay
        assert c.net_delay_ms() == pytest.approx(10.0)

    def test_net_delay_zero_without_traffic(self):
        c = MetricsCollector()
        c.add(record(0))
        assert c.net_delay_ms() == 0.0

    def test_frame_kb(self):
        c = MetricsCollector()
        c.add(record(0, frame_bytes=550_000))
        c.add(record(17, frame_bytes=0))
        assert c.mean_frame_kb() == pytest.approx(550.0)

    def test_gpu_utilization(self):
        c = MetricsCollector()
        c.add(record(0, interval=16.0, render=8.0))
        c.add(record(16, interval=16.0, render=4.0))
        assert c.gpu_utilization() == pytest.approx(12.0 / 32.0)

    def test_cache_hit_ratio(self):
        c = MetricsCollector()
        c.add(record(0, cache_hit=True))
        c.add(record(17, cache_hit=True))
        c.add(record(34, cache_hit=False))
        assert c.cache_hit_ratio() == pytest.approx(2 / 3)

    def test_cache_hit_ratio_none_without_cache(self):
        c = MetricsCollector()
        c.add(record(0))
        assert c.cache_hit_ratio() is None

    def test_summary_fields(self):
        c = MetricsCollector()
        c.add(record(0, frame_bytes=100_000, net_delay_ms=5.0, displayed_ssim=0.95))
        s = c.summary(cpu_utilization=0.3)
        assert s.cpu_utilization == 0.3
        assert s.frames == 1
        assert s.mean_ssim == pytest.approx(0.95)


class TestCpuModel:
    def test_mobile_profile(self):
        # Mobile: no net, no decode, no cache -> Table 1's 9-19% range.
        cpu = CpuModel().utilization(gpu_utilization=0.95)
        assert 0.08 < cpu < 0.20

    def test_multi_furion_profile(self):
        # Streaming ~276 Mbps, decoding, light GPU -> Table 1's ~23-33%.
        cpu = CpuModel().utilization(
            gpu_utilization=0.14, net_mbps=276, decoding=True, n_players=2
        )
        assert 0.20 < cpu < 0.35

    def test_coterie_profile(self):
        # Little traffic but cache enabled -> Table 8's ~27-32%.
        cpu = CpuModel().utilization(
            gpu_utilization=0.5,
            net_mbps=26,
            decoding=True,
            cache_enabled=True,
            n_players=2,
        )
        assert 0.22 < cpu < 0.36

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuModel().utilization(gpu_utilization=1.5)
        with pytest.raises(ValueError):
            CpuModel().utilization(0.5, net_mbps=-1)
        with pytest.raises(ValueError):
            CpuModel(game_logic=-0.1)

    def test_caps_at_one(self):
        cpu = CpuModel(per_mbps=1.0).utilization(0.5, net_mbps=500)
        assert cpu == 1.0


class TestPowerModel:
    def test_coterie_draw_near_4w(self):
        # Fig 12: steady ~4 W under Coterie load.
        draw = PowerModel().draw_w(cpu_utilization=0.32, gpu_utilization=0.55, net_mbps=26)
        assert 3.2 < draw < 4.5

    def test_battery_life_exceeds_2_5_hours(self):
        model = PowerModel()
        draw = model.draw_w(0.32, 0.55, 26)
        assert model.battery_life_hours(draw) > 2.5

    def test_monotone_in_load(self):
        m = PowerModel()
        assert m.draw_w(0.9, 0.9, 200) > m.draw_w(0.1, 0.1, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel().draw_w(1.5, 0.5)
        with pytest.raises(ValueError):
            PowerModel().battery_life_hours(0)
        with pytest.raises(ValueError):
            PowerModel(base_w=-1)

    def test_battery_constant(self):
        assert BATTERY_WH == pytest.approx(2.770 * 3.85)


class TestThermalModel:
    def test_rises_toward_steady_state(self):
        model = ThermalModel()
        steady = model.steady_state_c(4.0)
        for _ in range(100):
            model.step(4.0, dt_s=30.0)
        assert model.temperature_c == pytest.approx(steady, abs=0.5)

    def test_stays_under_limit_at_4w(self):
        # Fig 12: SoC temperature stays under the 52 C Pixel 2 limit.
        model = ThermalModel()
        for _ in range(60):  # 30 minutes
            model.step(4.0, dt_s=30.0)
        assert model.temperature_c < PIXEL2_THERMAL_LIMIT_C
        assert not model.throttled()

    def test_gradual_rise(self):
        model = ThermalModel()
        t1 = model.step(4.0, dt_s=30.0)
        t2 = model.step(4.0, dt_s=30.0)
        assert model.ambient_c < t1 < t2

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(tau_s=0)
        with pytest.raises(ValueError):
            ThermalModel().step(4.0, dt_s=0)
        with pytest.raises(ValueError):
            ThermalModel().steady_state_c(-1)


class TestQoe:
    def test_mos_thresholds(self):
        assert mos_for_jump(0.0) == 5
        assert mos_for_jump(0.06) == 4
        assert mos_for_jump(0.12) == 3
        assert mos_for_jump(0.2) == 2
        assert mos_for_jump(0.5) == 1
        with pytest.raises(ValueError):
            mos_for_jump(-0.1)

    def test_trace_jumps(self):
        assert trace_jumps([0.95, 1.0]) == pytest.approx([0.05, 0.0])
        with pytest.raises(ValueError):
            trace_jumps([1.5])

    def test_high_similarity_study_scores_high(self):
        # Six traces whose switches are all SSIM >= 0.985 (Coterie-like).
        traces = [[0.99, 0.988, 0.992] for _ in range(6)]
        result = run_user_study(traces, n_participants=12, seed=1)
        assert result.percentages[5] + result.percentages[4] > 85.0
        assert result.mean_score > 4.2

    def test_low_similarity_study_scores_low(self):
        traces = [[0.7, 0.8] for _ in range(6)]
        result = run_user_study(traces, n_participants=12, seed=1)
        assert result.mean_score < 3.0

    def test_percentages_sum_to_100(self):
        result = run_user_study([[0.95]], n_participants=5, seed=0)
        assert sum(result.percentages.values()) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_user_study([])
        with pytest.raises(ValueError):
            run_user_study([[0.9]], n_participants=0)

    def test_mos_labels_complete(self):
        assert set(MOS_LABELS) == {1, 2, 3, 4, 5}


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 50) == pytest.approx(50.0)
        assert percentile(values, 99) == pytest.approx(99.0)
        with pytest.raises(ValueError):
            percentile(values, 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_points(self):
        pts = cdf_points([3.0, 1.0, 2.0])
        assert pts == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]
        with pytest.raises(ValueError):
            cdf_points([])

    def test_running_average(self):
        out = running_average([2.0, 4.0, 6.0, 8.0], window=2)
        assert out == [2.0, 3.0, 5.0, 7.0]
        with pytest.raises(ValueError):
            running_average([1.0], window=0)

    def test_histogram(self):
        counts = histogram([0.5, 1.5, 1.6, 2.5], edges=[0, 1, 2, 3])
        assert counts == [1, 2, 1]
        with pytest.raises(ValueError):
            histogram([1.0], edges=[0])


class TestResourceTimeline:
    def test_thirty_minute_session_shape(self):
        from repro.metrics import build_timeline

        timeline = build_timeline(cpu=0.30, gpu=0.55, net_mbps=26.0)
        assert timeline.duration_s == pytest.approx(1800.0)
        assert len(timeline.points) == 31
        assert 3.0 < timeline.mean_power_w < 4.8
        assert not timeline.ever_throttled()
        assert not timeline.battery_exhausted()

    def test_temperature_rises_monotonically_from_cold(self):
        from repro.metrics import build_timeline

        timeline = build_timeline(cpu=0.3, gpu=0.6, net_mbps=30.0)
        temps = [p.temperature_c for p in timeline.points]
        assert all(a <= b + 1e-9 for a, b in zip(temps, temps[1:]))

    def test_battery_drains_linearly(self):
        from repro.metrics import build_timeline

        timeline = build_timeline(cpu=0.3, gpu=0.6, net_mbps=30.0)
        fractions = [p.battery_fraction for p in timeline.points]
        assert fractions[0] == 1.0
        assert fractions[-1] < fractions[0]
        drops = [a - b for a, b in zip(fractions, fractions[1:])]
        assert max(drops) - min(drops) < 1e-9  # constant draw

    def test_extreme_load_throttles(self):
        from repro.metrics import build_timeline
        from repro.metrics import PowerModel

        timeline = build_timeline(
            cpu=1.0, gpu=1.0, net_mbps=400.0,
            power_model=PowerModel(gpu_w=4.0),
        )
        assert timeline.ever_throttled()

    def test_validation(self):
        from repro.metrics import build_timeline

        with pytest.raises(ValueError):
            build_timeline(cpu=2.0, gpu=0.5, net_mbps=0)
        with pytest.raises(ValueError):
            build_timeline(cpu=0.5, gpu=0.5, net_mbps=0, duration_s=0)


class TestRecoveryEdgeCases:
    """recovery_ms boundary behavior around window placement."""

    def test_recovery_on_exact_window_tail(self):
        # Exactly `window` healthy frames at the very end of the record
        # stream: the last (and only fitting) window must still count.
        c = MetricsCollector()
        for i in range(5):  # slow frames after the fault
            c.add(record(1000.0 + i * 40.0, interval=40.0))
        base = 1000.0 + 5 * 40.0
        for i in range(10):  # exactly window=10 healthy frames
            c.add(record(base + i * 16.0, interval=16.0))
        got = c.recovery_ms(after_ms=1000.0, window=10)
        assert got is not None
        last_t = base + 9 * 16.0
        assert got == pytest.approx(last_t - 1000.0)

    def test_after_ms_beyond_last_record(self):
        c = MetricsCollector()
        for i in range(40):
            c.add(record(i * 16.0, interval=16.0))
        assert c.recovery_ms(after_ms=10_000.0, window=10) is None

    def test_tail_shorter_than_window(self):
        c = MetricsCollector()
        for i in range(40):
            c.add(record(i * 16.0, interval=16.0))
        # only 5 records at/after after_ms — can't fill a 10-frame window
        assert c.recovery_ms(after_ms=35 * 16.0, window=10) is None

    def test_single_deadline_miss_poisons_window(self):
        c = MetricsCollector()
        for i in range(10):
            c.add(record(
                i * 16.0, interval=16.0, deadline_missed=(i == 4)
            ))
        # Fast intervals throughout, but every 10-frame window contains
        # the one missed frame, so no recovery within these records.
        assert c.recovery_ms(after_ms=0.0, window=10) is None
        # Once windows clear of the miss exist, recovery is found and is
        # the first window NOT containing the missed frame.
        for i in range(10, 20):
            c.add(record(i * 16.0, interval=16.0))
        got = c.recovery_ms(after_ms=0.0, window=10)
        assert got == pytest.approx(14 * 16.0)

    def test_recovery_at_after_ms_clamps_to_zero(self):
        c = MetricsCollector()
        for i in range(10):
            c.add(record(i * 16.0, interval=16.0))
        got = c.recovery_ms(after_ms=9 * 16.0 + 100.0, window=1)
        assert got is None  # nothing at/after after_ms

    def test_validation(self):
        c = MetricsCollector()
        c.add(record(0.0))
        with pytest.raises(ValueError):
            c.recovery_ms(0.0, target_fps=0.0)
        with pytest.raises(ValueError):
            c.recovery_ms(0.0, window=0)


class TestTailLatencies:
    def test_tail_summary_triple(self):
        from repro.metrics import tail_summary

        values = [float(v) for v in range(1, 101)]
        p50, p95, p99 = tail_summary(values)
        assert p50 == pytest.approx(percentile(values, 50))
        assert p95 == pytest.approx(percentile(values, 95))
        assert p99 == pytest.approx(percentile(values, 99))
        assert p50 <= p95 <= p99

    def test_percentiles_batch_matches_single(self):
        from repro.metrics import percentiles

        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        batch = percentiles(values, (10.0, 50.0, 90.0))
        assert batch == pytest.approx(
            [percentile(values, q) for q in (10.0, 50.0, 90.0)]
        )
        with pytest.raises(ValueError):
            percentiles([], (50.0,))
        with pytest.raises(ValueError):
            percentiles(values, (50.0, 101.0))

    def test_summary_fills_tail_fields(self):
        c = MetricsCollector()
        # 99 fast frames and one hitch: mean barely moves, p99 screams.
        for i in range(99):
            c.add(record(i * 16.0, interval=16.0, resp=20.0))
        c.add(record(99 * 16.0 + 84.0, interval=100.0, resp=120.0))
        m = c.summary(cpu_utilization=0.5)
        assert m.p50_inter_frame_ms == pytest.approx(16.0)
        assert m.p95_inter_frame_ms < m.p99_inter_frame_ms
        assert m.p99_inter_frame_ms > 16.0
        assert m.p99_responsiveness_ms > m.p95_responsiveness_ms >= 20.0
        assert m.p99_responsiveness_ms <= 120.0
