"""Tests for movement-trace analysis."""

import pytest

from repro.geometry import Rect, Vec2, WorldGrid
from repro.trace import (
    Trajectory,
    TrajectorySample,
    analyze_trace,
    generate_party,
    generate_trajectory,
    path_overlap,
    prefetch_demand_hz,
)
from repro.world import load_game


def straight_walk(n=61, step=0.05, dt=16.7):
    samples = [
        TrajectorySample(t_ms=i * dt, position=Vec2(i * step, 0.0), heading=0.0)
        for i in range(n)
    ]
    return Trajectory(samples)


class TestAnalyzeTrace:
    def test_straight_walk_statistics(self):
        grid = WorldGrid(Rect(0, 0, 10, 10), pitch=0.1)
        trace = straight_walk()
        stats = analyze_trace(trace, grid)
        assert stats.path_length_m == pytest.approx(3.0)
        assert stats.mean_speed_mps == pytest.approx(3.0, rel=0.05)
        # 0.05 m steps on a 0.1 m grid: a crossing every other step.
        assert stats.grid_crossings == 30
        assert stats.revisit_rate == 0.0

    def test_back_and_forth_revisits(self):
        grid = WorldGrid(Rect(0, 0, 10, 10), pitch=0.1)
        out = [
            TrajectorySample(i * 16.7, Vec2(i * 0.1, 0.0), 0.0) for i in range(10)
        ]
        back = [
            TrajectorySample((10 + i) * 16.7, Vec2((9 - i) * 0.1, 0.0), 0.0)
            for i in range(9)
        ]
        stats = analyze_trace(Trajectory(out + back), grid)
        assert stats.revisit_rate > 0.4

    def test_stationary_trace(self):
        grid = WorldGrid(Rect(0, 0, 10, 10), pitch=0.1)
        samples = [
            TrajectorySample(i * 16.7, Vec2(5.0, 5.0), 0.0) for i in range(10)
        ]
        stats = analyze_trace(Trajectory(samples), grid)
        assert stats.grid_crossings == 0
        assert stats.revisit_rate == 0.0


class TestGameTraces:
    def test_walking_revisit_rate_low(self):
        """The §4.6 claim: players rarely revisit exact grid points."""
        world = load_game("viking")
        trace = generate_trajectory(world, duration_s=15, seed=3)
        stats = analyze_trace(trace, world.grid)
        assert stats.revisit_rate < 0.15

    def test_prefetch_demand_near_frame_rate(self):
        """Furion's per-frame prefetch: ~1 new grid point per frame."""
        world = load_game("viking")
        trace = generate_trajectory(world, duration_s=10, seed=5)
        demand = prefetch_demand_hz(trace, world.grid)
        assert 25.0 < demand <= 61.0

    def test_two_player_overlap_tiny(self):
        world = load_game("viking")
        party = generate_party(world, 2, duration_s=10, seed=7)
        overlap = path_overlap(party[0], party[1], world.grid)
        assert overlap < 0.1

    def test_self_overlap_is_one(self):
        world = load_game("pool")
        trace = generate_trajectory(world, duration_s=5, seed=9)
        assert path_overlap(trace, trace, world.grid) == 1.0
