"""Tests for trajectories, movement models, head pose, FI, and recording."""

import math

import numpy as np
import pytest

from repro.geometry import Rect, Vec2, WorldGrid
from repro.trace import (
    FRAME_MS,
    HeadPoseModel,
    Trajectory,
    TrajectorySample,
    avatars_at,
    generate_fi_events,
    generate_party,
    generate_trajectory,
    head_poses_for,
    load_traces,
    proximity_stats,
    save_traces,
)
from repro.world import load_game


def simple_trajectory(n=10, spacing=1.0):
    samples = [
        TrajectorySample(t_ms=i * FRAME_MS, position=Vec2(i * spacing, 0.0), heading=0.0)
        for i in range(n)
    ]
    return Trajectory(samples, player_id=3)


class TestTrajectory:
    def test_basic_properties(self):
        t = simple_trajectory(10)
        assert len(t) == 10
        assert t.player_id == 3
        assert t.duration_ms == pytest.approx(9 * FRAME_MS)
        assert t.path_length() == pytest.approx(9.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([])

    def test_non_increasing_time_rejected(self):
        samples = [
            TrajectorySample(0.0, Vec2(0, 0), 0.0),
            TrajectorySample(0.0, Vec2(1, 0), 0.0),
        ]
        with pytest.raises(ValueError):
            Trajectory(samples)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TrajectorySample(-1.0, Vec2(0, 0), 0.0)

    def test_grid_points(self):
        t = simple_trajectory(5, spacing=0.4)
        grid = WorldGrid(Rect(0, 0, 10, 10), pitch=1.0)
        gps = t.grid_points(grid)
        assert len(gps) == 5
        distinct = t.distinct_grid_points(grid)
        # 0, 0.4, 0.8, 1.2, 1.6 -> snaps 0,0,1,1,2
        assert distinct == [(0, 0), (1, 0), (2, 0)]

    def test_subsample_by_distance(self):
        t = simple_trajectory(10, spacing=0.5)
        sub = t.subsample_by_distance(1.0)
        positions = sub.positions()
        assert all(
            a.distance_to(b) >= 1.0 - 1e-9 for a, b in zip(positions, positions[1:])
        )
        with pytest.raises(ValueError):
            t.subsample_by_distance(0)

    def test_every_nth(self):
        t = simple_trajectory(10)
        assert len(t.every_nth(3)) == 4
        with pytest.raises(ValueError):
            t.every_nth(0)

    def test_proximity_stats(self):
        a = simple_trajectory(5)
        b = Trajectory(
            [
                TrajectorySample(i * FRAME_MS, Vec2(i, 3.0), 0.0)
                for i in range(5)
            ]
        )
        mean_d, max_d = proximity_stats(a, b)
        assert mean_d == pytest.approx(3.0)
        assert max_d == pytest.approx(3.0)


class TestMovement:
    @pytest.fixture(scope="class")
    def viking(self):
        return load_game("viking")

    @pytest.fixture(scope="class")
    def racing(self):
        return load_game("racing")

    def test_walking_speed_realistic(self, viking):
        t = generate_trajectory(viking, duration_s=10, seed=1)
        speed = t.path_length() / 10.0
        profile = viking.spec.player
        assert 0.3 * profile.speed < speed < 1.6 * profile.speed

    def test_stays_reachable(self, viking):
        t = generate_trajectory(viking, duration_s=5, seed=2)
        for s in t.samples:
            assert viking.grid.is_reachable(viking.grid.snap(s.position))

    def test_track_follower_stays_on_track(self, racing):
        t = generate_trajectory(racing, duration_s=10, seed=3)
        for s in t.samples:
            assert racing.track.distance_to_centerline(s.position) <= (
                racing.spec.track_half_width + 1e-6
            )

    def test_car_speed_realistic(self, racing):
        t = generate_trajectory(racing, duration_s=10, seed=4)
        speed = t.path_length() / 10.0
        assert 0.6 * racing.spec.player.speed < speed < 1.5 * racing.spec.player.speed

    def test_deterministic(self, viking):
        a = generate_trajectory(viking, duration_s=3, seed=7)
        b = generate_trajectory(viking, duration_s=3, seed=7)
        assert a.positions() == b.positions()

    def test_different_seeds_differ(self, viking):
        a = generate_trajectory(viking, duration_s=3, seed=7)
        b = generate_trajectory(viking, duration_s=3, seed=8)
        assert a.positions() != b.positions()

    def test_party_proximity(self, viking):
        party = generate_party(viking, 3, duration_s=10, seed=5)
        assert len(party) == 3
        for follower in party[1:]:
            mean_d, _ = proximity_stats(party[0], follower)
            assert mean_d < 15.0  # group stays together

    def test_party_paths_never_identical(self, viking):
        """The §4.6 observation: players never trace the same path."""
        party = generate_party(viking, 2, duration_s=10, seed=6)
        gps_a = set(map(tuple, party[0].grid_points(viking.grid)))
        gps_b = set(map(tuple, party[1].grid_points(viking.grid)))
        overlap = len(gps_a & gps_b) / max(1, len(gps_a))
        assert overlap < 0.2

    def test_racing_party_staggered_start(self, racing):
        party = generate_party(racing, 2, duration_s=5, seed=9)
        start_gap = party[0][0].position.distance_to(party[1][0].position)
        assert 2.0 < start_gap < 20.0

    def test_validation(self, viking):
        with pytest.raises(ValueError):
            generate_trajectory(viking, duration_s=0, seed=0)
        with pytest.raises(ValueError):
            generate_party(viking, 0, duration_s=1, seed=0)


class TestHeadPose:
    def test_yaw_tracks_heading(self):
        model = HeadPoseModel(seed=1)
        poses = [model.step(heading=1.0, dt_ms=16.7) for _ in range(600)]
        yaws = np.array([p.yaw for p in poses])
        assert abs(yaws.mean() - 1.0) < 0.4

    def test_pitch_bounded(self):
        model = HeadPoseModel(seed=2, max_pitch=math.radians(35))
        for _ in range(2000):
            pose = model.step(0.0, 16.7)
            assert abs(pose.pitch) <= math.radians(35) + 1e-9

    def test_poses_per_sample(self):
        t = simple_trajectory(20)
        poses = head_poses_for(t, seed=3)
        assert len(poses) == 20
        assert poses[5].t_ms == t[5].t_ms

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeadPoseModel(seed=0, yaw_sigma=-1)


class TestFi:
    def test_avatars_positions_and_exclusion(self):
        gw = load_game("pool")
        positions = [Vec2(5, 5), Vec2(6, 6)]
        avatars = avatars_at(gw, positions)
        assert len(avatars) == 2
        avatars_excl = avatars_at(gw, positions, exclude_player=0)
        assert len(avatars_excl) == 1
        assert avatars_excl[0].ground_position == Vec2(6, 6)

    def test_racing_avatars_are_cars(self):
        gw = load_game("racing")
        avatars = avatars_at(gw, [gw.spawn_points(1)[0]])
        assert avatars[0].kind_name == "car"

    def test_fi_ids_disjoint_from_scene(self):
        gw = load_game("pool")
        avatars = avatars_at(gw, [Vec2(5, 5)])
        scene_ids = {o.object_id for o in gw.scene.objects}
        assert not scene_ids & {a.object_id for a in avatars}

    def test_event_stream_sorted_and_bounded(self):
        events = generate_fi_events(4, duration_s=10, seed=1)
        times = [e.t_ms for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 10_000 for t in times)
        assert {e.player_id for e in events} <= {0, 1, 2, 3}

    def test_event_rate_scales(self):
        few = generate_fi_events(1, 30, seed=2, rate_hz=0.5)
        many = generate_fi_events(1, 30, seed=2, rate_hz=5.0)
        assert len(many) > 3 * len(few)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_fi_events(0, 10, 0)
        with pytest.raises(ValueError):
            generate_fi_events(1, 0, 0)


class TestRecorder:
    def test_roundtrip(self, tmp_path):
        traces = [simple_trajectory(8), simple_trajectory(5)]
        path = tmp_path / "traces.json"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert len(loaded) == 2
        assert loaded[0].player_id == 3
        assert loaded[0].positions() == traces[0].positions()
        assert [s.t_ms for s in loaded[1].samples] == [
            s.t_ms for s in traces[1].samples
        ]

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "traces": []}')
        with pytest.raises(ValueError):
            load_traces(path)
