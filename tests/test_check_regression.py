"""Tests for the CI perf-regression gate (``benchmarks/check_regression.py``).

The ISSUE's acceptance bar requires the gate to *demonstrably* fail on a
deliberate slowdown, so these tests build synthetic baseline/fresh
artifact directories and drive ``main()`` end to end: identical runs
pass, a 2x wall slowdown fails, ``--ratio-only`` ignores walls but still
catches a speedup-ratio drop, and the tolerance boundary is exclusive.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from check_regression import (  # noqa: E402
    Comparison,
    compare_dirs,
    compare_metric,
    lookup,
    main,
    update_baselines,
)

KERNELS_BASE = {
    "benchmark": "kernels",
    "speedup": {"vector": 3.0, "vector+reuse": 3.2},
    "legs": {
        "scalar": {"wall_s": 6.0},
        "vector": {"wall_s": 2.0},
        "vector+reuse": {"wall_s": 1.9},
    },
}

TRACE_BASE = {
    "benchmark": "trace_overhead",
    "overhead": 0.02,
    "untraced_s": 2.5,
    "traced_s": 2.55,
}


def write_dirs(tmp_path, fresh_mutation=None):
    """Baseline + fresh dirs holding the synthetic artifacts.

    ``fresh_mutation(docs)`` may edit the fresh copies in place; the
    baseline always holds the pristine documents.
    """
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    docs = {
        "BENCH_kernels.json": copy.deepcopy(KERNELS_BASE),
        "BENCH_trace.json": copy.deepcopy(TRACE_BASE),
    }
    for name, doc in docs.items():
        (baseline / name).write_text(json.dumps(doc))
    if fresh_mutation is not None:
        fresh_mutation(docs)
    for name, doc in docs.items():
        (fresh / name).write_text(json.dumps(doc))
    return baseline, fresh


def run_gate(baseline, fresh, *extra):
    """Invoke the gate CLI; returns its exit code."""
    return main([
        "--baseline-dir", str(baseline), "--fresh-dir", str(fresh), *extra
    ])


class TestLookup:
    def test_nested_path(self):
        assert lookup(KERNELS_BASE, "legs.vector.wall_s") == 2.0

    def test_key_with_plus(self):
        assert lookup(KERNELS_BASE, "speedup.vector+reuse") == 3.2

    def test_missing_returns_none(self):
        assert lookup(KERNELS_BASE, "legs.gpu.wall_s") is None

    def test_non_numeric_returns_none(self):
        assert lookup({"benchmark": "kernels"}, "benchmark") is None


class TestCompareMetric:
    def test_identical_passes(self):
        c = compare_metric("a", "m", "wall", 2.0, 2.0, 0.25, False)
        assert not c.regressed and not c.skipped

    def test_wall_slowdown_fails(self):
        c = compare_metric("a", "m", "wall", 2.0, 4.0, 0.25, False)
        assert c.regressed

    def test_wall_boundary_is_exclusive(self):
        # Exactly base * (1 + tol) is still within tolerance.
        c = compare_metric("a", "m", "wall", 2.0, 2.5, 0.25, False)
        assert not c.regressed
        c = compare_metric("a", "m", "wall", 2.0, 2.5001, 0.25, False)
        assert c.regressed

    def test_ratio_only_skips_wall(self):
        c = compare_metric("a", "m", "wall", 2.0, 20.0, 0.25, True)
        assert c.skipped and not c.regressed

    def test_ratio_high_drop_fails_even_ratio_only(self):
        c = compare_metric("a", "m", "ratio_high", 3.0, 1.0, 0.25, True)
        assert c.regressed

    def test_ratio_high_improvement_passes(self):
        c = compare_metric("a", "m", "ratio_high", 3.0, 5.0, 0.25, False)
        assert not c.regressed

    def test_abs_low_additive_band(self):
        assert not compare_metric("a", "m", "abs_low", 0.02, 0.25, 0.25,
                                  False).regressed
        assert compare_metric("a", "m", "abs_low", 0.02, 0.30, 0.25,
                              False).regressed

    def test_vanished_metric_fails(self):
        c = compare_metric("a", "m", "wall", 2.0, None, 0.25, False)
        assert c.regressed

    def test_absent_on_both_sides_skips(self):
        c = compare_metric("a", "m", "wall", None, None, 0.25, False)
        assert c.skipped and not c.regressed

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            compare_metric("a", "m", "median", 1.0, 1.0, 0.25, False)


class TestGateEndToEnd:
    def test_identical_runs_pass(self, tmp_path, capsys):
        baseline, fresh = write_dirs(tmp_path)
        assert run_gate(baseline, fresh) == 0
        assert "clean" in capsys.readouterr().out

    def test_deliberate_2x_slowdown_fails(self, tmp_path, capsys):
        def slow(docs):
            for leg in docs["BENCH_kernels.json"]["legs"].values():
                leg["wall_s"] *= 2.0

        baseline, fresh = write_dirs(tmp_path, slow)
        assert run_gate(baseline, fresh) == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out
        assert "regression" in out.err

    def test_ratio_only_ignores_wall_slowdown(self, tmp_path):
        def slow_uniformly(docs):
            # Every leg slower by 2x (a slower runner): ratios unchanged.
            for leg in docs["BENCH_kernels.json"]["legs"].values():
                leg["wall_s"] *= 2.0
            docs["BENCH_trace.json"]["untraced_s"] *= 2.0
            docs["BENCH_trace.json"]["traced_s"] *= 2.0

        baseline, fresh = write_dirs(tmp_path, slow_uniformly)
        assert run_gate(baseline, fresh) == 1
        assert run_gate(baseline, fresh, "--ratio-only") == 0

    def test_ratio_only_catches_speedup_drop(self, tmp_path):
        def devectorize(docs):
            docs["BENCH_kernels.json"]["speedup"]["vector+reuse"] = 1.0

        baseline, fresh = write_dirs(tmp_path, devectorize)
        assert run_gate(baseline, fresh, "--ratio-only") == 1

    def test_tolerance_widens_the_band(self, tmp_path):
        def slightly_slow(docs):
            docs["BENCH_kernels.json"]["legs"]["scalar"]["wall_s"] *= 1.4

        baseline, fresh = write_dirs(tmp_path, slightly_slow)
        assert run_gate(baseline, fresh, "--tolerance", "0.25") == 1
        assert run_gate(baseline, fresh, "--tolerance", "0.5") == 0

    def test_missing_fresh_artifact_fails(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        (fresh / "BENCH_kernels.json").unlink()
        assert run_gate(baseline, fresh) == 1

    def test_unbaselined_artifact_is_skipped_by_default(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        (baseline / "BENCH_kernels.json").unlink()
        (baseline / "BENCH_trace.json").unlink()
        # No baselines at all -> nothing compared -> usage error, not pass.
        assert run_gate(baseline, fresh) == 2

    def test_explicit_artifact_without_baseline_fails(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        (baseline / "BENCH_kernels.json").unlink()
        assert run_gate(baseline, fresh, "--artifacts",
                        "BENCH_kernels.json") == 1

    def test_unknown_artifact_name_is_usage_error(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        assert run_gate(baseline, fresh, "--artifacts",
                        "BENCH_nonsense.json") == 2

    def test_missing_baseline_dir_is_usage_error(self, tmp_path):
        assert main(["--baseline-dir", str(tmp_path / "nope")]) == 2

    def test_negative_tolerance_is_usage_error(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        assert run_gate(baseline, fresh, "--tolerance", "-1") == 2


class TestCompareDirs:
    def test_restricts_to_requested_artifacts(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        results = compare_dirs(baseline, fresh, 0.25, False,
                               artifacts=["BENCH_trace.json"])
        assert {c.artifact for c in results} == {"BENCH_trace.json"}

    def test_comparison_line_formats(self):
        line = Comparison("BENCH_x.json", "m", "wall", 1.0, 2.0, True).line()
        assert "FAIL" in line and "1.000" in line and "2.000" in line


class TestAllFailuresReported:
    def test_multiple_regressions_all_listed(self, tmp_path, capsys):
        """Every failing metric shows up in one run, not just the first."""
        def wreck(docs):
            docs["BENCH_kernels.json"]["speedup"]["vector"] = 0.5
            docs["BENCH_kernels.json"]["speedup"]["vector+reuse"] = 0.5
            docs["BENCH_trace.json"]["overhead"] = 0.9

        baseline, fresh = write_dirs(tmp_path, wreck)
        assert run_gate(baseline, fresh) == 1
        out = capsys.readouterr()
        assert out.out.count("FAIL") == 3
        assert "3 regression(s)" in out.err

    def test_corrupt_artifact_fails_without_hiding_others(
        self, tmp_path, capsys
    ):
        """A parse error is a failing row, not an abort: the other
        artifact's regressions are still reported in the same run."""
        def slow_trace(docs):
            docs["BENCH_trace.json"]["overhead"] = 0.9

        baseline, fresh = write_dirs(tmp_path, slow_trace)
        (fresh / "BENCH_kernels.json").write_text("{not json")
        assert run_gate(baseline, fresh) == 1
        out = capsys.readouterr()
        assert "<parse error>" in out.out
        assert "overhead" in out.out
        assert "2 regression(s)" in out.err


class TestOnlineBenchSpec:
    def test_online_speedup_drop_fails(self, tmp_path):
        online = {
            "benchmark": "online_pipeline",
            "speedup": {"vector": 1.9, "vector+reuse": 2.2},
            "legs": {
                "scalar": {"wall_s": 0.28},
                "vector": {"wall_s": 0.15},
                "vector+reuse": {"wall_s": 0.13},
            },
        }
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        baseline.mkdir()
        fresh.mkdir()
        (baseline / "BENCH_online.json").write_text(json.dumps(online))
        good = copy.deepcopy(online)
        (fresh / "BENCH_online.json").write_text(json.dumps(good))
        assert run_gate(baseline, fresh, "--ratio-only", "--artifacts",
                        "BENCH_online.json") == 0
        bad = copy.deepcopy(online)
        bad["speedup"]["vector+reuse"] = 1.0
        (fresh / "BENCH_online.json").write_text(json.dumps(bad))
        assert run_gate(baseline, fresh, "--ratio-only", "--artifacts",
                        "BENCH_online.json") == 1


class TestUpdateBaselines:
    """``--update-baselines`` re-pins committed baselines from fresh runs."""

    def test_copies_fresh_artifacts_over_baselines(self, tmp_path):
        baseline, fresh = write_dirs(
            tmp_path,
            fresh_mutation=lambda docs: docs["BENCH_trace.json"].update(
                overhead=0.04
            ),
        )
        updated = update_baselines(baseline, fresh)
        assert "BENCH_trace.json" in updated
        repinned = json.loads((baseline / "BENCH_trace.json").read_text())
        assert repinned["overhead"] == 0.04
        # After re-pinning, the gate is clean again.
        assert run_gate(baseline, fresh) == 0

    def test_creates_missing_baseline_dir(self, tmp_path):
        _, fresh = write_dirs(tmp_path)
        target = tmp_path / "new" / "baselines"
        updated = update_baselines(target, fresh)
        assert updated
        assert (target / "BENCH_kernels.json").exists()

    def test_refuses_corrupt_fresh_artifact(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        (fresh / "BENCH_trace.json").write_text("{ not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            update_baselines(baseline, fresh)

    def test_cli_flag_reports_and_exits_zero(self, tmp_path, capsys):
        baseline, fresh = write_dirs(
            tmp_path,
            fresh_mutation=lambda docs: docs["BENCH_kernels.json"][
                "speedup"
            ].update(vector=9.9),
        )
        assert run_gate(baseline, fresh, "--update-baselines") == 0
        out = capsys.readouterr().out
        assert "re-pinned" in out
        doc = json.loads((baseline / "BENCH_kernels.json").read_text())
        assert doc["speedup"]["vector"] == 9.9

    def test_cli_flag_respects_artifact_restriction(self, tmp_path, capsys):
        baseline, fresh = write_dirs(
            tmp_path,
            fresh_mutation=lambda docs: docs["BENCH_trace.json"].update(
                overhead=0.9
            ),
        )
        assert run_gate(baseline, fresh, "--update-baselines",
                        "--artifacts", "BENCH_kernels.json") == 0
        capsys.readouterr()
        untouched = json.loads((baseline / "BENCH_trace.json").read_text())
        assert untouched["overhead"] == TRACE_BASE["overhead"]

    def test_cli_flag_with_nothing_to_pin_is_usage_error(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert run_gate(tmp_path / "base", empty, "--update-baselines") == 2
        assert "nothing re-pinned" in capsys.readouterr().err

    def test_nonconforming_name_is_usage_error(self, tmp_path, capsys):
        _, fresh = write_dirs(tmp_path)
        assert run_gate(tmp_path / "base", fresh, "--update-baselines",
                        "--artifacts", "notes.json") == 2
        assert "no metric spec" in capsys.readouterr().err

    def test_new_artifact_is_pinnable_before_its_spec_lands(self, tmp_path):
        # A newly-introduced BENCH_*.json without a SPECS entry must be
        # acceptable to --update-baselines: the first baseline pin and
        # the spec land in the same change.
        baseline, fresh = write_dirs(tmp_path)
        (fresh / "BENCH_newsub.json").write_text(
            json.dumps({"benchmark": "newsub", "ratio": 2.0})
        )
        updated = update_baselines(
            baseline, fresh, artifacts=["BENCH_newsub.json"]
        )
        assert updated == ["BENCH_newsub.json"]
        doc = json.loads((baseline / "BENCH_newsub.json").read_text())
        assert doc["ratio"] == 2.0

    def test_default_scan_includes_unspecced_bench_artifacts(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        (fresh / "BENCH_newsub.json").write_text(
            json.dumps({"benchmark": "newsub"})
        )
        updated = update_baselines(baseline, fresh)
        assert "BENCH_newsub.json" in updated
        assert "BENCH_kernels.json" in updated

    def test_new_artifact_must_still_be_valid_json(self, tmp_path):
        baseline, fresh = write_dirs(tmp_path)
        (fresh / "BENCH_newsub.json").write_text("{ nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            update_baselines(baseline, fresh,
                             artifacts=["BENCH_newsub.json"])

    def test_compare_mode_still_rejects_unspecced_names(self, tmp_path):
        # The relaxation is update-only: comparing against an artifact
        # with no metric spec is still a usage error.
        baseline, fresh = write_dirs(tmp_path)
        (fresh / "BENCH_newsub.json").write_text("{}")
        (baseline / "BENCH_newsub.json").write_text("{}")
        assert run_gate(baseline, fresh,
                        "--artifacts", "BENCH_newsub.json") == 2
