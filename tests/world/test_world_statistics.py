"""Statistical checks on the generated game worlds.

The nine worlds must carry the structure the paper's experiments depend
on: Table 3's dimensions and grid counts, genre-appropriate object
populations, and the density contrasts that drive the cutoff scheme.
"""

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.world import (
    ALL_GAMES,
    HEADLINE_GAMES,
    INDOOR_GAMES,
    game_spec,
    load_game,
)


@pytest.fixture(scope="module", params=HEADLINE_GAMES)
def headline_world(request):
    return load_game(request.param)


class TestWorldPopulations:
    def test_headline_worlds_substantial(self, headline_world):
        assert len(headline_world.scene) > 1000
        assert headline_world.scene.total_triangles() > 10_000_000

    def test_indoor_worlds_modest(self):
        for name in INDOOR_GAMES:
            world = load_game(name)
            assert 50 < len(world.scene) < 3000

    def test_all_objects_inside_bounds(self, headline_world):
        bounds = headline_world.bounds
        for obj in headline_world.scene.objects:
            assert bounds.contains_closed(obj.ground_position)

    def test_object_ids_unique_and_dense(self, headline_world):
        ids = [o.object_id for o in headline_world.scene.objects]
        assert len(set(ids)) == len(ids)

    def test_racing_worlds_have_mountain_ring(self):
        world = load_game("racing")
        mountains = [o for o in world.scene.objects if o.kind_name == "mountain"]
        assert len(mountains) == game_spec("racing").rim_mountains
        # The ring sits beyond the cutoff-search ceiling from the track.
        for mountain in mountains:
            distance = world.track.distance_to_centerline(
                mountain.ground_position
            )
            assert distance > 150.0


class TestDensityStructure:
    def test_viking_has_density_contrast(self):
        """The quadtree needs real contrast to split on (Fig. 8)."""
        world = load_game("viking")
        rng = np.random.default_rng(3)
        densities = [
            world.scene.triangle_density(p, probe_radius=8.0)
            for p in world.bounds.sample(rng, 60)
        ]
        densities = np.array(densities)
        assert densities.max() > 5 * max(np.median(densities), 1.0)

    def test_racing_verge_sparse_forest_dense(self):
        world = load_game("racing")
        spec = game_spec("racing")
        track = world.track
        total = track.length()
        forest_point = track.point_at(spec.track_blob_arcs[0] * total)
        open_point = track.point_at(0.35 * total)
        forest_density = world.scene.triangle_density(forest_point, 20.0)
        open_density = world.scene.triangle_density(open_point, 20.0)
        assert forest_density > 5 * max(open_density, 1.0)

    def test_indoor_density_far_exceeds_outdoor_base(self):
        pool = load_game("pool")
        center_density = pool.scene.triangle_density(pool.bounds.center, 4.0)
        assert center_density > 5_000.0


class TestGridCounts:
    """Table 3's 'Grid Points' column, per construction."""

    @pytest.mark.parametrize(
        "game,expected_m",
        [("viking", 24.9), ("cts", 268.4), ("fps", 5.09), ("soccer", 14.9)],
    )
    def test_full_area_games_exact(self, game, expected_m):
        world = load_game(game)
        count = world.grid_point_count(np.random.default_rng(0))
        assert count == pytest.approx(expected_m * 1e6, rel=0.05)

    @pytest.mark.parametrize("game", ["racing", "ds"])
    def test_track_games_reach_small_fraction(self, game):
        world = load_game(game)
        count = world.grid_point_count(np.random.default_rng(0))
        assert count < 0.1 * world.grid.total_points

    def test_pitch_is_table3_lattice(self):
        world = load_game("pool")
        assert world.grid.pitch == pytest.approx(1.0 / 32.0)


class TestSpawnGeometry:
    @pytest.mark.parametrize("game", ALL_GAMES)
    def test_four_player_spawns_valid(self, game):
        world = load_game(game)
        spawns = world.spawn_points(4)
        assert len(spawns) == 4
        assert len({s.as_tuple() for s in spawns}) == 4  # distinct
        for spawn in spawns:
            assert world.grid.is_reachable(world.grid.snap(spawn))
