"""Tests for terrain heightfields and reachability masks."""

import math

import pytest

from repro.geometry import Rect, Vec2
from repro.world import (
    FlatTerrain,
    FullAreaMask,
    RidgeTerrain,
    RollingTerrain,
    RoomMask,
    TrackMask,
    oval_track,
)


class TestTerrain:
    def test_flat(self):
        t = FlatTerrain(elevation=2.0)
        assert t(Vec2(0, 0)) == 2.0
        assert t(Vec2(100, -50)) == 2.0

    def test_rolling_bounded(self):
        t = RollingTerrain(amplitude=1.5, wavelength=60.0, octaves=3)
        max_possible = 2 * 1.5 * (1 + 0.5 + 0.25)
        for i in range(100):
            h = t(Vec2(i * 3.7, i * 1.3))
            assert abs(h) <= max_possible

    def test_rolling_deterministic(self):
        a = RollingTerrain(phase_seed=5)
        b = RollingTerrain(phase_seed=5)
        assert a(Vec2(12.3, 45.6)) == b(Vec2(12.3, 45.6))

    def test_rolling_seed_changes_surface(self):
        a = RollingTerrain(phase_seed=1)
        b = RollingTerrain(phase_seed=2)
        assert a(Vec2(12.3, 45.6)) != b(Vec2(12.3, 45.6))

    def test_rolling_invalid(self):
        with pytest.raises(ValueError):
            RollingTerrain(amplitude=-1)
        with pytest.raises(ValueError):
            RollingTerrain(wavelength=0)

    def test_ridge_valley_low_rim_high(self):
        t = RidgeTerrain(valley_center=Vec2(0, 0), valley_radius=100.0, roughness=0.0)
        assert t(Vec2(0, 0)) == pytest.approx(0.0)
        assert t(Vec2(500, 0)) > 50.0

    def test_ridge_invalid(self):
        with pytest.raises(ValueError):
            RidgeTerrain(rim_height=-1)


class TestMasks:
    def test_full_area(self):
        mask = FullAreaMask(Rect(0, 0, 10, 10))
        assert mask(Vec2(5, 5))
        assert mask(Vec2(10, 10))
        assert not mask(Vec2(11, 5))

    def test_room_inset(self):
        mask = RoomMask(Rect(0, 0, 10, 10), wall_inset=1.0)
        assert mask(Vec2(5, 5))
        assert not mask(Vec2(0.5, 5))
        assert mask(Vec2(1.0, 5.0))

    def test_room_invalid_inset(self):
        with pytest.raises(ValueError):
            RoomMask(Rect(0, 0, 10, 10), wall_inset=-1)


class TestTrackMask:
    def _square_track(self):
        waypoints = [Vec2(0, 0), Vec2(100, 0), Vec2(100, 100), Vec2(0, 100)]
        return TrackMask(waypoints, half_width=5.0, closed=True)

    def test_membership(self):
        track = self._square_track()
        assert track(Vec2(50, 0))     # on the bottom straight
        assert track(Vec2(50, 4.9))   # within half width
        assert not track(Vec2(50, 6)) # off track
        assert not track(Vec2(50, 50))

    def test_distance_to_centerline(self):
        track = self._square_track()
        assert track.distance_to_centerline(Vec2(50, 3)) == pytest.approx(3.0)

    def test_length_closed_square(self):
        assert self._square_track().length() == pytest.approx(400.0)

    def test_point_at_wraps(self):
        track = self._square_track()
        assert track.point_at(0.0) == Vec2(0, 0)
        assert track.point_at(50.0) == Vec2(50, 0)
        assert track.point_at(450.0).distance_to(Vec2(50, 0)) < 1e-9

    def test_point_at_open_clamps(self):
        open_track = TrackMask([Vec2(0, 0), Vec2(10, 0)], 2.0, closed=False)
        assert open_track.point_at(-5.0) == Vec2(0, 0)
        assert open_track.point_at(100.0) == Vec2(10, 0)

    def test_heading_follows_track(self):
        track = self._square_track()
        assert track.heading_at(50.0) == pytest.approx(0.0, abs=0.05)
        assert track.heading_at(150.0) == pytest.approx(math.pi / 2, abs=0.05)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TrackMask([Vec2(0, 0)], 5.0)
        with pytest.raises(ValueError):
            TrackMask([Vec2(0, 0), Vec2(1, 0)], 0.0)


class TestOvalTrack:
    def test_waypoints_inside_bounds(self):
        bounds = Rect(0, 0, 100, 60)
        for p in oval_track(bounds, margin=10.0):
            assert bounds.contains_closed(p)

    def test_waypoint_count(self):
        assert len(oval_track(Rect(0, 0, 100, 100), 10.0, waypoint_count=16)) == 16

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            oval_track(Rect(0, 0, 100, 100), margin=60.0)
        with pytest.raises(ValueError):
            oval_track(Rect(0, 0, 100, 100), 10.0, waypoint_count=2)
