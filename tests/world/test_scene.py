"""Tests for Scene spatial queries and the near/far BE partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, Vec2, Vec3
from repro.world import Scene, SceneObject


def obj_at(object_id, x, y, triangles=1000, radius=1.0):
    return SceneObject(
        object_id=object_id,
        kind_name="tree",
        center=Vec3(x, y, radius),
        radius=radius,
        triangles=triangles,
        luminance=0.3,
        contrast=0.4,
        texture_seed=object_id,
    )


@pytest.fixture
def scene():
    objects = [
        obj_at(0, 10.0, 10.0, triangles=100),
        obj_at(1, 12.0, 10.0, triangles=200),
        obj_at(2, 30.0, 30.0, triangles=400),
        obj_at(3, 90.0, 90.0, triangles=800),
    ]
    return Scene(Rect(0, 0, 100, 100), objects, terrain=lambda p: 0.0)


class TestSceneBasics:
    def test_len_and_total_triangles(self, scene):
        assert len(scene) == 4
        assert scene.total_triangles() == 1500

    def test_duplicate_ids_rejected(self):
        objs = [obj_at(0, 1, 1), obj_at(0, 2, 2)]
        with pytest.raises(ValueError):
            Scene(Rect(0, 0, 10, 10), objs, terrain=lambda p: 0.0)

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            Scene(Rect(0, 0, 10, 10), [], lambda p: 0.0, cell_size=0)

    def test_objects_returns_copy(self, scene):
        listing = scene.objects
        listing.clear()
        assert len(scene) == 4


class TestRadiusQueries:
    def test_objects_within(self, scene):
        ids = {o.object_id for o in scene.objects_within(Vec2(10, 10), 3.0)}
        assert ids == {0, 1}

    def test_objects_within_zero_radius(self, scene):
        ids = {o.object_id for o in scene.objects_within(Vec2(10, 10), 0.0)}
        assert ids == {0}

    def test_objects_within_negative_raises(self, scene):
        with pytest.raises(ValueError):
            scene.objects_within(Vec2(0, 0), -1.0)

    def test_triangles_within(self, scene):
        assert scene.triangles_within(Vec2(10, 10), 3.0) == 300
        assert scene.triangles_within(Vec2(50, 50), 1.0) == 0

    def test_annulus(self, scene):
        ids = {o.object_id for o in scene.objects_in_annulus(Vec2(10, 10), 1.0, 40.0)}
        assert ids == {1, 2}

    def test_annulus_invalid(self, scene):
        with pytest.raises(ValueError):
            scene.objects_in_annulus(Vec2(0, 0), 5.0, 2.0)

    def test_triangle_density(self, scene):
        density = scene.triangle_density(Vec2(10, 10), probe_radius=5.0)
        assert density == pytest.approx(300 / (np.pi * 25.0))

    def test_triangle_density_bad_probe(self, scene):
        with pytest.raises(ValueError):
            scene.triangle_density(Vec2(0, 0), probe_radius=0)

    @settings(max_examples=25)
    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=60),
    )
    def test_spatial_index_matches_brute_force(self, x, y, radius):
        objects = [obj_at(i, 7.0 * i % 97, 13.0 * i % 89) for i in range(40)]
        scene = Scene(Rect(0, 0, 100, 100), objects, lambda p: 0.0, cell_size=9.0)
        center = Vec2(x, y)
        fast = {o.object_id for o in scene.objects_within(center, radius)}
        brute = {
            o.object_id
            for o in objects
            if (o.ground_position - center).norm_sq() <= radius * radius
        }
        assert fast == brute


class TestPartition:
    def test_near_far_split(self, scene):
        part = scene.partition(Vec2(10, 10), cutoff_radius=5.0)
        assert {o.object_id for o in part.near} == {0, 1}
        assert {o.object_id for o in part.far} == {2, 3}

    def test_partition_is_exhaustive_and_disjoint(self, scene):
        part = scene.partition(Vec2(10, 10), cutoff_radius=25.0)
        near_ids = {o.object_id for o in part.near}
        far_ids = {o.object_id for o in part.far}
        assert near_ids | far_ids == {0, 1, 2, 3}
        assert near_ids & far_ids == set()

    def test_view_limit_truncates_far(self, scene):
        part = scene.partition(Vec2(10, 10), cutoff_radius=5.0, view_limit=50.0)
        assert {o.object_id for o in part.far} == {2}

    def test_view_limit_below_cutoff_raises(self, scene):
        with pytest.raises(ValueError):
            scene.partition(Vec2(10, 10), cutoff_radius=5.0, view_limit=2.0)

    def test_negative_cutoff_raises(self, scene):
        with pytest.raises(ValueError):
            scene.partition(Vec2(0, 0), cutoff_radius=-1.0)

    def test_near_ids_matches_near_object_ids(self, scene):
        part = scene.partition(Vec2(10, 10), cutoff_radius=5.0)
        assert part.near_ids == scene.near_object_ids(Vec2(10, 10), 5.0)

    def test_partition_deterministic_order(self, scene):
        a = scene.partition(Vec2(10, 10), 25.0)
        b = scene.partition(Vec2(10, 10), 25.0)
        assert [o.object_id for o in a.far] == [o.object_id for o in b.far]

    def test_cutoff_zero_puts_everything_far(self, scene):
        part = scene.partition(Vec2(50, 50), cutoff_radius=0.0)
        assert len(part.near) == 0
        assert len(part.far) == 4
