"""Tests for procedural generation and the nine game worlds."""

import numpy as np
import pytest

from repro.geometry import Rect, Vec2
from repro.world import (
    ALL_GAMES,
    HEADLINE_GAMES,
    INDOOR_GAMES,
    OUTDOOR_GAMES,
    DensityBlob,
    DensityField,
    FlatTerrain,
    KindMixture,
    build_game,
    game_spec,
    generate_scene,
    kind,
    load_game,
)


class TestDensityField:
    def test_base_only(self):
        field = DensityField(base=100.0)
        assert field(Vec2(0, 0)) == 100.0

    def test_blob_peaks_at_center(self):
        blob = DensityBlob(center=Vec2(10, 10), sigma=5.0, amplitude=50.0)
        field = DensityField(base=10.0, blobs=[blob])
        assert field(Vec2(10, 10)) == pytest.approx(60.0)
        assert field(Vec2(10, 10)) > field(Vec2(15, 10)) > field(Vec2(40, 10))

    def test_blob_validation(self):
        with pytest.raises(ValueError):
            DensityBlob(Vec2(0, 0), sigma=0.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DensityBlob(Vec2(0, 0), sigma=1.0, amplitude=-1.0)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            DensityField(base=-1.0)

    def test_random_blobs_within_bounds(self):
        rng = np.random.default_rng(0)
        bounds = Rect(0, 0, 50, 50)
        blobs = DensityField.random_blobs(bounds, 10, (1, 3), (10, 20), rng)
        assert len(blobs) == 10
        for blob in blobs:
            assert bounds.contains_closed(blob.center)
            assert 1 <= blob.sigma <= 3
            assert 10 <= blob.amplitude <= 20


class TestKindMixture:
    def test_mean_triangles_weighted(self):
        mix = KindMixture(kinds=(kind("grass"), kind("hall")), weights=(1.0, 1.0))
        expected = ((120 + 400) / 2 + (1500000 + 4000000) / 2) / 2
        assert mix.mean_triangles() == pytest.approx(expected)

    def test_draw_respects_weights(self):
        mix = KindMixture(kinds=(kind("grass"), kind("hall")), weights=(1.0, 0.0))
        rng = np.random.default_rng(1)
        assert all(mix.draw(rng).name == "grass" for _ in range(20))

    def test_invalid_mixture(self):
        with pytest.raises(ValueError):
            KindMixture(kinds=(), weights=())
        with pytest.raises(ValueError):
            KindMixture(kinds=(kind("grass"),), weights=(0.0,))
        with pytest.raises(ValueError):
            KindMixture(kinds=(kind("grass"),), weights=(1.0, 2.0))


class TestGenerateScene:
    def _mixture(self):
        return KindMixture(kinds=(kind("tree"), kind("rock")), weights=(0.5, 0.5))

    def test_object_count_tracks_density(self):
        bounds = Rect(0, 0, 80, 80)
        sparse = generate_scene(
            bounds, FlatTerrain(), lambda p: 50.0, self._mixture(), seed=1
        )
        dense = generate_scene(
            bounds, FlatTerrain(), lambda p: 500.0, self._mixture(), seed=1
        )
        assert len(dense) > 3 * len(sparse)

    def test_total_triangles_near_target(self):
        bounds = Rect(0, 0, 100, 100)
        density = 300.0
        scene = generate_scene(
            bounds, FlatTerrain(), lambda p: density, self._mixture(), seed=2
        )
        target = density * bounds.area
        assert 0.6 * target < scene.total_triangles() < 1.5 * target

    def test_deterministic(self):
        bounds = Rect(0, 0, 40, 40)
        a = generate_scene(bounds, FlatTerrain(), lambda p: 200.0, self._mixture(), 7)
        b = generate_scene(bounds, FlatTerrain(), lambda p: 200.0, self._mixture(), 7)
        assert [o.object_id for o in a.objects] == [o.object_id for o in b.objects]
        assert a.total_triangles() == b.total_triangles()

    def test_keep_clear_respected(self):
        bounds = Rect(0, 0, 40, 40)
        scene = generate_scene(
            bounds,
            FlatTerrain(),
            lambda p: 400.0,
            self._mixture(),
            seed=3,
            keep_clear=lambda p: p.x < 20,
        )
        assert all(o.ground_position.x >= 20 for o in scene.objects)

    def test_clutter_pass_adds_light_objects(self):
        bounds = Rect(0, 0, 50, 50)
        clutter = KindMixture(kinds=(kind("grass"),), weights=(1.0,))
        scene = generate_scene(
            bounds,
            FlatTerrain(),
            lambda p: 0.0,
            self._mixture(),
            seed=4,
            clutter_mixture=clutter,
            clutter_per_m2=0.1,
        )
        assert len(scene) > 100
        assert all(o.kind_name == "grass" for o in scene.objects)

    def test_clutter_without_mixture_raises(self):
        with pytest.raises(ValueError):
            generate_scene(
                Rect(0, 0, 10, 10),
                FlatTerrain(),
                lambda p: 0.0,
                self._mixture(),
                seed=5,
                clutter_per_m2=0.1,
            )

    def test_max_objects_cap(self):
        scene = generate_scene(
            Rect(0, 0, 60, 60),
            FlatTerrain(),
            lambda p: 5000.0,
            self._mixture(),
            seed=6,
            max_objects=50,
        )
        assert len(scene) == 50

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_scene(
                Rect(0, 0, 10, 10), FlatTerrain(), lambda p: 1.0,
                self._mixture(), seed=0, placement_cell=0,
            )
        with pytest.raises(ValueError):
            generate_scene(
                Rect(0, 0, 10, 10), FlatTerrain(), lambda p: 1.0,
                self._mixture(), seed=0, clutter_per_m2=-1,
            )


class TestGameCatalog:
    def test_game_lists_consistent(self):
        assert set(ALL_GAMES) == set(OUTDOOR_GAMES) | set(INDOOR_GAMES)
        assert set(HEADLINE_GAMES) <= set(OUTDOOR_GAMES)
        assert len(ALL_GAMES) == 9

    def test_specs_match_table3_dimensions(self):
        assert game_spec("viking").dimensions == (187.0, 130.0)
        assert game_spec("cts").dimensions == (512.0, 512.0)
        assert game_spec("racing").dimensions == (1090.0, 1096.0)
        assert game_spec("ds").dimensions == (1286.0, 361.0)
        assert game_spec("pool").dimensions == (10.0, 13.0)

    def test_unknown_game_raises(self):
        with pytest.raises(KeyError):
            game_spec("tetris")

    def test_indoor_flags(self):
        for name in INDOOR_GAMES:
            assert game_spec(name).indoor
        for name in OUTDOOR_GAMES:
            assert not game_spec(name).indoor


class TestBuildGame:
    def test_small_indoor_game_builds(self):
        gw = build_game("pool")
        assert gw.name == "pool"
        assert len(gw.scene) > 50
        assert gw.track is None

    def test_scaled_outdoor_game(self):
        gw = build_game("viking", scale=0.25)
        assert gw.bounds.width == pytest.approx(187.0 * 0.25)
        assert len(gw.scene) > 50

    def test_racing_game_has_track(self):
        gw = build_game("racing", scale=0.2)
        assert gw.track is not None
        # Track surface itself is object-free.
        for p in [gw.track.point_at(arc) for arc in (0.0, 100.0, 300.0)]:
            blocking = [
                o
                for o in gw.scene.objects_within(p, gw.spec.track_half_width * 0.9)
                if o.kind_name not in ("grass",)
            ]
            assert blocking == []

    def test_spawn_points_reachable_and_clustered(self):
        gw = build_game("viking", scale=0.25)
        points = gw.spawn_points(4)
        assert len(points) == 4
        for p in points:
            assert gw.grid.is_reachable(gw.grid.snap(p))
        max_spread = max(a.distance_to(b) for a in points for b in points)
        assert max_spread < 10.0

    def test_spawn_points_on_track(self):
        gw = build_game("racing", scale=0.2)
        for p in gw.spawn_points(3):
            assert gw.track(p)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_game("pool", scale=0.0)
        with pytest.raises(ValueError):
            build_game("pool", scale=2.0)

    def test_spawn_count_validation(self):
        gw = build_game("pool")
        with pytest.raises(ValueError):
            gw.spawn_points(0)

    def test_deterministic_build(self):
        a = build_game("bowling")
        b = build_game("bowling")
        assert len(a.scene) == len(b.scene)
        assert a.scene.total_triangles() == b.scene.total_triangles()

    def test_load_game_caches(self):
        a = load_game("pool")
        b = load_game("pool")
        assert a is b

    def test_indoor_game_has_walls(self):
        gw = build_game("corridor")
        assert any(o.kind_name == "wall_panel" for o in gw.scene.objects)

    def test_grid_point_count_scales_with_area(self):
        pool = build_game("pool")
        # Pool: 10x13 m at 1024 points/m^2 ~ 0.13 M points (Table 3).
        count = pool.grid_point_count()
        assert 0.08e6 < count < 0.16e6
