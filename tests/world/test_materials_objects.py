"""Tests for the object-kind catalog and SceneObject."""

import numpy as np
import pytest

from repro.geometry import Vec2, Vec3
from repro.world import ObjectKind, SceneObject, catalog, kind, make_object


class TestCatalog:
    def test_known_kinds_present(self):
        names = set(catalog())
        assert {"tree", "hut", "hall", "grove", "pool_table", "wall_panel"} <= names

    def test_lookup(self):
        assert kind("tree").name == "tree"

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            kind("spaceship")

    def test_catalog_returns_copy(self):
        snapshot = catalog()
        snapshot["fake"] = None
        assert "fake" not in catalog()

    def test_all_kinds_valid_ranges(self):
        for k in catalog().values():
            assert 0 < k.triangles[0] <= k.triangles[1]
            assert 0 < k.radius[0] <= k.radius[1]
            assert 0.0 <= k.luminance <= 1.0
            assert 0.0 <= k.contrast <= 1.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ObjectKind("bad", (0, 10), (1.0, 2.0), 0.5, 0.5)
        with pytest.raises(ValueError):
            ObjectKind("bad", (10, 5), (1.0, 2.0), 0.5, 0.5)
        with pytest.raises(ValueError):
            ObjectKind("bad", (1, 10), (2.0, 1.0), 0.5, 0.5)
        with pytest.raises(ValueError):
            ObjectKind("bad", (1, 10), (1.0, 2.0), 1.5, 0.5)


class TestSceneObject:
    def _obj(self, x=0.0, y=0.0, radius=1.0):
        return SceneObject(
            object_id=1,
            kind_name="tree",
            center=Vec3(x, y, radius),
            radius=radius,
            triangles=1000,
            luminance=0.3,
            contrast=0.4,
            texture_seed=42,
        )

    def test_ground_position(self):
        obj = self._obj(3.0, 4.0)
        assert obj.ground_position == Vec2(3.0, 4.0)

    def test_ground_distance(self):
        obj = self._obj(3.0, 4.0)
        assert obj.ground_distance_to(Vec2(0, 0)) == 5.0

    def test_is_near_boundary_inclusive(self):
        obj = self._obj(3.0, 4.0)
        assert obj.is_near(Vec2(0, 0), 5.0)
        assert not obj.is_near(Vec2(0, 0), 4.99)

    def test_is_near_negative_cutoff_raises(self):
        with pytest.raises(ValueError):
            self._obj().is_near(Vec2(0, 0), -1.0)

    def test_invalid_radius_raises(self):
        with pytest.raises(ValueError):
            SceneObject(1, "tree", Vec3(0, 0, 0), -1.0, 100, 0.3, 0.4, 0)

    def test_invalid_triangles_raises(self):
        with pytest.raises(ValueError):
            SceneObject(1, "tree", Vec3(0, 0, 0), 1.0, 0, 0.3, 0.4, 0)


class TestMakeObject:
    def test_values_within_kind_ranges(self):
        rng = np.random.default_rng(7)
        tree = kind("tree")
        for i in range(50):
            obj = make_object(i, tree, Vec2(1.0, 2.0), 0.0, rng)
            assert tree.triangles[0] <= obj.triangles <= tree.triangles[1]
            assert tree.radius[0] <= obj.radius <= tree.radius[1]
            assert 0.0 <= obj.luminance <= 1.0

    def test_grounded_object_sits_on_terrain(self):
        rng = np.random.default_rng(7)
        obj = make_object(0, kind("rock"), Vec2(0, 0), terrain_height=5.0, rng=rng)
        assert obj.center.z == pytest.approx(5.0 + obj.radius)

    def test_deterministic_given_rng_seed(self):
        a = make_object(0, kind("tree"), Vec2(0, 0), 0.0, np.random.default_rng(3))
        b = make_object(0, kind("tree"), Vec2(0, 0), 0.0, np.random.default_rng(3))
        assert a == b
