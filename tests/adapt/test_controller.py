"""Unit tests for the ABR controller: ladder, hysteresis, drops, accounting.

The controller is pure arithmetic over the observation stream, so every
decision is pinned with hand-built estimator feeds — no simulator in
this file.
"""

import pytest

from repro.adapt import AbrConfig, AbrController, crf_size_scale
from repro.net import EstimatorConfig

DEADLINE_MS = 12.0
NOMINAL_BYTES = 150_000.0


def controller(**overrides):
    config_kwargs = dict(
        estimator=EstimatorConfig(warmup_samples=2),
    )
    config_kwargs.update(overrides)
    return AbrController(
        AbrConfig(**config_kwargs),
        player_id=0,
        base_crf=23.0,
        deadline_ms=DEADLINE_MS,
        nominal_bytes=NOMINAL_BYTES,
    )


def feed_rate(ctl, now_ms, rate_mbps, n=1, size_bytes=NOMINAL_BYTES):
    """Feed n completed transfers observed at ``rate_mbps``."""
    megabits = size_bytes * 8.0 / 1e6
    duration_ms = megabits / rate_mbps * 1000.0
    for i in range(n):
        ctl.observe_transfer(now_ms + i, size_bytes, duration_ms)
    return now_ms + n


class TestSizeScale:
    def test_base_is_unity(self):
        assert crf_size_scale(23.0, 23.0) == 1.0

    def test_six_crf_halves(self):
        assert crf_size_scale(29.0, 23.0) == pytest.approx(0.5)
        assert crf_size_scale(17.0, 23.0) == pytest.approx(2.0)

    def test_scaled_bytes_floor_is_one(self):
        ctl = controller()
        ctl.rung = len(ctl.ladder) - 1
        assert ctl.scaled_bytes(1) >= 1


class TestConfigValidation:
    def test_defaults_valid(self):
        AbrConfig()

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            AbrConfig(ladder=())

    def test_out_of_range_crf_rejected(self):
        with pytest.raises(ValueError, match="\\[0, 51\\]"):
            AbrConfig(ladder=(22.0, 60.0))

    def test_duplicate_rungs_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            AbrConfig(ladder=(22.0, 22.0))

    def test_inverted_watermarks_rejected(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AbrConfig(high_watermark=0.5, low_watermark=0.6)

    def test_drop_margin_below_high_watermark_rejected(self):
        with pytest.raises(ValueError, match="drop_margin"):
            AbrConfig(high_watermark=0.9, drop_margin=0.8)

    def test_bad_throttle_rejected(self):
        with pytest.raises(ValueError, match="prefetch_throttle"):
            AbrConfig(prefetch_throttle=0.5)


class TestLadder:
    def test_starts_at_base_rung(self):
        ctl = controller()
        assert ctl.crf == 23.0
        assert not ctl.degraded
        assert ctl.base_crf in ctl.ladder

    def test_holds_rung_during_warmup(self):
        ctl = controller()
        assert ctl.on_frame(0.0) is None
        assert ctl.crf == 23.0

    def test_steps_down_when_forecast_blows_deadline(self):
        ctl = controller()
        # 1.2 Mbit at 10 Mbit/s = 120 ms >> deadline.
        feed_rate(ctl, 0.0, 10.0, n=3)
        assert ctl.on_frame(100.0) == "down"
        assert ctl.degraded
        assert ctl.steps_down == 1

    def test_steps_up_when_better_rung_fits(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 10.0, n=3)
        assert ctl.on_frame(10.0) == "down"
        # Link recovers; enough samples for the EWMA (alpha 0.3) to flush
        # the congested history out of the smoothed unit delay.
        feed_rate(ctl, 20.0, 1000.0, n=15)
        assert ctl.on_frame(40.0) == "up"
        assert ctl.crf == 23.0
        assert ctl.steps_up == 1

    def test_dwell_blocks_consecutive_steps(self):
        ctl = controller(dwell_ms=500.0)
        feed_rate(ctl, 0.0, 5.0, n=3)
        assert ctl.on_frame(10.0) == "down"
        assert ctl.on_frame(200.0) is None  # inside the dwell
        assert ctl.on_frame(511.0) == "down"  # dwell expired

    def test_never_steps_below_bottom_rung(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 0.5, n=3)
        for t in range(1, 30):
            ctl.on_frame(float(t))
        assert ctl.rung == len(ctl.ladder) - 1
        assert ctl.crf == max(ctl.ladder)

    def test_never_steps_above_base_even_on_fast_link(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 10_000.0, n=5)
        assert ctl.on_frame(10.0) is None
        assert ctl.rung == ctl.ladder.index(23.0)

    def test_timeline_records_every_step(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 10.0, n=3)
        ctl.on_frame(10.0)
        feed_rate(ctl, 20.0, 1000.0, n=15)
        ctl.on_frame(40.0)
        assert ctl.crf_timeline[0] == (0.0, 23.0)
        assert len(ctl.crf_timeline) == 3
        assert ctl.crf_timeline[-1][1] == 23.0


class TestThrottle:
    def test_unity_at_base_quality(self):
        ctl = controller(prefetch_throttle=1.8)
        assert ctl.thresh_scale() == 1.0

    def test_throttle_applied_while_degraded(self):
        ctl = controller(prefetch_throttle=1.8)
        feed_rate(ctl, 0.0, 5.0, n=3)
        ctl.on_frame(10.0)
        assert ctl.degraded
        assert ctl.thresh_scale() == 1.8


class TestDropPolicy:
    def test_no_drop_during_warmup(self):
        ctl = controller()
        assert not ctl.should_drop(0.0, NOMINAL_BYTES)

    def test_drops_when_forecast_hopeless(self):
        ctl = controller(drop_margin=1.4)
        # 1.2 Mbit at 1 Mbit/s = 1200 ms >> 1.4 * 12 ms.
        feed_rate(ctl, 0.0, 1.0, n=3)
        assert ctl.should_drop(10.0, NOMINAL_BYTES)
        assert ctl.drops == 1

    def test_no_drop_when_forecast_fits(self):
        ctl = controller()
        feed_rate(ctl, 0.0, 1000.0, n=3)
        assert not ctl.should_drop(10.0, NOMINAL_BYTES)
        assert ctl.drops == 0

    def test_consecutive_drop_cap_forces_fetch(self):
        ctl = controller(max_consecutive_drops=2)
        feed_rate(ctl, 0.0, 1.0, n=3)
        assert ctl.should_drop(10.0, NOMINAL_BYTES)
        assert ctl.should_drop(11.0, NOMINAL_BYTES)
        # Cap reached: the third frame must fetch to refresh the estimator.
        assert not ctl.should_drop(12.0, NOMINAL_BYTES)

    def test_observe_resets_consecutive_drops(self):
        ctl = controller(max_consecutive_drops=2)
        feed_rate(ctl, 0.0, 1.0, n=3)
        assert ctl.should_drop(10.0, NOMINAL_BYTES)
        feed_rate(ctl, 20.0, 1.0, n=1)  # a real fetch completed
        assert ctl.should_drop(21.0, NOMINAL_BYTES)
        assert ctl.should_drop(22.0, NOMINAL_BYTES)

    def test_drop_policy_disabled(self):
        ctl = controller(drop_policy=False)
        feed_rate(ctl, 0.0, 1.0, n=3)
        assert not ctl.should_drop(10.0, NOMINAL_BYTES)


class TestAccounting:
    def test_mean_crf_time_weighted(self):
        ctl = controller(dwell_ms=0.0)
        # Step down at t=100 (one rung: 23 -> 25 with the default ladder).
        feed_rate(ctl, 0.0, 5.0, n=3)
        ctl.on_frame(100.0)
        stepped_crf = ctl.crf
        expected = (100.0 * 23.0 + 100.0 * stepped_crf) / 200.0
        assert ctl.mean_crf(200.0) == pytest.approx(expected)

    def test_mean_crf_before_any_step(self):
        ctl = controller()
        assert ctl.mean_crf(500.0) == pytest.approx(23.0)
        assert ctl.mean_crf(0.0) == 23.0

    def test_degraded_ms(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 5.0, n=3)
        ctl.on_frame(100.0)  # degraded from t=100
        feed_rate(ctl, 150.0, 2000.0, n=15)
        ctl.on_frame(300.0)  # recovered at t=300
        assert ctl.degraded_ms(1000.0) == pytest.approx(200.0)

    def test_recovery_after_ms(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 5.0, n=3)
        ctl.on_frame(100.0)  # degraded before the episode ends at 250
        feed_rate(ctl, 150.0, 2000.0, n=15)
        ctl.on_frame(400.0)  # back at base 150 ms after the episode end
        assert ctl.recovery_after_ms(250.0) == pytest.approx(150.0)

    def test_recovery_none_when_never_recovered(self):
        ctl = controller(dwell_ms=0.0)
        feed_rate(ctl, 0.0, 5.0, n=3)
        ctl.on_frame(100.0)
        assert ctl.recovery_after_ms(250.0) is None

    def test_recovery_zero_when_never_degraded(self):
        ctl = controller()
        assert ctl.recovery_after_ms(250.0) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            AbrController(AbrConfig(), 0, base_crf=23.0, deadline_ms=0.0,
                          nominal_bytes=1000.0)
        with pytest.raises(ValueError, match="nominal_bytes"):
            AbrController(AbrConfig(), 0, base_crf=23.0, deadline_ms=10.0,
                          nominal_bytes=0.0)
