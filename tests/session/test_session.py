"""Unit tests for the session supervision subsystem.

These exercise the membership state machine, the heartbeat failure
detector, and admission control in isolation — with a bare Simulator and
stub admission callbacks, no game worlds — so the timing arithmetic is
checked exactly.
"""

import pytest

from repro.core.constraint import BandwidthBudget, satisfies_bandwidth_constraint
from repro.faults import ChurnSchedule, CrashEvent, JoinEvent, LeaveEvent
from repro.session import (
    ACTIVE,
    ALLOWED_TRANSITIONS,
    CRASHED,
    IDLE,
    JOINING,
    LEFT,
    SUSPECT,
    WARMING,
    AdmissionController,
    InvariantChecker,
    InvariantViolation,
    SessionSupervisor,
    SupervisorConfig,
)
from repro.sim import Simulator


def permissive_admission(max_players=8):
    """An admission controller on an effectively infinite link."""
    return AdmissionController(
        budget=BandwidthBudget(capacity_mbps=1e9),
        be_kbps_for=lambda slot: 1.0,
        fi_kbps_for=lambda n: float(n),
        max_players=max_players,
    )


def make_supervisor(schedule, n_initial=2, horizon_ms=10_000.0, config=None,
                    extra_slots=None):
    sim = Simulator()
    if extra_slots is None:
        extra_slots = schedule.new_player_count()
    total = n_initial + extra_slots
    sup = SessionSupervisor(sim, schedule, n_initial, total,
                            config=config, horizon_ms=horizon_ms)
    return sim, sup


class TestStateMachine:
    def test_all_edges_reference_known_states(self):
        from repro.session import membership
        for a, b in ALLOWED_TRANSITIONS:
            assert a in membership.ALL_STATES
            assert b in membership.ALL_STATES

    def test_illegal_transition_trips_invariant(self):
        sim, sup = make_supervisor(ChurnSchedule(), n_initial=1)
        sup.start(lambda slot, rejoining: None, permissive_admission())
        with pytest.raises(InvariantViolation):
            sup._transition(0, WARMING, "nonsense")  # ACTIVE -> WARMING illegal

    def test_initial_roster_seated_active(self):
        sim, sup = make_supervisor(ChurnSchedule(), n_initial=3)
        spawned = []
        sup.start(lambda slot, rejoining: spawned.append(slot),
                  permissive_admission())
        assert spawned == [0, 1, 2]
        assert sup.active_slots() == [0, 1, 2]
        assert [e.cause for e in sup.log] == ["initial"] * 3
        assert [e.epoch for e in sup.log] == [1, 2, 3]


class TestInvariantChecker:
    def test_counts_and_raises(self):
        checker = InvariantChecker()
        checker.require(True, "fine")
        assert checker.checks == 1 and checker.violations == 0
        with pytest.raises(InvariantViolation) as exc:
            checker.require(False, "broken", slot=3, state="idle")
        assert checker.violations == 1
        assert "slot=3" in str(exc.value)


class TestFailureDetector:
    """A silently-dead client must be found by heartbeat age alone."""

    def run_with_silent_client(self, config=None):
        sim, sup = make_supervisor(ChurnSchedule(), n_initial=2,
                                   config=config)
        config = sup.config

        def chatty(slot):
            while sim.now < 5_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        def silent(slot):
            # Heartbeats once, then goes dark at t=1000 without leaving.
            while sim.now < 1_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        def spawn(slot, rejoining):
            sim.spawn(chatty(slot) if slot == 0 else silent(slot))

        sup.start(spawn, permissive_admission())
        sim.run_until(5_000.0)
        return sup

    def test_suspect_then_evict_timing(self):
        sup = self.run_with_silent_client()
        config = sup.config
        events = {e.cause: e for e in sup.log}
        suspect = events["heartbeat-timeout"]
        evict = events["evicted"]
        assert suspect.slot == 1 and suspect.to_state == SUSPECT
        assert evict.slot == 1 and evict.to_state == CRASHED
        # Last heartbeat just before t=1000; SUSPECT at the first scan
        # with age > 400 and eviction at the first scan with age > 1200.
        last_beat = 1_000.0 - 16.0
        assert suspect.t_ms - last_beat > config.suspect_after_ms
        assert suspect.t_ms - last_beat <= (
            config.suspect_after_ms + config.monitor_interval_ms
        )
        assert evict.t_ms - last_beat > config.evict_after_ms
        assert evict.t_ms - last_beat <= (
            config.evict_after_ms + config.monitor_interval_ms
        )

    def test_evicted_client_stays_out(self):
        sup = self.run_with_silent_client()
        assert sup.state(1) == CRASHED
        assert sup.evictions == 1
        assert sup.room_size() == 1
        assert sup.active_slots() == [0]
        assert not sup.poll(1)  # no silent rejoin

    def test_suspect_recovers_on_resumed_heartbeat(self):
        sim, sup = make_supervisor(ChurnSchedule(), n_initial=1)

        def laggy(slot):
            if not sup.poll(slot):
                return
            yield 700.0  # one long frame: past suspect_after, short of evict
            assert sup.state(slot) == SUSPECT
            assert sup.poll(slot)  # heartbeat resumes
            assert sup.state(slot) == ACTIVE
            while sim.now < 2_000.0:  # keep heartbeating to stay ACTIVE
                if not sup.poll(slot):
                    return
                yield 16.0

        sup.start(lambda slot, rejoining: sim.spawn(laggy(slot)),
                  permissive_admission())
        sim.run_until(2_000.0)
        causes = [e.cause for e in sup.log]
        assert causes == ["initial", "heartbeat-timeout", "recovered"]
        assert sup.evictions == 0


class TestChurnDriver:
    def test_join_leave_crash_lifecycle(self):
        schedule = ChurnSchedule(
            joins=(JoinEvent(1_000.0),),
            leaves=(LeaveEvent(2_000.0, slot=0),),
            crashes=(CrashEvent(3_000.0, slot=1),),
        )
        sim, sup = make_supervisor(schedule, n_initial=2)

        def client(slot):
            if sup.state(slot) == WARMING:
                yield 5.0  # warm-up stand-in
                if not sup.activate(slot):
                    return
            while sim.now < 8_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        sup.start(lambda slot, rejoining: sim.spawn(client(slot)),
                  permissive_admission())
        sim.run_until(8_000.0)
        assert sup.joins_requested == sup.joins_admitted == 1
        assert sup.leaves == 1
        assert sup.evictions == 1
        assert sup.state(0) == LEFT
        assert sup.state(1) == CRASHED
        assert sup.state(2) == ACTIVE
        summary = sup.summary()
        assert summary.invariant_violations == 0
        assert summary.final_active == (2,)
        # Join latency covers request -> ACTIVE, warm-up within it.
        stats = summary.stats[2]
        assert stats.join_latency_ms >= stats.warmup_ms > 0

    def test_stale_events_are_counted_not_applied(self):
        schedule = ChurnSchedule(
            leaves=(LeaveEvent(500.0, slot=0), LeaveEvent(900.0, slot=0)),
        )
        sim, sup = make_supervisor(schedule, n_initial=1, extra_slots=0)

        def client(slot):
            while sim.now < 3_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        sup.start(lambda slot, rejoining: sim.spawn(client(slot)),
                  permissive_admission())
        sim.run_until(3_000.0)
        assert sup.leaves == 1
        assert sup.stale_events == 1  # second leave found the slot LEFT

    def test_rejoin_is_a_new_incarnation(self):
        schedule = ChurnSchedule(
            leaves=(LeaveEvent(500.0, slot=0),),
            joins=(JoinEvent(1_500.0, slot=0),),
        )
        sim, sup = make_supervisor(schedule, n_initial=1, extra_slots=0)
        spawns = []

        def client(slot):
            if sup.state(slot) == WARMING:
                yield 5.0
                if not sup.activate(slot):
                    return
            while sim.now < 4_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        def spawn(slot, rejoining):
            spawns.append((slot, rejoining))
            sim.spawn(client(slot))

        sup.start(spawn, permissive_admission())
        sim.run_until(4_000.0)
        assert spawns == [(0, False), (0, True)]
        assert sup.summary().stats[0].incarnations == 2
        assert sup.state(0) == ACTIVE

    def test_crash_mid_handshake_aborts_warmup(self):
        schedule = ChurnSchedule(
            joins=(JoinEvent(1_000.0),),
            crashes=(CrashEvent(1_010.0, slot=1),),
        )
        sim, sup = make_supervisor(schedule, n_initial=1)

        def client(slot):
            if sup.state(slot) == WARMING:
                # Slow warm-up: poll between fetches, as the systems do.
                for _ in range(3):
                    if not sup.poll(slot):
                        return
                    yield 50.0
                if not sup.activate(slot):
                    return
            while sim.now < 6_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        sup.start(lambda slot, rejoining: sim.spawn(client(slot)),
                  permissive_admission())
        sim.run_until(6_000.0)
        # Crash during WARMING: the handshake aborts, the detector evicts.
        assert sup.state(1) == CRASHED
        assert sup.evictions == 1
        assert sup.summary().invariant_violations == 0


class TestAdmissionControl:
    def test_roster_cap(self):
        ctl = permissive_admission(max_players=2)
        decision = ctl.evaluate([0, 1], 2)
        assert not decision and decision.reason == "roster-full"
        assert ctl.evaluate([0], 1).admitted

    def test_constraint2_arithmetic(self):
        # 3 players x 30 Mbps BE + FI fits 200 Mbps at 80% utilization
        # (90+small < 160) but 6 players (180+ > 160) do not.
        ctl = AdmissionController(
            budget=BandwidthBudget(capacity_mbps=200.0),
            be_kbps_for=lambda slot: 30_000.0,
            fi_kbps_for=lambda n: 10.0 * n,
            max_players=16,
        )
        ok = ctl.evaluate([0, 1], 2)
        assert ok.admitted and ok.reason == "ok"
        assert ok.predicted_be_kbps == pytest.approx(90_000.0)
        assert ok.utilization == pytest.approx(90.03 / 200.0)
        full = ctl.evaluate([0, 1, 2, 3, 4], 5)
        assert not full.admitted and full.reason == "constraint-2"

    def test_constraint1_render_check(self):
        ctl = AdmissionController(
            budget=BandwidthBudget(capacity_mbps=1e9),
            be_kbps_for=lambda slot: 1.0,
            fi_kbps_for=lambda n: 1.0,
            max_players=8,
            render_check=lambda slot: slot != 3,
        )
        assert ctl.evaluate([0], 1).admitted
        rejected = ctl.evaluate([0], 3)
        assert not rejected and rejected.reason == "constraint-1"

    def test_validate_rechecks_roster_as_is(self):
        ctl = AdmissionController(
            budget=BandwidthBudget(capacity_mbps=1.0),
            be_kbps_for=lambda slot: 500.0,
            fi_kbps_for=lambda n: 0.0,
            max_players=8,
        )
        assert ctl.validate([0]).admitted  # 0.5 Mbps <= 0.8
        assert not ctl.validate([0, 1]).admitted  # 1.0 > 0.8

    def test_bandwidth_constraint_rejects_negative(self):
        budget = BandwidthBudget(capacity_mbps=100.0)
        with pytest.raises(ValueError):
            satisfies_bandwidth_constraint([-1.0], 0.0, budget)

    def test_queued_join_admitted_after_leave(self):
        """A join refused on capacity retries and lands once room frees."""
        schedule = ChurnSchedule(
            joins=(JoinEvent(1_000.0),),
            leaves=(LeaveEvent(1_500.0, slot=0),),
        )
        sim, sup = make_supervisor(schedule, n_initial=2)
        ctl = permissive_admission(max_players=2)  # full at start

        def client(slot):
            if sup.state(slot) == WARMING:
                yield 5.0
                if not sup.activate(slot):
                    return
            while sim.now < 6_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        sup.start(lambda slot, rejoining: sim.spawn(client(slot)), ctl)
        sim.run_until(6_000.0)
        assert sup.joins_queued == 1
        assert sup.joins_admitted == 1
        assert sup.state(2) == ACTIVE
        # First decision was roster-full, the admitting one came later.
        reasons = [d.reason for _, _, d in sup.decisions]
        assert reasons[0] == "roster-full" and reasons[-1] == "ok"

    def test_join_rejected_after_patience_runs_out(self):
        schedule = ChurnSchedule(joins=(JoinEvent(1_000.0),))
        sim, sup = make_supervisor(schedule, n_initial=2)
        ctl = permissive_admission(max_players=2)  # full forever

        def client(slot):
            while sim.now < 10_000.0:
                if not sup.poll(slot):
                    return
                yield 16.0

        sup.start(lambda slot, rejoining: sim.spawn(client(slot)), ctl)
        sim.run_until(10_000.0)
        assert sup.joins_admitted == 0
        assert sup.joins_rejected == 1
        assert sup.state(2) == IDLE
        reject = [e for e in sup.log if e.cause.startswith("rejected:")]
        assert reject and reject[0].cause == "rejected:roster-full"
        # Patience: gave up within max_admission_wait_ms of the request.
        assert reject[0].t_ms - 1_000.0 <= sup.config.max_admission_wait_ms


class TestSupervisorConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(monitor_interval_ms=0.0),
        dict(suspect_after_ms=500.0, evict_after_ms=400.0),
        dict(admission_retry_ms=-1.0),
        dict(warmup_fetches=0),
        dict(max_players=0),
        dict(utilization_bound=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


class TestChurnParse:
    def test_join_storm_and_rejoin(self):
        schedule = ChurnSchedule.parse("join@2000:3, rejoin@4000:1")
        assert len(schedule.joins) == 4
        assert schedule.new_player_count() == 3
        assert schedule.joins[-1].slot == 1

    def test_flap_expansion(self):
        schedule = ChurnSchedule.parse("flap@3000-9000:2~2000")
        # leave@3000, rejoin@5000, leave@7000, rejoin@9000 (window end).
        assert [e.t_ms for e in schedule.leaves] == [3000.0, 7000.0]
        assert [e.t_ms for e in schedule.joins] == [5000.0, 9000.0]
        assert all(e.slot == 2 for e in schedule.leaves)
        assert all(e.slot == 2 for e in schedule.joins)

    def test_events_sorted_orders_joins_before_leaves(self):
        schedule = ChurnSchedule.parse("leave@1000:0,rejoin@1000:0,crash@1000:1")
        kinds = [type(e).__name__ for e in schedule.events_sorted()]
        assert kinds == ["JoinEvent", "LeaveEvent", "CrashEvent"]

    def test_validate_slots(self):
        schedule = ChurnSchedule.parse("leave@1000:5")
        with pytest.raises(ValueError, match="slot 5"):
            schedule.validate_slots(4)
        schedule.validate_slots(6)

    @pytest.mark.parametrize("bad", [
        "bogus@100", "join@", "leave@100", "crash@100:x",
        "flap@200-100:1", "flap@100-200:1~0", "join@100:0",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            ChurnSchedule.parse(bad)

    def test_empty_spec(self):
        assert not ChurnSchedule.parse("")
        assert not ChurnSchedule.parse(" , ")
