"""Unit tests for the cross-peer desync validator and state digests.

Detection must be exact: a corrupted submitted hash raises an alarm on
the next validation round (bounded by the cadence), a clean exchange
never does, recovery is stamped on the first clean round after an
alarm, and the digest-exchange traffic is accounted on every round.
The state-digest helpers must distinguish caches that differ in any
entry, order, size, confirmation state, or oracle digest.
"""

import pytest

from repro.core.cache import CachedFrame, FrameCache
from repro.geometry import Vec2
from repro.session import (
    SlotSyncStats,
    SyncConfig,
    SyncValidator,
    cache_state_digest,
    state_digest,
)
from repro.session.sync import CORRUPTION_MASK


class FakeSim:
    """Just enough of the simulator for driving run_round by hand."""

    def __init__(self):
        self.now = 0.0


def make_frame(grid_point, speculative=False, digest=0, size_bytes=100):
    return CachedFrame(
        grid_point=grid_point,
        position=Vec2(float(grid_point[0]), float(grid_point[1])),
        leaf="leaf-a",
        near_ids=frozenset({1}),
        payload=None,
        size_bytes=size_bytes,
        inserted_ms=0.0,
        last_used_ms=0.0,
        speculative=speculative,
        digest=digest,
    )


def make_validator(sim, n_slots=2, injected=None, cadence_ms=250.0,
                   resync=True, hashes=None):
    """A validator over constant authoritative hashes and a fault map.

    ``injected`` maps slot -> injection t_ms; the injection fires in the
    round whose window covers it, mirroring FaultInjector.desync_event_ms.
    """
    injected = injected or {}
    hashes = hashes or {}
    recorded = []
    resyncs = []

    def injected_at(slot, since_ms, until_ms):
        t = injected.get(slot)
        if t is not None and since_ms < t <= until_ms:
            return t
        return None

    validator = SyncValidator(
        sim=sim,
        config=SyncConfig(cadence_ms=cadence_ms, resync=resync),
        horizon_ms=10_000.0,
        n_slots=n_slots,
        roster=lambda: range(n_slots),
        authoritative=lambda slot: hashes.get(slot, 0x1234 + slot),
        injected_at=injected_at,
        record_bytes=recorded.append,
        request_resync=resyncs.append,
    )
    return validator, recorded, resyncs


class TestSyncConfig:
    def test_defaults_valid(self):
        config = SyncConfig()
        assert config.cadence_ms == 250.0
        assert config.resync

    @pytest.mark.parametrize("kwargs", [
        dict(cadence_ms=0.0),
        dict(cadence_ms=-5.0),
        dict(digest_bytes=4),
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyncConfig(**kwargs)


class TestCleanRounds:
    def test_no_alarms_and_traffic_accounted(self):
        sim = FakeSim()
        validator, recorded, resyncs = make_validator(sim, n_slots=3)
        for round_no in range(4):
            sim.now = (round_no + 1) * 250.0
            validator.run_round()
        assert validator.total_alarms == 0
        assert resyncs == []
        # 3 peers upload, server fans out to the other 2: 40 * 3 * 2.
        assert recorded == [240] * 4
        assert validator.rounds == 4

    def test_empty_roster_is_a_noop(self):
        sim = FakeSim()
        validator, recorded, _ = make_validator(sim, n_slots=0)
        sim.now = 250.0
        validator.run_round()
        assert recorded == []
        assert validator.total_alarms == 0


class TestDetection:
    def test_injected_desync_detected_within_one_cadence(self):
        sim = FakeSim()
        validator, _, resyncs = make_validator(
            sim, injected={1: 600.0}, cadence_ms=250.0
        )
        for round_no in range(4):
            sim.now = (round_no + 1) * 250.0
            validator.run_round()
        assert validator.total_alarms == 1
        alarm = validator.alarms[0]
        assert alarm.slot == 1
        assert alarm.t_ms == 750.0  # first round boundary after 600 ms
        assert alarm.detection_ms == 150.0
        assert alarm.detection_ms <= 250.0
        assert alarm.observed == alarm.expected ^ CORRUPTION_MASK
        assert resyncs == [1]

    def test_per_slot_stats_and_recovery(self):
        sim = FakeSim()
        validator, _, _ = make_validator(sim, injected={0: 400.0})
        for round_no in range(4):
            sim.now = (round_no + 1) * 250.0
            validator.run_round()
        stats = validator.stats[0]
        assert isinstance(stats, SlotSyncStats)
        assert stats.alarms == 1
        assert stats.resyncs == 1
        assert stats.max_detection_ms == 100.0
        # Alarm at 500 ms, next clean round at 750 ms: 250 ms to recover.
        assert stats.recovery_ms == 250.0
        # The clean slot is untouched.
        assert validator.stats[1] == SlotSyncStats()

    def test_resync_disabled_alarms_without_recovery(self):
        sim = FakeSim()
        validator, _, resyncs = make_validator(
            sim, injected={0: 100.0}, resync=False
        )
        sim.now = 250.0
        validator.run_round()
        sim.now = 500.0
        validator.run_round()
        assert validator.total_alarms == 1
        assert resyncs == []
        assert validator.stats[0].resyncs == 0
        assert validator.stats[0].recovery_ms == 0.0

    def test_max_detection_ms_zero_without_alarms(self):
        sim = FakeSim()
        validator, _, _ = make_validator(sim)
        assert validator.max_detection_ms() == 0.0


class TestProcessCadence:
    def test_process_yields_until_horizon(self):
        sim = FakeSim()
        validator, _, _ = make_validator(sim, cadence_ms=300.0)
        validator.horizon_ms = 1000.0
        gen = validator.process()
        delays = []
        try:
            while True:
                delays.append(next(gen))
                sim.now += delays[-1]
                # run_round happens inside process() after each yield
        except StopIteration:
            pass
        assert delays == [300.0, 300.0, 300.0]
        assert sim.now == 900.0


class TestCacheStateDigest:
    def test_sensitive_to_membership_order_and_flags(self):
        def digest_of(*frames):
            cache = FrameCache(capacity_bytes=1 << 20)
            for frame in frames:
                cache.insert(frame)
            return cache_state_digest(cache)

        base = digest_of(make_frame((0, 0)), make_frame((1, 1)))
        assert digest_of(make_frame((1, 1)), make_frame((0, 0))) != base
        assert digest_of(make_frame((0, 0))) != base
        assert digest_of(make_frame((0, 0)), make_frame((1, 2))) != base
        assert digest_of(
            make_frame((0, 0)), make_frame((1, 1), size_bytes=101)
        ) != base
        assert digest_of(
            make_frame((0, 0)), make_frame((1, 1), speculative=True)
        ) != base
        assert digest_of(
            make_frame((0, 0)), make_frame((1, 1), digest=7)
        ) != base
        assert digest_of(make_frame((0, 0)), make_frame((1, 1))) == base

    def test_state_digest_sensitive_to_slot_and_frame(self):
        cache = FrameCache(capacity_bytes=1 << 20)
        cache.insert(make_frame((0, 0)))
        base = state_digest(100.0, 1.0, 2.0, 0.5, 42, cache, seed_slot=0)
        assert state_digest(100.0, 1.0, 2.0, 0.5, 42, cache, seed_slot=1) != base
        assert state_digest(100.0, 1.0, 2.0, 0.5, 43, cache, seed_slot=0) != base
        assert state_digest(101.0, 1.0, 2.0, 0.5, 42, cache, seed_slot=0) != base
        assert state_digest(100.0, 1.0, 2.0, 0.5, 42, cache, seed_slot=0) == base
