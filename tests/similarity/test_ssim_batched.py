"""Bit-identity tests for the batched/stacked SSIM kernels.

The online loop's tiled float32 path scores many frame pairs in one
stacked pass (:func:`ssim_pairs`) or many candidates against one
reference (:func:`ssim_many_stacked`).  Every score must equal the
scalar :func:`ssim` *exactly* — the scalar path is the oracle, and the
session digests assert byte equality downstream.
"""

import numpy as np

from repro.perf import FrameArena
from repro.similarity import (
    prepare_reference,
    ssim,
    ssim_many,
    ssim_many_stacked,
    ssim_pairs,
)
from repro.similarity.ssim import _WINDOW, _blur


def noise_frame(seed, shape=(16, 32)):
    return np.random.default_rng(seed).random(shape).astype(np.float32)


class TestHoistedWindow:
    def test_window_is_precomputed_and_normalized(self):
        assert _WINDOW.ndim == 1
        assert _WINDOW.sum() == 1.0 or abs(_WINDOW.sum() - 1.0) < 1e-12
        assert len(_WINDOW) % 2 == 1  # symmetric, odd tap count

    def test_blur_stack_matches_per_frame(self):
        """Blurring an (N, H, W) stack == blurring each frame alone."""
        stack = np.stack([noise_frame(s).astype(np.float64) for s in range(7)])
        whole = _blur(stack)
        for row in range(stack.shape[0]):
            np.testing.assert_array_equal(whole[row], _blur(stack[row]))

    def test_blur_out_and_scratch_buffers(self):
        img = noise_frame(3).astype(np.float64)
        out = np.empty_like(img)
        scratch = np.empty_like(img)
        result = _blur(img, out=out, scratch=scratch)
        assert result is out
        np.testing.assert_array_equal(result, _blur(img))


class TestSsimPairs:
    def test_matches_scalar_exactly(self):
        pairs = [(noise_frame(s), noise_frame(s + 50)) for s in range(9)]
        batched = ssim_pairs(pairs)
        for (a, b), value in zip(pairs, batched):
            assert float(value) == ssim(a, b)

    def test_arena_backed_matches(self):
        pairs = [(noise_frame(s), noise_frame(s + 9)) for s in range(6)]
        plain = ssim_pairs(pairs)
        arena = FrameArena()
        pooled = ssim_pairs(pairs, arena=arena)
        np.testing.assert_array_equal(plain, pooled)
        assert arena.growths > 0

    def test_arena_reuse_across_flushes_still_exact(self):
        arena = FrameArena()
        for round_index in range(3):
            pairs = [
                (noise_frame(round_index * 10 + s), noise_frame(s + 70))
                for s in range(5)
            ]
            arena.reset()
            batched = ssim_pairs(pairs, arena=arena)
            for (a, b), value in zip(pairs, batched):
                assert float(value) == ssim(a, b)
        assert arena.reuse_ratio > 0.5

    def test_single_pair(self):
        a, b = noise_frame(1), noise_frame(2)
        assert float(ssim_pairs([(a, b)])[0]) == ssim(a, b)

    def test_identical_pair_is_one(self):
        f = noise_frame(4)
        assert float(ssim_pairs([(f, f)])[0]) == ssim(f, f)


class TestSsimManyStacked:
    def test_matches_scalar_and_prepared(self):
        ref = noise_frame(0)
        candidates = np.stack([noise_frame(s) for s in range(1, 8)])
        stacked = ssim_many_stacked(prepare_reference(ref), candidates)
        looped = ssim_many(ref, candidates)
        np.testing.assert_array_equal(stacked, looped)
        for candidate, value in zip(candidates, stacked):
            assert float(value) == ssim(ref, candidate)

    def test_arena_backed_matches(self):
        prepared = prepare_reference(noise_frame(20))
        candidates = np.stack([noise_frame(s) for s in range(21, 26)])
        plain = ssim_many_stacked(prepared, candidates)
        pooled = ssim_many_stacked(prepared, candidates, arena=FrameArena())
        np.testing.assert_array_equal(plain, pooled)
