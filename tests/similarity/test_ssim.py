"""Tests for the SSIM implementation and similarity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    SSIM_GOOD,
    adjacent_similarities,
    best_case_similarities,
    fraction_above,
    is_similar,
    prepare_reference,
    similarity_cdf,
    ssim,
    ssim_many,
    ssim_map,
    ssim_with,
)


def noise_frame(seed, shape=(32, 64)):
    return np.random.default_rng(seed).random(shape).astype(np.float32)


def ramp_frame(shape=(32, 64)):
    """A deterministic textured frame (no RNG) for pinned-value tests."""
    y, x = np.mgrid[0 : shape[0], 0 : shape[1]]
    return 0.5 + 0.25 * np.sin(x / 3.0) + 0.25 * np.cos(y / 5.0)


class TestSsim:
    def test_identical_frames_are_one(self):
        f = noise_frame(0)
        assert ssim(f, f) == pytest.approx(1.0, abs=1e-6)

    def test_independent_noise_near_zero(self):
        assert ssim(noise_frame(1), noise_frame(2)) < 0.1

    def test_symmetry(self):
        a, b = noise_frame(3), noise_frame(4)
        assert ssim(a, b) == pytest.approx(ssim(b, a), abs=1e-9)

    def test_bounded(self):
        for seed in range(5):
            value = ssim(noise_frame(seed), noise_frame(seed + 10))
            assert -1.0 <= value <= 1.0

    def test_small_perturbation_high_ssim(self):
        f = noise_frame(5)
        g = np.clip(f + 0.005, 0.0, 1.0)
        assert ssim(f, g) > 0.98

    def test_constant_frames_identical_means(self):
        a = np.full((16, 16), 0.5, dtype=np.float32)
        assert ssim(a, a.copy()) == pytest.approx(1.0)

    def test_luminance_shift_reduces_ssim(self):
        f = noise_frame(6)
        shifted = np.clip(f * 0.5, 0, 1)
        assert ssim(f, shifted) < ssim(f, f)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ssim(noise_frame(0, (8, 8)), noise_frame(0, (8, 16)))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4, 3)), np.zeros((4, 4, 3)))

    def test_tiny_frames_raise(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_bad_data_range(self):
        with pytest.raises(ValueError):
            ssim(noise_frame(0), noise_frame(0), data_range=0)

    def test_map_shape(self):
        f, g = noise_frame(7), noise_frame(8)
        assert ssim_map(f, g).shape == f.shape

    def test_translation_sensitivity(self):
        """A shifted textured frame scores lower — the property the whole
        near-object analysis rests on."""
        f = noise_frame(9, (64, 128))
        shifted = np.roll(f, 3, axis=1)
        assert ssim(f, shifted) < 0.5

    @settings(max_examples=10)
    @given(st.integers(min_value=0, max_value=1000))
    def test_reflexive_property(self, seed):
        f = noise_frame(seed)
        assert ssim(f, f) == pytest.approx(1.0, abs=1e-6)


class TestPinnedValues:
    """Reference values the implementation must keep reproducing exactly."""

    def test_identical_frames_exactly_one(self):
        # Identical inputs make numerator and denominator the same floats,
        # so the map is exactly 1.0 everywhere, not just approximately.
        f = noise_frame(11)
        assert ssim(f, f.copy()) == 1.0

    def test_inverted_constant_frames_analytic(self):
        # Constant frames have zero variance, so SSIM reduces to the
        # luminance term (2 mu_x mu_y + C1) / (mu_x^2 + mu_y^2 + C1)
        # with C1 = (0.01 * data_range)^2.
        a = np.full((16, 16), 0.25)
        b = np.full((16, 16), 0.75)
        expected = (2 * 0.25 * 0.75 + 1e-4) / (0.25**2 + 0.75**2 + 1e-4)
        assert ssim(a, b) == pytest.approx(expected, abs=1e-12)

    def test_inverted_textured_frame_strongly_negative(self):
        # b = 1 - a flips the sign of every covariance: sigma_xy = -sigma_x^2,
        # driving the structure term (and the mean SSIM) deeply negative.
        f = noise_frame(12).astype(np.float64)
        assert ssim(f, 1.0 - f) < -0.9

    def test_small_shift_pinned(self):
        # Golden value for a 2-column roll of the deterministic ramp frame;
        # any change to the window, constants, or filtering shows up here.
        f = ramp_frame()
        shifted = np.roll(f, 2, axis=1)
        assert ssim(f, shifted) == pytest.approx(0.6979857490228534, abs=1e-12)


class TestSsimMany:
    def test_matches_per_pair_ssim(self):
        ref = noise_frame(20)
        candidates = [noise_frame(21 + i) for i in range(6)]
        batch = ssim_many(ref, candidates)
        per_pair = np.array([ssim(ref, c) for c in candidates])
        assert np.max(np.abs(batch - per_pair)) <= 1e-12

    def test_matches_including_near_identical(self):
        ref = noise_frame(30)
        candidates = [ref.copy(), np.clip(ref + 0.01, 0, 1), noise_frame(31)]
        batch = ssim_many(ref, candidates)
        per_pair = np.array([ssim(ref, c) for c in candidates])
        assert np.max(np.abs(batch - per_pair)) <= 1e-12
        assert batch[0] == 1.0

    def test_prepared_reference_reusable(self):
        ref_frame = noise_frame(40)
        prepared = prepare_reference(ref_frame)
        for seed in range(41, 44):
            candidate = noise_frame(seed)
            assert ssim_with(prepared, candidate) == pytest.approx(
                ssim(ref_frame, candidate), abs=1e-12
            )

    def test_shape_mismatch_raises(self):
        prepared = prepare_reference(noise_frame(0))
        with pytest.raises(ValueError):
            ssim_with(prepared, noise_frame(0, (16, 16)))


class TestIsSimilar:
    def test_threshold_behaviour(self):
        f = noise_frame(1)
        assert is_similar(f, f)
        assert not is_similar(noise_frame(1), noise_frame(2))

    def test_invalid_threshold(self):
        f = noise_frame(0)
        with pytest.raises(ValueError):
            is_similar(f, f, threshold=0.0)
        with pytest.raises(ValueError):
            is_similar(f, f, threshold=1.5)


class TestSequenceMetrics:
    def test_adjacent_similarities_length(self):
        frames = [noise_frame(i) for i in range(4)]
        sims = adjacent_similarities(frames)
        assert len(sims) == 3

    def test_adjacent_identical_frames(self):
        f = noise_frame(0)
        sims = adjacent_similarities([f, f.copy(), f.copy()])
        assert all(s == pytest.approx(1.0, abs=1e-6) for s in sims)

    def test_adjacent_needs_two(self):
        with pytest.raises(ValueError):
            adjacent_similarities([noise_frame(0)])

    def test_best_case_picks_maximum(self):
        target = noise_frame(1)
        others = [noise_frame(2), target.copy(), noise_frame(3)]
        best = best_case_similarities([target], others)
        assert best[0] == pytest.approx(1.0, abs=1e-6)

    def test_best_case_stride(self):
        target = noise_frame(1)
        others = [noise_frame(2), target.copy(), noise_frame(3)]
        # Stride 2 skips the exact match at index 1.
        best = best_case_similarities([target], others, stride=2)
        assert best[0] < 0.5

    def test_best_case_validation(self):
        with pytest.raises(ValueError):
            best_case_similarities([], [noise_frame(0)])
        with pytest.raises(ValueError):
            best_case_similarities([noise_frame(0)], [noise_frame(1)], stride=0)

    def test_fraction_above(self):
        assert fraction_above([0.95, 0.85, 0.99], threshold=0.9) == pytest.approx(2 / 3)
        assert fraction_above([0.5], threshold=0.9) == 0.0
        with pytest.raises(ValueError):
            fraction_above([])

    def test_similarity_cdf_monotone(self):
        values = [0.1, 0.5, 0.7, 0.95]
        cdf = similarity_cdf(values, points=51)
        assert cdf.shape == (51, 2)
        ys = cdf[:, 1]
        assert np.all(np.diff(ys) >= 0)
        assert ys[0] == 0.0
        assert ys[-1] == 1.0

    def test_similarity_cdf_validation(self):
        with pytest.raises(ValueError):
            similarity_cdf([])
        with pytest.raises(ValueError):
            similarity_cdf([0.5], points=1)

    def test_ssim_good_constant(self):
        assert SSIM_GOOD == 0.90
