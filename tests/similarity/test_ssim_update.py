"""Tests for shared-moment SSIM updates (``ssim_map_update`` and friends).

The dist-thresh probe loop re-scores near-identical frames against one
fixed reference; the update API reuses the previous candidate's Gaussian
moments for rows the dirty-block map calls clean.  These tests pin the
only property that matters: the incremental path is *bit-identical* to
the from-scratch one, for any dirty-row pattern — including degenerate
all-dirty / all-clean masks.
"""

import numpy as np
import pytest

from repro import perf
from repro.codec import dirty_row_mask, frame_block_digests
from repro.similarity import (
    CandidateMoments,
    prepare_reference,
    ssim_map_with,
    ssim_with,
    ssim_with_update,
)
from repro.similarity.ssim import ssim_map_update


def _frame_pair(seed=0, shape=(32, 48)):
    """A reference frame and a band-perturbed candidate sequence."""
    rng = np.random.default_rng(seed)
    base = rng.random(shape)
    frames = [rng.random(shape)]
    for step in range(1, 4):
        nxt = frames[-1].copy()
        lo = (step * 7) % (shape[0] - 6)
        nxt[lo:lo + 5] = rng.random((5, shape[1]))
        frames.append(nxt)
    return base, frames


class TestBitIdentity:
    def test_update_matches_scratch_over_sequence(self):
        """Incremental maps equal from-scratch maps for every frame."""
        base, frames = _frame_pair()
        reference = prepare_reference(base)
        prev = None
        digests = None
        for frame in frames:
            new_digests = frame_block_digests(frame)
            dirty_rows = None
            if digests is not None:
                dirty_rows = dirty_row_mask(
                    digests != new_digests, frame.shape[0]
                )
            updated_map, prev = ssim_map_update(
                reference, frame, prev=prev, dirty_rows=dirty_rows
            )
            scratch_map = ssim_map_with(reference, frame)
            assert np.array_equal(updated_map, scratch_map)
            digests = new_digests

    def test_scalar_scores_match(self):
        """ssim_with_update == ssim_with for every frame under honest masks."""
        base, frames = _frame_pair(seed=3)
        reference = prepare_reference(base)
        prev = None
        digests = None
        for frame in frames:
            new_digests = frame_block_digests(frame)
            dirty_rows = None
            if digests is not None:
                dirty_rows = dirty_row_mask(
                    digests != new_digests, frame.shape[0]
                )
            score, prev = ssim_with_update(
                reference, frame, prev=prev, dirty_rows=dirty_rows
            )
            assert score == ssim_with(reference, frame)
            digests = new_digests

    def test_all_dirty_mask_equals_full_recompute(self):
        base, frames = _frame_pair(seed=5)
        reference = prepare_reference(base)
        _, moments = ssim_map_update(reference, frames[0])
        all_dirty = np.ones(frames[1].shape[0], dtype=bool)
        updated, _ = ssim_map_update(
            reference, frames[1], prev=moments, dirty_rows=all_dirty
        )
        assert np.array_equal(updated, ssim_map_with(reference, frames[1]))

    def test_all_clean_mask_reuses_everything(self):
        """Identical frame + all-clean mask: zero rows refreshed."""
        base, frames = _frame_pair(seed=7)
        reference = prepare_reference(base)
        _, moments = ssim_map_update(reference, frames[0])
        perf.reset()
        clean = np.zeros(frames[0].shape[0], dtype=bool)
        updated, _ = ssim_map_update(
            reference, frames[0], prev=moments, dirty_rows=clean
        )
        assert np.array_equal(updated, ssim_map_with(reference, frames[0]))
        assert perf.counter("ssim.rows_reused") == frames[0].shape[0]

    def test_moments_are_frozen_snapshots(self):
        base, frames = _frame_pair()
        reference = prepare_reference(base)
        _, moments = ssim_map_update(reference, frames[0])
        assert isinstance(moments, CandidateMoments)
        with pytest.raises(AttributeError):
            moments.mu = None  # frozen dataclass

    def test_reuse_counters_advance(self):
        base, frames = _frame_pair(seed=11)
        reference = prepare_reference(base)
        _, moments = ssim_map_update(reference, frames[0])
        perf.reset()
        dirty = np.zeros(frames[0].shape[0], dtype=bool)
        dirty[:8] = True
        ssim_map_update(reference, frames[0], prev=moments, dirty_rows=dirty)
        total = perf.counter("ssim.rows_total")
        reused = perf.counter("ssim.rows_reused")
        assert total == frames[0].shape[0]
        assert 0 < reused < total
