"""Tests for the seeded link-impairment model (loss, jitter, dips)."""

import pytest

from repro.net import (
    DipEpisode,
    ImpairmentConfig,
    LinkImpairment,
    WifiLink,
)
from repro.sim import Simulator


def run_transfer(link, size_bytes, tag="be"):
    results = {}

    def proc():
        duration = yield link.transfer(size_bytes, tag)
        results["duration"] = duration

    link.sim.spawn(proc())
    link.sim.run()
    return results["duration"]


class TestDipEpisode:
    def test_active_window(self):
        dip = DipEpisode(100.0, 200.0, capacity_factor=0.5)
        assert not dip.active_at(99.9)
        assert dip.active_at(100.0)
        assert dip.active_at(199.9)
        assert not dip.active_at(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DipEpisode(200.0, 100.0)
        with pytest.raises(ValueError):
            DipEpisode(0.0, 1.0, capacity_factor=0.0)
        with pytest.raises(ValueError):
            DipEpisode(0.0, 1.0, capacity_factor=1.5)
        with pytest.raises(ValueError):
            DipEpisode(0.0, 1.0, loss_rate=1.0)


class TestImpairmentConfig:
    def test_default_is_identity(self):
        assert ImpairmentConfig().is_identity

    def test_bursty_preset(self):
        config = ImpairmentConfig.bursty(0.1, seed=5)
        assert config.loss_rate == 0.1
        assert config.jitter_median_ms > 0
        assert not config.is_identity
        assert ImpairmentConfig.bursty(0.0).is_identity

    def test_validation(self):
        with pytest.raises(ValueError):
            ImpairmentConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            ImpairmentConfig(burstiness=1.0)
        with pytest.raises(ValueError):
            ImpairmentConfig(jitter_median_ms=-1.0)
        with pytest.raises(ValueError):
            ImpairmentConfig(rto_ms=-1.0)
        with pytest.raises(ValueError):
            ImpairmentConfig(mtu_bytes=0)


class TestLinkImpairment:
    def test_identity_samples_change_nothing(self):
        model = LinkImpairment(ImpairmentConfig())
        for t in (0.0, 100.0, 5000.0):
            drawn = model.sample(t, 500_000)
            assert drawn.work_scale == 1.0
            assert drawn.extra_latency_ms == 0.0
            assert drawn.lost_segments == 0

    def test_observed_loss_tracks_target(self):
        """Gilbert-Elliott stationary loss ~ the configured rate."""
        target = 0.1
        model = LinkImpairment(ImpairmentConfig(loss_rate=target, seed=3))
        for _ in range(200):
            model.sample(0.0, 100_000)  # ~70 segments each
        assert model.stats.observed_loss_rate == pytest.approx(target, rel=0.25)

    def test_losses_are_bursty(self):
        """Mean burst length well above 1 segment (i.i.d. would be ~1)."""
        model = LinkImpairment(
            ImpairmentConfig(loss_rate=0.1, burstiness=0.85, seed=3)
        )
        for _ in range(200):
            model.sample(0.0, 100_000)
        assert model.stats.lost_segments / model.stats.bursts > 2.0

    def test_work_scale_reflects_retransmits(self):
        model = LinkImpairment(ImpairmentConfig(loss_rate=0.2, seed=1))
        drawn = model.sample(0.0, 1_000_000)
        segments = model.stats.segments
        expected = (segments + drawn.lost_segments) / segments
        assert drawn.work_scale == pytest.approx(expected)
        assert drawn.work_scale >= 1.0

    def test_burst_penalty_escalates(self):
        """Back-to-back bursts pay doubled RTOs, capped."""
        config = ImpairmentConfig(loss_rate=0.3, burstiness=0.5,
                                  rto_ms=10.0, rto_backoff_cap=2, seed=7)
        model = LinkImpairment(config)
        drawn = model.sample(0.0, 2_000_000)
        assert drawn.bursts > 3
        # First three bursts: 10 + 20 + 40; all later ones capped at 40.
        cap_total = 10.0 + 20.0 + 40.0 * (drawn.bursts - 2)
        assert drawn.extra_latency_ms <= cap_total + 10.0  # + jitter slack

    def test_dip_scales_work(self):
        config = ImpairmentConfig(
            dips=(DipEpisode(100.0, 200.0, capacity_factor=0.25),)
        )
        model = LinkImpairment(config)
        assert model.capacity_factor(50.0) == 1.0
        assert model.capacity_factor(150.0) == 0.25
        inside = model.sample(150.0, 100_000)
        outside = model.sample(50.0, 100_000)
        assert inside.work_scale == pytest.approx(4.0)
        assert outside.work_scale == pytest.approx(1.0)

    def test_overlapping_dips_take_min_capacity(self):
        config = ImpairmentConfig(dips=(
            DipEpisode(0.0, 300.0, capacity_factor=0.5),
            DipEpisode(100.0, 200.0, capacity_factor=0.1),
        ))
        model = LinkImpairment(config)
        assert model.capacity_factor(150.0) == 0.1
        assert model.capacity_factor(250.0) == 0.5

    def test_dip_loss_overrides_base(self):
        config = ImpairmentConfig(
            loss_rate=0.01, seed=2,
            dips=(DipEpisode(0.0, 100.0, capacity_factor=1.0, loss_rate=0.4),),
        )
        model = LinkImpairment(config)
        for _ in range(50):
            model.sample(50.0, 100_000)
        assert model.stats.observed_loss_rate > 0.2

    def test_same_seed_same_draws(self):
        a = LinkImpairment(ImpairmentConfig.bursty(0.1, seed=11))
        b = LinkImpairment(ImpairmentConfig.bursty(0.1, seed=11))
        draws_a = [a.sample(t * 10.0, 250_000) for t in range(40)]
        draws_b = [b.sample(t * 10.0, 250_000) for t in range(40)]
        assert draws_a == draws_b


class TestImpairedWifiLink:
    def test_zero_loss_impairment_matches_clean(self):
        clean = WifiLink(Simulator(), capacity_mbps=500.0)
        impaired = WifiLink(
            Simulator(), capacity_mbps=500.0,
            impairment=LinkImpairment(ImpairmentConfig()),
        )
        assert run_transfer(clean, 550_000) == run_transfer(impaired, 550_000)

    def test_loss_slows_transfers(self):
        clean = WifiLink(Simulator(), capacity_mbps=500.0)
        impaired = WifiLink(
            Simulator(), capacity_mbps=500.0,
            impairment=LinkImpairment(ImpairmentConfig.bursty(0.2, seed=4)),
        )
        assert run_transfer(impaired, 550_000) > run_transfer(clean, 550_000)

    def test_abort_pending_transfer(self):
        """Aborting an in-flight transfer frees the medium."""
        sim = Simulator()
        link = WifiLink(
            sim, capacity_mbps=1.0, overhead_ms=0.0,
            impairment=LinkImpairment(ImpairmentConfig.bursty(0.1, seed=1)),
        )
        ev = link.transfer(1_000_000)  # ~8 s at 1 Mbps
        sim.run_until(10.0)
        assert link.abort(ev) is True
        assert not ev.triggered
        sim.run_until(60_000.0)
        assert not ev.triggered  # never fires after an abort
        assert link.active_transfers == 0

    def test_abort_completed_transfer_returns_false(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0)
        ev = link.transfer(1_000)
        sim.run()
        assert ev.triggered
        assert link.abort(ev) is False
