"""Tests for RateTrace: sampling, generators, files, dip composition.

The trace layer must replay bit-identically (seeded generators, frozen
segments), parse trace files with line-numbered errors, and compose
with the existing DipEpisode machinery exactly as documented: dips
stack by min, the trace multiplies in on top.
"""

import math

import pytest

from repro.net import ImpairmentConfig, RateTrace, TRACE_PROFILES
from repro.net.impairment import DipEpisode, LinkImpairment


class TestSampling:
    def test_nominal_before_first_segment(self):
        trace = RateTrace(segments=((1000.0, 0.5),))
        assert trace.factor_at(0.0) == 1.0
        assert trace.factor_at(999.9) == 1.0

    def test_segment_boundaries_inclusive_on_start(self):
        trace = RateTrace(segments=((0.0, 0.8), (500.0, 0.3)))
        assert trace.factor_at(0.0) == 0.8
        assert trace.factor_at(499.9) == 0.8
        assert trace.factor_at(500.0) == 0.3

    def test_last_segment_extends_forever(self):
        trace = RateTrace(segments=((0.0, 0.8), (500.0, 0.3)))
        assert trace.factor_at(1e9) == 0.3

    def test_min_factor(self):
        trace = RateTrace(segments=((0.0, 0.8), (500.0, 0.3), (900.0, 1.0)))
        assert trace.min_factor == 0.3

    def test_episodes_close_and_open(self):
        trace = RateTrace(segments=((0.0, 1.0), (500.0, 0.3), (900.0, 1.0),
                                    (1200.0, 0.6)))
        assert trace.episodes() == ((500.0, 900.0), (1200.0, float("inf")))


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one segment"):
            RateTrace(segments=())

    def test_non_increasing_starts_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            RateTrace(segments=((100.0, 0.5), (100.0, 0.4)))

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RateTrace(segments=((-1.0, 0.5),))

    @pytest.mark.parametrize("factor", [0.0, -0.2, 1.5])
    def test_factor_out_of_range_rejected(self, factor):
        with pytest.raises(ValueError, match="capacity factor"):
            RateTrace(segments=((0.0, factor),))


class TestGenerators:
    def test_profiles_constant_matches_generators(self):
        assert set(TRACE_PROFILES) == {"cellular", "bufferbloat", "contention"}

    @pytest.mark.parametrize("profile", TRACE_PROFILES)
    def test_named_dispatch(self, profile):
        trace = RateTrace.named(profile, seed=3, duration_ms=5000.0)
        assert trace.segments
        assert all(0.0 < f <= 1.0 for _, f in trace.segments)

    def test_named_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown trace profile"):
            RateTrace.named("asymmetric", seed=1, duration_ms=1000.0)

    def test_cellular_seeded_bit_identical(self):
        a = RateTrace.cellular(seed=11, duration_ms=8000.0)
        b = RateTrace.cellular(seed=11, duration_ms=8000.0)
        assert a.segments == b.segments

    def test_cellular_different_seeds_differ(self):
        a = RateTrace.cellular(seed=11, duration_ms=8000.0)
        b = RateTrace.cellular(seed=12, duration_ms=8000.0)
        assert a.segments != b.segments

    def test_cellular_respects_floor(self):
        trace = RateTrace.cellular(seed=5, duration_ms=60_000.0, floor=0.2)
        assert all(f >= 0.2 for _, f in trace.segments)

    def test_bufferbloat_reaches_trough_then_recovers(self):
        trace = RateTrace.bufferbloat(duration_ms=10_000.0)
        assert trace.min_factor == pytest.approx(0.15, abs=0.01)
        # Deterministic: no seed, identical every construction.
        assert trace.segments == RateTrace.bufferbloat(
            duration_ms=10_000.0
        ).segments
        # Recovery: the factor at the end is back near nominal.
        assert trace.factor_at(9_999.0) > 0.9

    def test_contention_square_wave(self):
        trace = RateTrace.contention(duration_ms=8000.0, period_ms=2000.0,
                                     duty=0.5, low=0.25)
        # Nominal first half of each period, contended second half.
        assert trace.factor_at(100.0) == 1.0
        assert trace.factor_at(1500.0) == 0.25
        assert trace.factor_at(2100.0) == 1.0
        assert trace.factor_at(3500.0) == 0.25


class TestFromFile:
    def write(self, tmp_path, text):
        path = tmp_path / "trace.txt"
        path.write_text(text)
        return str(path)

    def test_parses_whitespace_commas_comments(self, tmp_path):
        path = self.write(tmp_path, "\n".join([
            "# capacity trace",
            "0 1.0",
            "500, 0.4  # mid dip",
            "",
            "900\t0.8",
        ]))
        trace = RateTrace.from_file(path)
        assert trace.segments == ((0.0, 1.0), (500.0, 0.4), (900.0, 0.8))
        assert trace.name == f"file:{path}"

    def test_malformed_row_names_line(self, tmp_path):
        path = self.write(tmp_path, "0 1.0\n500 0.4 extra\n")
        with pytest.raises(ValueError, match="line 2"):
            RateTrace.from_file(path)

    def test_non_numeric_names_line(self, tmp_path):
        path = self.write(tmp_path, "0 1.0\n# fine\nfast 0.4\n")
        with pytest.raises(ValueError, match="line 3.*non-numeric"):
            RateTrace.from_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = self.write(tmp_path, "# only comments\n\n")
        with pytest.raises(ValueError, match="no segments"):
            RateTrace.from_file(path)

    def test_invalid_segments_report_path(self, tmp_path):
        path = self.write(tmp_path, "0 1.0\n0 0.5\n")
        with pytest.raises(ValueError, match="strictly increasing"):
            RateTrace.from_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read trace file"):
            RateTrace.from_file(str(tmp_path / "absent.txt"))


class TestDipComposition:
    """Dips stack by min; the rate trace multiplies in on top."""

    def impairment(self, dips=(), trace=None):
        return LinkImpairment(ImpairmentConfig(
            seed=1, dips=tuple(dips), rate_trace=trace,
        ))

    def test_trace_multiplies_with_dip(self):
        dip = DipEpisode(start_ms=100.0, end_ms=300.0, capacity_factor=0.5)
        trace = RateTrace(segments=((0.0, 0.4),))
        imp = self.impairment([dip], trace)
        # Inside the dip window: 0.5 (dip) * 0.4 (trace).
        assert imp.capacity_factor(200.0) == pytest.approx(0.2)
        # Outside the dip: trace alone.
        assert imp.capacity_factor(400.0) == pytest.approx(0.4)

    def test_overlapping_dips_stack_by_min_not_product(self):
        a = DipEpisode(start_ms=0.0, end_ms=1000.0, capacity_factor=0.5)
        b = DipEpisode(start_ms=500.0, end_ms=1500.0, capacity_factor=0.3)
        imp = self.impairment([a, b])
        assert imp.capacity_factor(700.0) == pytest.approx(0.3)  # min, not 0.15
        assert imp.capacity_factor(100.0) == pytest.approx(0.5)
        assert imp.capacity_factor(1200.0) == pytest.approx(0.3)

    def test_overlapping_dip_order_irrelevant(self):
        a = DipEpisode(start_ms=0.0, end_ms=1000.0, capacity_factor=0.5)
        b = DipEpisode(start_ms=500.0, end_ms=1500.0, capacity_factor=0.3)
        trace = RateTrace(segments=((0.0, 0.9),))
        forward = self.impairment([a, b], trace)
        reverse = self.impairment([b, a], trace)
        for t in (100.0, 600.0, 700.0, 1200.0, 1600.0):
            assert forward.capacity_factor(t) == reverse.capacity_factor(t)

    def test_trace_alone_never_identity(self):
        trace = RateTrace(segments=((0.0, 0.9),))
        assert not ImpairmentConfig(rate_trace=trace).is_identity
        assert ImpairmentConfig().is_identity

    def test_factor_stays_in_unit_interval(self):
        dip = DipEpisode(start_ms=0.0, end_ms=1e6, capacity_factor=0.01)
        trace = RateTrace.cellular(seed=3, duration_ms=20_000.0)
        imp = self.impairment([dip], trace)
        for t in range(0, 20_000, 333):
            factor = imp.capacity_factor(float(t))
            assert 0.0 < factor <= 1.0
            assert not math.isnan(factor)
