"""Tests for the WiFi link model and PUN FI sync."""

import pytest

from repro.net import PunChannel, PunConfig, WifiLink
from repro.sim import Simulator


def run_transfer(link, size_bytes, tag="be"):
    results = {}

    def proc():
        duration = yield link.transfer(size_bytes, tag)
        results["duration"] = duration

    link.sim.spawn(proc())
    link.sim.run()
    return results["duration"]


class TestWifiLink:
    def test_single_transfer_duration(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0, overhead_ms=1.5)
        # 550 KB at 500 Mbps ~ 8.8 ms + 1.5 overhead (paper Table 1: ~9.2).
        duration = run_transfer(link, 550_000)
        assert 8.0 < duration + 1.5 < 12.0

    def test_two_concurrent_transfers_double_delay(self):
        """The Multi-Furion scaling wall: 2 players ~ 2x the net delay."""
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0, overhead_ms=0.0)
        durations = []

        def proc():
            d = yield link.transfer(550_000)
            durations.append(d)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        solo_sim = Simulator()
        solo_link = WifiLink(solo_sim, capacity_mbps=500.0, overhead_ms=0.0)
        solo = run_transfer(solo_link, 550_000)
        assert durations[0] == pytest.approx(2 * solo, rel=0.01)

    def test_zero_byte_transfer(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=100.0, overhead_ms=0.5)
        assert run_transfer(link, 0) == pytest.approx(0.0)

    def test_zero_byte_transfer_short_circuits(self):
        """Nothing goes on the air: no overhead, no accounting, no busy time."""
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=100.0, overhead_ms=5.0)
        done = link.transfer(0, tag="be")
        assert done.triggered  # completes immediately, pre-resolved
        assert done.value == 0.0
        assert link.bytes_for("be") == 0.0
        assert link.active_transfers == 0
        sim.run_until(100.0)
        assert link.utilization(100.0) == 0.0

    def test_negative_bytes_rejected(self):
        link = WifiLink(Simulator())
        with pytest.raises(ValueError):
            link.transfer(-1)
        with pytest.raises(ValueError):
            link.record_datagram(-1)

    def test_empty_tag_rejected(self):
        link = WifiLink(Simulator())
        with pytest.raises(ValueError):
            link.transfer(1000, tag="")
        with pytest.raises(ValueError):
            link.record_datagram(100, tag="")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WifiLink(Simulator(), capacity_mbps=0)

    @pytest.mark.parametrize("horizon_ms", [0.0, -1.0, -250.0])
    def test_bandwidth_rejects_non_positive_horizon(self, horizon_ms):
        """Regression: a zero/negative horizon must raise at the link
        layer with the offending value, never divide through or rely on
        the medium's internal checks."""
        link = WifiLink(Simulator())
        with pytest.raises(ValueError, match="horizon_ms must be positive"):
            link.bandwidth_mbps("be", horizon_ms)

    @pytest.mark.parametrize("horizon_ms", [0.0, -1.0, -250.0])
    def test_utilization_rejects_non_positive_horizon(self, horizon_ms):
        link = WifiLink(Simulator())
        with pytest.raises(ValueError, match="horizon_ms must be positive"):
            link.utilization(horizon_ms)

    def test_horizon_guard_message_names_value(self):
        link = WifiLink(Simulator())
        with pytest.raises(ValueError, match="-3.0"):
            link.bandwidth_mbps("be", -3.0)
        with pytest.raises(ValueError, match="-3.0"):
            link.utilization(-3.0)

    def test_tag_accounting(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0)
        run_transfer(link, 100_000, tag="be")
        link.record_datagram(500, tag="fi")
        assert link.bytes_for("be") == 100_000
        assert link.bytes_for("fi") == 500
        assert link.total_bytes() == 100_500
        assert link.bytes_for("unknown") == 0.0

    def test_bandwidth_mbps(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0)
        run_transfer(link, 1_250_000)  # 10 megabits
        # over a 1-second horizon -> 10 Mbps
        assert link.bandwidth_mbps("be", 1000.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            link.bandwidth_mbps("be", 0)

    def test_utilization(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0, overhead_ms=0.0)
        run_transfer(link, 625_000)  # 5 megabits -> 10 ms busy
        sim.run_until(100.0)
        assert link.utilization(100.0) == pytest.approx(0.1, abs=0.02)


class TestWifiContention:
    """The processor-sharing medium under multi-station load."""

    def test_per_tag_accounting_under_contention(self):
        """Concurrent transfers with distinct tags stay separately counted."""
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0, overhead_ms=0.0)

        def proc(size, tag):
            yield link.transfer(size, tag)

        sim.spawn(proc(100_000, "be"))
        sim.spawn(proc(40_000, "be"))
        sim.spawn(proc(60_000, "rewarm"))
        sim.run()
        assert link.bytes_for("be") == 140_000
        assert link.bytes_for("rewarm") == 60_000
        assert link.total_bytes() == 200_000

    def test_mac_efficiency_monotonic_in_stations(self):
        """More contending stations -> strictly less aggregate goodput."""
        efficiencies = [
            WifiLink(Simulator(), stations=n).mac_efficiency
            for n in (1, 2, 4, 8)
        ]
        assert efficiencies[0] == 1.0
        for faster, slower in zip(efficiencies, efficiencies[1:]):
            assert slower < faster

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_n_concurrent_transfers_share_capacity(self, n):
        """Each of N simultaneous transfers sees ~capacity/N throughput."""
        solo = run_transfer(
            WifiLink(Simulator(), capacity_mbps=500.0, overhead_ms=0.0),
            550_000,
        )
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=500.0, overhead_ms=0.0)
        durations = []

        def proc():
            d = yield link.transfer(550_000)
            durations.append(d)

        for _ in range(n):
            sim.spawn(proc())
        sim.run()
        assert len(durations) == n
        for duration in durations:
            assert duration == pytest.approx(n * solo, rel=0.01)


class TestPunChannel:
    def test_sync_latency_in_paper_range(self):
        """Footnote 1: FI sync takes 2-3 ms."""
        channel = PunChannel(Simulator(), WifiLink(Simulator()), n_players=4)
        for _ in range(50):
            latency = channel.sync_latency_ms()
            assert 2.0 <= latency <= 3.0

    def test_single_player_heartbeat_only(self):
        sim = Simulator()
        link = WifiLink(sim)
        channel = PunChannel(sim, link, n_players=1)
        # Tick over one simulated second.
        for t in range(0, 1001, 16):
            sim.run_until(float(t))
            channel.tick()
        kbps = link.bytes_for("fi") * 8 / 1000.0
        assert 0.5 < kbps < 2.0  # Table 9: ~1 Kbps for 1P

    @pytest.mark.parametrize(
        "players,lo,hi",
        [(2, 30, 90), (3, 90, 180), (4, 180, 300)],
    )
    def test_multiplayer_bandwidth_matches_table9(self, players, lo, hi):
        channel = PunChannel(Simulator(), WifiLink(Simulator()), n_players=players)
        kbps = channel.expected_bandwidth_kbps()
        assert lo < kbps < hi

    def test_bandwidth_grows_superlinearly(self):
        kbps = [
            PunChannel(Simulator(), WifiLink(Simulator()), n).expected_bandwidth_kbps()
            for n in (2, 3, 4)
        ]
        assert kbps[2] > 2 * kbps[0]

    def test_tick_respects_send_rate(self):
        sim = Simulator()
        link = WifiLink(sim)
        channel = PunChannel(sim, link, n_players=2, config=PunConfig(send_rate_hz=20))
        # Two ticks 1 ms apart: only the first records traffic.
        channel.tick()
        first = link.bytes_for("fi")
        sim.run_until(1.0)
        channel.tick()
        assert link.bytes_for("fi") == first
        sim.run_until(51.0)
        channel.tick()
        assert link.bytes_for("fi") == 2 * first

    def test_tick_rate_has_no_cumulative_drift(self):
        """Regression: jittery tick times must not starve the send rate.

        The old tick snapped its clock to ``sim.now`` on every send, so
        any jitter between the period boundary and the actual tick call
        was lost — a 16.7 ms frame loop against a 50 ms send period
        drifted to ~14 sends/s instead of 20.  The fixed clock advances
        in whole period multiples, so over a long run the recorded FI
        bytes match ``expected_bandwidth_kbps`` exactly.
        """
        sim = Simulator()
        link = WifiLink(sim)
        channel = PunChannel(sim, link, n_players=4)
        horizon_ms = 60_000.0
        # Deterministic jittery call pattern: mostly 16.7 ms apart with
        # periodic long gaps, like a frame loop with slow frames mixed in.
        t, i = 0.0, 0
        while t < horizon_ms:
            sim.run_until(t)
            channel.tick()
            t += 16.666 if i % 7 else 43.21
            i += 1
        recorded_kbps = link.bytes_for("fi") * 8 / horizon_ms
        assert recorded_kbps == pytest.approx(
            channel.expected_bandwidth_kbps(), rel=0.02
        )

    def test_add_remove_player_scales_traffic(self):
        sim = Simulator()
        link = WifiLink(sim)
        channel = PunChannel(sim, link, n_players=2)
        assert channel.expected_bandwidth_kbps() < channel.expected_bandwidth_kbps(3)
        channel.add_player()
        assert channel.n_players == 3
        for _ in range(3):
            channel.remove_player()
        assert channel.n_players == 0
        with pytest.raises(ValueError):
            channel.remove_player()
        assert channel.expected_bandwidth_kbps(0) == 0.0

    def test_empty_room_tick_is_a_noop(self):
        sim = Simulator()
        link = WifiLink(sim)
        channel = PunChannel(sim, link, n_players=1)
        channel.remove_player()  # a fully departed room
        channel.tick()
        assert link.bytes_for("fi") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PunChannel(Simulator(), WifiLink(Simulator()), n_players=0)
        with pytest.raises(ValueError):
            PunConfig(send_rate_hz=0)
        with pytest.raises(ValueError):
            PunConfig(state_bytes=0)
        with pytest.raises(ValueError):
            PunConfig(base_latency_ms=-1)
