"""Unit and property tests for the per-client rate/delay estimator.

The estimator underpins every adaptation decision, so its contract is
pinned three ways: arithmetic on hand-built observation streams,
hypothesis-generated convergence on steady links, and bit-identical
replay of identical observation sequences (the determinism the
(trace, seed, config) replay guarantee rests on).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import EstimatorConfig, RateEstimator

MBIT = 1_000_000.0


def observe_constant(est, rate_mbps, n, size_bytes=1_000_000, start_ms=0.0,
                     spacing_ms=100.0):
    """Feed n transfers that all completed at exactly ``rate_mbps``."""
    megabits = size_bytes * 8.0 / MBIT
    duration_ms = megabits / rate_mbps * 1000.0
    t = start_ms
    for _ in range(n):
        t += spacing_ms
        est.observe(t, size_bytes, duration_ms)
    return t


class TestConfigValidation:
    def test_defaults_valid(self):
        EstimatorConfig()

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(ValueError, match="ewma_alpha"):
            EstimatorConfig(ewma_alpha=alpha)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="min_window_ms"):
            EstimatorConfig(min_window_ms=0.0)

    def test_bad_warmup(self):
        with pytest.raises(ValueError, match="warmup_samples"):
            EstimatorConfig(warmup_samples=0)


class TestWarmupAndFeeding:
    def test_no_estimates_before_warmup(self):
        est = RateEstimator(EstimatorConfig(warmup_samples=3))
        observe_constant(est, 100.0, 2)
        assert not est.warmed_up
        assert est.rate_mbps() is None
        assert est.predict_transfer_ms(1_000_000) is None
        assert est.queueing_delay_ms(1_000_000) is None

    def test_estimates_after_warmup(self):
        est = RateEstimator(EstimatorConfig(warmup_samples=3))
        observe_constant(est, 100.0, 3)
        assert est.warmed_up
        assert est.rate_mbps() == pytest.approx(100.0)

    def test_zero_size_and_duration_ignored(self):
        est = RateEstimator()
        est.observe(10.0, 0, 5.0)
        est.observe(20.0, 1000, 0.0)
        est.observe(30.0, -5, 5.0)
        assert est.samples == 0

    def test_out_of_order_observation_raises(self):
        est = RateEstimator()
        est.observe(100.0, 1000, 5.0)
        with pytest.raises(ValueError, match="time order"):
            est.observe(99.0, 1000, 5.0)

    def test_same_timestamp_allowed(self):
        est = RateEstimator()
        est.observe(100.0, 1000, 5.0)
        est.observe(100.0, 1000, 5.0)  # two completions in one sim instant
        assert est.samples == 2


class TestEstimates:
    def test_constant_rate_recovered_exactly(self):
        est = RateEstimator()
        observe_constant(est, 80.0, 10)
        assert est.rate_mbps() == pytest.approx(80.0)

    def test_predict_scales_linearly_with_size(self):
        est = RateEstimator()
        observe_constant(est, 100.0, 5)
        one = est.predict_transfer_ms(500_000)
        two = est.predict_transfer_ms(1_000_000)
        assert two == pytest.approx(2.0 * one)

    def test_predict_matches_steady_link(self):
        # 100 Mbit/s => an 8 Mbit (1 MB) transfer takes 80 ms.
        est = RateEstimator()
        observe_constant(est, 100.0, 5)
        assert est.predict_transfer_ms(1_000_000) == pytest.approx(80.0)

    def test_queueing_delay_zero_on_clean_link(self):
        est = RateEstimator()
        observe_constant(est, 100.0, 5)
        assert est.queueing_delay_ms(1_000_000) == pytest.approx(0.0)

    def test_queueing_delay_positive_when_link_congests(self):
        est = RateEstimator()
        t = observe_constant(est, 100.0, 5)
        # Same sizes suddenly take 3x as long: unit delay rises above the
        # windowed-min baseline set by the clean phase.
        observe_constant(est, 100.0 / 3.0, 5, start_ms=t)
        assert est.queueing_delay_ms(1_000_000) > 0.0

    def test_min_window_expires_old_baseline(self):
        est = RateEstimator(EstimatorConfig(min_window_ms=500.0))
        est.observe(0.0, 1_000_000, 40.0)  # fast sample
        est.observe(2_000.0, 1_000_000, 120.0)  # much later, slower
        # The fast sample left the 500 ms window: baseline is the slow one.
        assert est.min_unit_ms() == pytest.approx(120.0 / 8.0)


class TestConvergenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.floats(min_value=5.0, max_value=500.0),
        n=st.integers(min_value=8, max_value=40),
        size=st.integers(min_value=50_000, max_value=5_000_000),
    )
    def test_steady_link_converges_to_true_rate(self, rate, n, size):
        """On a steady link the EWMA must land on the true rate."""
        est = RateEstimator()
        observe_constant(est, rate, n, size_bytes=size)
        assert est.rate_mbps() == pytest.approx(rate, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        start=st.floats(min_value=100.0, max_value=400.0),
        end=st.floats(min_value=5.0, max_value=50.0),
        n=st.integers(min_value=30, max_value=80),
    )
    def test_monotone_rate_decay_converges_within_band(self, start, end, n):
        """A monotone rate trace pulls the estimate into a band of the
        final plateau: geometric decay for the first half, then the
        plateau long enough for the EWMA (alpha 0.3) to settle.
        """
        est = RateEstimator()
        t = 0.0
        half = n // 2
        for i in range(n):
            frac = min(1.0, i / max(1, half))
            rate = start * (end / start) ** frac  # monotone decreasing
            duration_ms = 8.0 / rate * 1000.0  # 1 MB transfers
            t += duration_ms
            est.observe(t, 1_000_000, duration_ms)
        assert est.rate_mbps() == pytest.approx(end, rel=0.05)
        # Forecast agrees with the plateau rate within the same band.
        predicted = est.predict_transfer_ms(1_000_000)
        assert predicted == pytest.approx(8.0 / end * 1000.0, rel=0.1)


observation_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=200.0),  # inter-arrival gap
        st.integers(min_value=1, max_value=5_000_000),  # size
        st.floats(min_value=0.01, max_value=500.0),  # duration
    ),
    min_size=1,
    max_size=60,
)


class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(stream=observation_streams)
    def test_identical_streams_bit_identical_estimates(self, stream):
        """Two estimators fed the same observations agree bit-for-bit at
        every step — not approximately, exactly."""
        a = RateEstimator()
        b = RateEstimator()
        t = 0.0
        for gap_ms, size, duration_ms in stream:
            t += gap_ms
            a.observe(t, size, duration_ms)
            b.observe(t, size, duration_ms)
            assert a.rate_mbps() == b.rate_mbps()
            assert a.min_unit_ms() == b.min_unit_ms()
            assert a.predict_transfer_ms(size) == b.predict_transfer_ms(size)
            assert a.queueing_delay_ms(size) == b.queueing_delay_ms(size)
        assert a.samples == b.samples
