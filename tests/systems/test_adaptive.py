"""System tests for closed-loop adaptive streaming.

Three layers, mirroring the robustness-test structure:

* gating — ``adapt=None`` runs are bit-identical to the pinned
  pre-adaptation clean path (the controller must be invisible when off);
* effectiveness — adaptive Coterie is no worse than fixed-CRF on
  deadline-miss rate under every committed trace profile, and all three
  system loops carry the controller end to end;
* determinism — the same (trace, seed, config) replays to identical
  SessionMetrics, including the ABR timeline.
"""

import pytest

from repro.adapt import AbrConfig
from repro.net import ImpairmentConfig, RateTrace, TRACE_PROFILES
from repro.systems import (
    SessionConfig,
    prepare_artifacts,
    run_coterie,
    run_multi_furion,
    run_thin_client,
)
from repro.world import load_game

PINNED_CONFIG = dict(duration_s=4.0, seed=1)

# Captured from the pre-adaptation tree (racing, 4 players, the config
# above); see tests/systems/test_resilience.py for the original capture.
PINNED_FPS = 60.0
PINNED_INTER_MS = 16.666666666666664
PINNED_BE_MBPS = 64.468926
PINNED_FRAMES = [235, 235, 235, 235]

DURATION_S = 3.0
SEED = 1


@pytest.fixture(scope="module")
def racing():
    world = load_game("racing")
    artifacts = prepare_artifacts(world, SessionConfig(**PINNED_CONFIG))
    return world, artifacts


def _trace_config(profile, adapt, duration_s=DURATION_S, seed=SEED):
    trace = RateTrace.named(profile, seed=seed, duration_ms=duration_s * 1000.0)
    return SessionConfig(
        duration_s=duration_s, seed=seed,
        impairment=ImpairmentConfig(rate_trace=trace), adapt=adapt,
    )


def _miss_rate(result):
    ms = [p.metrics for p in result.players if p.metrics.frames]
    return sum(m.deadline_miss_rate for m in ms) / len(ms)


class TestAdaptGating:
    def test_adapt_none_bit_identical_to_pinned_clean_path(self, racing):
        """The whole adaptation layer must be invisible when off."""
        world, artifacts = racing
        result = run_coterie(world, 4, SessionConfig(**PINNED_CONFIG),
                             artifacts)
        assert result.mean_fps == PINNED_FPS
        assert result.mean_inter_frame_ms == PINNED_INTER_MS
        assert result.be_mbps == pytest.approx(PINNED_BE_MBPS, abs=1e-6)
        assert [p.metrics.frames for p in result.players] == PINNED_FRAMES

    def test_adapt_none_reports_zeroed_abr_fields(self, racing):
        world, artifacts = racing
        result = run_coterie(world, 4, SessionConfig(**PINNED_CONFIG),
                             artifacts)
        for player in result.players:
            m = player.metrics
            assert m.drop_rate == 0.0
            assert m.abr_steps_down == 0 and m.abr_steps_up == 0
            assert m.abr_drops == 0
            assert m.abr_mean_crf == 0.0 and m.abr_degraded_ms == 0.0
            assert m.abr_crf_timeline == ()

    def test_adapt_alone_enables_degraded_mode(self):
        config = SessionConfig(duration_s=1.0, seed=1, adapt=AbrConfig())
        assert config.degraded_mode
        assert not SessionConfig(duration_s=1.0, seed=1).degraded_mode


class TestAdaptiveEffectiveness:
    @pytest.mark.parametrize("profile", TRACE_PROFILES)
    def test_adaptive_no_worse_than_fixed_on_misses(self, racing, profile):
        """The headline claim, per committed trace."""
        world, artifacts = racing
        fixed = run_coterie(
            world, 4, _trace_config(profile, None), artifacts
        )
        adaptive = run_coterie(
            world, 4, _trace_config(profile, AbrConfig()), artifacts
        )
        assert _miss_rate(adaptive) <= _miss_rate(fixed)

    def test_adaptive_coterie_actually_adapts(self, racing):
        world, artifacts = racing
        result = run_coterie(
            world, 4, _trace_config("bufferbloat", AbrConfig()), artifacts
        )
        ms = [p.metrics for p in result.players]
        assert sum(m.abr_steps_down for m in ms) > 0
        assert all(m.abr_crf_timeline[0] == (0.0, 25.0) for m in ms)
        assert any(m.abr_degraded_ms > 0 for m in ms)
        # Degraded rungs carry a higher time-weighted CRF than base (25).
        assert any(m.abr_mean_crf > 25.0 for m in ms)

    def test_multi_furion_carries_controller(self):
        world = load_game("racing")
        result = run_multi_furion(
            world, 2, _trace_config("bufferbloat", AbrConfig())
        )
        ms = [p.metrics for p in result.players]
        assert all(m.frames > 0 for m in ms)
        assert sum(m.abr_steps_down for m in ms) > 0

    def test_thin_client_carries_controller(self):
        world = load_game("racing")
        result = run_thin_client(
            world, 2, _trace_config("bufferbloat", AbrConfig())
        )
        ms = [p.metrics for p in result.players]
        assert all(m.frames > 0 for m in ms)
        assert sum(m.abr_steps_down for m in ms) > 0

    def test_drops_not_counted_as_deadline_misses(self, racing):
        """Drops are chosen degradation: dropped frames must not inflate
        the reactive deadline-miss rate."""
        world, artifacts = racing
        # An aggressive drop policy on the deep bufferbloat trough.
        adapt = AbrConfig(drop_margin=0.8, high_watermark=0.75,
                          max_consecutive_drops=10)
        result = run_coterie(
            world, 4, _trace_config("bufferbloat", adapt), artifacts
        )
        for player in result.players:
            m = player.metrics
            assert m.abr_drops >= 0
            # drop_rate + deadline_miss_rate <= 1 and both tracked apart.
            assert 0.0 <= m.drop_rate <= 1.0
            assert 0.0 <= m.deadline_miss_rate <= 1.0
        assert sum(p.metrics.abr_drops for p in result.players) > 0


class TestReplayDeterminism:
    @staticmethod
    def _key(result):
        return ([p.metrics for p in result.players], result.be_mbps,
                result.fi_kbps)

    @pytest.mark.parametrize("profile", ["cellular", "contention"])
    def test_same_trace_seed_config_replays_identically(self, racing, profile):
        world, artifacts = racing
        first = run_coterie(
            world, 4, _trace_config(profile, AbrConfig()), artifacts
        )
        second = run_coterie(
            world, 4, _trace_config(profile, AbrConfig()), artifacts
        )
        assert self._key(first) == self._key(second)

    def test_different_seed_changes_cellular_outcome(self, racing):
        world, artifacts = racing
        a = run_coterie(
            world, 4, _trace_config("cellular", AbrConfig(), seed=1), artifacts
        )
        b = run_coterie(
            world, 4, _trace_config("cellular", AbrConfig(), seed=2), artifacts
        )
        assert self._key(a) != self._key(b)

    def test_thin_client_replays_identically(self):
        world = load_game("racing")
        first = run_thin_client(
            world, 2, _trace_config("contention", AbrConfig())
        )
        second = run_thin_client(
            world, 2, _trace_config("contention", AbrConfig())
        )
        assert self._key(first) == self._key(second)
