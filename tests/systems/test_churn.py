"""Integration tests for dynamic session membership (churn).

Three layers:

* lifecycle — joins, leaves, crashes, and rejoins drive the real system
  loops end to end (warm-up through FrameCache / shared-link transfers);
* determinism — the same (schedule, seed) twice produces byte-identical
  epoch logs and metrics, and churn=None runs are bit-identical to the
  pre-supervision clean path;
* chaos — a seeded matrix of schedules x seeds x systems completes with
  zero invariant violations (marked ``chaos``; CI runs it separately).
"""

import dataclasses

import pytest

from repro.adapt import AbrConfig
from repro.faults import ChurnSchedule, FaultSchedule
from repro.net import ImpairmentConfig, RateTrace
from repro.session import ACTIVE, CRASHED, LEFT, SupervisorConfig
from repro.systems import (
    SessionConfig,
    prepare_artifacts,
    run_coterie,
    run_mobile,
    run_multi_furion,
    run_thin_client,
)
from repro.world import load_game

BASE = dict(duration_s=4.0, seed=1)


@pytest.fixture(scope="module")
def racing():
    world = load_game("racing")
    artifacts = prepare_artifacts(world, SessionConfig(**BASE))
    return world, artifacts


@pytest.fixture(scope="module")
def pool():
    world = load_game("pool")
    artifacts = prepare_artifacts(world, SessionConfig(**BASE))
    return world, artifacts


def churn_config(spec, **overrides):
    kwargs = {**BASE, "churn": ChurnSchedule.parse(spec)}
    kwargs.update(overrides)
    return SessionConfig(**kwargs)


def by_slot(result):
    """Player results keyed by slot id (no-frame slots have no row)."""
    return {p.player_id: p for p in result.players}


def metrics_key(result):
    """Everything that must match for two runs to count as identical."""
    return (
        [dataclasses.astuple(p.metrics) for p in result.players],
        result.be_mbps,
        result.fi_kbps,
    )


class TestLifecycle:
    def test_join_leave_crash_coterie(self, racing):
        world, artifacts = racing
        config = churn_config("join@1000,crash@1800:1,leave@2500:0")
        result = run_coterie(world, 3, config, artifacts)
        member = result.membership
        assert member is not None
        assert member.total_slots == 4
        assert member.joins_admitted == 1
        assert member.leaves == 1
        assert member.evictions == 1
        assert member.invariant_violations == 0
        assert member.invariant_checks > 0
        assert member.final_states[0] == LEFT
        assert member.final_states[1] == CRASHED
        assert member.final_states[3] == ACTIVE
        # The joiner produced frames and carries its membership metrics.
        players = by_slot(result)
        joiner = players[3].metrics
        assert joiner.frames > 0
        assert joiner.join_latency_ms > 0
        assert joiner.warmup_ms > 0
        assert joiner.incarnations == 1
        # Departed players stop producing frames near their exit epochs.
        leaver = players[0].metrics
        assert 0 < leaver.frames < players[2].metrics.frames

    def test_rejoin_multi_furion(self, pool):
        world, _ = pool
        config = churn_config("leave@1000:0,rejoin@2000:0",
                              wifi_mbps=2000.0)
        result = run_multi_furion(world, 2, config)
        member = result.membership
        assert member.joins_admitted == 1
        assert member.final_states[0] == ACTIVE
        assert member.stats[0].incarnations == 2
        assert by_slot(result)[0].metrics.incarnations == 2
        assert member.invariant_violations == 0

    def test_thin_client_churn(self, pool):
        world, _ = pool
        config = churn_config("join@1000,leave@2500:0", wifi_mbps=2000.0)
        result = run_thin_client(world, 1, config)
        member = result.membership
        assert member.joins_admitted == 1
        assert member.leaves == 1
        assert member.invariant_violations == 0
        assert by_slot(result)[1].metrics.frames > 0

    def test_mobile_rejects_churn(self):
        world = load_game("pool")
        config = churn_config("join@1000")
        with pytest.raises(ValueError, match="mobile"):
            run_mobile(world, 1, config)

    def test_join_rejected_on_saturated_link(self, pool):
        """Multi-Furion whole-BE joins must bounce off a thin link."""
        world, _ = pool
        config = churn_config("join@1000", wifi_mbps=120.0)
        result = run_multi_furion(world, 1, config)
        member = result.membership
        assert member.joins_admitted == 0
        assert member.joins_rejected == 1
        rejects = [e for e in member.epochs
                   if e.cause.startswith("rejected:")]
        assert rejects and "constraint-2" in rejects[0].cause
        # The rejected slot never displayed a frame: no QoE row at all.
        assert 1 not in by_slot(result)

    def test_crash_mid_handshake(self, racing):
        """Crashing right after admission aborts the warm-up stream."""
        world, artifacts = racing
        config = churn_config("join@1000,crash@1001:3")
        result = run_coterie(world, 3, config, artifacts)
        member = result.membership
        assert member.invariant_violations == 0
        # The joiner never reached ACTIVE: crashed during admission or
        # warm-up, so it either went back to IDLE or was evicted.
        assert member.final_states[3] != ACTIVE
        assert 3 not in by_slot(result)

    def test_churn_composes_with_faults(self, racing):
        world, artifacts = racing
        config = SessionConfig(
            **BASE,
            churn=ChurnSchedule.parse("join@1200,crash@2200:0"),
            faults=FaultSchedule.parse("dip@1500-2500:0.3,stall@500-900:20"),
        )
        result = run_coterie(world, 2, config, artifacts)
        member = result.membership
        assert member.invariant_violations == 0
        assert member.evictions == 1


class TestDeterminism:
    def test_same_schedule_same_seed_identical(self, racing):
        world, artifacts = racing
        spec = "join@1000,crash@1800:1,leave@2500:0,rejoin@3200:0"
        a = run_coterie(world, 3, churn_config(spec), artifacts)
        b = run_coterie(world, 3, churn_config(spec), artifacts)
        assert a.membership.fingerprint() == b.membership.fingerprint()
        assert metrics_key(a) == metrics_key(b)
        assert [dataclasses.astuple(s) for s in a.membership.stats] == \
               [dataclasses.astuple(s) for s in b.membership.stats]

    def test_no_churn_bit_identical_to_clean(self, racing):
        """churn=None must take exactly the pre-supervision code path."""
        world, artifacts = racing
        clean = run_coterie(world, 4, SessionConfig(**BASE), artifacts)
        assert clean.membership is None
        # Values pinned from the pre-robustness tree (test_resilience).
        assert clean.mean_fps == 60.0
        assert clean.be_mbps == 64.468926
        assert [p.metrics.frames for p in clean.players] == [235] * 4
        # New SessionMetrics fields stay at their zero defaults.
        m = clean.players[0].metrics
        assert (m.join_latency_ms, m.warmup_ms, m.epochs_survived,
                m.evictions, m.incarnations) == (0.0, 0.0, 0, 0, 0)

    def test_empty_schedule_supervised_run_matches_clean(self, racing):
        """Supervision with zero churn events must not perturb frames.

        This is the <5% overhead path's correctness half: the supervisor
        runs (seating epochs, monitor scans) but no membership changes,
        so every frame-level output is bit-identical to the clean run.
        """
        world, artifacts = racing
        clean = run_coterie(world, 4, SessionConfig(**BASE), artifacts)
        supervised = run_coterie(
            world, 4, SessionConfig(**BASE, churn=ChurnSchedule()), artifacts
        )
        assert supervised.membership is not None
        assert supervised.membership.n_epochs == 4  # initial seats only
        assert supervised.membership.invariant_violations == 0
        assert supervised.mean_fps == clean.mean_fps
        assert supervised.be_mbps == clean.be_mbps
        assert supervised.fi_kbps == clean.fi_kbps
        for p_clean, p_sup in zip(clean.players, supervised.players):
            assert p_sup.metrics.frames == p_clean.metrics.frames
            assert p_sup.metrics.inter_frame_ms == \
                   p_clean.metrics.inter_frame_ms
            assert p_sup.metrics.mean_ssim == p_clean.metrics.mean_ssim


CHAOS_SCHEDULES = [
    "join@500,join@900,leave@1500:0,crash@2000:1",
    "join@400:2,crash@1200:0,rejoin@2400:0",
    "flap@800-3000:1~600",
    "crash@600:0,crash@900:1,join@1500,join@1600",
    "leave@700:1,rejoin@1400:1,crash@2100:1,join@2500",
]


@pytest.mark.chaos
@pytest.mark.slow
class TestChaosMatrix:
    """Seeded churn storms: every run must hold every invariant."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("spec", CHAOS_SCHEDULES)
    def test_coterie_chaos(self, pool, spec, seed):
        world, artifacts = pool
        config = SessionConfig(
            duration_s=3.0, seed=seed, churn=ChurnSchedule.parse(spec),
            supervision=SupervisorConfig(warmup_fetches=2),
        )
        result = run_coterie(world, 2, config, artifacts)
        member = result.membership
        assert member.invariant_violations == 0
        assert member.invariant_checks > 0
        assert member.n_epochs >= 2

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("spec", CHAOS_SCHEDULES)
    def test_coterie_chaos_adaptive(self, pool, spec, seed):
        """Churn storms with the ABR loop live on a degrading link.

        Adaptation must not disturb membership invariants: controllers
        are per-slot, so evictions/rejoins land mid-degradation and the
        replacement incarnation starts from a fresh rung.
        """
        trace = RateTrace.named("cellular", seed=seed, duration_ms=3000.0)
        world, artifacts = pool
        config = SessionConfig(
            duration_s=3.0, seed=seed, churn=ChurnSchedule.parse(spec),
            supervision=SupervisorConfig(warmup_fetches=2),
            impairment=ImpairmentConfig(rate_trace=trace),
            adapt=AbrConfig(),
        )
        result = run_coterie(world, 2, config, artifacts)
        member = result.membership
        assert member.invariant_violations == 0
        assert member.invariant_checks > 0
        assert member.n_epochs >= 2

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("spec", CHAOS_SCHEDULES)
    def test_multi_furion_chaos(self, pool, spec, seed):
        world, _ = pool
        config = SessionConfig(
            duration_s=3.0, seed=seed, wifi_mbps=2000.0,
            churn=ChurnSchedule.parse(spec),
        )
        result = run_multi_furion(world, 2, config)
        member = result.membership
        assert member.invariant_violations == 0
        assert member.invariant_checks > 0
        assert member.n_epochs >= 2
