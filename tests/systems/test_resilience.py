"""Robustness tests: pinned clean-path regression, degradation, recovery.

The graceful-degradation machinery must be invisible when disabled — the
pinned regression asserts bit-identical results against values captured
before the robustness PR — and effective when enabled: bounded staleness
under loss, recovery after outages, and full determinism for a
(fault schedule, seed) pair regardless of preprocessing parallelism.
"""

import pytest

from repro.codec import FrameCodec
from repro.core.preprocess import PreprocessOptions, preprocess_game
from repro.faults import FaultSchedule
from repro.net import ImpairmentConfig
from repro.render import RenderConfig, RenderCostModel
from repro.systems import (
    SessionConfig,
    prepare_artifacts,
    run_coterie,
    run_multi_furion,
    run_thin_client,
)
from repro.world import load_game

PINNED_CONFIG = dict(duration_s=4.0, seed=1)

# Captured from the pre-robustness tree (racing, 4 players, the config
# above).  The default SessionConfig must reproduce these bit-for-bit:
# the degradation machinery is gated off unless explicitly enabled.
PINNED_FPS = 60.0
PINNED_INTER_MS = 16.666666666666664
PINNED_BE_MBPS = 64.468926
# 204.8 == the closed-form PunChannel.expected_bandwidth_kbps for 4 players:
# the send clock now advances in whole period multiples (no cumulative
# drift), so the recorded FI rate matches the model exactly.  The old
# drifting tick under-counted at 192.0.  record_datagram is accounting-only,
# so frames/metrics/be_mbps are untouched by the fix.
PINNED_FI_KBPS = 204.8
PINNED_HIT_RATIO = 0.7297872340425532
PINNED_FRAMES = [235, 235, 235, 235]


@pytest.fixture(scope="module")
def racing():
    world = load_game("racing")
    artifacts = prepare_artifacts(world, SessionConfig(**PINNED_CONFIG))
    return world, artifacts


class TestPinnedCleanPath:
    def test_clean_run_bit_identical_to_seed(self, racing):
        world, artifacts = racing
        result = run_coterie(world, 4, SessionConfig(**PINNED_CONFIG), artifacts)
        assert result.mean_fps == PINNED_FPS
        assert result.mean_inter_frame_ms == PINNED_INTER_MS
        assert result.be_mbps == PINNED_BE_MBPS
        assert result.fi_kbps == PINNED_FI_KBPS
        assert result.mean_cache_hit_ratio == PINNED_HIT_RATIO
        assert [p.metrics.frames for p in result.players] == PINNED_FRAMES

    def test_default_config_not_degraded(self):
        config = SessionConfig(**PINNED_CONFIG)
        assert not config.degraded_mode
        assert SessionConfig(
            impairment=ImpairmentConfig.bursty(0.1)
        ).degraded_mode
        assert SessionConfig(
            faults=FaultSchedule.parse("stall@0-100")
        ).degraded_mode

    def test_zero_loss_impairment_matches_clean(self, racing):
        """The identity impairment config takes the same numeric path."""
        world, artifacts = racing
        clean = run_coterie(world, 2, SessionConfig(**PINNED_CONFIG), artifacts)
        impaired = run_coterie(
            world, 2,
            SessionConfig(**PINNED_CONFIG, impairment=ImpairmentConfig(seed=1)),
            artifacts,
        )
        assert impaired.mean_fps == clean.mean_fps
        assert impaired.be_mbps == clean.be_mbps


class TestBusySpinRegression:
    """A link slower than the frame budget must not hang the simulator."""

    # ~500 KB frames at 20 Mbps: every transfer (~200 ms) dwarfs the
    # 16.7 ms frame budget, so `interval - transfer_ms` is negative on
    # every iteration — the exact condition that used to spin.
    SLOW = SessionConfig(duration_s=1.0, seed=2, wifi_mbps=20.0)

    def test_multi_furion_slow_link_terminates(self):
        result = run_multi_furion(load_game("pool"), 1, self.SLOW)
        assert result.players[0].metrics.frames >= 1

    def test_thin_client_slow_link_terminates(self):
        result = run_thin_client(load_game("pool"), 1, self.SLOW)
        assert result.players[0].metrics.frames >= 1

    def test_coterie_slow_link_terminates(self, racing):
        world, artifacts = racing
        config = SessionConfig(duration_s=1.0, seed=2, wifi_mbps=2.0)
        result = run_coterie(world, 1, config, artifacts)
        records = result.players[0].records
        assert len(records) >= 1
        assert all(b.t_ms > a.t_ms for a, b in zip(records, records[1:]))


class TestDegradation:
    def test_loss_causes_bounded_staleness(self, racing):
        world, artifacts = racing
        config = SessionConfig(
            **PINNED_CONFIG, impairment=ImpairmentConfig.bursty(0.1, seed=1)
        )
        result = run_coterie(world, 2, config, artifacts)
        metrics = result.players[0].metrics
        assert metrics.deadline_miss_rate > 0.0
        assert metrics.stale_frames > 0
        assert 0.0 < metrics.max_stale_age_ms < 2000.0
        stale = [r for r in result.players[0].records if r.stale_age_ms]
        assert stale and all(r.deadline_missed for r in stale)
        # Degraded, yes — but the display never stalls on the network.
        assert result.mean_fps > 50.0

    def test_server_stall_inflates_net_delay(self, racing):
        world, artifacts = racing
        faults = FaultSchedule.parse("stall@0-4000:30")
        stalled = run_coterie(
            world, 1, SessionConfig(**PINNED_CONFIG, faults=faults), artifacts
        )
        clean = run_coterie(world, 1, SessionConfig(**PINNED_CONFIG), artifacts)
        stalled_net = stalled.players[0].metrics.net_delay_ms
        assert stalled_net > clean.players[0].metrics.net_delay_ms + 20.0

    def test_outage_pauses_and_rewarm_recovers(self, racing):
        world, artifacts = racing
        faults = FaultSchedule.parse("outage@1000-2000:0")
        config = SessionConfig(**PINNED_CONFIG, faults=faults)
        result = run_coterie(world, 2, config, artifacts)
        offline = result.players[0]
        online = result.players[1]
        # No frames displayed inside the outage window (a frame *started*
        # just before the window may still land shortly after it opens).
        assert not [r for r in offline.records if 1100.0 < r.t_ms < 2000.0]
        assert [r for r in online.records if 1100.0 < r.t_ms < 2000.0]
        # Reconnect re-warms the cache with a blocking fetch.
        assert offline.metrics.rewarm_fetches >= 1
        assert online.metrics.rewarm_fetches == 0
        assert offline.metrics.frames < online.metrics.frames

    def test_link_collapse_recovery(self, racing):
        """Clients ride out a 2 s link collapse and return to 60 FPS."""
        world, artifacts = racing
        faults = FaultSchedule.parse("dip@1000-3000:0.02")
        config = SessionConfig(duration_s=6.0, seed=1, faults=faults)
        result = run_coterie(world, 2, config, artifacts)
        for player in result.players:
            recovery = player.recovery_ms(3000.0)
            assert recovery is not None
            assert recovery < 2000.0


class TestDeterminism:
    FAULTS = "dip@500-1500:0.05,stall@2000-2500:20,outage@1000-1400:1"

    def _fingerprint(self, result):
        return (
            result.mean_fps,
            result.be_mbps,
            tuple(p.metrics.frames for p in result.players),
            tuple(p.metrics.deadline_miss_rate for p in result.players),
            tuple(p.metrics.fetch_retries for p in result.players),
            tuple(p.metrics.max_stale_age_ms for p in result.players),
        )

    def test_same_schedule_same_seed_identical(self, racing):
        world, artifacts = racing
        config = SessionConfig(
            **PINNED_CONFIG,
            impairment=ImpairmentConfig.bursty(0.05, seed=1),
            faults=FaultSchedule.parse(self.FAULTS),
        )
        a = run_coterie(world, 2, config, artifacts)
        b = run_coterie(world, 2, config, artifacts)
        assert self._fingerprint(a) == self._fingerprint(b)

    def test_identical_across_preprocess_workers(self):
        """Offline parallelism must not leak into online fault replay."""
        render_config = RenderConfig(width=64, height=32)
        config = SessionConfig(
            duration_s=2.0, seed=3, render_config=render_config,
            impairment=ImpairmentConfig.bursty(0.05, seed=3),
        )
        world = load_game("pool")
        fingerprints = []
        for workers in (1, 2):
            artifacts = preprocess_game(
                world,
                RenderCostModel(config.device),
                render_config,
                FrameCodec(crf=config.codec_crf),
                seed=3,
                size_samples=2,
                options=PreprocessOptions(workers=workers),
            )
            result = run_coterie(world, 2, config, artifacts)
            fingerprints.append(self._fingerprint(result))
        assert fingerprints[0] == fingerprints[1]
