"""Tests for the four end-to-end systems.

Short runs on the smallest game (pool) for speed, plus paper-shape checks
on viking where the claim is central.
"""

import pytest

from repro.systems import (
    SYSTEMS,
    SessionConfig,
    prepare_artifacts,
    run_coterie,
    run_system,
)
from repro.world import load_game

FAST = SessionConfig(duration_s=4.0, seed=1)


@pytest.fixture(scope="module")
def viking_runs():
    """One short run per system on viking, shared across tests."""
    runs = {}
    for system in ("mobile", "thin_client", "multi_furion", "coterie"):
        runs[system] = run_system(system, "viking", 2, FAST)
    return runs


class TestRunSystemBasics:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_system("cloud", "pool", 1, FAST)

    def test_player_count_validated(self):
        with pytest.raises(ValueError):
            run_system("mobile", "pool", 0, FAST)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(duration_s=0)
        with pytest.raises(ValueError):
            SessionConfig(wifi_mbps=0)

    def test_result_structure(self, viking_runs):
        result = viking_runs["coterie"]
        assert result.system == "coterie"
        assert result.game == "viking"
        assert result.n_players == 2
        assert len(result.players) == 2
        assert result.duration_s == FAST.duration_s
        for player in result.players:
            assert player.metrics.frames > 50

    def test_deterministic(self):
        a = run_system("mobile", "pool", 1, SessionConfig(duration_s=2, seed=9))
        b = run_system("mobile", "pool", 1, SessionConfig(duration_s=2, seed=9))
        assert a.mean_fps == b.mean_fps
        assert a.mean_inter_frame_ms == b.mean_inter_frame_ms


class TestPaperShapes:
    """The qualitative relationships Tables 1/7 and Fig. 11 establish."""

    def test_mobile_well_below_60fps(self, viking_runs):
        assert viking_runs["mobile"].mean_fps < 40.0

    def test_mobile_uses_no_network(self, viking_runs):
        assert viking_runs["mobile"].be_mbps == 0.0

    def test_thin_client_slowest_latency(self, viking_runs):
        tc = viking_runs["thin_client"]
        assert tc.mean_inter_frame_ms > 35.0
        assert tc.mean_responsiveness_ms > 35.0

    def test_coterie_hits_60fps_2p(self, viking_runs):
        coterie = viking_runs["coterie"]
        assert coterie.mean_fps > 55.0
        assert coterie.mean_responsiveness_ms < 16.7

    def test_coterie_beats_multi_furion_bandwidth(self, viking_runs):
        """The headline 10x+ per-player network reduction."""
        mf = viking_runs["multi_furion"]
        coterie = viking_runs["coterie"]
        assert coterie.per_player_be_mbps() < mf.per_player_be_mbps() / 5.0

    def test_coterie_cache_hit_ratio_high(self, viking_runs):
        assert viking_runs["coterie"].mean_cache_hit_ratio > 0.6

    def test_multi_furion_frame_size_near_paper(self, viking_runs):
        # Viking whole-BE frames: paper ~550 KB.
        frame_kb = viking_runs["multi_furion"].players[0].metrics.frame_kb
        assert 350 < frame_kb < 800

    def test_coterie_far_frames_smaller(self, viking_runs):
        far_kb = viking_runs["coterie"].players[0].metrics.frame_kb
        whole_kb = viking_runs["multi_furion"].players[0].metrics.frame_kb
        assert far_kb < 0.8 * whole_kb

    def test_fi_traffic_orders_of_magnitude_below_be(self, viking_runs):
        coterie = viking_runs["coterie"]
        assert coterie.fi_kbps < coterie.be_mbps * 1000.0 / 50.0

    def test_resource_envelope(self, viking_runs):
        """Table 8 / Fig. 12: moderate CPU/GPU, ~4 W, under thermal limit."""
        for player in viking_runs["coterie"].players:
            assert player.metrics.cpu_utilization < 0.45
            assert player.metrics.gpu_utilization < 0.80
            assert 2.5 < player.power_w < 5.5
            assert player.temperature_c < 52.0


class TestScalability:
    def test_multi_furion_degrades_with_players(self):
        fps = [
            run_system("multi_furion", "viking", n, FAST).mean_fps
            for n in (1, 2, 4)
        ]
        assert fps[0] > 55.0
        assert fps[2] < fps[1] < fps[0] + 1e-9
        assert fps[2] < 35.0

    def test_coterie_sustains_4_players(self):
        result = run_system("coterie", "viking", 4, FAST)
        assert result.mean_fps > 55.0

    def test_coterie_nocache_degrades_slower_than_furion(self):
        nocache = run_system("coterie_nocache", "viking", 4, FAST)
        furion = run_system("multi_furion", "viking", 4, FAST)
        # Smaller far-BE frames contend less even without the cache.
        assert nocache.mean_fps > furion.mean_fps

    def test_multi_furion_exact_cache_useless(self):
        """Table 5 Version 1: exact matching never hits."""
        result = run_system("multi_furion_cache", "viking", 2, FAST)
        assert result.mean_cache_hit_ratio is not None
        assert result.mean_cache_hit_ratio < 0.05


class TestFullFidelity:
    def test_coterie_full_renders_and_scores(self):
        config = SessionConfig(duration_s=2.0, seed=2, render_frames=True)
        world = load_game("pool")
        artifacts = prepare_artifacts(world, config)
        result = run_coterie(world, 1, config, artifacts, ssim_stride=10)
        player = result.players[0]
        assert player.metrics.mean_ssim is not None
        assert player.metrics.mean_ssim > 0.8

    def test_invalid_ssim_stride(self):
        config = SessionConfig(duration_s=1.0, seed=2)
        world = load_game("pool")
        artifacts = prepare_artifacts(world, config)
        with pytest.raises(ValueError):
            run_coterie(world, 1, config, artifacts, ssim_stride=0)


class TestArtifactCache:
    def test_prepare_artifacts_memoized(self):
        world = load_game("pool")
        a = prepare_artifacts(world, FAST)
        b = prepare_artifacts(world, FAST)
        assert a is b
