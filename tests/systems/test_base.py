"""Unit tests for the systems scaffolding (Session, RunResult)."""

import pytest

from repro.metrics import FrameRecord, MetricsCollector
from repro.systems import PlayerResult, RunResult, Session, SessionConfig
from repro.systems.base import SENSOR_SCANOUT_MS
from repro.world import load_game


def make_player(player_id, fps=60.0, cache_hit_ratio=None, frame_kb=100.0):
    collector = MetricsCollector()
    interval = 1000.0 / fps
    for k in range(20):
        collector.add(
            FrameRecord(
                t_ms=k * interval,
                interval_ms=interval,
                render_ms=5.0,
                responsiveness_ms=12.0,
                frame_bytes=int(frame_kb * 1000) if k % 5 == 0 else 0,
                cache_hit=(k % 5 != 0) if cache_hit_ratio is not None else None,
            )
        )
    metrics = collector.summary(cpu_utilization=0.3)
    return PlayerResult(
        player_id=player_id, metrics=metrics, fetches=4, power_w=4.0,
        temperature_c=45.0,
    )


class TestRunResult:
    def _result(self, n=2):
        return RunResult(
            system="coterie", game="viking", n_players=n, duration_s=10.0,
            players=[make_player(i, cache_hit_ratio=0.8) for i in range(n)],
            be_mbps=50.0, fi_kbps=70.0, link_utilization=0.2,
        )

    def test_aggregates(self):
        result = self._result()
        assert result.mean_fps == pytest.approx(60.0)
        assert result.mean_inter_frame_ms == pytest.approx(1000.0 / 60.0)
        assert result.mean_responsiveness_ms == pytest.approx(12.0)
        assert result.per_player_be_mbps() == pytest.approx(25.0)

    def test_cache_hit_aggregation(self):
        result = self._result()
        assert result.mean_cache_hit_ratio == pytest.approx(0.8)

    def test_cache_hit_none_without_cache(self):
        result = RunResult(
            system="mobile", game="pool", n_players=1, duration_s=5.0,
            players=[make_player(0)], be_mbps=0.0, fi_kbps=1.0,
            link_utilization=0.0,
        )
        assert result.mean_cache_hit_ratio is None


class TestSession:
    def test_construction(self):
        world = load_game("pool")
        session = Session(world, 2, SessionConfig(duration_s=3.0, seed=1))
        assert len(session.trajectories) == 2
        assert len(session.collectors) == 2
        assert session.horizon_ms == 3000.0
        assert session.fi_ms > 0

    def test_rejects_zero_players(self):
        world = load_game("pool")
        with pytest.raises(ValueError):
            Session(world, 0, SessionConfig(duration_s=1.0))

    def test_position_lookup_clamps(self):
        world = load_game("pool")
        session = Session(world, 1, SessionConfig(duration_s=2.0, seed=1))
        first = session.position_at(0, 0.0)
        beyond = session.position_at(0, 10_000.0)
        assert first.t_ms == 0.0
        assert beyond.t_ms == session.trajectories[0][-1].t_ms

    def test_link_sized_to_players(self):
        world = load_game("pool")
        solo = Session(world, 1, SessionConfig(duration_s=1.0))
        quad = Session(world, 4, SessionConfig(duration_s=1.0))
        assert quad.link.mac_efficiency < solo.link.mac_efficiency

    def test_finish_builds_results(self):
        world = load_game("pool")
        session = Session(world, 1, SessionConfig(duration_s=1.0, seed=2))
        session.collectors[0].add(
            FrameRecord(t_ms=16.7, interval_ms=16.7, render_ms=5.0,
                        responsiveness_ms=12.0)
        )
        result = session.finish("mobile", [0.2])
        assert result.system == "mobile"
        assert result.players[0].metrics.cpu_utilization == 0.2
        assert result.players[0].power_w > 0
        assert result.players[0].temperature_c > 25.0

    def test_sensor_overhead_constant(self):
        assert 0.0 < SENSOR_SCANOUT_MS < 2.0


class TestRunSystemScale:
    def test_scaled_world_runs(self):
        from repro.systems import run_system

        result = run_system(
            "mobile", "viking", 1, SessionConfig(duration_s=2.0, seed=1),
            scale=0.25,
        )
        assert result.game == "viking"
        assert result.players[0].metrics.frames > 10
