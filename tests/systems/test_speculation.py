"""Speculative prefetch + sync validation: pinned clean path, chaos matrix.

Four contracts:

* **bit-identity** — ``predict=None, sync=None`` runs reproduce the
  pinned pre-speculation results exactly: the machinery is invisible
  unless enabled;
* **effectiveness** — speculation warms the cache ahead of motion, so
  the hit ratio improves and the display cadence is untouched;
* **convergence** — a corruption storm is fully absorbed by
  digest-checked rollbacks: every corrupted speculative entry is
  discarded before display and the run converges to full rate;
* **detection** — every scripted desync raises exactly one alarm within
  one validator cadence, attributed to the right slot, and clean runs
  never false-alarm.
"""

import pytest

from repro.faults import FaultSchedule
from repro.predict import PosePredictor, PredictConfig
from repro.session import SyncConfig
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game

PINNED_CONFIG = dict(duration_s=4.0, seed=1)

# Captured from the pre-speculation tree (racing, 4 players, the config
# above); see tests/systems/test_resilience.py for provenance.  A run
# with prediction and sync checking *disabled* must reproduce these
# bit-for-bit.
PINNED_FPS = 60.0
PINNED_INTER_MS = 16.666666666666664
PINNED_BE_MBPS = 64.468926
PINNED_FI_KBPS = 204.8
PINNED_HIT_RATIO = 0.7297872340425532
PINNED_FRAMES = [235, 235, 235, 235]

CADENCE_MS = SyncConfig().cadence_ms


@pytest.fixture(scope="module")
def racing():
    world = load_game("racing")
    artifacts = prepare_artifacts(world, SessionConfig(**PINNED_CONFIG))
    return world, artifacts


def run(racing, n_players=4, predict=None, sync=None, faults=None, **kwargs):
    """One racing run with the speculation knobs under test."""
    world, artifacts = racing
    config = SessionConfig(
        **{**PINNED_CONFIG, **kwargs}, predict=predict, sync=sync,
        faults=faults,
    )
    return run_coterie(world, n_players, config, artifacts)


def spec_totals(result):
    """Summed speculation/sync counters across players."""
    metrics = [p.metrics for p in result.players]
    return {
        field: sum(getattr(m, field) for m in metrics)
        for field in (
            "spec_predictions", "spec_prefetches", "spec_confirms",
            "spec_mispredictions", "spec_rollbacks", "spec_expired",
            "desync_alarms", "resyncs",
        )
    }


class TestPinnedCleanPath:
    def test_disabled_speculation_bit_identical_to_seed(self, racing):
        result = run(racing)
        assert result.mean_fps == PINNED_FPS
        assert result.mean_inter_frame_ms == PINNED_INTER_MS
        assert result.be_mbps == PINNED_BE_MBPS
        assert result.fi_kbps == PINNED_FI_KBPS
        assert result.mean_cache_hit_ratio == PINNED_HIT_RATIO
        assert [p.metrics.frames for p in result.players] == PINNED_FRAMES
        totals = spec_totals(result)
        assert all(v == 0 for v in totals.values()), totals

    def test_disabled_speculation_metrics_dataclass_clean(self, racing):
        """Every speculation/sync field defaults to zero when disabled."""
        result = run(racing, n_players=2)
        for player in result.players:
            m = player.metrics
            assert m.spec_predictions == 0
            assert m.desync_alarms == 0
            assert m.desync_detection_ms == 0.0
            assert m.resync_recovery_ms == 0.0


class TestSpeculationEffectiveness:
    def test_hit_ratio_improves_at_full_rate(self, racing):
        baseline = run(racing, n_players=2)
        spec = run(racing, n_players=2, predict=PredictConfig())
        assert spec.mean_cache_hit_ratio > baseline.mean_cache_hit_ratio
        assert spec.mean_fps >= baseline.mean_fps - 0.1
        totals = spec_totals(spec)
        assert totals["spec_predictions"] > 0
        assert totals["spec_prefetches"] > 0
        assert totals["spec_confirms"] > 0
        # No corruption faults: nothing to roll back.
        assert totals["spec_rollbacks"] == 0

    def test_speculative_runs_deterministic(self, racing):
        a = run(racing, n_players=2, predict=PredictConfig(),
                sync=SyncConfig())
        b = run(racing, n_players=2, predict=PredictConfig(),
                sync=SyncConfig())
        assert [p.metrics for p in a.players] == [p.metrics for p in b.players]
        assert [p.records for p in a.players] == [p.records for p in b.players]
        assert a.be_mbps == b.be_mbps
        assert a.fi_kbps == b.fi_kbps

    def test_sync_validator_clean_run_zero_alarms(self, racing):
        without_sync = run(racing, n_players=3, predict=PredictConfig())
        result = run(racing, n_players=3, predict=PredictConfig(),
                     sync=SyncConfig())
        totals = spec_totals(result)
        assert totals["desync_alarms"] == 0
        assert totals["resyncs"] == 0
        # The digest exchange costs FI-channel bytes, so fi_kbps grows
        # over the same run without the validator.
        assert result.fi_kbps > without_sync.fi_kbps

    def test_teleport_storm_throttles_but_survives(self, racing):
        faults = FaultSchedule.parse(
            "teleport@1000:0~20,teleport@2000:0~20,snapturn@1500:0~120"
        )
        result = run(racing, n_players=2, predict=PredictConfig(),
                     faults=faults)
        totals = spec_totals(result)
        # The jumps blow through the confidence radius: mispredictions
        # are counted and the run still displays at full rate.
        assert totals["spec_mispredictions"] > 0
        assert result.mean_fps >= 59.0


class TestRollbackConvergence:
    def test_corruption_storm_fully_rolled_back(self, racing):
        baseline = run(racing, n_players=2)  # no speculation at all
        clean = run(racing, n_players=2, predict=PredictConfig())
        corrupt = run(
            racing, n_players=2, predict=PredictConfig(),
            faults=FaultSchedule.parse("speccorrupt@500-2500"),
        )
        totals = spec_totals(corrupt)
        assert totals["spec_rollbacks"] > 0
        # Every rolled-back entry was refetched authoritatively: the
        # display cadence converges, and the storm never degrades the
        # run below the non-speculative baseline (rollbacks only cost
        # the speculative *gain*, never correctness or frames).
        assert corrupt.mean_fps >= clean.mean_fps - 0.1
        for p_corrupt, p_base in zip(corrupt.players, baseline.players):
            assert p_corrupt.metrics.frames >= p_base.metrics.frames

    def test_corrupted_entries_never_confirm_while_storm_covers(self, racing):
        """During an all-run storm every digest check fails: zero confirms
        of corrupted entries — each speculative landing rolls back."""
        corrupt = run(
            racing, n_players=2, predict=PredictConfig(),
            faults=FaultSchedule.parse("speccorrupt@0-4000"),
        )
        totals = spec_totals(corrupt)
        assert totals["spec_rollbacks"] > 0
        assert totals["spec_confirms"] == 0


class TestDesyncDetection:
    def test_single_injection_detected_within_cadence(self, racing):
        result = run(
            racing, n_players=3, predict=PredictConfig(), sync=SyncConfig(),
            faults=FaultSchedule.parse("desync@1500:1"),
        )
        metrics = [p.metrics for p in result.players]
        assert [m.desync_alarms for m in metrics] == [0, 1, 0]
        assert 0.0 <= metrics[1].desync_detection_ms <= CADENCE_MS
        assert metrics[1].resyncs == 1
        assert metrics[1].resync_recovery_ms <= 2 * CADENCE_MS

    def test_resync_rewarms_the_cache(self, racing):
        result = run(
            racing, n_players=2, predict=PredictConfig(), sync=SyncConfig(),
            faults=FaultSchedule.parse("desync@1000:0"),
        )
        assert result.players[0].metrics.resyncs == 1
        assert result.mean_fps >= 59.0


@pytest.mark.chaos
class TestDesyncChaosMatrix:
    """Seeded desync storms: every injection detected, no false alarms."""

    SCHEDULES = (
        "desync@1000:0",
        "desync@700:1,desync@2100:0",
        "desync@500:2,desync@1400:2,desync@2600:0",
        "desync@900:0,teleport@1200:1~10,speccorrupt@1500-2200",
    )

    @pytest.mark.parametrize("spec", SCHEDULES)
    @pytest.mark.parametrize("seed", (1, 2))
    def test_every_injection_detected(self, racing, spec, seed):
        faults = FaultSchedule.parse(spec)
        result = run(
            racing, n_players=3, predict=PredictConfig(), sync=SyncConfig(),
            faults=faults, seed=seed, duration_s=3.5,
        )
        expected = {}
        for injection in faults.desyncs:
            expected[injection.player_id] = (
                expected.get(injection.player_id, 0) + 1
            )
        metrics = [p.metrics for p in result.players]
        for slot, m in enumerate(metrics):
            assert m.desync_alarms == expected.get(slot, 0), (
                f"slot {slot} under {spec!r} seed {seed}"
            )
            if m.desync_alarms:
                assert m.desync_detection_ms <= CADENCE_MS
                assert m.resyncs == m.desync_alarms

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_clean_runs_never_false_alarm(self, racing, seed):
        result = run(
            racing, n_players=3, predict=PredictConfig(), sync=SyncConfig(),
            seed=seed, duration_s=3.0,
        )
        totals = spec_totals(result)
        assert totals["desync_alarms"] == 0
        assert totals["resyncs"] == 0


class TestPredictorRejoinReset:
    def test_fresh_predictor_after_rejoin(self):
        """A rejoining slot must not inherit the dead incarnation's
        velocity state (the PosePredictor is re-seated)."""
        predictor = PosePredictor(PredictConfig())
        from repro.geometry import Vec2

        predictor.observe(0.0, Vec2(0.0, 0.0), 0.0)
        predictor.observe(16.0, Vec2(1.0, 0.0), 0.0)
        assert predictor.predict(16.0) is not None
        fresh = PosePredictor(PredictConfig())
        assert fresh.predict(16.0) is None
