"""Cross-mode bit-identity of the full-render Coterie online path.

``--kernels`` now governs the online hot path too: non-scalar modes turn
on the vectorized cache scan and defer SSIM scoring through the
:class:`repro.core.online.SsimBatchQueue`.  A full-render session must
produce *identical* metrics — switch SSIMs, displayed SSIMs, FPS —
under every kernel mode.
"""

import pytest

from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game


@pytest.fixture(scope="module")
def parity_runs():
    world = load_game("pool")
    runs = {}
    for mode in ("scalar", "vector+reuse"):
        config = SessionConfig(
            duration_s=1.5, seed=2, render_frames=True, kernels=mode
        )
        artifacts = prepare_artifacts(world, config)
        runs[mode] = run_coterie(world, 2, config, artifacts, ssim_stride=5)
    return runs


class TestFullRenderParity:
    def test_switch_ssims_identical(self, parity_runs):
        scalar, batched = parity_runs["scalar"], parity_runs["vector+reuse"]
        for ps, pb in zip(scalar.players, batched.players):
            assert len(ps.switch_ssims) > 0
            assert [float(v) for v in ps.switch_ssims] == [
                float(v) for v in pb.switch_ssims
            ]

    def test_displayed_ssim_records_identical(self, parity_runs):
        scalar, batched = parity_runs["scalar"], parity_runs["vector+reuse"]
        for ps, pb in zip(scalar.players, batched.players):
            assert ps.metrics.mean_ssim is not None
            assert ps.metrics.mean_ssim == pb.metrics.mean_ssim

    def test_timing_metrics_identical(self, parity_runs):
        scalar, batched = parity_runs["scalar"], parity_runs["vector+reuse"]
        assert scalar.mean_fps == batched.mean_fps
        for ps, pb in zip(scalar.players, batched.players):
            assert ps.metrics.fps == pb.metrics.fps
            assert ps.metrics.cache_hit_ratio == pb.metrics.cache_hit_ratio
