"""Tests for the benchmark harness helpers (report tables, ASCII plots)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from ascii_plot import ascii_cdf, ascii_series  # noqa: E402
from harness import PAPER, fmt, report  # noqa: E402


class TestFmt:
    def test_float_formatting(self):
        assert fmt(3.14159) == "3.1"
        assert fmt(3.14159, 3) == "3.142"

    def test_none_is_dash(self):
        assert fmt(None) == "-"

    def test_int_passthrough(self):
        assert fmt(42) == "42"


class TestReport:
    def test_writes_text_and_json(self, tmp_path, monkeypatch, capsys):
        import harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        report("unit_test_table", ["a", "b"], [("x", 1), ("yy", 22)], notes="n")
        out = capsys.readouterr().out
        assert "unit_test_table" in out
        assert (tmp_path / "unit_test_table.txt").exists()
        assert (tmp_path / "unit_test_table.json").exists()
        text = (tmp_path / "unit_test_table.txt").read_text()
        assert "yy" in text and "22" in text and text.endswith("n\n")


class TestPaperReference:
    def test_table1_covers_three_baselines(self):
        systems = {key[0] for key in PAPER["table1"]}
        assert systems == {"mobile", "thin_client", "multi_furion"}

    def test_table3_covers_all_nine_games(self):
        assert len(PAPER["table3"]) == 9

    def test_table5_covers_five_versions_four_counts(self):
        assert len(PAPER["table5"]) == 20

    def test_table10_distribution_sums_to_100(self):
        assert sum(PAPER["table10"].values()) == pytest.approx(100.0)


class TestAsciiCdf:
    def test_renders_axes_and_legend(self):
        plot = ascii_cdf({"a": [1, 2, 3]}, "metres", width=30, height=6)
        lines = plot.splitlines()
        assert lines[0].startswith(" 1.0 |")
        assert "metres" in plot
        assert "*=a" in plot

    def test_monotone_columns(self):
        plot = ascii_cdf({"s": list(range(20))}, "x", width=40, height=8)
        # Marker row index never increases left to right (CDF rises).
        rows = [line[6:] for line in plot.splitlines()[:8]]
        last_col = -1
        for row_index in range(7, -1, -1):
            cols = [i for i, c in enumerate(rows[row_index]) if c == "*"]
            if cols:
                assert min(cols) >= last_col
                last_col = min(cols)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({}, "x")
        with pytest.raises(ValueError):
            ascii_cdf({"a": []}, "x")


class TestAsciiSeries:
    def test_renders_points(self):
        plot = ascii_series(
            {"up": [(0.0, 0.0), (1.0, 1.0)]}, "x", "y", width=20, height=5
        )
        assert "*" in plot
        assert "*=up" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series({}, "x", "y")
