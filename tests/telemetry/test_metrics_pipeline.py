"""Metered-run pins: bit-identity, instrumentation coverage, SLO firing.

The metrics pipeline's core promise mirrors the tracer's (DESIGN.md
§12): metering is purely observational — it never schedules events,
touches RNG, or perturbs the sim — so a metered run must produce
bit-identical results to an unmetered one, and replaying the same
config must fire the same burn-rate alerts at the same sim times.
"""

import pytest

from repro.faults import FaultSchedule
from repro.net import ImpairmentConfig, RateTrace
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.telemetry import MetricsHub, SloEngine
from repro.world import load_game

DURATION_S = 2.0
SEED = 11


@pytest.fixture(scope="module")
def game():
    world = load_game("racing")
    artifacts = prepare_artifacts(
        world, SessionConfig(duration_s=DURATION_S, seed=SEED)
    )
    return world, artifacts


def _run(game, hub, cellular=False):
    world, artifacts = game
    impairment = None
    if cellular:
        impairment = ImpairmentConfig(rate_trace=RateTrace.named(
            "cellular", seed=SEED, duration_ms=DURATION_S * 1000.0
        ))
    config = SessionConfig(
        duration_s=DURATION_S, seed=SEED, metrics=hub,
        impairment=impairment,
        faults=FaultSchedule.parse("dip@500-1500:0.05"),
    )
    return run_coterie(world, 2, config, artifacts)


def _key(result):
    return (
        [p.metrics for p in result.players],
        result.be_mbps,
        result.fi_kbps,
    )


def _alert_signature(hub):
    return tuple(
        (a.slo, a.t_ms, a.short_ms, a.long_ms)
        for r in SloEngine().evaluate(hub.series)
        for a in r.alerts
    )


class TestMeteredRunDeterminism:
    def test_metered_run_bit_identical_to_unmetered(self, game):
        unmetered = _run(game, None)
        hub = MetricsHub()
        metered = _run(game, hub)
        assert hub.samples_taken > 0
        assert _key(unmetered) == _key(metered)

    def test_slo_alerts_fire_deterministically_under_cellular(self, game):
        hub_a = MetricsHub()
        _run(game, hub_a, cellular=True)
        hub_b = MetricsHub()
        _run(game, hub_b, cellular=True)
        sig_a = _alert_signature(hub_a)
        assert len(sig_a) >= 1  # the dip must trip the miss-rate SLO
        assert sig_a == _alert_signature(hub_b)
        assert any(slo == "deadline_miss_rate" for slo, *_ in sig_a)


class TestInstrumentationCoverage:
    @pytest.fixture(scope="class")
    def hub(self, game):
        hub = MetricsHub()
        _run(game, hub)
        return hub

    def test_samples_land_on_period_boundaries(self, hub):
        period = hub.sample_period_ms
        for name, ring in hub.series.items():
            for t, _ in ring:
                assert t % period == pytest.approx(0.0), (name, t)

    def test_sim_and_link_series_present(self, hub):
        assert "sim_queue_depth" in hub.series
        assert "link_utilization" in hub.series
        assert 'link_bytes_total{tag="be"}' in hub.series
        assert 'link_bytes_total{tag="fi"}' in hub.series
        assert "pun_players" in hub.series

    def test_frame_loop_series_present_per_player(self, hub):
        for player in ("0", "1"):
            assert f'frame_interval_ms{{player="{player}"}}' in hub.series
            assert f'stage_render_ms{{player="{player}"}}' in hub.series
            assert f'deadline_margin_ms{{player="{player}"}}' in hub.series
        assert "frames_total" in hub.series

    def test_cache_and_store_series_present(self, hub):
        assert 'cache_hit_ratio{player="0"}' in hub.series
        assert 'cache_occupancy_bytes{player="0"}' in hub.series
        assert "store_renders_total" in hub.series

    def test_frames_counter_matches_collector(self, game):
        hub = MetricsHub()
        result = _run(game, hub)
        expected = sum(p.metrics.frames for p in result.players)
        final = hub.series["frames_total"][-1][1]
        # The ring's last boundary lands at/before the horizon; every
        # frame record metered before it is counted.
        assert final <= expected
        assert final > 0
