"""Exporters: Chrome trace-event JSON and the JSONL event log."""

import json

import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    SESSION_TRACK,
    SpanTracer,
    read_events_jsonl,
    record_from_dict,
    record_to_dict,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)


def small_trace():
    tracer = SpanTracer()
    tracer.complete("frame", 0, "frame", 0.0, 16.7,
                    args={"frame": 0, "interval_ms": 16.7})
    tracer.complete("render", 0, "render", 0.0, 8.0, args={"frame": 0})
    tracer.complete("frame", 1, "frame", 0.0, 20.0, args={"frame": 0})
    tracer.instant("cache.lookup", 0, "cache", 2.0, args={"outcome": "miss"})
    tracer.counter("sim.queue_depth", 4.0, 12)
    tracer.complete("link.transfer", SESSION_TRACK, "link 0", 1.0, 3.0,
                    cat="net", args={"bytes": 40_000})
    return tracer


class TestChromeTrace:
    def test_events_validate_against_schema(self):
        events = to_chrome_trace(small_trace().records)
        validate_chrome_trace(events)  # must not raise
        phases = {ev["ph"] for ev in events}
        assert {"M", "X", "i", "C"} <= phases

    def test_players_become_processes_lanes_become_threads(self):
        events = to_chrome_trace(small_trace().records)
        names = {
            (ev["pid"], ev["args"]["name"])
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        # session track is pid 0, players are pid player+1
        assert names == {(0, "session"), (1, "player 0"), (2, "player 1")}
        p0_threads = {
            ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name" and ev["pid"] == 1
        }
        assert {"frame", "render", "cache"} <= p0_threads

    def test_timestamps_convert_ms_to_us(self):
        events = to_chrome_trace(small_trace().records)
        render = next(
            ev for ev in events if ev["ph"] == "X" and ev["name"] == "render"
        )
        assert render["ts"] == pytest.approx(0.0)
        assert render["dur"] == pytest.approx(8000.0)

    def test_write_chrome_trace_roundtrips_through_json(self, tmp_path):
        out = tmp_path / "trace.json"
        n = write_chrome_trace(out, small_trace().records)
        events = json.loads(out.read_text())
        assert len(events) == n
        validate_chrome_trace(events)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([{"name": "no phase"}])
        with pytest.raises(ValueError):
            validate_chrome_trace(
                [{"ph": "X", "pid": 1, "tid": 0, "ts": "oops", "dur": 1,
                  "name": "x"}]
            )


class TestChromeTraceSchema:
    """Every exported event satisfies the trace-event schema invariants."""

    def test_every_event_carries_ph_ts_pid_tid(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(out, small_trace().records)
        events = json.load(out.open())
        for ev in events:
            assert "ph" in ev, ev
            assert isinstance(ev["ts"], (int, float)), ev
            assert isinstance(ev["pid"], int), ev
            assert isinstance(ev["tid"], int), ev

    def test_counter_series_monotone_in_ts(self):
        tracer = SpanTracer()
        for i, t in enumerate([1.0, 2.0, 5.0, 9.0]):
            tracer.counter("sim.queue_depth", t, i)
        events = to_chrome_trace(tracer.records)
        series = [
            ev["ts"] for ev in events
            if ev["ph"] == "C" and ev["name"] == "sim.queue_depth"
        ]
        assert series == sorted(series)
        validate_chrome_trace(events)  # must not raise

    def test_validator_rejects_non_monotone_counter(self):
        events = to_chrome_trace(small_trace().records)
        counters = [ev for ev in events if ev["ph"] == "C"]
        assert counters, "fixture must include a counter event"
        broken = events + [dict(counters[0], ts=counters[0]["ts"] - 1.0)]
        with pytest.raises(ValueError, match="monotone"):
            validate_chrome_trace(broken)

    def test_validator_rejects_missing_pid_tid(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "i", "ts": 0.0, "tid": 0}])
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "i", "ts": 0.0, "pid": 0}])

    def test_metadata_events_carry_ts(self):
        events = to_chrome_trace(small_trace().records)
        assert all("ts" in ev for ev in events if ev["ph"] == "M")


class TestEventsJsonl:
    def test_roundtrip_preserves_records(self, tmp_path):
        tracer = small_trace()
        out = tmp_path / "events.jsonl"
        n = write_events_jsonl(out, tracer.records)
        assert n == len(tracer)
        back = read_events_jsonl(out)
        assert len(back) == len(tracer.records)
        for a, b in zip(tracer.records, back):
            assert (a.kind, a.name, a.cat, a.player, a.lane) == (
                b.kind, b.name, b.cat, b.player, b.lane
            )
            assert b.start_ms == pytest.approx(a.start_ms, abs=1e-6)
            assert b.dur_ms == pytest.approx(a.dur_ms, abs=1e-6)
            assert (a.args or None) == b.args

    def test_record_dict_is_schema_versioned(self):
        (span,) = small_trace().spans("render")
        payload = record_to_dict(span)
        assert payload["v"] == SCHEMA_VERSION
        assert record_from_dict(payload).name == "render"

    def test_unknown_version_refused(self):
        payload = record_to_dict(small_trace().records[0])
        payload["v"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            record_from_dict(payload)

    def test_unknown_kind_refused(self):
        payload = record_to_dict(small_trace().records[0])
        payload["kind"] = "mystery"
        with pytest.raises(ValueError, match="kind"):
            record_from_dict(payload)

    def test_reader_reports_bad_line(self, tmp_path):
        out = tmp_path / "events.jsonl"
        out.write_text('{"v": 1, "kind": "span"\nnot json\n')
        with pytest.raises(ValueError):
            read_events_jsonl(out)

    def test_blank_lines_skipped(self, tmp_path):
        tracer = small_trace()
        out = tmp_path / "events.jsonl"
        write_events_jsonl(out, tracer.records)
        out.write_text(out.read_text() + "\n\n")
        assert len(read_events_jsonl(out)) == len(tracer.records)
