"""Units for the sim-time metrics pipeline (hub, SLOs, dashboard, diff)."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_BURN_RULES,
    HIGH_BAD,
    INFO,
    LOW_BAD,
    METRICS_SCHEMA_VERSION,
    NULL_HUB,
    BurnRule,
    DiffRule,
    MetricsHub,
    NullMetricsHub,
    SloEngine,
    SloSpec,
    SpanTracer,
    as_hub,
    default_slos,
    diff_dumps,
    emit_slo_instants,
    read_metrics_jsonl,
    render_dashboard,
    render_name,
    rule_for,
    sparkline,
    split_name,
    to_openmetrics,
    write_metrics_jsonl,
)


class TestInstruments:
    def test_counter_is_monotone(self):
        hub = MetricsHub()
        c = hub.counter("frames_total")
        c.inc()
        c.inc(2.0)
        assert c.sample_value() == 3.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_counter_set_total_never_goes_backward(self):
        hub = MetricsHub()
        c = hub.counter("evictions_total")
        c.set_total(5.0)
        c.set_total(5.0)  # repeat of the same snapshot is fine
        with pytest.raises(ValueError, match="backwards"):
            c.set_total(3.0)
        assert c.sample_value() == 5.0

    def test_gauge_none_until_set(self):
        hub = MetricsHub()
        g = hub.gauge("displayed_ssim")
        assert g.sample_value() is None
        g.set(0.98)
        assert g.sample_value() == 0.98

    def test_histogram_buckets_and_overflow(self):
        hub = MetricsHub()
        h = hub.histogram("lat_ms", edges=(1.0, 10.0))
        for v in (0.5, 5.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert h.count == 3
        assert h.sum == pytest.approx(505.5)

    def test_get_or_create_is_idempotent_and_kind_checked(self):
        hub = MetricsHub()
        assert hub.counter("x_total") is hub.counter("x_total")
        with pytest.raises(TypeError):
            hub.gauge("x_total")

    def test_labels_render_into_the_series_name(self):
        hub = MetricsHub()
        hub.counter("frames_total", labels={"player": "0"}).inc()
        hub.maybe_sample(100.0)
        assert 'frames_total{player="0"}' in hub.series
        base, labels = split_name('frames_total{player="0"}')
        assert base == "frames_total"
        assert labels == {"player": "0"}
        assert render_name(base, labels) == 'frames_total{player="0"}'


class TestSampling:
    def test_boundaries_stamped_retroactively(self):
        hub = MetricsHub(sample_period_ms=100.0)
        hub.counter("frames_total").inc()
        # One call far past several boundaries stamps every boundary.
        hub.maybe_sample(350.0)
        times = [t for t, _ in hub.series["frames_total"]]
        assert times == [100.0, 200.0, 300.0]
        assert hub.samples_taken == 3

    def test_unset_gauges_produce_no_series(self):
        hub = MetricsHub()
        hub.gauge("displayed_ssim")
        hub.maybe_sample(1000.0)
        assert "displayed_ssim" not in hub.series

    def test_probes_run_before_each_boundary(self):
        hub = MetricsHub(sample_period_ms=100.0)
        g = hub.gauge("depth")
        seen = []
        hub.register_probe(lambda: (g.set(42.0), seen.append(1)))
        hub.maybe_sample(200.0)
        assert len(seen) == 2
        assert list(hub.series["depth"]) == [(100.0, 42.0), (200.0, 42.0)]

    def test_ring_capacity_bounds_memory(self):
        hub = MetricsHub(sample_period_ms=1.0, ring_capacity=8)
        hub.counter("c_total").inc()
        hub.maybe_sample(100.0)
        assert len(hub.series["c_total"]) == 8

    def test_on_sample_callback_sees_last_boundary(self):
        hub = MetricsHub(sample_period_ms=100.0)
        hub.counter("c_total").inc()
        stamps = []
        hub.on_sample = stamps.append
        hub.maybe_sample(250.0)
        assert stamps == [200.0]

    def test_null_hub_is_inert(self):
        assert not NULL_HUB.enabled
        NULL_HUB.counter("x_total")
        NULL_HUB.maybe_sample(1e9)
        assert NULL_HUB.series == {}
        assert as_hub(None) is NULL_HUB
        hub = MetricsHub()
        assert as_hub(hub) is hub
        assert isinstance(as_hub(NullMetricsHub()), NullMetricsHub)


def _ratio_spec(**overrides):
    kwargs = dict(
        name="miss_rate", kind="ratio", metric="bad_total",
        total="all_total", bound=0.1, window_ms=200.0,
        rules=(BurnRule(short_ms=100.0, long_ms=200.0, threshold=2.0),),
    )
    kwargs.update(overrides)
    return SloSpec(**kwargs)


def _series(pairs):
    return {name: list(samples) for name, samples in pairs.items()}


class TestSloEngine:
    def test_clean_run_attains_fully(self):
        series = _series({
            "all_total": [(100.0, 10.0), (200.0, 20.0), (300.0, 30.0)],
            "bad_total": [(100.0, 0.0), (200.0, 0.0), (300.0, 0.0)],
        })
        result = SloEngine([_ratio_spec()]).evaluate(series)[0]
        assert result.attainment == 1.0
        assert result.alerts == []
        assert result.worst_burn == 0.0

    def test_sustained_burn_fires_one_rising_edge_alert(self):
        # 50% of events bad against a 10% objective: burn 5x >= 2x
        # threshold in both windows, sustained over many boundaries —
        # exactly one alert per rule, not one per boundary.
        all_total = [(100.0 * i, 10.0 * i) for i in range(1, 8)]
        bad_total = [(100.0 * i, 5.0 * i) for i in range(1, 8)]
        series = _series({"all_total": all_total, "bad_total": bad_total})
        result = SloEngine([_ratio_spec()]).evaluate(series)[0]
        assert result.attainment == 0.0
        assert len(result.alerts) == 1
        assert result.alerts[0].burn_short == pytest.approx(5.0)

    def test_short_blip_does_not_fire_the_long_window(self):
        # One bad burst inside a single short window; the long window
        # dilutes it below threshold, so no alert fires.
        series = _series({
            "all_total": [(100.0 * i, 100.0 * i) for i in range(1, 8)],
            "bad_total": [(100.0, 0.0), (200.0, 0.0), (300.0, 21.0),
                          (400.0, 21.0), (500.0, 21.0), (600.0, 21.0),
                          (700.0, 21.0)],
        })
        spec = _ratio_spec(rules=(
            BurnRule(short_ms=100.0, long_ms=400.0, threshold=2.0),
        ))
        result = SloEngine([spec]).evaluate(series)[0]
        assert result.alerts == []

    def test_value_min_burn_counts_deficit(self):
        spec = SloSpec(name="ssim", kind="value_min", metric="ssim",
                       bound=0.9, budget=0.1, window_ms=200.0)
        series = _series({"ssim": [(100.0, 0.95), (200.0, 0.85)]})
        result = SloEngine([spec]).evaluate(series)[0]
        # Window at 200 ms averages (0.95 + 0.85)/2 = 0.9: exactly at
        # bound; window at 100 ms is compliant outright.
        assert result.attainment == 1.0
        series = _series({"ssim": [(100.0, 0.7), (200.0, 0.7)]})
        result = SloEngine([spec]).evaluate(series)[0]
        assert result.attainment == 0.0
        assert result.worst_burn == pytest.approx(2.0)  # 0.2 deficit / 0.1

    def test_value_max_percentile_objective(self):
        spec = SloSpec(name="join_p99", kind="value_max", metric="join_ms",
                       bound=100.0, percentile=99.0, window_ms=1000.0)
        series = _series({
            "join_ms": [(100.0 * i, 50.0) for i in range(1, 10)]
        })
        result = SloEngine([spec]).evaluate(series)[0]
        assert result.attainment == 1.0
        assert result.worst_burn == pytest.approx(0.5)

    def test_absent_series_evaluates_to_none(self):
        result = SloEngine([_ratio_spec()]).evaluate({})[0]
        assert result.attainment is None
        assert result.evaluated == 0

    def test_evaluation_is_deterministic(self):
        series = _series({
            "all_total": [(100.0 * i, 10.0 * i) for i in range(1, 8)],
            "bad_total": [(100.0 * i, 5.0 * i) for i in range(1, 8)],
        })
        a = SloEngine([_ratio_spec()]).evaluate(series)[0]
        b = SloEngine([_ratio_spec()]).evaluate(series)[0]
        assert a.to_dict() == b.to_dict()

    def test_default_slos_cover_the_paper_promises(self):
        names = {s.name for s in default_slos()}
        assert names == {"deadline_miss_rate", "displayed_ssim",
                         "join_latency_p99"}
        assert all(s.rules == DEFAULT_BURN_RULES for s in default_slos())

    def test_emit_slo_instants_lands_alerts_in_the_trace(self):
        series = _series({
            "all_total": [(100.0 * i, 10.0 * i) for i in range(1, 8)],
            "bad_total": [(100.0 * i, 5.0 * i) for i in range(1, 8)],
        })
        results = SloEngine([_ratio_spec()]).evaluate(series)
        tracer = SpanTracer()
        assert emit_slo_instants(tracer, results) == 1
        names = [r.name for r in tracer.records]
        assert "slo.miss_rate" in names
        assert emit_slo_instants(None, results) == 0


class TestOpenMetrics:
    def test_exposition_shape(self):
        hub = MetricsHub()
        hub.counter("frames_total", labels={"player": "0"}).inc(3.0)
        hub.gauge("depth").set(2.0)
        h = hub.histogram("lat_ms", edges=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = to_openmetrics(hub)
        assert text.endswith("# EOF\n")
        assert "# TYPE frames counter" in text
        assert 'frames_total{player="0"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_ms histogram" in text
        assert 'lat_ms_bucket{le="+Inf"} 2' in text
        assert "lat_ms_count 2" in text


class TestJsonlDump:
    def _hub(self):
        hub = MetricsHub(sample_period_ms=100.0)
        hub.counter("frames_total").inc(5.0)
        hub.gauge("depth").set(1.5)
        hub.histogram("lat_ms", edges=(1.0,)).observe(0.5)
        hub.maybe_sample(200.0)
        return hub

    def test_round_trip(self, tmp_path):
        hub = self._hub()
        path = tmp_path / "m.jsonl"
        n = write_metrics_jsonl(path, hub, meta={"system": "coterie"})
        dump = read_metrics_jsonl(path)
        assert n == 1 + len(hub.series) + 1  # meta + series + histogram
        assert dump.meta["system"] == "coterie"
        assert dump.meta["sample_period_ms"] == 100.0
        assert dump.series["frames_total"] == [(100.0, 5.0), (200.0, 5.0)]
        assert dump.series_types["frames_total"] == "counter"
        assert dump.histograms["lat_ms"]["count"] == 1

    def test_every_record_is_schema_versioned(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(path, self._hub())
        for line in path.read_text().splitlines():
            assert json.loads(line)["v"] == METRICS_SCHEMA_VERSION

    def test_unknown_version_refused(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"v": 99, "kind": "meta"}\n')
        with pytest.raises(ValueError, match="version"):
            read_metrics_jsonl(path)

    def test_bad_line_reported_with_position(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"v": 1, "kind": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            read_metrics_jsonl(path)


class TestDashboard:
    def test_sparkline_normalizes_and_handles_edges(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(sparkline(list(range(100)), width=10)) == 10
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_render_dashboard_lists_series_and_slos(self):
        hub = MetricsHub(sample_period_ms=100.0)
        hub.counter("frames_total").inc()
        hub.maybe_sample(300.0)
        results = SloEngine([_ratio_spec()]).evaluate(
            {"all_total": [(100.0, 10.0)], "bad_total": [(100.0, 0.0)]}
        )
        out = render_dashboard(hub, slo_results=results)
        assert "frames_total" in out
        assert "slo miss_rate" in out


def _dump(tmp_path, name, series, types=None):
    hub = MetricsHub(sample_period_ms=100.0)
    path = tmp_path / name
    records = [{"v": 1, "kind": "meta", "sample_period_ms": 100.0}]
    for sname, samples in series.items():
        records.append({
            "v": 1, "kind": "series", "name": sname,
            "type": (types or {}).get(sname, "gauge"),
            "samples": samples,
        })
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    del hub
    return read_metrics_jsonl(path)


class TestDiff:
    def test_identical_dumps_are_clean(self, tmp_path):
        series = {"frames_total": [[100.0, 10.0], [200.0, 20.0]],
                  "depth": [[100.0, 2.0], [200.0, 3.0]]}
        a = _dump(tmp_path, "a.jsonl", series,
                  types={"frames_total": "counter"})
        b = _dump(tmp_path, "b.jsonl", series,
                  types={"frames_total": "counter"})
        rows = diff_dumps(a, b)
        assert not any(r.regressed for r in rows)

    def test_injected_counter_regression_flags(self, tmp_path):
        a = _dump(tmp_path, "a.jsonl",
                  {"frames_total": [[100.0, 100.0]]},
                  types={"frames_total": "counter"})
        b = _dump(tmp_path, "b.jsonl",
                  {"frames_total": [[100.0, 50.0]]},
                  types={"frames_total": "counter"})
        rows = diff_dumps(a, b)
        row = next(r for r in rows if r.name == "frames_total")
        assert row.regressed  # frames fell: LOW_BAD

    def test_missing_series_is_always_a_regression(self, tmp_path):
        a = _dump(tmp_path, "a.jsonl", {"depth": [[100.0, 1.0]]})
        b = _dump(tmp_path, "b.jsonl", {})
        rows = diff_dumps(a, b)
        assert rows[0].regressed
        assert "missing in run B" in rows[0].note

    def test_info_direction_never_fails(self, tmp_path):
        a = _dump(tmp_path, "a.jsonl", {"unruled_gauge": [[100.0, 1.0]]})
        b = _dump(tmp_path, "b.jsonl", {"unruled_gauge": [[100.0, 9999.0]]})
        rows = diff_dumps(a, b)
        assert rows[0].direction == INFO
        assert not rows[0].regressed

    def test_rule_lookup_is_longest_prefix_on_base_name(self):
        rule = rule_for('deadline_misses_total{player="3"}')
        assert rule is not None and rule.direction == HIGH_BAD
        rule = rule_for("cache_hit_ratio")
        assert rule is not None and rule.direction == LOW_BAD
        assert rule_for("no_such_metric") is None

    def test_threshold_combines_abs_and_rel(self):
        rule = DiffRule("x", HIGH_BAD, tolerance_abs=1.0, tolerance_rel=0.1)
        assert rule.threshold(100.0) == pytest.approx(11.0)
