"""Tracer core: span recording, null tracer, and run determinism."""

import pytest

from repro.telemetry import NULL_TRACER, NullTracer, SpanTracer, as_tracer
from repro.telemetry.tracer import KIND_COUNTER, KIND_INSTANT, KIND_SPAN


class TestSpanTracer:
    def test_complete_records_span(self):
        tracer = SpanTracer()
        tracer.complete("render", 0, "render", 10.0, 5.0,
                        args={"frame": 3})
        assert len(tracer) == 1
        (span,) = tracer.spans()
        assert span.kind == KIND_SPAN
        assert span.name == "render"
        assert span.player == 0
        assert span.lane == "render"
        assert span.start_ms == 10.0
        assert span.dur_ms == 5.0
        assert span.end_ms == 15.0
        assert span.arg("frame") == 3
        assert span.arg("missing", "d") == "d"

    def test_negative_duration_rejected(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            tracer.complete("render", 0, "render", 10.0, -1.0)

    def test_instants_and_counters_partitioned(self):
        tracer = SpanTracer()
        tracer.complete("frame", 0, "frame", 0.0, 16.0)
        tracer.instant("cache.lookup", 1, "cache", 2.0,
                       args={"outcome": "miss"})
        tracer.counter("sim.queue_depth", 4.0, 12)
        assert len(tracer) == 3
        assert [s.name for s in tracer.spans()] == ["frame"]
        (inst,) = tracer.instants()
        assert inst.kind == KIND_INSTANT
        assert inst.player == 1
        counters = [r for r in tracer.records if r.kind == KIND_COUNTER]
        assert counters[0].arg("value") == 12

    def test_lanes_per_player(self):
        tracer = SpanTracer()
        tracer.complete("frame", 0, "frame", 0.0, 16.0)
        tracer.complete("render", 0, "render", 0.0, 8.0)
        tracer.complete("frame", 1, "frame", 0.0, 16.0)
        assert set(tracer.lanes(0)) == {"frame", "render"}
        assert tracer.lanes(1) == ["frame"]

    def test_clear(self):
        tracer = SpanTracer()
        tracer.complete("frame", 0, "frame", 0.0, 16.0)
        tracer.clear()
        assert len(tracer) == 0


class TestNullTracer:
    def test_disabled_and_inert(self):
        null = NullTracer()
        assert not null.enabled
        null.complete("x", 0, "frame", 0.0, 1.0)
        null.instant("y", 0, "frame", 0.0)
        null.counter("z", 0.0, 1)
        assert len(null) == 0
        assert null.records == []
        assert null.spans() == []

    def test_as_tracer_normalization(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = SpanTracer()
        assert as_tracer(tracer) is tracer
        assert as_tracer(NULL_TRACER) is NULL_TRACER


class TestTracedRunDeterminism:
    """Tracing must be purely observational: a traced run produces
    bit-identical metrics to an untraced run of the same config."""

    @pytest.fixture(scope="class")
    def game(self):
        from repro.systems import SessionConfig, prepare_artifacts
        from repro.world import load_game

        world = load_game("racing")
        artifacts = prepare_artifacts(world, SessionConfig(duration_s=2.0, seed=11))
        return world, artifacts

    def _run(self, game, tracer):
        from repro.faults import FaultSchedule
        from repro.systems import SessionConfig, run_coterie

        world, artifacts = game
        config = SessionConfig(
            duration_s=2.0, seed=11, tracer=tracer,
            faults=FaultSchedule.parse("dip@500-1200:0.05,stall@300-400:20"),
        )
        return run_coterie(world, 2, config, artifacts)

    def test_metrics_bit_identical_with_tracing(self, game):
        untraced = self._run(game, None)
        tracer = SpanTracer()
        traced = self._run(game, tracer)
        assert len(tracer) > 0
        for a, b in zip(untraced.players, traced.players):
            assert a.metrics == b.metrics
        assert untraced.be_mbps == traced.be_mbps
        assert untraced.fi_kbps == traced.fi_kbps

    def test_faulted_run_covers_stage_lanes(self, game):
        tracer = SpanTracer()
        self._run(game, tracer)
        for player in (0, 1):
            stage_lanes = set(tracer.lanes(player)) - {"frame", "wait"}
            # acceptance bar: >= 4 distinct stage names per player
            assert len(stage_lanes) >= 4, stage_lanes

    def test_sim_span_and_queue_counter_emitted(self, game):
        tracer = SpanTracer()
        self._run(game, tracer)
        sim_spans = [s for s in tracer.spans() if s.name == "sim.run"]
        assert sim_spans and all(s.lane == "sim" for s in sim_spans)
        assert sum(s.arg("dispatched") for s in sim_spans) > 0
        depth = [r for r in tracer.records if r.name == "sim.queue_depth"]
        assert depth  # sampled every TRACE_SAMPLE_EVERY dispatches
