"""Frame-budget attribution: synthetic sweeps and a real traced run."""

import pytest

from repro.telemetry import (
    FRAME_BUDGET_MS,
    FrameBudgetReport,
    SpanTracer,
    attribute_frame,
)
from repro.telemetry.tracer import KIND_SPAN, Span


def span(name, lane, start, dur, player=0, args=None):
    return Span(KIND_SPAN, name, "stage", player, lane, start, dur, args)


class TestAttributeFrame:
    def test_slowest_concurrent_stage_wins(self):
        # Eq. 2 shape: four concurrent stages from t0, merge tail after.
        frame = span("frame", "frame", 0.0, 16.7, args={"frame": 0})
        stages = [
            span("render", "render", 0.0, 8.0),
            span("decode", "decode", 0.0, 11.0),
            span("prefetch", "prefetch", 0.0, 6.0),
            span("sync", "sync", 0.0, 1.0),
            span("merge", "merge", 11.0, 2.0),
        ]
        by = attribute_frame(frame, stages)
        # decode gates [0, 11): it ends last among the concurrent four
        assert by["decode"] == pytest.approx(11.0)
        assert by["merge"] == pytest.approx(2.0)
        assert by["wait"] == pytest.approx(16.7 - 13.0)
        assert "render" not in by
        assert sum(by.values()) == pytest.approx(16.7)

    def test_uncovered_interval_is_wait(self):
        frame = span("frame", "frame", 0.0, 16.7)
        assert attribute_frame(frame, []) == {"wait": pytest.approx(16.7)}

    def test_stage_clipped_to_frame_window(self):
        frame = span("frame", "frame", 10.0, 10.0)
        by = attribute_frame(frame, [span("render", "render", 5.0, 10.0)])
        # only the overlap [10, 15) charges to render
        assert by["render"] == pytest.approx(5.0)
        assert by["wait"] == pytest.approx(5.0)

    def test_attribution_sums_exactly_to_interval(self):
        frame = span("frame", "frame", 0.0, 23.456)
        stages = [
            span("render", "render", 0.0, 7.7),
            span("decode", "decode", 2.0, 13.3),
            span("merge", "merge", 15.3, 4.1),
        ]
        by = attribute_frame(frame, stages)
        assert sum(by.values()) == pytest.approx(23.456, abs=1e-9)


class TestFrameBudgetReport:
    def build(self):
        tracer = SpanTracer()
        # player 0, frame 0: healthy (decode-gated, under budget)
        tracer.complete("frame", 0, "frame", 0.0, 16.6,
                        args={"frame": 0, "fault": "", "cache": "hit"})
        tracer.complete("decode", 0, "decode", 0.0, 11.0, args={"frame": 0})
        # player 0, frame 1: blown budget under a dip, prefetch-gated
        tracer.complete("frame", 0, "frame", 16.6, 40.0,
                        args={"frame": 1, "fault": "dip",
                              "deadline_missed": True, "cache": "fetch"})
        tracer.complete("prefetch", 0, "prefetch", 16.6, 38.0,
                        args={"frame": 1})
        # player 1, frame 0: healthy render-gated
        tracer.complete("frame", 1, "frame", 0.0, 16.6,
                        args={"frame": 0, "fault": ""})
        tracer.complete("render", 1, "render", 0.0, 9.0, args={"frame": 0})
        return FrameBudgetReport.from_records(tracer.records)

    def test_frames_matched_per_player(self):
        report = self.build()
        assert len(report.frames) == 3
        assert report.players() == [0, 1]
        keys = [(f.player, f.frame) for f in report.frames]
        assert keys == [(0, 0), (0, 1), (1, 0)]

    def test_attributions_sum_within_tolerance(self):
        report = self.build()
        assert report.max_residual_ms() < 1e-9
        for f in report.frames:
            assert f.attributed_ms == pytest.approx(f.interval_ms, rel=0.01)

    def test_critical_stage_and_miss_breakdown(self):
        report = self.build()
        blown = next(f for f in report.frames if f.frame == 1)
        assert blown.over_budget and blown.deadline_missed
        assert blown.critical_stage == "prefetch"
        assert blown.fault == "dip"
        assert blown.cache == "fetch"
        assert report.miss_count() == 1
        assert report.miss_breakdown() == [("prefetch", "dip", 1)]

    def test_stage_table_sorted_by_total(self):
        report = self.build()
        rows = report.stage_table()
        assert rows[0].stage == "prefetch"  # 38 ms dwarfs everything
        stages = {r.stage for r in rows}
        assert {"prefetch", "decode", "render", "wait"} <= stages
        assert sum(r.share for r in rows) == pytest.approx(1.0)

    def test_render_mentions_misses(self):
        text = self.build().render()
        assert "frame-budget attribution: 3 frames" in text
        assert "prefetch" in text and "dip" in text
        assert "deadline/budget misses: 1 of 3 frames" in text

    def test_empty_report(self):
        report = FrameBudgetReport.from_records([])
        assert report.frames == []
        assert report.miss_count() == 0
        assert "no frame spans" in report.render()


class TestRealRunAttribution:
    """Acceptance: per-frame attributions from a faulted run sum to the
    frame interval within 1%."""

    def test_faulted_run_attribution(self):
        from repro.faults import FaultSchedule
        from repro.systems import SessionConfig, prepare_artifacts, run_coterie
        from repro.world import load_game

        world = load_game("racing")
        tracer = SpanTracer()
        config = SessionConfig(
            duration_s=2.0, seed=5, tracer=tracer,
            faults=FaultSchedule.parse("dip@400-1100:0.05"),
        )
        artifacts = prepare_artifacts(world, SessionConfig(duration_s=2.0, seed=5))
        run_coterie(world, 2, config, artifacts)
        report = FrameBudgetReport.from_records(tracer.records)
        assert report.frames, "traced run produced no frame spans"
        assert report.players() == [0, 1]
        for f in report.frames:
            assert abs(f.residual_ms) <= 0.01 * f.interval_ms + 1e-9
        # a faulted run attributes some frames to non-trivial stages
        assert {r.stage for r in report.stage_table()} - {"wait"}
        assert FRAME_BUDGET_MS == pytest.approx(16.6667, abs=1e-3)
