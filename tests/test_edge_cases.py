"""Cross-cutting edge cases: poles, seams, boundaries, and tiny worlds."""

import math

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.geometry import (
    FovSpec,
    Rect,
    Vec2,
    Vec3,
    WorldGrid,
    crop_fov,
)
from repro.net import WifiLink
from repro.render import RenderConfig, empty_layer, draw_objects
from repro.sim import Simulator
from repro.world import Scene, SceneObject


class TestEquirectPoles:
    def test_crop_looking_straight_up(self):
        pano = np.tile(np.linspace(0, 1, 64)[:, None], (1, 128)).astype(np.float32)
        out = crop_fov(pano, yaw=0.0, pitch=math.pi / 2 - 0.05, fov=FovSpec(),
                       out_width=16, out_height=16)
        assert out.shape == (16, 16)
        assert np.all(np.isfinite(out))

    def test_crop_looking_straight_down(self):
        pano = np.random.default_rng(0).random((64, 128)).astype(np.float32)
        out = crop_fov(pano, yaw=1.0, pitch=-math.pi / 2 + 0.05, fov=FovSpec(),
                       out_width=16, out_height=16)
        assert np.all(np.isfinite(out))


class TestSeamObjects:
    def test_object_straddling_seam_draws_on_both_edges(self):
        cfg = RenderConfig(width=128, height=64)
        eye = Vec3(100.0, 100.0, 1.7)
        # Object dead ahead at azimuth ~0: its disk wraps the panorama seam.
        obj = SceneObject(1, "tree", Vec3(104.0, 100.0, 2.0), 2.0, 1000,
                          0.9, 0.3, 5)
        layer = empty_layer(cfg)
        draw_objects(layer, [obj], eye, cfg)
        cols = np.nonzero(layer.mask.any(axis=0))[0]
        assert 0 in cols or 127 in cols
        assert len(cols) > 2

    def test_object_at_eye_position_skipped(self):
        cfg = RenderConfig(width=64, height=32)
        eye = Vec3(10.0, 10.0, 1.0)
        obj = SceneObject(1, "tree", Vec3(10.0, 10.0, 1.0), 1.0, 100,
                          0.5, 0.3, 1)
        layer = empty_layer(cfg)
        draw_objects(layer, [obj], eye, cfg)  # zero distance: must not crash


class TestTinyWorlds:
    def test_one_cell_grid(self):
        grid = WorldGrid(Rect(0, 0, 0.01, 0.01), pitch=1.0)
        assert grid.total_points == 1
        assert grid.snap(Vec2(0.005, 0.005)) == (0, 0)
        assert grid.neighbors((0, 0)) == []

    def test_single_object_scene_queries(self):
        obj = SceneObject(0, "rock", Vec3(1, 1, 0.5), 0.5, 300, 0.4, 0.2, 0)
        scene = Scene(Rect(0, 0, 2, 2), [obj], lambda p: 0.0)
        assert scene.triangles_within(Vec2(1, 1), 0.0) == 300
        assert scene.objects_in_annulus(Vec2(1, 1), 0.0, 5.0) == []
        part = scene.partition(Vec2(0, 0), cutoff_radius=0.5)
        assert len(part.far) == 1


class TestCodecExtremes:
    def test_all_black_and_all_white(self):
        codec = FrameCodec()
        for value in (0.0, 1.0):
            frame = np.full((32, 32), value, dtype=np.float32)
            decoded = codec.decode(codec.encode(frame))
            assert np.abs(decoded - frame).max() < 0.05

    def test_minimum_size_frame(self):
        codec = FrameCodec()
        frame = np.random.default_rng(1).random((8, 8)).astype(np.float32)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == (8, 8)

    def test_extreme_crf_values(self):
        frame = np.random.default_rng(2).random((16, 16)).astype(np.float32)
        for crf in (0.0, 51.0):
            codec = FrameCodec(crf=crf)
            decoded = codec.decode(codec.encode(frame))
            assert np.all((decoded >= 0) & (decoded <= 1))


class TestLinkExtremes:
    def test_many_stations_still_positive_capacity(self):
        link = WifiLink(Simulator(), stations=50)
        assert 0.0 < link.mac_efficiency < 0.2

    def test_huge_transfer_completes(self):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=100.0, overhead_ms=0.0)
        done = {}

        def proc():
            duration = yield link.transfer(125_000_000)  # one gigabit
            done["ms"] = duration

        sim.spawn(proc())
        sim.run()
        assert done["ms"] == pytest.approx(10_000.0)

    def test_invalid_station_count(self):
        with pytest.raises(ValueError):
            WifiLink(Simulator(), stations=0)
