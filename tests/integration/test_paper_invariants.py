"""Property-style invariants that encode the paper's causal claims.

Each test states a mechanism the paper relies on and checks it holds for
arbitrary(ish) inputs, not just the benchmark configurations.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FrameCache,
    CachedFrame,
    RenderBudget,
    exact_max_radius,
)
from repro.core.pipeline import PipelineTimings, frame_interval_ms
from repro.geometry import Rect, Vec2, Vec3, angular_radius
from repro.net import WifiLink
from repro.render import PIXEL2, RenderCostModel
from repro.sim import Simulator
from repro.world import Scene, SceneObject

MODEL = RenderCostModel(PIXEL2)


def obj(oid, x, y, triangles=50_000, radius=1.0):
    return SceneObject(oid, "tree", Vec3(x, y, radius), radius, triangles,
                       0.5, 0.3, oid)


class TestCutoffMonotonicity:
    """More budget -> larger cutoff; denser world -> smaller cutoff."""

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=4.1, max_value=12.0))
    def test_cutoff_monotone_in_fi_cost(self, fi_ms):
        rng = np.random.default_rng(0)
        objects = [
            obj(i, float(rng.uniform(0, 200)), float(rng.uniform(0, 200)))
            for i in range(200)
        ]
        scene = Scene(Rect(0, 0, 200, 200), objects, lambda p: 0.0)
        lean = RenderBudget(fi_ms=4.0)
        fat = RenderBudget(fi_ms=fi_ms)
        p = Vec2(100, 100)
        r_lean = exact_max_radius(scene, MODEL, p, lean, 150.0)
        r_fat = exact_max_radius(scene, MODEL, p, fat, 150.0)
        assert r_fat <= r_lean + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_cutoff_monotone_in_density(self, factor):
        base = [obj(i, 5.0 * (i % 40) + 2, 5.0 * (i // 40) + 2) for i in range(400)]
        scene_sparse = Scene(Rect(0, 0, 200, 200), base, lambda p: 0.0)
        heavier = [
            SceneObject(o.object_id, o.kind_name, o.center, o.radius,
                        o.triangles * factor, o.luminance, o.contrast,
                        o.texture_seed)
            for o in base
        ]
        scene_dense = Scene(Rect(0, 0, 200, 200), heavier, lambda p: 0.0)
        p = Vec2(100, 100)
        budget = RenderBudget()
        assert exact_max_radius(scene_dense, MODEL, p, budget, 150.0) <= (
            exact_max_radius(scene_sparse, MODEL, p, budget, 150.0) + 1e-9
        )


class TestProjectionLaws:
    """The perspective-projection asymmetry behind the near-object effect."""

    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=1.1, max_value=10.0),
    )
    def test_angular_size_scales_inverse_distance(self, radius, factor):
        near_d = radius * 2.0
        far_d = near_d * factor
        near_ang = angular_radius(radius, near_d)
        far_ang = angular_radius(radius, far_d)
        assert near_ang > far_ang
        # For small angles, the ratio approaches the distance ratio.
        if far_ang < 0.2:
            assert near_ang / far_ang > 0.8 * factor


class TestCacheInvariants:
    def test_used_bytes_never_exceed_capacity(self):
        cache = FrameCache(capacity_bytes=1000)
        rng = np.random.default_rng(1)
        for k in range(100):
            size = int(rng.integers(50, 400))
            cache.insert(
                CachedFrame(
                    grid_point=(k, 0), position=Vec2(float(k), 0.0),
                    leaf=(0, 0, 1, 1), near_ids=frozenset(), payload=None,
                    size_bytes=size, inserted_ms=float(k), last_used_ms=float(k),
                )
            )
            assert cache.used_bytes <= 1000

    def test_hits_plus_misses_equals_lookups(self):
        cache = FrameCache()
        rng = np.random.default_rng(2)
        for k in range(200):
            gp = (int(rng.integers(0, 10)), 0)
            hit = cache.lookup(gp, Vec2(gp[0], 0.0), (0, 0, 1, 1),
                               frozenset(), 0.5, float(k))
            if hit is None:
                cache.insert(
                    CachedFrame(
                        grid_point=gp, position=Vec2(gp[0], 0.0),
                        leaf=(0, 0, 1, 1), near_ids=frozenset(), payload=None,
                        size_bytes=10, inserted_ms=float(k), last_used_ms=float(k),
                    )
                )
        assert cache.stats.hits + cache.stats.misses == 200
        assert cache.stats.hits > 0


class TestPipelineLaws:
    @settings(max_examples=40)
    @given(
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0, max_value=40),
        st.floats(min_value=0, max_value=5),
    )
    def test_eq2_bounded_by_tasks(self, render, decode, prefetch, sync):
        t = PipelineTimings(
            render_fi_ms=render / 2, render_near_be_ms=render / 2,
            decode_ms=decode, prefetch_ms=prefetch, sync_ms=sync,
            merge_ms=1.0,
        )
        total = t.split_render_ms()
        # Eq. 2: total is the max task plus merge — never the sum.
        assert total >= max(render, decode, prefetch, sync)
        assert total <= max(render, decode, prefetch, sync) + 1.0 + 1e-9
        # Display interval never beats the refresh rate.
        assert frame_interval_ms(t) >= 1000.0 / 60.0 - 1e-9

    @settings(max_examples=20)
    @given(st.floats(min_value=17.0, max_value=100.0))
    def test_quantized_interval_is_beat_multiple(self, prefetch):
        t = PipelineTimings(1, 1, 1, prefetch, 1, 1)
        interval = frame_interval_ms(t, quantize=True)
        beats = interval / (1000.0 / 60.0)
        assert abs(beats - round(beats)) < 1e-9


class TestNetworkLaws:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_n_concurrent_transfers_scale_linearly(self, n):
        sim = Simulator()
        link = WifiLink(sim, capacity_mbps=400.0, overhead_ms=0.0, stations=1)
        durations = []

        def proc():
            d = yield link.transfer(400_000)
            durations.append(d)

        for _ in range(n):
            sim.spawn(proc())
        sim.run()
        solo = 400_000 * 8 / (400.0 * 1e6) * 1000.0
        assert durations[0] == pytest.approx(n * solo, rel=0.02)

    def test_mac_efficiency_decreases_with_stations(self):
        effs = [
            WifiLink(Simulator(), stations=n).mac_efficiency for n in (1, 2, 4, 8)
        ]
        assert effs[0] == 1.0
        assert all(a > b for a, b in zip(effs, effs[1:]))
