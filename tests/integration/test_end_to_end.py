"""Cross-module integration tests: the full Coterie stack in miniature.

These run the real pipeline (world -> preprocessing -> prefetch/cache ->
render/codec -> merge) on the small pool world and verify the invariants
that hold the system together.
"""

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.core import (
    FrameCache,
    PanoramaStore,
    Prefetcher,
    preprocess_game,
)
from repro.core.merger import compose_display, switch_discontinuities
from repro.render import PIXEL2, RenderConfig, RenderCostModel
from repro.render.splitter import eye_at, reference_frame, render_near_be
from repro.similarity import SSIM_GOOD, ssim
from repro.trace import generate_trajectory
from repro.world import load_game

CFG = RenderConfig(width=128, height=64)
MODEL = RenderCostModel(PIXEL2)


@pytest.fixture(scope="module")
def pool():
    world = load_game("pool")
    artifacts = preprocess_game(
        world, MODEL, CFG, FrameCodec(), seed=5, size_samples=3
    )
    return world, artifacts


class TestOfflineOnlineConsistency:
    def test_cutoffs_respect_constraint_along_trace(self, pool):
        """Every visited location renders near BE within the budget."""
        world, artifacts = pool
        trajectory = generate_trajectory(world, duration_s=5, seed=3)
        budget = artifacts.budget
        for sample in trajectory.samples[::20]:
            radius = artifacts.cutoff_map.cutoff_for(sample.position)
            cost = MODEL.near_be_ms(world.scene, sample.position, radius)
            # Min-of-samples radii are conservative; tolerate the paper's
            # ~0.25 % unsampled-hotspot violations but nothing gross.
            assert cost < budget.near_be_budget_ms / budget.headroom * 1.3

    def test_cache_hit_implies_visual_quality(self, pool):
        """A frame served from the cache merges into a display frame that
        approximates the all-local reference (the dist_thresh promise)."""
        world, artifacts = pool
        store = PanoramaStore(
            world, CFG, FrameCodec(), cutoff_map=artifacts.cutoff_map
        )
        cache = FrameCache()
        prefetcher = Prefetcher(
            world.scene, world.grid, artifacts.cutoff_map,
            artifacts.dist_thresh_map, cache,
        )
        trajectory = generate_trajectory(world, duration_s=5, seed=4)
        scores = []
        for sample in trajectory.samples[::5]:
            decision = prefetcher.plan(sample.position, sample.heading, sample.t_ms)
            if decision.needs_fetch:
                stored = store.frame_for(decision.grid_point)
                cached = prefetcher.admit(
                    decision, stored, stored.wire_bytes, sample.t_ms
                )
            else:
                cached = decision.cached
            far_image = cached.payload.decoded
            eye = eye_at(world.scene, sample.position, 1.7)
            near = render_near_be(world.scene, eye, CFG, decision.cutoff_radius)
            displayed = compose_display(far_image, near)
            reference = reference_frame(world.scene, eye, CFG)
            scores.append(ssim(displayed, reference))
        # Displayed frames track the reference; codec loss and reuse drift
        # cost a little quality but stay in the paper's "good" regime.
        assert np.mean(scores) > 0.85
        assert min(scores) > 0.6

    def test_far_be_switches_are_mild(self, pool):
        """Consecutive far-BE sources along a trace differ only mildly —
        the property behind Table 10's user-study scores."""
        world, artifacts = pool
        store = PanoramaStore(
            world, CFG, FrameCodec(), cutoff_map=artifacts.cutoff_map
        )
        cache = FrameCache()
        prefetcher = Prefetcher(
            world.scene, world.grid, artifacts.cutoff_map,
            artifacts.dist_thresh_map, cache,
        )
        trajectory = generate_trajectory(world, duration_s=5, seed=6)
        shown = []
        for sample in trajectory.samples[::3]:
            decision = prefetcher.plan(sample.position, sample.heading, sample.t_ms)
            if decision.needs_fetch:
                stored = store.frame_for(decision.grid_point)
                cached = prefetcher.admit(
                    decision, stored, stored.wire_bytes, sample.t_ms
                )
            else:
                cached = decision.cached
            shown.append(cached.payload.decoded)
        switches = switch_discontinuities(shown)
        assert switches, "expected at least one far-BE switch"
        assert np.median(switches) > 0.7

    def test_store_sizes_match_size_model(self, pool):
        """The emulated size model stays calibrated to real encodes."""
        world, artifacts = pool
        store = PanoramaStore(
            world, CFG, FrameCodec(), cutoff_map=artifacts.cutoff_map
        )
        real_sizes = []
        rng = np.random.default_rng(2)
        for _ in range(4):
            p = world.bounds.sample(rng, 1)[0]
            real_sizes.append(store.frame_for(world.grid.snap(p)).wire_bytes)
        model_mean = artifacts.far_size_model.mean_bytes
        assert 0.4 * model_mean < np.mean(real_sizes) < 2.5 * model_mean


class TestDeterminism:
    def test_preprocessing_deterministic(self):
        world = load_game("pool")
        a = preprocess_game(world, MODEL, CFG, FrameCodec(), seed=9, size_samples=3)
        b = preprocess_game(world, MODEL, CFG, FrameCodec(), seed=9, size_samples=3)
        assert a.cutoff_map.leaf_radii() == b.cutoff_map.leaf_radii()
        assert a.far_size_model == b.far_size_model

    def test_full_replay_deterministic(self, pool):
        world, artifacts = pool

        def replay():
            cache = FrameCache()
            prefetcher = Prefetcher(
                world.scene, world.grid, artifacts.cutoff_map,
                artifacts.dist_thresh_map, cache,
            )
            trajectory = generate_trajectory(world, duration_s=4, seed=8)
            for sample in trajectory.samples:
                decision = prefetcher.plan(
                    sample.position, sample.heading, sample.t_ms
                )
                if decision.needs_fetch:
                    prefetcher.admit(decision, None, 1000, sample.t_ms)
            return cache.stats.hits, cache.stats.misses

        assert replay() == replay()
