"""Tests for block decomposition and the 8x8 DCT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    dct_matrix,
    forward_dct,
    inverse_dct,
    join_blocks,
    pad_to_blocks,
    split_blocks,
)


class TestBlocks:
    def test_pad_aligned_frame_unchanged(self):
        f = np.zeros((16, 24))
        assert pad_to_blocks(f) is f

    def test_pad_extends_to_multiple(self):
        f = np.ones((10, 13))
        padded = pad_to_blocks(f)
        assert padded.shape == (16, 16)
        assert np.all(padded == 1.0)  # edge padding of a constant frame

    def test_pad_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pad_to_blocks(np.zeros((4, 4, 3)))

    def test_split_join_roundtrip(self):
        rng = np.random.default_rng(0)
        f = rng.random((32, 40))
        blocks = split_blocks(f)
        assert blocks.shape == (4, 5, 8, 8)
        assert np.array_equal(join_blocks(blocks, (32, 40)), f)

    def test_split_rejects_unaligned(self):
        with pytest.raises(ValueError):
            split_blocks(np.zeros((10, 16)))

    def test_join_crops(self):
        blocks = np.ones((2, 2, 8, 8))
        out = join_blocks(blocks, (10, 13))
        assert out.shape == (10, 13)

    def test_join_rejects_oversized_target(self):
        with pytest.raises(ValueError):
            join_blocks(np.ones((1, 1, 8, 8)), (16, 16))

    def test_block_content_layout(self):
        # Block (0,1) should hold columns 8..15 of rows 0..7.
        f = np.arange(16 * 16).reshape(16, 16).astype(float)
        blocks = split_blocks(f)
        assert np.array_equal(blocks[0, 1], f[0:8, 8:16])


class TestDct:
    def test_matrix_orthonormal(self):
        c = dct_matrix()
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_roundtrip_identity(self):
        rng = np.random.default_rng(1)
        blocks = rng.random((3, 4, 8, 8)) * 255
        assert np.allclose(inverse_dct(forward_dct(blocks)), blocks, atol=1e-9)

    def test_constant_block_single_dc(self):
        blocks = np.full((1, 1, 8, 8), 100.0)
        coeffs = forward_dct(blocks)
        assert coeffs[0, 0, 0, 0] == pytest.approx(800.0)  # 100 * 8
        rest = coeffs.copy()
        rest[0, 0, 0, 0] = 0.0
        assert np.allclose(rest, 0.0, atol=1e-9)

    def test_energy_preservation(self):
        # Orthonormal transform: Parseval's theorem holds.
        rng = np.random.default_rng(2)
        blocks = rng.random((2, 2, 8, 8))
        coeffs = forward_dct(blocks)
        assert np.sum(blocks**2) == pytest.approx(np.sum(coeffs**2))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            forward_dct(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_dct(np.zeros((2, 2, 4, 4)))

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_property(self, seed):
        blocks = np.random.default_rng(seed).normal(size=(1, 1, 8, 8)) * 128
        assert np.allclose(inverse_dct(forward_dct(blocks)), blocks, atol=1e-8)
