"""Rate-distortion behaviour of the frame codec.

The network model's realism rests on the codec behaving like a video
coder: rate falls monotonically with CRF, distortion rises; P-frames track
content change; long P-chains do not diverge.
"""

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.similarity import ssim


def scene_like_frame(seed, shape=(64, 128)):
    """Sky gradient + blocky content, like the renderer's output."""
    rng = np.random.default_rng(seed)
    y = np.linspace(0.85, 0.35, shape[0])[:, None]
    frame = np.tile(y, (1, shape[1])).astype(np.float32)
    coarse = rng.random((shape[0] // 4, shape[1] // 4))
    detail = np.kron(coarse, np.ones((4, 4)))[: shape[0], : shape[1]]
    frame[shape[0] // 2 :] += (detail[shape[0] // 2 :] - 0.5) * 0.3
    return np.clip(frame, 0, 1).astype(np.float32)


class TestRateDistortion:
    def test_rate_monotone_in_crf(self):
        frame = scene_like_frame(1)
        sizes = [FrameCodec(crf=c).encode(frame).luma_bytes for c in (10, 20, 30, 40, 50)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] > 2 * sizes[-1]

    def test_quality_monotone_in_crf(self):
        frame = scene_like_frame(2)
        qualities = []
        for crf in (10, 25, 45):
            codec = FrameCodec(crf=crf)
            qualities.append(ssim(frame, codec.decode(codec.encode(frame))))
        assert qualities[0] >= qualities[1] >= qualities[2]

    def test_rate_tracks_content_energy(self):
        codec = FrameCodec()
        flat = np.full((64, 128), 0.5, dtype=np.float32)
        mild = scene_like_frame(3)
        busy = np.clip(
            mild + np.kron(
                np.random.default_rng(4).random((32, 64)), np.ones((2, 2))
            ).astype(np.float32) * 0.4 - 0.2,
            0, 1,
        )
        sizes = [codec.encode(f).luma_bytes for f in (flat, mild, busy)]
        assert sizes[0] < sizes[1] < sizes[2]


class TestPFrameChains:
    def test_static_chain_is_cheap(self):
        codec = FrameCodec()
        frame = scene_like_frame(5)
        reference = codec.decode(codec.encode(frame))
        p = codec.encode(frame, reference=reference)
        i = codec.encode(frame)
        assert p.luma_bytes < i.luma_bytes / 3

    def test_long_chain_does_not_drift(self):
        """30 P-frames of slowly changing content stay faithful."""
        codec = FrameCodec()
        frame = scene_like_frame(6)
        reference = codec.decode(codec.encode(frame))
        current = frame
        for step in range(30):
            current = np.clip(current + 0.003, 0, 1).astype(np.float32)
            encoded = codec.encode(current, reference=reference)
            reference = codec.decode(encoded, reference=reference)
        assert ssim(current, reference) > 0.85

    def test_scene_cut_makes_p_frame_expensive(self):
        codec = FrameCodec()
        a = scene_like_frame(7)
        b = scene_like_frame(8)  # unrelated content
        ref = codec.decode(codec.encode(a))
        p_cut = codec.encode(b, reference=ref)
        p_same = codec.encode(a, reference=ref)
        assert p_cut.luma_bytes > 3 * p_same.luma_bytes
