"""Tests for quantization, entropy coding, and the full frame codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    CodecTiming,
    FOUR_K_PIXELS,
    FrameCodec,
    decode_levels,
    dequantize,
    encode_levels,
    quant_matrix,
    quant_scale,
    quantize,
    zigzag_order,
)
from repro.similarity import ssim


def textured_frame(seed, shape=(64, 128)):
    """A frame with mixed smooth + detailed content (codec-realistic).

    Detail features span ~4 px, like the renderer's mip-mapped textures;
    per-pixel white noise would be adversarial for any transform codec.
    """
    rng = np.random.default_rng(seed)
    y = np.linspace(0, 1, shape[0])[:, None]
    base = 0.3 + 0.4 * y
    coarse = rng.random(((shape[0] + 3) // 4, (shape[1] + 3) // 4))
    detail = np.kron(coarse, np.ones((4, 4)))[: shape[0], : shape[1]] * 0.25
    return np.clip(base + detail, 0, 1).astype(np.float32)


class TestQuant:
    def test_crf25_unit_scale(self):
        assert quant_scale(25.0) == pytest.approx(1.0)

    def test_doubles_every_six(self):
        assert quant_scale(31.0) == pytest.approx(2.0 * quant_scale(25.0))
        assert quant_scale(19.0) == pytest.approx(0.5 * quant_scale(25.0))

    def test_crf_range_enforced(self):
        with pytest.raises(ValueError):
            quant_scale(-1)
        with pytest.raises(ValueError):
            quant_scale(52)

    def test_matrix_floor_at_one(self):
        assert np.all(quant_matrix(0.0) >= 1.0)

    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=(2, 3, 8, 8)) * 200
        q = quant_matrix(25.0)
        recovered = dequantize(quantize(coeffs), 25.0)
        assert np.all(np.abs(recovered - coeffs) <= q / 2 + 1e-9)

    def test_higher_crf_coarser(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(size=(2, 2, 8, 8)) * 100
        fine = quantize(coeffs, crf=18.0)
        coarse = quantize(coeffs, crf=40.0)
        assert np.count_nonzero(coarse) < np.count_nonzero(fine)


class TestEntropy:
    def test_zigzag_is_permutation(self):
        order = zigzag_order()
        assert sorted(order.tolist()) == list(range(64))

    def test_zigzag_starts_dc_ends_hf(self):
        order = zigzag_order()
        assert order[0] == 0
        assert order[-1] == 63

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        levels = rng.integers(-50, 50, size=(3, 5, 8, 8)).astype(np.int32)
        data = encode_levels(levels)
        assert np.array_equal(decode_levels(data, 3, 5), levels)

    def test_sparse_blocks_compress_better(self):
        dense = np.random.default_rng(3).integers(-100, 100, (4, 4, 8, 8)).astype(np.int32)
        sparse = dense.copy()
        sparse[:, :, 2:, :] = 0
        sparse[:, :, :, 2:] = 0
        assert len(encode_levels(sparse)) < len(encode_levels(dense))

    def test_corrupt_stream_rejected(self):
        levels = np.zeros((2, 2, 8, 8), dtype=np.int32)
        data = encode_levels(levels)
        with pytest.raises(ValueError):
            decode_levels(data, 3, 3)  # wrong block-grid dimensions

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_levels(np.zeros((8, 8), dtype=np.int32))
        with pytest.raises(ValueError):
            decode_levels(b"", 0, 1)


class TestFrameCodec:
    def test_iframe_roundtrip_quality(self):
        codec = FrameCodec(crf=25)
        frame = textured_frame(0)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape
        assert decoded.dtype == np.float32
        assert ssim(frame, decoded) > 0.8

    def test_lower_crf_better_quality_bigger_frames(self):
        frame = textured_frame(1)
        hi_q = FrameCodec(crf=15)
        lo_q = FrameCodec(crf=40)
        enc_hi, enc_lo = hi_q.encode(frame), lo_q.encode(frame)
        assert enc_hi.luma_bytes > enc_lo.luma_bytes
        assert ssim(frame, hi_q.decode(enc_hi)) > ssim(frame, lo_q.decode(enc_lo))

    def test_smooth_frame_smaller_than_detailed(self):
        codec = FrameCodec()
        smooth = np.full((64, 128), 0.5, dtype=np.float32)
        detailed = textured_frame(2)
        assert codec.encode(smooth).luma_bytes < codec.encode(detailed).luma_bytes / 4

    def test_pframe_smaller_for_similar_frames(self):
        codec = FrameCodec()
        frame_a = textured_frame(3)
        decoded_a = codec.decode(codec.encode(frame_a))
        frame_b = np.clip(frame_a + 0.01, 0, 1)
        p = codec.encode(frame_b, reference=decoded_a)
        i = codec.encode(frame_b)
        assert not p.is_keyframe
        assert p.luma_bytes < i.luma_bytes

    def test_pframe_decode_needs_reference(self):
        codec = FrameCodec()
        frame = textured_frame(4)
        ref = codec.decode(codec.encode(frame))
        p = codec.encode(frame, reference=ref)
        with pytest.raises(ValueError):
            codec.decode(p)
        decoded = codec.decode(p, reference=ref)
        assert ssim(frame, decoded) > 0.8

    def test_reference_shape_mismatch(self):
        codec = FrameCodec()
        with pytest.raises(ValueError):
            codec.encode(textured_frame(0), reference=np.zeros((8, 8)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            FrameCodec().encode(np.zeros((4, 4, 3)))

    def test_invalid_crf(self):
        with pytest.raises(ValueError):
            FrameCodec(crf=99)

    def test_unaligned_dimensions_roundtrip(self):
        codec = FrameCodec()
        frame = textured_frame(5, shape=(30, 50))
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == (30, 50)

    def test_wire_bytes_scaling(self):
        codec = FrameCodec()
        enc = codec.encode(textured_frame(6))
        assert enc.wire_bytes() > enc.luma_bytes  # 4K scaling dominates
        assert enc.wire_bytes(enc.width * enc.height) < enc.luma_bytes
        with pytest.raises(ValueError):
            enc.wire_bytes(0)

    def test_bits_per_pixel(self):
        enc = FrameCodec().encode(textured_frame(7))
        assert enc.bits_per_pixel == pytest.approx(
            8 * enc.luma_bytes / (64 * 128)
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_roundtrip_never_explodes(self, seed):
        codec = FrameCodec()
        frame = textured_frame(seed)
        decoded = codec.decode(codec.encode(frame))
        assert np.all((decoded >= 0) & (decoded <= 1))
        assert np.abs(decoded - frame).mean() < 0.1


class TestCodecTiming:
    def test_4k_latencies_in_envelope(self):
        timing = CodecTiming()
        # Decode must fit inside the 16.7 ms frame budget on the phone.
        assert timing.decode_ms(FOUR_K_PIXELS) < 16.7
        assert timing.encode_ms(FOUR_K_PIXELS) < 16.7

    def test_scales_with_pixels(self):
        timing = CodecTiming()
        assert timing.decode_ms(2 * 10**6) == pytest.approx(
            2 * timing.decode_ms(10**6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CodecTiming(encode_ms_per_mpixel=0)
        with pytest.raises(ValueError):
            CodecTiming().decode_ms(0)
