"""Bit-identity tests for the stacked I-frame decode path."""

import numpy as np
import pytest

from repro import perf
from repro.codec import FrameCodec, quant_matrix
from repro.codec.blocks import (
    join_blocks,
    join_blocks_stack,
    split_blocks,
    split_blocks_stack,
)
from repro.perf import FrameArena


def textured_frame(seed, shape=(32, 64)):
    rng = np.random.default_rng(seed)
    y = np.linspace(0, 1, shape[0])[:, None]
    coarse = rng.random(((shape[0] + 3) // 4, (shape[1] + 3) // 4))
    detail = np.kron(coarse, np.ones((4, 4)))[: shape[0], : shape[1]] * 0.25
    return np.clip(0.3 + 0.4 * y + detail, 0, 1).astype(np.float32)


class TestDecodeBatch:
    def test_matches_scalar_decode_exactly(self):
        codec = FrameCodec()
        encoded = [codec.encode(textured_frame(seed)) for seed in range(5)]
        batched = codec.decode_batch(encoded)
        for frame, decoded in zip(encoded, batched):
            np.testing.assert_array_equal(decoded, codec.decode(frame))
            assert decoded.dtype == np.float32

    def test_mixed_shapes_and_crfs_group_correctly(self):
        sharp, coarse = FrameCodec(crf=23), FrameCodec(crf=30)
        encoded = [
            sharp.encode(textured_frame(0, (32, 64))),
            sharp.encode(textured_frame(1, (16, 32))),
            coarse.encode(textured_frame(2, (32, 64))),
            sharp.encode(textured_frame(3, (32, 64))),
            sharp.encode(textured_frame(4, (16, 32))),
        ]
        perf.reset()
        batched = sharp.decode_batch(encoded)
        # results stay in submission order despite per-group stacking
        for frame, decoded in zip(encoded, batched):
            np.testing.assert_array_equal(decoded, sharp.decode(frame))
        assert perf.counter("decode.batched_frames") == 5
        assert perf.counter("decode.batches") == 3  # (64,23) (32,23) (64,30)

    def test_arena_scratch_results_own_memory(self):
        codec = FrameCodec()
        encoded = [codec.encode(textured_frame(seed)) for seed in range(4)]
        arena = FrameArena()
        first = codec.decode_batch(encoded, arena=arena)
        snapshots = [frame.copy() for frame in first]
        arena.reset()  # the tick ends; scratch recycles
        codec.decode_batch(encoded, arena=arena)
        # earlier results must be unaffected: decoded frames own memory
        for frame, snapshot in zip(first, snapshots):
            np.testing.assert_array_equal(frame, snapshot)
        assert arena.hits > 0

    def test_empty_batch(self):
        assert FrameCodec().decode_batch([]) == []

    def test_p_frames_rejected(self):
        codec = FrameCodec()
        base = textured_frame(0)
        reference = codec.decode(codec.encode(base))
        moved = np.roll(base, 2, axis=1)
        p_frame = codec.encode(moved, reference=reference)
        if p_frame.is_keyframe:
            pytest.skip("codec produced no P-frame for this content")
        with pytest.raises(ValueError):
            codec.decode_batch([p_frame])


class TestStackBlockHelpers:
    def test_split_stack_matches_per_frame(self):
        frames = np.stack(
            [textured_frame(s, (24, 40)).astype(np.float64) for s in range(3)]
        )
        stacked = split_blocks_stack(frames)
        for row in range(frames.shape[0]):
            np.testing.assert_array_equal(stacked[row], split_blocks(frames[row]))

    def test_join_stack_roundtrip_and_out(self):
        shape = (24, 40)
        frames = np.stack(
            [textured_frame(s, shape).astype(np.float64) for s in range(3)]
        )
        blocks = split_blocks_stack(frames)
        joined = join_blocks_stack(blocks, shape)
        np.testing.assert_array_equal(joined, frames)
        out = np.empty_like(joined)
        result = join_blocks_stack(blocks, shape, out=out)
        # the result is a cropped view into the supplied buffer
        assert result.base is out or result is out
        for row in range(frames.shape[0]):
            np.testing.assert_array_equal(out[row], join_blocks(blocks[row], shape))


class TestQuantMatrixCache:
    def test_cached_and_immutable(self):
        a = quant_matrix(23)
        assert a is quant_matrix(23)
        with pytest.raises(ValueError):
            a[0, 0] = 99.0
