"""Tests for dirty-block encode reuse (``repro.codec.dirty``).

Pins the two invariants the kernel layer is built on: the dirty-block
codec's bytes are identical to a from-scratch ``FrameCodec`` encode (so
``vector+reuse`` never changes any artifact), and block digests
invalidate *exactly* the perturbed blocks (so reuse never serves stale
coefficients) — the latter as a hypothesis property over random frames.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.codec import (
    BLOCK,
    DirtyBlockCodec,
    FrameCodec,
    block_digests,
    dirty_row_mask,
    frame_block_digests,
)
from repro.geometry import Vec2
from repro.render.rasterizer import RenderConfig
from repro.render.splitter import eye_at, render_far_be
from repro.world import load_game


def _panorama_sequence(n=5):
    """Far-BE frames along a short displacement (a dist-thresh probe walk)."""
    world = load_game("racing", scale=0.15)
    config = RenderConfig(width=64, height=32)
    bounds = world.scene.bounds
    frames = []
    for step in range(n):
        point = bounds.clamp(Vec2(
            bounds.center.x + 0.35 * step, bounds.center.y
        ))
        eye = eye_at(world.scene, point, world.spec.player.eye_height)
        frames.append(render_far_be(world.scene, eye, config, 12.0).image)
    return frames


class TestByteIdentity:
    def test_sequence_matches_from_scratch_codec(self):
        """Keyed reuse over a probe walk: every byte equals FrameCodec's."""
        codec = FrameCodec()
        dirty_codec = DirtyBlockCodec(codec)
        for frame in _panorama_sequence():
            reused = dirty_codec.encode(frame, key=("far", 12.0))
            scratch = codec.encode(frame)
            assert reused.data == scratch.data
            assert (reused.width, reused.height, reused.crf) == (
                scratch.width, scratch.height, scratch.crf
            )

    def test_some_blocks_actually_reused(self):
        """The probe walk must exercise the splice path, not just dirty-all."""
        perf.reset()
        dirty_codec = DirtyBlockCodec(FrameCodec())
        for frame in _panorama_sequence():
            dirty_codec.encode(frame, key=("far", 12.0))
        assert perf.counter("codec.ref_hits") > 0
        assert perf.counter("codec.blocks_reused") > 0
        total = perf.counter("codec.blocks_total")
        assert total == perf.counter("codec.blocks_reused") + perf.counter(
            "codec.blocks_recomputed"
        )

    def test_distinct_keys_have_distinct_references(self):
        """Same frame under two keys: both start with a reference miss."""
        perf.reset()
        dirty_codec = DirtyBlockCodec(FrameCodec())
        frame = _panorama_sequence(1)[0]
        dirty_codec.encode(frame, key=("far", 8.0))
        dirty_codec.encode(frame, key=("far", 16.0))
        assert perf.counter("codec.ref_misses") == 2

    def test_keyless_encode_is_passthrough(self):
        codec = FrameCodec()
        dirty_codec = DirtyBlockCodec(codec)
        frame = np.linspace(0.0, 1.0, 16 * 24).reshape(16, 24)
        assert dirty_codec.encode(frame).data == codec.encode(frame).data
        assert dirty_codec.last_dirty is None

    def test_decode_round_trip(self):
        codec = FrameCodec()
        dirty_codec = DirtyBlockCodec(codec)
        frame = _panorama_sequence(1)[0]
        encoded = dirty_codec.encode(frame, key="k")
        assert np.array_equal(
            dirty_codec.decode(encoded), codec.decode(codec.encode(frame))
        )

    def test_reference_lru_eviction(self):
        """Cycling past max_references re-misses the evicted key."""
        perf.reset()
        dirty_codec = DirtyBlockCodec(FrameCodec(), max_references=2)
        frame = np.zeros((8, 8)) + 0.25
        for key in ("a", "b", "c", "a"):
            dirty_codec.encode(frame, key=key)
        assert perf.counter("codec.ref_misses") == 4  # 'a' was evicted

    def test_rejects_bad_frames(self):
        dirty_codec = DirtyBlockCodec(FrameCodec())
        with pytest.raises(ValueError):
            dirty_codec.encode(np.zeros((2, 2, 2)), key="k")
        with pytest.raises(ValueError):
            dirty_codec.encode(np.zeros((0, 8)), key="k")
        with pytest.raises(ValueError):
            DirtyBlockCodec(FrameCodec(), max_references=0)


class TestDigests:
    def test_digest_shape_and_determinism(self):
        frame = np.random.default_rng(0).random((32, 48))
        first = frame_block_digests(frame)
        assert first.shape == (4, 6)
        assert np.array_equal(first, frame_block_digests(frame.copy()))

    def test_rejects_non_block_tensor(self):
        with pytest.raises(ValueError):
            block_digests(np.zeros((2, 2, 4, 4)))

    def test_dirty_row_mask_expands_blocks(self):
        dirty = np.zeros((3, 2), dtype=bool)
        dirty[1, 0] = True
        mask = dirty_row_mask(dirty, 20)
        assert mask.shape == (20,)
        assert not mask[:BLOCK].any()
        assert mask[BLOCK:2 * BLOCK].all()
        assert not mask[2 * BLOCK:].any()

    @given(
        height=st.integers(9, 40),
        width=st.integers(9, 40),
        seed=st.integers(0, 2**32 - 1),
        n_perturb=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_perturbations_invalidate_exactly_their_blocks(
        self, height, width, seed, n_perturb
    ):
        """Random pixel edits dirty exactly the blocks containing them."""
        rng = np.random.default_rng(seed)
        frame = rng.random((height, width))
        base = frame_block_digests(frame)
        coords = {
            (int(rng.integers(height)), int(rng.integers(width)))
            for _ in range(n_perturb)
        }
        perturbed = frame.copy()
        for row, col in coords:
            # Shift by ~0.37 mod 1: always a different float, stays in [0,1).
            perturbed[row, col] = (perturbed[row, col] + 0.37) % 1.0
        changed = base != frame_block_digests(perturbed)
        expected = {(row // BLOCK, col // BLOCK) for row, col in coords}
        assert {
            (int(i), int(j)) for i, j in zip(*np.nonzero(changed))
        } == expected

    @given(
        seed=st.integers(0, 2**32 - 1),
        n_perturb=st.integers(1, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_codec_recomputes_exactly_dirty_blocks(self, seed, n_perturb):
        """The codec's dirty map and counters track perturbations exactly —
        and the spliced bytes still match a from-scratch encode."""
        rng = np.random.default_rng(seed)
        frame = rng.random((24, 32))
        codec = FrameCodec()
        dirty_codec = DirtyBlockCodec(codec)
        dirty_codec.encode(frame, key="k")
        coords = {
            (int(rng.integers(24)), int(rng.integers(32)))
            for _ in range(n_perturb)
        }
        perturbed = frame.copy()
        for row, col in coords:
            perturbed[row, col] = (perturbed[row, col] + 0.37) % 1.0
        perf.reset()
        encoded = dirty_codec.encode(perturbed, key="k")
        expected = {(row // BLOCK, col // BLOCK) for row, col in coords}
        dirty = dirty_codec.last_dirty
        assert {
            (int(i), int(j)) for i, j in zip(*np.nonzero(dirty))
        } == expected
        assert perf.counter("codec.blocks_recomputed") == len(expected)
        assert encoded.data == codec.encode(perturbed).data
