"""Tests for the fault-schedule framework and its injector."""

import pytest

from repro.faults import (
    ClientOutage,
    FaultInjector,
    FaultSchedule,
    LinkDegradation,
    ServerStall,
)


class TestScheduleTypes:
    def test_window_validation(self):
        for cls in (LinkDegradation, ServerStall, ClientOutage):
            with pytest.raises(ValueError):
                cls(100.0, 100.0)
            with pytest.raises(ValueError):
                cls(-1.0, 100.0)

    def test_link_degradation_to_dip(self):
        window = LinkDegradation(100.0, 200.0, capacity_factor=0.25,
                                 loss_rate=0.1)
        dip = window.to_dip()
        assert dip.start_ms == 100.0
        assert dip.end_ms == 200.0
        assert dip.capacity_factor == 0.25
        assert dip.loss_rate == 0.1

    def test_outage_covers(self):
        mine = ClientOutage(100.0, 200.0, player_id=2)
        assert mine.covers(2, 150.0)
        assert not mine.covers(1, 150.0)
        assert not mine.covers(2, 200.0)
        everyone = ClientOutage(100.0, 200.0)
        assert everyone.covers(0, 150.0) and everyone.covers(7, 150.0)

    def test_schedule_truthiness(self):
        assert not FaultSchedule()
        assert FaultSchedule(stalls=(ServerStall(0.0, 1.0),))


class TestParse:
    def test_full_spec(self):
        schedule = FaultSchedule.parse(
            "dip@3000-8000:0.02, loss@4000-5000:0.3,"
            "stall@1000-1500:25, outage@2000-4000:1"
        )
        assert len(schedule.link) == 2
        assert schedule.link[0].capacity_factor == 0.02
        assert schedule.link[1].loss_rate == 0.3
        assert schedule.stalls[0].extra_ms == 25.0
        assert schedule.outages[0].player_id == 1

    def test_defaults(self):
        schedule = FaultSchedule.parse("dip@0-100,loss@0-100,stall@0-100,outage@0-100")
        assert schedule.link[0].capacity_factor == 0.1
        assert schedule.link[1].loss_rate == 0.2
        assert schedule.stalls[0].extra_ms == 25.0
        assert schedule.outages[0].player_id == -1

    def test_outage_all_keyword(self):
        schedule = FaultSchedule.parse("outage@0-100:all")
        assert schedule.outages[0].player_id == -1

    def test_dips_conversion(self):
        schedule = FaultSchedule.parse("dip@100-200:0.5")
        (dip,) = schedule.dips()
        assert dip.capacity_factor == 0.5

    def test_empty_entries_skipped(self):
        assert not FaultSchedule.parse("")
        assert len(FaultSchedule.parse("stall@0-100, ,").stalls) == 1

    @pytest.mark.parametrize("bad", [
        "freeze@0-100",        # unknown kind
        "dip@100",             # no window
        "dip@200-100",         # inverted window
        "stall@0-100:x",       # non-numeric arg
        "outage@0-100:p1",     # non-integer player
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)


class TestInjector:
    def test_stalls_sum_when_overlapping(self):
        injector = FaultInjector(FaultSchedule(stalls=(
            ServerStall(0.0, 100.0, extra_ms=10.0),
            ServerStall(50.0, 150.0, extra_ms=5.0),
        )))
        assert injector.server_stall_ms(25.0) == 10.0
        assert injector.server_stall_ms(75.0) == 15.0
        assert injector.server_stall_ms(125.0) == 5.0
        assert injector.server_stall_ms(200.0) == 0.0

    def test_outage_resume(self):
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(100.0, 200.0, player_id=0),
        )))
        assert injector.outage_resume_ms(0, 50.0) is None
        assert injector.outage_resume_ms(0, 150.0) == 200.0
        assert injector.outage_resume_ms(1, 150.0) is None

    def test_back_to_back_outages_chain(self):
        """A client paused at t must skip through touching windows."""
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(100.0, 200.0),
            ClientOutage(200.0, 300.0),
            ClientOutage(250.0, 400.0),
        )))
        assert injector.outage_resume_ms(0, 150.0) == 400.0
        assert injector.outage_resume_ms(0, 399.0) == 400.0

    def test_outage_count(self):
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(0.0, 1.0, player_id=0),
            ClientOutage(0.0, 1.0, player_id=1),
            ClientOutage(0.0, 1.0),
        )))
        assert injector.outage_count(0) == 2
        assert injector.outage_count(1) == 2
        assert injector.outage_count(5) == 1
