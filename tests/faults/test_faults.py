"""Tests for the fault-schedule framework and its injector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ClientOutage,
    FaultInjector,
    FaultSchedule,
    LinkDegradation,
    ServerStall,
)


class TestScheduleTypes:
    def test_window_validation(self):
        for cls in (LinkDegradation, ServerStall, ClientOutage):
            with pytest.raises(ValueError):
                cls(100.0, 100.0)
            with pytest.raises(ValueError):
                cls(-1.0, 100.0)

    def test_link_degradation_to_dip(self):
        window = LinkDegradation(100.0, 200.0, capacity_factor=0.25,
                                 loss_rate=0.1)
        dip = window.to_dip()
        assert dip.start_ms == 100.0
        assert dip.end_ms == 200.0
        assert dip.capacity_factor == 0.25
        assert dip.loss_rate == 0.1

    def test_outage_covers(self):
        mine = ClientOutage(100.0, 200.0, player_id=2)
        assert mine.covers(2, 150.0)
        assert not mine.covers(1, 150.0)
        assert not mine.covers(2, 200.0)
        everyone = ClientOutage(100.0, 200.0)
        assert everyone.covers(0, 150.0) and everyone.covers(7, 150.0)

    def test_schedule_truthiness(self):
        assert not FaultSchedule()
        assert FaultSchedule(stalls=(ServerStall(0.0, 1.0),))


class TestParse:
    def test_full_spec(self):
        schedule = FaultSchedule.parse(
            "dip@3000-8000:0.02, loss@4000-5000:0.3,"
            "stall@1000-1500:25, outage@2000-4000:1"
        )
        assert len(schedule.link) == 2
        assert schedule.link[0].capacity_factor == 0.02
        assert schedule.link[1].loss_rate == 0.3
        assert schedule.stalls[0].extra_ms == 25.0
        assert schedule.outages[0].player_id == 1

    def test_defaults(self):
        schedule = FaultSchedule.parse("dip@0-100,loss@0-100,stall@0-100,outage@0-100")
        assert schedule.link[0].capacity_factor == 0.1
        assert schedule.link[1].loss_rate == 0.2
        assert schedule.stalls[0].extra_ms == 25.0
        assert schedule.outages[0].player_id == -1

    def test_outage_all_keyword(self):
        schedule = FaultSchedule.parse("outage@0-100:all")
        assert schedule.outages[0].player_id == -1

    def test_dips_conversion(self):
        schedule = FaultSchedule.parse("dip@100-200:0.5")
        (dip,) = schedule.dips()
        assert dip.capacity_factor == 0.5

    def test_empty_entries_skipped(self):
        assert not FaultSchedule.parse("")
        assert len(FaultSchedule.parse("stall@0-100, ,").stalls) == 1

    @pytest.mark.parametrize("bad", [
        "freeze@0-100",        # unknown kind
        "dip@100",             # no window
        "dip@200-100",         # inverted window
        "stall@0-100:x",       # non-numeric arg
        "outage@0-100:p1",     # non-integer player
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)


class TestInjector:
    def test_stalls_sum_when_overlapping(self):
        injector = FaultInjector(FaultSchedule(stalls=(
            ServerStall(0.0, 100.0, extra_ms=10.0),
            ServerStall(50.0, 150.0, extra_ms=5.0),
        )))
        assert injector.server_stall_ms(25.0) == 10.0
        assert injector.server_stall_ms(75.0) == 15.0
        assert injector.server_stall_ms(125.0) == 5.0
        assert injector.server_stall_ms(200.0) == 0.0

    def test_outage_resume(self):
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(100.0, 200.0, player_id=0),
        )))
        assert injector.outage_resume_ms(0, 50.0) is None
        assert injector.outage_resume_ms(0, 150.0) == 200.0
        assert injector.outage_resume_ms(1, 150.0) is None

    def test_back_to_back_outages_chain(self):
        """A client paused at t must skip through touching windows."""
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(100.0, 200.0),
            ClientOutage(200.0, 300.0),
            ClientOutage(250.0, 400.0),
        )))
        assert injector.outage_resume_ms(0, 150.0) == 400.0
        assert injector.outage_resume_ms(0, 399.0) == 400.0

    def test_outage_count(self):
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(0.0, 1.0, player_id=0),
            ClientOutage(0.0, 1.0, player_id=1),
            ClientOutage(0.0, 1.0),
        )))
        assert injector.outage_count(0) == 2
        assert injector.outage_count(1) == 2
        assert injector.outage_count(5) == 1


class TestOutageResumeProperties:
    """Property tests: the chase loop terminates and finds the true
    latest reachable outage end, under adversarial window layouts."""

    outage_lists = st.lists(
        st.tuples(
            st.integers(0, 50),            # start_ms
            st.integers(1, 30),            # duration_ms
            st.sampled_from([-1, 0, 1, 2]),  # player_id (-1 = wildcard)
        ).map(lambda t: ClientOutage(float(t[0]), float(t[0] + t[1]),
                                     player_id=t[2])),
        max_size=12,
    )

    @staticmethod
    def reference_resume(outages, player_id, now_ms):
        """Interval-reachability oracle: breadth-first over window ends.

        A time t is "offline-reachable" if some window covers it; from a
        reachable window its end is reachable.  The answer is the max
        end reachable from now_ms, or None when no window covers now_ms.
        """
        reachable = set()
        frontier = [now_ms]
        while frontier:
            t = frontier.pop()
            for outage in outages:
                if outage.covers(player_id, t) and outage.end_ms not in reachable:
                    reachable.add(outage.end_ms)
                    frontier.append(outage.end_ms)
        return max(reachable) if reachable else None

    @given(outages=outage_lists, player_id=st.sampled_from([0, 1, 3]),
           now_ms=st.integers(0, 70).map(float))
    @settings(max_examples=200, deadline=None)
    def test_matches_reachability_oracle(self, outages, player_id, now_ms):
        injector = FaultInjector(FaultSchedule(outages=tuple(outages)))
        assert injector.outage_resume_ms(player_id, now_ms) == \
               self.reference_resume(outages, player_id, now_ms)

    @given(outages=outage_lists, now_ms=st.integers(0, 70).map(float))
    @settings(max_examples=200, deadline=None)
    def test_resume_is_a_fixed_point(self, outages, now_ms):
        """At the resume instant the player is back online — no window
        (wildcard or targeted) still covers it, else the loop lied."""
        injector = FaultInjector(FaultSchedule(outages=tuple(outages)))
        resume = injector.outage_resume_ms(0, now_ms)
        if resume is not None:
            assert resume > now_ms  # covers() is end-exclusive
            assert not any(o.covers(0, resume) for o in outages)
            assert injector.outage_resume_ms(0, resume) is None

    def test_duplicate_and_nested_windows(self):
        """Duplicates and fully nested windows must not loop forever."""
        injector = FaultInjector(FaultSchedule(outages=(
            ClientOutage(10.0, 100.0),
            ClientOutage(10.0, 100.0),           # exact duplicate
            ClientOutage(20.0, 80.0, player_id=0),  # nested
            ClientOutage(90.0, 150.0, player_id=0),  # chained per-player
            ClientOutage(100.0, 120.0),          # chained wildcard
        )))
        assert injector.outage_resume_ms(0, 15.0) == 150.0
        assert injector.outage_resume_ms(1, 15.0) == 120.0
