"""Parsing + injector queries for the speculation/desync fault kinds,
and the hardened churn-schedule validation.

New fault kinds (teleport, snapturn, specstorm, speccorrupt, desync)
must parse from the compact CLI syntax with the documented defaults,
answer their applies/covers queries exactly, and reject malformed
entries with actionable errors.  The churn parser must reject
duplicate slot events and overlapping flap windows with errors that
name the offending entries by number.
"""

import math

import pytest

from repro.faults import (
    ChurnSchedule,
    DesyncInjection,
    FaultInjector,
    FaultSchedule,
    PoseJump,
    SpeculationCorruption,
    SpeculationStorm,
)


class TestPoseJump:
    def test_applies_from_t_onward(self):
        jump = PoseJump(1000.0, player_id=1, dx=8.0)
        assert not jump.applies(1, 999.0)
        assert jump.applies(1, 1000.0)
        assert jump.applies(1, 5000.0)
        assert not jump.applies(0, 5000.0)

    def test_all_players_wildcard(self):
        jump = PoseJump(1000.0, dx=8.0)
        assert jump.applies(0, 1000.0) and jump.applies(3, 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoseJump(-1.0)
        with pytest.raises(ValueError):
            PoseJump(0.0, player_id=-2)


class TestDesyncInjection:
    def test_requires_explicit_player(self):
        with pytest.raises(ValueError, match="player_id"):
            DesyncInjection(1000.0, player_id=-1)
        assert DesyncInjection(1000.0, player_id=0).player_id == 0


class TestParseSpeculationKinds:
    def test_teleport_defaults_and_args(self):
        schedule = FaultSchedule.parse("teleport@3000,teleport@4000:1~8")
        assert schedule.poses[0] == PoseJump(3000.0, player_id=-1, dx=10.0)
        assert schedule.poses[1] == PoseJump(4000.0, player_id=1, dx=8.0)

    def test_snapturn_converts_degrees(self):
        schedule = FaultSchedule.parse("snapturn@2000:0~45")
        jump = schedule.poses[0]
        assert jump.player_id == 0
        assert jump.dx == 0.0
        assert jump.dheading == pytest.approx(math.radians(45))

    def test_snapturn_default_quarter_turn(self):
        schedule = FaultSchedule.parse("snapturn@2000")
        assert schedule.poses[0].dheading == pytest.approx(math.radians(90))

    def test_spec_windows(self):
        schedule = FaultSchedule.parse(
            "specstorm@500-1200:0,speccorrupt@1800-2600"
        )
        assert schedule.spec_storms == (
            SpeculationStorm(500.0, 1200.0, player_id=0),
        )
        assert schedule.spec_corruptions == (
            SpeculationCorruption(1800.0, 2600.0, player_id=-1),
        )

    def test_desync_parses(self):
        schedule = FaultSchedule.parse("desync@2500:1")
        assert schedule.desyncs == (DesyncInjection(2500.0, player_id=1),)

    def test_new_kinds_make_schedule_truthy(self):
        assert FaultSchedule.parse("teleport@100")
        assert FaultSchedule.parse("specstorm@100-200")
        assert FaultSchedule.parse("desync@100:0")
        assert not FaultSchedule.parse("")

    @pytest.mark.parametrize("bad", [
        "desync@2500",  # player required
        "desync@2500:all",  # wildcard forbidden
        "teleport@x",  # non-numeric time
        "snapturn@100:0~x",  # non-numeric degrees
        "specstorm@200-100",  # inverted window
        "speccorrupt@100",  # window kind without a window
        "warp@100",  # unknown kind
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)

    def test_desync_error_names_the_syntax(self):
        with pytest.raises(ValueError, match="desync needs an explicit"):
            FaultSchedule.parse("desync@2500")


class TestInjectorQueries:
    def test_speculation_frozen_window(self):
        injector = FaultInjector(
            FaultSchedule.parse("specstorm@500-1200:1")
        )
        assert not injector.speculation_frozen(1, 499.0)
        assert injector.speculation_frozen(1, 500.0)
        assert injector.speculation_frozen(1, 1199.0)
        assert not injector.speculation_frozen(1, 1200.0)
        assert not injector.speculation_frozen(0, 800.0)

    def test_speculation_corrupted_window(self):
        injector = FaultInjector(FaultSchedule.parse("speccorrupt@100-200"))
        assert injector.speculation_corrupted(0, 150.0)
        assert injector.speculation_corrupted(3, 150.0)
        assert not injector.speculation_corrupted(0, 250.0)

    def test_desync_event_window_query(self):
        injector = FaultInjector(
            FaultSchedule.parse("desync@600:1,desync@900:1,desync@700:0")
        )
        # Earliest injection for the slot inside (since, until].
        assert injector.desync_event_ms(1, 0.0, 1000.0) == 600.0
        assert injector.desync_event_ms(1, 600.0, 1000.0) == 900.0
        assert injector.desync_event_ms(1, 900.0, 1000.0) is None
        assert injector.desync_event_ms(0, 0.0, 1000.0) == 700.0
        # Boundary semantics: since is exclusive, until inclusive.
        assert injector.desync_event_ms(1, 0.0, 600.0) == 600.0
        assert injector.desync_event_ms(2, 0.0, 1000.0) is None


class TestChurnValidation:
    def test_duplicate_slot_event_rejected_with_entry_numbers(self):
        with pytest.raises(ValueError, match=r"entry 2.*first declared in entry 1"):
            ChurnSchedule.parse("leave@1000:0,leave@1000:0")

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChurnSchedule.parse("crash@500:1,crash@500:1")

    def test_same_time_different_slots_allowed(self):
        schedule = ChurnSchedule.parse("leave@1000:0,leave@1000:1")
        assert len(schedule.leaves) == 2

    def test_same_slot_different_times_allowed(self):
        schedule = ChurnSchedule.parse("leave@1000:0,rejoin@2000:0,leave@3000:0")
        assert len(schedule.leaves) == 2

    def test_overlapping_flap_windows_rejected(self):
        with pytest.raises(ValueError, match="overlaps"):
            ChurnSchedule.parse("flap@1000-5000:2~800,flap@4000-8000:2~800")

    def test_disjoint_flap_windows_allowed(self):
        schedule = ChurnSchedule.parse("flap@1000-3000:2~800,flap@5000-7000:2~800")
        assert schedule  # both windows expanded

    def test_flap_overlap_error_names_entries(self):
        with pytest.raises(ValueError, match="entry 1"):
            ChurnSchedule.parse("flap@1000-5000:2~800,flap@4000-8000:2~800")

    def test_flap_vs_explicit_event_collision_rejected(self):
        # flap@1000-3000:2~1000 expands to leave@1000, rejoin@2000,
        # leave@3000... an explicit leave at an expanded instant collides.
        with pytest.raises(ValueError, match="duplicate"):
            ChurnSchedule.parse("flap@1000-3000:2~1000,leave@1000:2")
