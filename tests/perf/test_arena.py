"""Tests for the FrameArena buffer pool (the online loop's scratch memory)."""

import numpy as np
import pytest

from repro import perf
from repro.perf import FrameArena


class TestTake:
    def test_shape_and_dtype(self):
        arena = FrameArena()
        buf = arena.take((4, 8), np.float32)
        assert buf.shape == (4, 8)
        assert buf.dtype == np.float32

    def test_default_dtype_is_float64(self):
        assert FrameArena().take((2, 2)).dtype == np.float64

    def test_distinct_buffers_within_epoch(self):
        arena = FrameArena()
        a = arena.take((4, 4))
        b = arena.take((4, 4))
        assert a is not b

    def test_reuse_after_reset(self):
        arena = FrameArena()
        a = arena.take((4, 4))
        arena.reset()
        assert arena.take((4, 4)) is a

    def test_pools_keyed_by_shape_and_dtype(self):
        arena = FrameArena()
        a = arena.take((4, 4), np.float64)
        b = arena.take((4, 4), np.float32)
        arena.reset()
        assert arena.take((4, 4), np.float64) is a
        assert arena.take((4, 4), np.float32) is b

    def test_issue_order_stable_across_epochs(self):
        arena = FrameArena()
        first = [arena.take((2, 3)) for _ in range(3)]
        arena.reset()
        second = [arena.take((2, 3)) for _ in range(3)]
        assert all(x is y for x, y in zip(first, second))


class TestCounters:
    def test_growths_then_hits(self):
        arena = FrameArena()
        arena.take((8, 8))
        arena.take((8, 8))
        assert (arena.hits, arena.growths) == (0, 2)
        arena.reset()
        arena.take((8, 8))
        assert (arena.hits, arena.growths) == (1, 2)

    def test_reuse_ratio(self):
        arena = FrameArena()
        assert arena.reuse_ratio == 0.0
        arena.take((2, 2))
        arena.reset()
        arena.take((2, 2))
        assert arena.reuse_ratio == pytest.approx(0.5)

    def test_registry_counters(self):
        perf.reset()
        arena = FrameArena()
        arena.take((2, 2))
        arena.reset()
        arena.take((2, 2))
        assert perf.counter("arena.growths") == 1
        assert perf.counter("arena.hits") == 1

    def test_pooled_bytes(self):
        arena = FrameArena()
        arena.take((4, 4), np.float64)
        arena.take((4, 4), np.float32)
        assert arena.pooled_bytes == 4 * 4 * 8 + 4 * 4 * 4

    def test_epochs_counted(self):
        arena = FrameArena()
        arena.reset()
        arena.reset()
        assert arena.epochs == 2


class TestSteadyState:
    def test_zero_allocations_once_warm(self):
        """After one warm-up epoch, identical epochs never allocate."""
        arena = FrameArena()
        shapes = [((6, 16, 32), np.float32), ((30, 16, 32), np.float64)]
        for shape, dtype in shapes:
            arena.take(shape, dtype)
        arena.reset()
        before = arena.growths
        for _ in range(5):
            for shape, dtype in shapes:
                arena.take(shape, dtype)
            arena.reset()
        assert arena.growths == before

    def test_clear_drops_buffers_keeps_counters(self):
        arena = FrameArena()
        a = arena.take((4, 4))
        arena.clear()
        assert arena.pooled_bytes == 0
        assert arena.growths == 1
        arena.reset()
        assert arena.take((4, 4)) is not a
