"""Tests for the perf registry (timers, counters, snapshots, report)."""

import time

import pytest

from repro import perf
from repro.perf import PerfRegistry, StageStats


class TestStageStats:
    def test_accumulates(self):
        stats = StageStats()
        stats.add(0.5)
        stats.add(1.5)
        assert stats.calls == 2
        assert stats.total_s == pytest.approx(2.0)
        assert stats.min_s == pytest.approx(0.5)
        assert stats.max_s == pytest.approx(1.5)
        assert stats.mean_ms == pytest.approx(1000.0)

    def test_rejects_invalid(self):
        stats = StageStats()
        with pytest.raises(ValueError):
            stats.add(-1.0)
        with pytest.raises(ValueError):
            stats.add(1.0, calls=0)

    def test_empty_mean_is_zero(self):
        assert StageStats().mean_ms == 0.0


class TestPerfRegistry:
    def test_timed_records_elapsed(self):
        reg = PerfRegistry()
        with reg.timed("work"):
            time.sleep(0.01)
        stage = reg.stage("work")
        assert stage is not None
        assert stage.calls == 1
        assert stage.total_s >= 0.009

    def test_timed_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.timed("work"):
                raise RuntimeError("boom")
        assert reg.stage("work").calls == 1

    def test_counters(self):
        reg = PerfRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.counter("hits") == 5
        assert reg.counter("unknown") == 0

    def test_stage_names(self):
        reg = PerfRegistry()
        reg.add_time("a", 1.0)
        reg.add_time("b", 2.0)
        names = reg.stage_names()
        assert names["a"] == pytest.approx(1.0)
        assert names["b"] == pytest.approx(2.0)

    def test_snapshot_merge_roundtrip(self):
        source = PerfRegistry()
        source.add_time("raster", 0.25, calls=3)
        source.count("renders", 7)
        target = PerfRegistry()
        target.add_time("raster", 0.75)
        target.merge(source.snapshot())
        stage = target.stage("raster")
        assert stage.calls == 4
        assert stage.total_s == pytest.approx(1.0)
        assert target.counter("renders") == 7

    def test_merge_is_additive(self):
        source = PerfRegistry()
        source.add_time("x", 1.0)
        target = PerfRegistry()
        snap = source.snapshot()
        target.merge(snap)
        target.merge(snap)
        assert target.stage("x").calls == 2
        assert target.stage("x").total_s == pytest.approx(2.0)

    def test_reset(self):
        reg = PerfRegistry()
        reg.add_time("x", 1.0)
        reg.count("y")
        reg.reset()
        assert reg.stage("x") is None
        assert reg.counter("y") == 0
        assert reg.stage_names() == {}

    def test_report_contains_stages_and_counters(self):
        reg = PerfRegistry()
        reg.add_time("raster", 2.0, calls=4)
        reg.add_time("ssim", 0.5)
        reg.count("cache.hits", 3)
        text = reg.report()
        assert "raster" in text
        assert "ssim" in text
        assert "cache.hits" in text
        # Default sort: largest total first.
        assert text.index("raster") < text.index("ssim")

    def test_report_sort_modes(self):
        reg = PerfRegistry()
        reg.add_time("b", 2.0, calls=1)
        reg.add_time("a", 1.0, calls=5)
        by_name = reg.report(sort="name")
        assert by_name.index("a") < by_name.index("b")
        by_calls = reg.report(sort="calls")
        assert by_calls.index("a") < by_calls.index("b")
        with pytest.raises(ValueError):
            reg.report(sort="bogus")


class TestModuleSingleton:
    def test_module_helpers_hit_shared_registry(self):
        before = perf.counter("test_perf.unit")
        perf.count("test_perf.unit")
        assert perf.counter("test_perf.unit") == before + 1

    def test_pipeline_stages_reach_registry(self):
        """The wired-in hot stages actually report when exercised."""
        import numpy as np

        from repro.codec import FrameCodec
        from repro.similarity import ssim

        frame = np.random.default_rng(0).random((16, 32)).astype(np.float32)
        ssim_before = (perf.stage("ssim") or StageStats()).calls
        encode_before = (perf.stage("encode") or StageStats()).calls
        ssim(frame, frame)
        FrameCodec().encode(frame)
        assert perf.stage("ssim").calls > ssim_before
        assert perf.stage("encode").calls > encode_before


class TestMergeAtomicity:
    def test_merge_holds_lock_once(self):
        """A concurrent snapshot must never observe a half-merged registry.

        Each merged snapshot updates two stages together; with per-stage
        locking a reader could see stage "a" updated but not "b".  The
        reader asserts the two totals are always equal.
        """
        import threading

        reg = PerfRegistry()
        unit = {
            "stages": {
                "a": {"calls": 1, "total_s": 1.0, "min_s": 1.0, "max_s": 1.0},
                "b": {"calls": 1, "total_s": 1.0, "min_s": 1.0, "max_s": 1.0},
            },
            "counters": {"x": 1, "y": 1},
        }
        torn = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                snap = reg.snapshot()
                stages = snap["stages"]
                if ("a" in stages) != ("b" in stages):
                    torn.append(snap)
                elif "a" in stages and (
                    stages["a"]["total_s"] != stages["b"]["total_s"]
                ):
                    torn.append(snap)
                counters = snap["counters"]
                if counters.get("x", 0) != counters.get("y", 0):
                    torn.append(snap)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(2000):
                reg.merge(unit)
        finally:
            stop.set()
            thread.join()
        assert torn == []
        assert reg.stage("a").calls == 2000
        assert reg.stage("b").total_s == pytest.approx(2000.0)
        assert reg.counter("x") == 2000

    def test_merge_counters_additive_under_single_lock(self):
        reg = PerfRegistry()
        reg.count("hits", 5)
        reg.merge({"counters": {"hits": 7, "misses": 2}})
        assert reg.counter("hits") == 12
        assert reg.counter("misses") == 2


class TestReportAlignment:
    def test_long_stage_names_stay_aligned(self):
        """Regression: names > 24 chars used to shear the columns."""
        reg = PerfRegistry()
        long_name = "a.very.long.stage.name.that.exceeds.24.chars"
        reg.add_time(long_name, 1.0)
        reg.add_time("short", 2.0)
        reg.count("an.even.longer.counter.name.for.good.measure", 3)
        lines = reg.report().splitlines()
        # Every row pads the name to one shared column width, so the
        # numeric columns line up; header format is
        # "{stage:{w}} {calls:>8} {total s:>10} {mean ms:>10}".
        header = lines[0]
        width = len(header) - 31
        assert width >= len(long_name)
        assert width >= len("an.even.longer.counter.name.for.good.measure")
        for line in lines:
            # the name column never bleeds into the first numeric column
            assert line[width] == " "
        stage_rows = lines[1:3]
        assert {row[:width].rstrip() for row in stage_rows} == {long_name, "short"}
        # the right-aligned "calls" values end at the same offset
        assert all(row[width + 1:width + 9].lstrip().isdigit() for row in stage_rows)

    def test_short_names_keep_historical_width(self):
        reg = PerfRegistry()
        reg.add_time("raster", 1.0)
        header = reg.report().splitlines()[0]
        assert len(header) - 31 == 24  # name column stays 24 wide
