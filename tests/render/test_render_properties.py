"""Render-layer invariants that the merging pipeline depends on."""

import numpy as np
import pytest

from repro.geometry import Rect, Vec2, Vec3
from repro.render import (
    RenderConfig,
    merge_layers,
    render_background,
)
from repro.render.splitter import (
    eye_at,
    render_far_be,
    render_near_be,
    render_whole_be,
)
from repro.world import Scene, SceneObject

CFG = RenderConfig(width=128, height=64)


def build_scene(seed=0, count=25):
    rng = np.random.default_rng(seed)
    objects = [
        SceneObject(
            object_id=i,
            kind_name="tree",
            center=Vec3(float(rng.uniform(20, 180)), float(rng.uniform(20, 180)), 2.0),
            radius=float(rng.uniform(0.5, 4.0)),
            triangles=1000,
            luminance=float(rng.uniform(0.2, 0.8)),
            contrast=0.35,
            texture_seed=i * 7,
        )
        for i in range(count)
    ]
    return Scene(Rect(0, 0, 200, 200), objects, lambda p: 0.0)


@pytest.fixture(scope="module")
def scene():
    return build_scene()


EYE_POSITIONS = [Vec2(100, 100), Vec2(40, 60), Vec2(160, 150)]


class TestLayerInvariants:
    @pytest.mark.parametrize("position", EYE_POSITIONS)
    def test_depth_finite_exactly_on_geometry(self, scene, position):
        eye = eye_at(scene, position, 1.7)
        layer = render_whole_be(scene, eye, CFG)
        finite = np.isfinite(layer.depth)
        # Sky pixels are covered but infinitely far; everything with a
        # finite depth must be covered.
        assert np.all(layer.mask[finite])

    @pytest.mark.parametrize("position", EYE_POSITIONS)
    def test_near_and_far_masks_disjoint_on_ground(self, scene, position):
        eye = eye_at(scene, position, 1.7)
        cutoff = 15.0
        near = render_near_be(scene, eye, CFG, cutoff)
        far = render_far_be(scene, eye, CFG, cutoff)
        overlap = near.mask & far.mask
        # Objects may straddle the split (bounding spheres), but the ground
        # band partition is exact: overlap stays marginal.
        assert overlap.mean() < 0.1

    @pytest.mark.parametrize("position", EYE_POSITIONS)
    def test_split_union_covers_whole(self, scene, position):
        eye = eye_at(scene, position, 1.7)
        cutoff = 15.0
        near = render_near_be(scene, eye, CFG, cutoff)
        far = render_far_be(scene, eye, CFG, cutoff)
        whole = render_whole_be(scene, eye, CFG)
        union = near.mask | far.mask
        assert union.sum() >= whole.mask.sum() * 0.999

    def test_pixel_values_in_unit_range(self, scene):
        eye = eye_at(scene, Vec2(100, 100), 1.7)
        for layer in (
            render_whole_be(scene, eye, CFG),
            render_near_be(scene, eye, CFG, 20.0),
            render_far_be(scene, eye, CFG, 20.0),
        ):
            assert np.all(layer.image >= 0.0)
            assert np.all(layer.image <= 1.0)
            assert layer.image.dtype == np.float32

    def test_merge_idempotent_on_empty_overlay(self, scene):
        eye = eye_at(scene, Vec2(100, 100), 1.7)
        base = render_whole_be(scene, eye, CFG)
        from repro.render import empty_layer

        merged = merge_layers(base, empty_layer(CFG))
        assert np.array_equal(merged, base.image)

    def test_background_mask_partition_under_any_cutoff(self, scene):
        eye = eye_at(scene, Vec2(100, 100), 1.7)
        for cutoff in (0.5, 3.0, 12.0, 60.0):
            inner = render_background(scene, eye, CFG, far_clip=cutoff)
            outer = render_background(scene, eye, CFG, near_clip=cutoff)
            assert not (inner.mask & outer.mask).any()
            assert (inner.mask | outer.mask).all()

    def test_more_objects_more_coverage(self):
        sparse = build_scene(seed=1, count=5)
        dense = build_scene(seed=1, count=80)
        eye = Vec3(100, 100, 1.7)
        sparse_cov = render_whole_be(sparse, eye, CFG)
        dense_cov = render_whole_be(dense, eye, CFG)
        # Object pixels differ from the bare background.
        bare = render_background(sparse, eye, CFG).image
        sparse_changed = (np.abs(sparse_cov.image - bare) > 1e-6).sum()
        dense_changed = (np.abs(dense_cov.image - bare) > 1e-6).sum()
        assert dense_changed > sparse_changed
