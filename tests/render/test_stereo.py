"""Tests for the two-eye stereo projection (S6)."""

import math

import numpy as np
import pytest

from repro.render import StereoConfig, side_by_side, stereo_views
from repro.trace.headpose import HeadPose


def gradient_panorama():
    return np.tile(np.arange(360, dtype=np.float64), (180, 1))


class TestStereoViews:
    def test_output_shapes(self):
        config = StereoConfig(eye_width=64, eye_height=48)
        pose = HeadPose(t_ms=0.0, yaw=0.0, pitch=0.0)
        left, right = stereo_views(gradient_panorama(), pose, config)
        assert left.shape == (48, 64)
        assert right.shape == (48, 64)

    def test_eyes_have_parallax(self):
        config = StereoConfig(eye_width=64, eye_height=48)
        pose = HeadPose(t_ms=0.0, yaw=math.pi / 2, pitch=0.0)
        left, right = stereo_views(gradient_panorama(), pose, config)
        # Azimuth gradient: the two eyes read different columns.
        delta = left[24, 32] - right[24, 32]
        expected = math.degrees(2 * config.eye_yaw_offset)
        assert delta == pytest.approx(expected, abs=1.5)

    def test_zero_parallax_at_infinite_reference(self):
        config = StereoConfig(eye_width=32, eye_height=32,
                              reference_distance_m=1e9)
        pose = HeadPose(t_ms=0.0, yaw=1.0, pitch=0.1)
        left, right = stereo_views(gradient_panorama(), pose, config)
        assert np.array_equal(left, right)

    def test_yaw_rotates_both_eyes(self):
        config = StereoConfig(eye_width=32, eye_height=32)
        front = stereo_views(
            gradient_panorama(), HeadPose(0.0, 0.0, 0.0), config
        )[0]
        side = stereo_views(
            gradient_panorama(), HeadPose(0.0, math.pi / 2, 0.0), config
        )[0]
        assert (side[16, 16] - front[16, 16]) % 360 == pytest.approx(90, abs=2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            StereoConfig(eye_width=2)
        with pytest.raises(ValueError):
            StereoConfig(ipd_m=0)
        with pytest.raises(ValueError):
            stereo_views(np.zeros(5), HeadPose(0.0, 0.0, 0.0))


class TestSideBySide:
    def test_packing(self):
        left = np.zeros((8, 8))
        right = np.ones((8, 8))
        packed = side_by_side(left, right)
        assert packed.shape == (8, 16)
        assert packed[0, 0] == 0.0
        assert packed[0, 15] == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            side_by_side(np.zeros((8, 8)), np.zeros((8, 9)))
