"""Tests for the panoramic rasterizer."""

import math

import numpy as np
import pytest

from repro.geometry import Rect, Vec2, Vec3
from repro.render import (
    Layer,
    RenderConfig,
    draw_objects,
    empty_layer,
    merge_layers,
    render_background,
)
from repro.world import Scene, SceneObject

CFG = RenderConfig(width=128, height=64)


def make_scene(objects=(), terrain=lambda p: 0.0):
    return Scene(Rect(0, 0, 200, 200), objects, terrain)


def obj(object_id, x, y, radius=2.0, luminance=0.5, z=None):
    center_z = z if z is not None else radius
    return SceneObject(
        object_id=object_id,
        kind_name="tree",
        center=Vec3(x, y, center_z),
        radius=radius,
        triangles=1000,
        luminance=luminance,
        contrast=0.3,
        texture_seed=object_id * 7 + 1,
    )


EYE = Vec3(100.0, 100.0, 1.7)


class TestRenderConfig:
    def test_defaults_valid(self):
        RenderConfig()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RenderConfig(width=4, height=64)
        with pytest.raises(ValueError):
            RenderConfig(view_limit=0)
        with pytest.raises(ValueError):
            RenderConfig(min_angular_radius=-1)


class TestBackground:
    def test_full_background_covers_frame(self):
        layer = render_background(make_scene(), EYE, CFG)
        assert layer.coverage == 1.0
        assert layer.image.shape == (64, 128)
        assert layer.image.dtype == np.float32

    def test_sky_brighter_than_ground(self):
        layer = render_background(make_scene(), EYE, CFG)
        sky = layer.image[: 64 // 4].mean()
        ground = layer.image[-64 // 4 :].mean()
        assert sky > ground

    def test_ground_depth_increases_toward_horizon(self):
        layer = render_background(make_scene(), EYE, CFG)
        # Bottom row looks nearly straight down (small distance); rows just
        # below the horizon are far away.
        assert layer.depth[-1, 0] < layer.depth[33, 0]

    def test_near_clip_removes_close_ground(self):
        layer = render_background(make_scene(), EYE, CFG, near_clip=5.0)
        # Pixels looking steeply down (closest ground) are not covered.
        assert not layer.mask[-1].any()
        # Sky still covered.
        assert layer.mask[0].all()

    def test_far_clip_removes_sky_and_far_ground(self):
        layer = render_background(make_scene(), EYE, CFG, far_clip=5.0)
        assert not layer.mask[0].any()  # no sky
        assert layer.mask[-1].all()  # near ground present

    def test_clip_band_is_annulus(self):
        inner = render_background(make_scene(), EYE, CFG, far_clip=5.0)
        outer = render_background(make_scene(), EYE, CFG, near_clip=5.0)
        # The two masks tile the full frame without overlap.
        assert not (inner.mask & outer.mask).any()
        assert (inner.mask | outer.mask).all()

    def test_invalid_clip_raises(self):
        with pytest.raises(ValueError):
            render_background(make_scene(), EYE, CFG, near_clip=-1)
        with pytest.raises(ValueError):
            render_background(make_scene(), EYE, CFG, near_clip=5, far_clip=2)

    def test_deterministic(self):
        a = render_background(make_scene(), EYE, CFG)
        b = render_background(make_scene(), EYE, CFG)
        assert np.array_equal(a.image, b.image)

    def test_indoor_flat_ceiling(self):
        cfg = RenderConfig(width=128, height=64, indoor=True)
        layer = render_background(make_scene(), EYE, cfg)
        # Indoor ceiling is uniform.
        assert np.std(layer.image[:8]) == pytest.approx(0.0, abs=1e-5)


class TestDrawObjects:
    def test_object_appears_in_expected_direction(self):
        # Object due +x of the eye: azimuth 0 -> leftmost columns.
        scene_obj = obj(1, 110.0, 100.0, radius=2.0, luminance=0.9)
        layer = render_background(make_scene(), EYE, CFG)
        before = layer.image.copy()
        draw_objects(layer, [scene_obj], EYE, CFG)
        changed = np.nonzero(np.abs(layer.image - before) > 1e-6)
        assert changed[0].size > 0
        cols = changed[1]
        # Azimuth 0 maps to column ~0 (wrapping); all changes near there.
        assert np.all((cols < 15) | (cols > 113))

    def test_nearer_object_larger(self):
        layer_near = empty_layer(CFG)
        draw_objects(layer_near, [obj(1, 105.0, 100.0)], EYE, CFG)
        layer_far = empty_layer(CFG)
        draw_objects(layer_far, [obj(1, 140.0, 100.0)], EYE, CFG)
        assert layer_near.mask.sum() > 4 * layer_far.mask.sum()

    def test_depth_test_near_occludes_far(self):
        near = obj(1, 105.0, 100.0, radius=2.0, luminance=0.1)
        far = obj(2, 120.0, 100.0, radius=2.0, luminance=0.9)
        layer = empty_layer(CFG)
        draw_objects(layer, [near, far], EYE, CFG)
        # Where both overlap, the near (dark) object wins; the bright far
        # object should not fully cover the near region.
        covered = layer.image[layer.mask]
        assert covered.min() < 0.35

    def test_object_behind_ground_horizon_not_drawn_over_near_ground(self):
        # Ground right below the eye is ~1.7 m away; an object 50 m out must
        # not overwrite those pixels.
        layer = render_background(make_scene(), EYE, CFG)
        bottom_before = layer.image[-4:].copy()
        draw_objects(layer, [obj(1, 150.0, 100.0, radius=3.0)], EYE, CFG)
        assert np.array_equal(layer.image[-4:], bottom_before)

    def test_subpixel_object_culled(self):
        tiny = obj(1, 190.0, 100.0, radius=0.05)
        layer = empty_layer(CFG)
        draw_objects(layer, [tiny], EYE, CFG)
        assert layer.mask.sum() == 0

    def test_seam_wrapping_object(self):
        # Object due -x (azimuth pi) sits mid-frame; object at azimuth just
        # below 2*pi wraps across the seam.
        eye = Vec3(100.0, 100.0, 1.7)
        west = obj(1, 110.0, 99.0)  # azimuth slightly below 0 -> wraps
        layer = empty_layer(CFG)
        draw_objects(layer, [west], eye, CFG)
        assert layer.mask.sum() > 0

    def test_empty_object_list_noop(self):
        layer = empty_layer(CFG)
        out = draw_objects(layer, [], EYE, CFG)
        assert out.mask.sum() == 0

    def test_deterministic(self):
        a = empty_layer(CFG)
        b = empty_layer(CFG)
        objs = [obj(i, 100 + 3 * i, 95 + 2 * i) for i in range(1, 6)]
        draw_objects(a, objs, EYE, CFG)
        draw_objects(b, objs, EYE, CFG)
        assert np.array_equal(a.image, b.image)


class TestMergeLayers:
    def test_overlay_replaces_covered_pixels(self):
        base = render_background(make_scene(), EYE, CFG)
        overlay = empty_layer(CFG)
        overlay.image[10:20, 30:40] = 0.123
        overlay.mask[10:20, 30:40] = True
        out = merge_layers(base, overlay)
        assert np.all(out[10:20, 30:40] == np.float32(0.123))
        assert out[0, 0] == base.image[0, 0]

    def test_later_overlay_wins(self):
        base = empty_layer(CFG)
        first = empty_layer(CFG)
        first.image[:] = 0.3
        first.mask[:] = True
        second = empty_layer(CFG)
        second.image[5, 5] = 0.9
        second.mask[5, 5] = True
        out = merge_layers(base, first, second)
        assert out[5, 5] == np.float32(0.9)
        assert out[0, 0] == np.float32(0.3)

    def test_shape_mismatch_raises(self):
        base = empty_layer(CFG)
        other = empty_layer(RenderConfig(width=64, height=32))
        with pytest.raises(ValueError):
            merge_layers(base, other)

    def test_merge_does_not_mutate_base(self):
        base = render_background(make_scene(), EYE, CFG)
        snapshot = base.image.copy()
        overlay = empty_layer(CFG)
        overlay.image[:] = 1.0
        overlay.mask[:] = True
        merge_layers(base, overlay)
        assert np.array_equal(base.image, snapshot)
