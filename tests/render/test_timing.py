"""Tests for device render-cost models."""

import pytest

from repro.geometry import Rect, Vec2, Vec3
from repro.render import GTX1080TI, PIXEL2, DeviceProfile, RenderCostModel
from repro.world import Scene, SceneObject


def obj(object_id, x, y, triangles):
    return SceneObject(
        object_id=object_id,
        kind_name="tree",
        center=Vec3(x, y, 1.0),
        radius=1.0,
        triangles=triangles,
        luminance=0.5,
        contrast=0.3,
        texture_seed=0,
    )


@pytest.fixture
def model():
    return RenderCostModel(PIXEL2)


class TestDeviceProfile:
    def test_builtin_profiles_valid(self):
        assert PIXEL2.name == "pixel2"
        assert GTX1080TI.triangle_throughput > PIXEL2.triangle_throughput

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", 0, 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            DeviceProfile("bad", 1, 1, 1, 1, 1, 1, lod_floor=2.0)


class TestLod:
    def test_full_detail_at_zero(self, model):
        assert model.lod_weight(0.0) == 1.0

    def test_monotone_decreasing_to_floor(self, model):
        weights = [model.lod_weight(d) for d in (0, 10, 25, 50, 100, 500)]
        assert all(a >= b for a, b in zip(weights, weights[1:]))
        assert weights[-1] == PIXEL2.lod_floor

    def test_half_at_lod_distance(self, model):
        assert model.lod_weight(PIXEL2.lod_distance) == pytest.approx(0.5)

    def test_negative_distance_raises(self, model):
        with pytest.raises(ValueError):
            model.lod_weight(-1.0)


class TestCosts:
    def test_fi_ms_linear(self, model):
        assert model.fi_ms(300_000) == pytest.approx(1.0)
        assert model.fi_ms(600_000) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            model.fi_ms(-1)

    def test_near_be_grows_with_cutoff(self, model):
        objects = [obj(i, 100 + 5 * i, 100, 100_000) for i in range(10)]
        scene = Scene(Rect(0, 0, 300, 300), objects, lambda p: 0.0)
        p = Vec2(100, 100)
        costs = [model.near_be_ms(scene, p, r) for r in (1, 10, 25, 50)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))
        assert costs[-1] > costs[0]

    def test_whole_be_at_least_near_be(self, model):
        objects = [obj(i, 100 + 7 * i, 100, 50_000) for i in range(20)]
        scene = Scene(Rect(0, 0, 300, 300), objects, lambda p: 0.0)
        p = Vec2(100, 100)
        assert model.whole_be_ms(scene, p) >= model.near_be_ms(scene, p, 20.0)

    def test_server_much_faster_than_phone(self):
        objects = [obj(i, 10 * i, 0, 200_000) for i in range(10)]
        scene = Scene(Rect(0, 0, 300, 300), objects, lambda p: 0.0)
        phone = RenderCostModel(PIXEL2).whole_be_ms(scene, Vec2(0, 0))
        server = RenderCostModel(GTX1080TI).whole_be_ms(scene, Vec2(0, 0))
        assert server < phone / 5

    def test_frame_ms_adds_setup(self, model):
        assert model.frame_ms(4.0, 6.0) == pytest.approx(PIXEL2.setup_ms + 10.0)
        assert model.frame_ms() == pytest.approx(PIXEL2.setup_ms)

    def test_decode_ms(self, model):
        # 4K frame: 3840x2160 ~ 8.3 Mpixels -> several ms on the phone.
        ms = model.decode_ms(3840, 2160)
        assert 4.0 < ms < 16.7
        with pytest.raises(ValueError):
            model.decode_ms(0, 100)

    def test_gpu_utilization(self, model):
        assert model.gpu_utilization(8.0, 16.0) == pytest.approx(0.5)
        assert model.gpu_utilization(40.0, 16.0) == 1.0
        with pytest.raises(ValueError):
            model.gpu_utilization(1.0, 0.0)


class TestPaperCalibration:
    """The model must land the headline games in Table 1's Mobile envelope."""

    @pytest.mark.parametrize("game", ["viking", "cts", "racing"])
    def test_mobile_fps_in_paper_range(self, game, model):
        from repro.world import game_spec, load_game

        gw = load_game(game)
        spec = game_spec(game)
        import numpy as np

        rng = np.random.default_rng(0)
        points = []
        while len(points) < 8:
            p = gw.bounds.sample(rng, 1)[0]
            if gw.grid.is_reachable(gw.grid.snap(p)):
                points.append(p)
        frame_ms = [
            model.frame_ms(model.fi_ms(spec.fi_triangles), model.whole_be_ms(gw.scene, p))
            for p in points
        ]
        fps = 1000.0 / (sum(frame_ms) / len(frame_ms))
        # Paper: 24-27 FPS; we accept a generous envelope (clearly below 60).
        assert 15.0 < fps < 40.0

    @pytest.mark.parametrize("game", ["viking", "cts", "racing"])
    def test_fi_under_4ms(self, game, model):
        from repro.world import game_spec

        assert model.fi_ms(game_spec(game).fi_triangles) < 4.0
