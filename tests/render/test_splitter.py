"""Tests for near/far BE split rendering — the paper's central mechanism."""

import numpy as np
import pytest

from repro.geometry import Rect, Vec2, Vec3
from repro.render import (
    RenderConfig,
    eye_at,
    merge_layers,
    reference_frame,
    render_display_frame,
    render_far_be,
    render_fi,
    render_near_be,
    render_whole_be,
)
from repro.similarity import ssim
from repro.world import Scene, SceneObject

CFG = RenderConfig(width=128, height=64)


def obj(object_id, x, y, radius=2.0, luminance=0.5):
    return SceneObject(
        object_id=object_id,
        kind_name="tree",
        center=Vec3(x, y, radius),
        radius=radius,
        triangles=1000,
        luminance=luminance,
        contrast=0.3,
        texture_seed=object_id * 13 + 5,
    )


@pytest.fixture
def scene():
    objects = [
        obj(1, 101.5, 100.0, radius=0.8),  # very near
        obj(2, 106.0, 100.0),              # near-ish
        obj(3, 130.0, 110.0),              # far
        obj(4, 160.0, 90.0, radius=4.0),   # far
    ]
    return Scene(Rect(0, 0, 200, 200), objects, terrain=lambda p: 0.0)


EYE = Vec3(100.0, 100.0, 1.7)


class TestEyeAt:
    def test_eye_includes_terrain_and_height(self):
        scene = Scene(Rect(0, 0, 10, 10), [], terrain=lambda p: 3.0)
        eye = eye_at(scene, Vec2(5, 5), eye_height=1.7)
        assert eye.z == pytest.approx(4.7)
        assert eye.ground() == Vec2(5, 5)


class TestSplitRendering:
    def test_far_be_excludes_near_objects(self, scene):
        far = render_far_be(scene, EYE, CFG, cutoff_radius=10.0)
        whole = render_whole_be(scene, EYE, CFG)
        # The near object (bright region at azimuth 0) present in whole,
        # absent in far.
        assert not np.array_equal(far.image, whole.image)
        # Far BE covers the sky fully but leaves the near-ground band (the
        # pixels inside the cutoff) for the near BE to fill.
        assert far.mask[0].all()
        assert 0.4 < far.coverage < 1.0

    def test_near_be_partial_coverage(self, scene):
        near = render_near_be(scene, EYE, CFG, cutoff_radius=10.0)
        assert 0.0 < near.coverage < 1.0

    def test_near_plus_far_reconstructs_whole(self, scene):
        whole = render_whole_be(scene, EYE, CFG)
        far = render_far_be(scene, EYE, CFG, cutoff_radius=10.0)
        near = render_near_be(scene, EYE, CFG, cutoff_radius=10.0)
        merged = merge_layers(far, near)
        # Split rendering is lossless at the same viewpoint: merging the two
        # halves reproduces the undecoupled frame almost exactly.
        assert ssim(merged, whole.image) > 0.99

    def test_zero_cutoff_far_equals_whole(self, scene):
        far = render_far_be(scene, EYE, CFG, cutoff_radius=0.0)
        whole = render_whole_be(scene, EYE, CFG)
        assert np.array_equal(far.image, whole.image)

    def test_negative_cutoff_raises(self, scene):
        with pytest.raises(ValueError):
            render_far_be(scene, EYE, CFG, cutoff_radius=-1.0)
        with pytest.raises(ValueError):
            render_near_be(scene, EYE, CFG, cutoff_radius=-1.0)

    def test_near_object_effect(self, scene):
        """The paper's core observation: small displacement hurts whole-BE
        similarity far more than far-BE similarity."""
        eye2 = Vec3(100.15, 100.0, 1.7)  # 15 cm step
        whole_a = render_whole_be(scene, EYE, CFG).image
        whole_b = render_whole_be(scene, eye2, CFG).image
        far_a = render_far_be(scene, EYE, CFG, 10.0).image
        far_b = render_far_be(scene, eye2, CFG, 10.0).image
        assert ssim(far_a, far_b) > ssim(whole_a, whole_b)

    def test_far_similarity_monotone_in_cutoff(self, scene):
        """Figure 5's shape: far-BE SSIM rises with the cutoff radius."""
        eye2 = Vec3(100.15, 100.0, 1.7)
        sims = []
        for cutoff in (0.0, 3.0, 10.0, 40.0):
            a = render_far_be(scene, EYE, CFG, cutoff).image
            b = render_far_be(scene, eye2, CFG, cutoff).image
            sims.append(ssim(a, b))
        assert sims[-1] > sims[0]
        assert sims[-1] > 0.95


class TestFiAndDisplay:
    def test_render_fi_only_avatars(self):
        avatar = obj(99, 102.0, 100.0, radius=0.5, luminance=0.9)
        layer = render_fi([avatar], EYE, CFG)
        assert 0.0 < layer.coverage < 0.2

    def test_display_frame_with_reused_far_be(self, scene):
        """Coterie's reuse path: merging a *nearby* cached far BE with the
        locally rendered near BE still approximates the reference frame."""
        cached_far = render_far_be(scene, EYE, CFG, 10.0)
        moved_eye = Vec3(100.10, 100.0, 1.7)
        displayed = render_display_frame(
            scene, moved_eye, CFG, cutoff_radius=10.0, far_be=cached_far
        )
        reference = reference_frame(scene, moved_eye, CFG)
        assert ssim(displayed, reference) > 0.9

    def test_display_frame_fresh_far_matches_reference(self, scene):
        avatar = obj(99, 102.0, 101.0, radius=0.5, luminance=0.9)
        displayed = render_display_frame(scene, EYE, CFG, 10.0, avatars=[avatar])
        reference = reference_frame(scene, EYE, CFG, avatars=[avatar])
        assert ssim(displayed, reference) > 0.98

    def test_reference_frame_deterministic(self, scene):
        a = reference_frame(scene, EYE, CFG)
        b = reference_frame(scene, EYE, CFG)
        assert np.array_equal(a, b)
