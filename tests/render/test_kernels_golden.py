"""Golden-frame tests: the vector rasterizer is bit-identical to scalar.

The vector kernel is a drop-in replacement, not an approximation: for
every one of the nine study games, scalar and vector ``draw_objects``
must produce the same image, mask, and depth buffers bit for bit — that
is what lets ``world_cache_key`` share disk-cache entries across kernel
modes and lets the benchmarks compare wall clocks on identical work.
"""

import dataclasses

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.render import KERNEL_MODES
from repro.render.rasterizer import RenderConfig
from repro.render.splitter import eye_at, render_far_be, render_whole_be
from repro.world import ALL_GAMES, load_game

SCALE = 0.15
CONFIG = RenderConfig(width=64, height=32)


def _kernel_config(mode):
    """CONFIG with only the kernel mode swapped."""
    return dataclasses.replace(CONFIG, kernels=mode)


def _frames(world, config, cutoff=None):
    """A (whole, far) pair rendered at two viewpoints of one game."""
    bounds = world.scene.bounds
    eye_height = world.spec.player.eye_height
    frames = []
    for fraction in (0.35, 0.62):
        point = bounds.clamp(Vec2(
            bounds.x_min + fraction * (bounds.x_max - bounds.x_min),
            bounds.y_min + (1.0 - fraction) * (bounds.y_max - bounds.y_min),
        ))
        eye = eye_at(world.scene, point, eye_height)
        frames.append(render_whole_be(world.scene, eye, config))
        frames.append(render_far_be(
            world.scene, eye, config, cutoff if cutoff is not None else 12.0
        ))
    return frames


def _assert_layers_equal(a, b, context):
    """Bitwise equality of image, mask, and depth."""
    assert np.array_equal(a.image, b.image), f"{context}: image diverged"
    assert np.array_equal(a.mask, b.mask), f"{context}: mask diverged"
    assert np.array_equal(a.depth, b.depth), f"{context}: depth diverged"


class TestVectorGolden:
    @pytest.mark.parametrize("game", ALL_GAMES)
    def test_vector_matches_scalar_all_games(self, game):
        """Scalar vs vector whole-BE and far-BE layers, two viewpoints."""
        world = load_game(game, scale=SCALE)
        scalar = _frames(world, _kernel_config("scalar"))
        vector = _frames(world, _kernel_config("vector"))
        for index, (a, b) in enumerate(zip(scalar, vector)):
            _assert_layers_equal(a, b, f"{game}[{index}]")

    def test_reuse_mode_renders_like_vector(self):
        """'vector+reuse' only changes encode; rendering is the vector path."""
        world = load_game("racing", scale=SCALE)
        vector = _frames(world, _kernel_config("vector"))
        reuse = _frames(world, _kernel_config("vector+reuse"))
        for index, (a, b) in enumerate(zip(vector, reuse)):
            _assert_layers_equal(a, b, f"racing[{index}]")

    def test_kernel_modes_constant_is_exhaustive(self):
        """Every mode validates; an unknown one is rejected at construction."""
        for mode in KERNEL_MODES:
            assert _kernel_config(mode).kernels == mode
        with pytest.raises(ValueError):
            _kernel_config("simd")
