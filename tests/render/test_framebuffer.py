"""Tests for frame buffers and procedural noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import (
    cell_noise,
    clip_frame,
    fractal_noise,
    frames_equal,
    hash01,
    new_frame,
    value_noise,
)


class TestHash01:
    def test_deterministic(self):
        a = hash01(np.arange(10), np.arange(10), seed=3)
        b = hash01(np.arange(10), np.arange(10), seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_values(self):
        a = hash01(np.arange(100), np.zeros(100, dtype=int), seed=1)
        b = hash01(np.arange(100), np.zeros(100, dtype=int), seed=2)
        assert not np.array_equal(a, b)

    def test_range(self):
        vals = hash01(np.arange(-500, 500), np.arange(1000), seed=9)
        assert np.all(vals >= 0.0)
        assert np.all(vals < 1.0)

    def test_roughly_uniform(self):
        xs, ys = np.meshgrid(np.arange(100), np.arange(100))
        vals = hash01(xs, ys, seed=4)
        assert 0.45 < vals.mean() < 0.55
        assert vals.std() > 0.2

    def test_negative_coordinates_ok(self):
        vals = hash01(np.array([-5, -1, 0]), np.array([-9, 3, 0]), seed=0)
        assert np.all((vals >= 0) & (vals < 1))


class TestValueNoise:
    def test_smooth_between_lattice(self):
        # Noise varies continuously: small coordinate deltas -> small changes.
        x = np.linspace(0, 5, 1000)
        vals = value_noise(x, np.zeros_like(x), seed=1)
        assert np.max(np.abs(np.diff(vals))) < 0.05

    def test_lattice_values_match_hash(self):
        v = value_noise(np.array([3.0]), np.array([4.0]), seed=7)
        h = hash01(np.array([3]), np.array([4]), seed=7)
        assert v[0] == pytest.approx(h[0])

    def test_range(self):
        xs = np.linspace(-10, 10, 40)
        vals = value_noise(xs[:, None], xs[None, :], seed=2)
        assert np.all((vals >= 0.0) & (vals < 1.0))

    @settings(max_examples=20)
    @given(st.floats(min_value=-100, max_value=100), st.floats(min_value=-100, max_value=100))
    def test_scalar_like_inputs(self, x, y):
        v = value_noise(np.array([x]), np.array([y]), seed=5)
        assert 0.0 <= float(v[0]) < 1.0


class TestCellNoise:
    def test_constant_within_cell(self):
        a = cell_noise(np.array([3.1]), np.array([4.2]), seed=1)
        b = cell_noise(np.array([3.9]), np.array([4.8]), seed=1)
        assert a[0] == b[0]

    def test_changes_across_cells(self):
        xs = np.arange(50, dtype=float)
        vals = cell_noise(xs, np.zeros_like(xs), seed=1)
        assert len(np.unique(vals)) > 30


class TestFractalNoise:
    def test_range_and_shape(self):
        xs, ys = np.meshgrid(np.linspace(0, 9, 32), np.linspace(0, 9, 16))
        vals = fractal_noise(xs, ys, seed=3, octaves=3)
        assert vals.shape == (16, 32)
        assert np.all((vals >= 0.0) & (vals < 1.0))

    def test_more_octaves_more_detail(self):
        xs = np.linspace(0, 4, 512)
        coarse = fractal_noise(xs, np.zeros_like(xs), seed=3, octaves=1)
        fine = fractal_noise(xs, np.zeros_like(xs), seed=3, octaves=4)
        # Total variation increases with octaves.
        assert np.abs(np.diff(fine)).sum() > np.abs(np.diff(coarse)).sum()

    def test_invalid_octaves(self):
        with pytest.raises(ValueError):
            fractal_noise(np.zeros(1), np.zeros(1), seed=0, octaves=0)


class TestFrameHelpers:
    def test_new_frame(self):
        f = new_frame(8, 4, fill=0.5)
        assert f.shape == (4, 8)
        assert f.dtype == np.float32
        assert np.all(f == 0.5)

    def test_new_frame_invalid(self):
        with pytest.raises(ValueError):
            new_frame(0, 4)
        with pytest.raises(ValueError):
            new_frame(4, 4, fill=2.0)

    def test_clip_frame(self):
        f = np.array([[-1.0, 0.5, 2.0]], dtype=np.float32)
        out = clip_frame(f)
        assert np.array_equal(out, np.array([[0.0, 0.5, 1.0]], dtype=np.float32))
        assert out is f

    def test_frames_equal(self):
        a = new_frame(4, 4, 0.5)
        b = new_frame(4, 4, 0.5)
        assert frames_equal(a, b)
        b[0, 0] = 0.6
        assert not frames_equal(a, b)
        assert frames_equal(a, b, tolerance=0.2)
        assert not frames_equal(a, new_frame(8, 4))
