"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "coterie", "viking"])
        assert args.system == "coterie"
        assert args.game == "viking"
        assert args.players == 2
        assert args.duration == 10.0

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warpdrive", "viking"])

    def test_unknown_game_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["preprocess", "tetris"])


class TestCommands:
    def test_games_lists_all_nine(self, capsys):
        assert main(["games"]) == 0
        out = capsys.readouterr().out
        for name in ("viking", "cts", "racing", "pool", "corridor"):
            assert name in out

    def test_run_mobile_pool(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "FPS" in out
        assert "power draw" in out

    def test_preprocess_pool(self, capsys):
        assert main(["preprocess", "pool"]) == 0
        out = capsys.readouterr().out
        assert "leaf regions" in out
        assert "cutoff radii" in out

    def test_run_with_loss_prints_resilience(self, capsys):
        assert main(["run", "multi_furion", "pool", "1",
                     "--duration", "2", "--loss", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "resilience" in out

    def test_run_with_faults(self, capsys):
        assert main(["run", "multi_furion", "pool", "1", "--duration", "2",
                     "--faults", "stall@0-500:10"]) == 0
        assert "resilience" in capsys.readouterr().out

    def test_run_clean_omits_resilience(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2"]) == 0
        assert "resilience" not in capsys.readouterr().out

    def test_bad_faults_spec_is_an_error(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--faults", "freeze@0-100"]) == 2
        assert "invalid --faults" in capsys.readouterr().err
