"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "coterie", "viking"])
        assert args.system == "coterie"
        assert args.game == "viking"
        assert args.players == 2
        assert args.duration == 10.0

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warpdrive", "viking"])

    def test_unknown_game_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["preprocess", "tetris"])

    @pytest.mark.parametrize("bad", ["0", "-3", "33", "two"])
    def test_players_out_of_range_rejected(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "coterie", "viking", bad])
        err = capsys.readouterr().err
        assert "players must be" in err

    def test_players_range_accepted(self):
        args = build_parser().parse_args(["run", "coterie", "viking", "32"])
        assert args.players == 32
        args = build_parser().parse_args(["run", "coterie", "viking", "1"])
        assert args.players == 1


class TestCommands:
    def test_games_lists_all_nine(self, capsys):
        assert main(["games"]) == 0
        out = capsys.readouterr().out
        for name in ("viking", "cts", "racing", "pool", "corridor"):
            assert name in out

    def test_run_mobile_pool(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "FPS" in out
        assert "power draw" in out

    def test_preprocess_pool(self, capsys):
        assert main(["preprocess", "pool"]) == 0
        out = capsys.readouterr().out
        assert "leaf regions" in out
        assert "cutoff radii" in out

    def test_run_with_loss_prints_resilience(self, capsys):
        assert main(["run", "multi_furion", "pool", "1",
                     "--duration", "2", "--loss", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "resilience" in out

    def test_run_with_faults(self, capsys):
        assert main(["run", "multi_furion", "pool", "1", "--duration", "2",
                     "--faults", "stall@0-500:10"]) == 0
        assert "resilience" in capsys.readouterr().out

    def test_run_clean_omits_resilience(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2"]) == 0
        assert "resilience" not in capsys.readouterr().out

    def test_bad_faults_spec_is_an_error(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--faults", "freeze@0-100"]) == 2
        assert "invalid --faults" in capsys.readouterr().err


class TestChurnCommands:
    def test_run_with_churn_prints_membership(self, capsys):
        assert main(["run", "coterie", "pool", "2", "--duration", "3",
                     "--churn", "join@800,leave@2000:0"]) == 0
        out = capsys.readouterr().out
        assert "membership" in out
        assert "joins" in out
        assert "epochs" in out
        assert "0 violations" in out

    def test_bad_churn_spec_is_an_error(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--churn", "bogus@100"]) == 2
        assert "invalid --churn" in capsys.readouterr().err

    def test_churn_on_mobile_is_an_error(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--churn", "join@100"]) == 2
        assert "networked system" in capsys.readouterr().err

    def test_players_above_max_players_is_an_error(self, capsys):
        assert main(["run", "coterie", "pool", "4", "--duration", "2",
                     "--max-players", "2"]) == 2
        assert "exceeds --max-players" in capsys.readouterr().err

    def test_clean_run_omits_membership(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2"]) == 0
        assert "membership" not in capsys.readouterr().out


class TestAdaptiveCommands:
    def test_abr_with_trace_prints_adaptation(self, capsys):
        assert main(["run", "coterie", "pool", "2", "--duration", "3",
                     "--trace-profile", "bufferbloat", "--abr"]) == 0
        out = capsys.readouterr().out
        assert "adaptation" in out
        assert "CRF ladder" in out
        assert "frame drops" in out

    def test_trace_profile_without_abr_runs_fixed(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--trace-profile", "cellular"]) == 0
        assert "adaptation" not in capsys.readouterr().out

    def test_trace_profile_from_file(self, tmp_path, capsys):
        trace = tmp_path / "capacity.txt"
        trace.write_text("0 1.0\n500 0.3\n1500 1.0\n")
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--trace-profile", str(trace), "--abr"]) == 0
        assert "adaptation" in capsys.readouterr().out

    def test_unknown_trace_profile_is_an_error(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--trace-profile", "wormhole"]) == 2
        assert "invalid --trace-profile" in capsys.readouterr().err

    def test_abr_on_mobile_is_an_error(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--abr"]) == 2
        assert "networked system" in capsys.readouterr().err

    def test_clean_run_omits_adaptation(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2"]) == 0
        assert "adaptation" not in capsys.readouterr().out


class TestTelemetryCommands:
    def test_run_writes_trace_and_events(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace

        trace = tmp_path / "trace.json"
        events = tmp_path / "events.jsonl"
        assert main(["run", "coterie", "pool", "2", "--duration", "2",
                     "--faults", "dip@400-1100:0.05",
                     "--trace", str(trace), "--events", str(events)]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "event log" in out
        loaded = json.loads(trace.read_text())
        validate_chrome_trace(loaded)
        assert any(ev.get("ph") == "X" for ev in loaded)
        assert events.read_text().count("\n") > 10

    def test_report_from_events(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--events", str(events)]) == 0
        capsys.readouterr()
        assert main(["report", str(events)]) == 0
        out = capsys.readouterr().out
        assert "frame-budget attribution" in out
        assert "stage" in out and "p95 ms" in out

    def test_report_missing_file_is_an_error(self, capsys):
        assert main(["report", "/nonexistent/events.jsonl"]) == 2
        assert "cannot read event log" in capsys.readouterr().err

    def test_report_refuses_unknown_schema(self, tmp_path, capsys):
        bad = tmp_path / "events.jsonl"
        bad.write_text('{"v": 99, "kind": "span", "name": "x", "player": 0, '
                       '"lane": "frame", "t0_ms": 0, "dur_ms": 1}\n')
        assert main(["report", str(bad)]) == 2
        assert "schema version" in capsys.readouterr().err

    def test_run_perf_prints_stage_table(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--perf"]) == 0
        out = capsys.readouterr().out
        assert "run.simulate" in out
        assert "calls" in out

    def test_run_untraced_prints_tail_latencies(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "p95" in out and "p99" in out


class TestMetricsCli:
    """``run --metrics/--openmetrics/--dashboard`` and ``report`` on dumps."""

    def _dump(self, tmp_path, name="m.jsonl"):
        path = tmp_path / name
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--metrics", str(path)]) == 0
        return path

    def test_run_writes_metrics_and_openmetrics(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        om = tmp_path / "om.txt"
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--metrics", str(metrics),
                     "--openmetrics", str(om)]) == 0
        out = capsys.readouterr().out
        assert "-- metrics --" in out
        assert "slo deadline_miss_rate" in out
        from repro.telemetry import read_metrics_jsonl

        dump = read_metrics_jsonl(metrics)
        assert "frames_total" in dump.series
        assert any(s["name"] == "deadline_miss_rate" for s in dump.slos)
        assert om.read_text().endswith("# EOF\n")

    def test_run_dashboard_renders_frames(self, tmp_path, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--dashboard"]) == 0
        out = capsys.readouterr().out
        assert "sim t=" in out
        assert "frames_total" in out
        assert "slo deadline_miss_rate" in out

    def test_report_on_metrics_dump_prints_slo_attainment(
        self, tmp_path, capsys
    ):
        path = self._dump(tmp_path)
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics dump" in out
        assert "slo deadline_miss_rate" in out
        assert "worst burn" in out

    def test_diff_identical_runs_exits_zero(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl")
        b = self._dump(tmp_path, "b.jsonl")
        capsys.readouterr()
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_diff_flags_injected_regression(self, tmp_path, capsys):
        import json

        a = self._dump(tmp_path, "a.jsonl")
        b = tmp_path / "b.jsonl"
        # Inject a regression: halve the final frames_total sample.
        lines = []
        for line in a.read_text().splitlines():
            record = json.loads(line)
            if (record.get("kind") == "series"
                    and record["name"] == "frames_total"):
                record["samples"] = [
                    [t, v * 0.5] for t, v in record["samples"]
                ]
            lines.append(json.dumps(record))
        b.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["report", "--diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "frames_total" in out and "FAIL" in out

    def test_diff_parse_error_exits_two(self, tmp_path, capsys):
        a = self._dump(tmp_path)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["report", "--diff", str(a), str(bad)]) == 2
        assert "cannot read metrics dump" in capsys.readouterr().err
        assert main(["report", "--diff", str(a),
                     str(tmp_path / "missing.jsonl")]) == 2

    def test_report_without_arguments_is_usage_error(self, capsys):
        assert main(["report"]) == 2
        assert "--diff" in capsys.readouterr().err


class TestSpeculationCli:
    def test_predict_and_sync_print_summaries(self, capsys):
        assert main(["run", "coterie", "pool", "2", "--duration", "2",
                     "--predict", "--sync-check"]) == 0
        out = capsys.readouterr().out
        assert "speculation" in out
        assert "pose forecasts" in out
        assert "sync check" in out
        assert "desync alarms" in out

    def test_predict_requires_coterie(self, capsys):
        assert main(["run", "mobile", "pool", "1", "--duration", "2",
                     "--predict"]) == 2
        assert "--predict/--sync-check require" in capsys.readouterr().err
        assert main(["run", "thin_client", "pool", "1", "--duration", "2",
                     "--sync-check"]) == 2
        assert "coterie" in capsys.readouterr().err

    def test_predict_horizon_requires_predict(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--predict-horizon", "4"]) == 2
        assert "requires --predict" in capsys.readouterr().err

    def test_bad_predict_horizon_is_an_error(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2",
                     "--predict", "--predict-horizon", "0"]) == 2
        assert "invalid --predict-horizon" in capsys.readouterr().err

    def test_clean_run_omits_speculation(self, capsys):
        assert main(["run", "coterie", "pool", "1", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "speculation" not in out
        assert "sync check" not in out

    def test_desync_fault_raises_alarm(self, capsys):
        assert main(["run", "coterie", "pool", "2", "--duration", "2",
                     "--seed", "1", "--predict", "--sync-check",
                     "--faults", "desync@800:0"]) == 0
        out = capsys.readouterr().out
        assert "desync alarms   : 1" in out


class TestVerifyDeterminism:
    def test_clean_run_verifies(self, capsys):
        assert main(["run", "coterie", "pool", "2", "--duration", "2",
                     "--verify-determinism"]) == 0
        out = capsys.readouterr().out
        assert "determinism check" in out
        assert "bit-identical" in out

    def test_speculative_faulted_run_verifies(self, capsys):
        assert main(["run", "coterie", "pool", "2", "--duration", "2",
                     "--seed", "1", "--predict", "--sync-check",
                     "--faults", "speccorrupt@200-900,desync@500:0",
                     "--verify-determinism"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out


class TestReportHardening:
    def test_empty_event_log_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "is empty" in err

    def test_blank_lines_only_exits_two(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n   \n")
        assert main(["report", str(blank)]) == 2
        assert "is empty" in capsys.readouterr().err

    def test_metrics_dump_without_series_exits_two(self, tmp_path, capsys):
        import json as _json

        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            _json.dumps({"v": 1, "kind": "meta", "system": "coterie"}) + "\n"
        )
        assert main(["report", str(truncated)]) == 2
        assert "no series records" in capsys.readouterr().err

    def test_event_log_without_frame_spans_exits_two(self, tmp_path, capsys):
        import json as _json

        spanless = tmp_path / "spanless.jsonl"
        spanless.write_text(
            _json.dumps({
                "v": 1, "kind": "span", "name": "warmup", "player": 0,
                "lane": "net", "t0_ms": 0.0, "dur_ms": 1.0,
            }) + "\n"
        )
        assert main(["report", str(spanless)]) == 2
        assert "no frame spans" in capsys.readouterr().err

    def test_truncated_json_line_exits_two(self, tmp_path, capsys):
        clipped = tmp_path / "clipped.jsonl"
        clipped.write_text('{"v": 1, "kind": "span", "na\n')
        assert main(["report", str(clipped)]) == 2
        assert "not JSON" in capsys.readouterr().err
