"""Stress and conservation tests for the discrete-event core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidShareServer, Simulator, all_of


class TestManyProcesses:
    def test_hundred_interleaved_tickers(self):
        sim = Simulator()
        fire_counts = [0] * 100

        def ticker(index, period):
            for _ in range(10):
                yield period
                fire_counts[index] += 1

        for index in range(100):
            sim.spawn(ticker(index, 1.0 + index * 0.13))
        sim.run()
        assert all(count == 10 for count in fire_counts)

    def test_chained_events(self):
        """A relay of 200 processes, each waking the next."""
        sim = Simulator()
        events = [sim.event() for _ in range(201)]
        order = []

        def relay(index):
            yield events[index]
            order.append(index)
            events[index + 1].succeed()

        for index in range(200):
            sim.spawn(relay(index))
        events[0].succeed()
        sim.run()
        assert order == list(range(200))

    def test_all_of_with_many_events(self):
        sim = Simulator()
        events = [sim.timeout(float(k % 17) + 0.5) for k in range(300)]
        done_at = []

        def waiter():
            yield all_of(sim, events)
            done_at.append(sim.now)

        sim.spawn(waiter())
        sim.run()
        assert done_at[0] == pytest.approx(16.5)


class TestFluidConservation:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=999983))
    def test_total_work_conserved(self, seed):
        """Whatever is submitted is eventually served, exactly once."""
        rng = np.random.default_rng(seed)
        sim = Simulator()
        server = FluidShareServer(sim, capacity=5.0)
        total_submitted = 0.0
        completions = []

        def submit_later(delay, work):
            def go():
                done = server.submit(work)

                def record():
                    value = yield done
                    completions.append(value)

                sim.spawn(record())

            sim.schedule(delay, go)

        for _ in range(20):
            work = float(rng.uniform(1.0, 50.0))
            total_submitted += work
            submit_later(float(rng.uniform(0.0, 30.0)), work)
        sim.run()
        assert len(completions) == 20
        assert server.total_work_done == pytest.approx(total_submitted, rel=1e-6)
        assert server.active_flows == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=999983))
    def test_completion_times_lower_bounded(self, seed):
        """No flow finishes faster than at full capacity (no free work)."""
        rng = np.random.default_rng(seed)
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0)
        checks = []

        def submit(work):
            done = server.submit(work)

            def record():
                duration = yield done
                checks.append((work, duration))

            sim.spawn(record())

        for _ in range(10):
            submit(float(rng.uniform(5.0, 100.0)))
        sim.run()
        for work, duration in checks:
            assert duration >= work / 10.0 - 1e-9
