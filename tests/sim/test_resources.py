"""Tests for shared simulator resources (processor sharing, queue, semaphore)."""

import pytest

from repro.sim import FluidShareServer, Queue, Semaphore, SimulationError, Simulator


class TestFluidShareServer:
    def test_single_flow_full_rate(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0)  # 10 units/ms
        done = server.submit(100.0)
        sim.run()
        assert done.triggered
        assert done.value == pytest.approx(10.0)  # 100 units / 10 per ms

    def test_two_concurrent_flows_share_capacity(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0)
        d1 = server.submit(100.0)
        d2 = server.submit(100.0)
        sim.run()
        # Each gets 5 units/ms while both are active -> both take 20 ms.
        assert d1.value == pytest.approx(20.0)
        assert d2.value == pytest.approx(20.0)

    def test_short_flow_speeds_up_after_long_flow_joins_late(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0)
        finish_times = {}

        def submit_at(t, name, work):
            def go():
                done = server.submit(work)

                def record():
                    yield done
                    finish_times[name] = sim.now

                sim.spawn(record())

            sim.schedule(t, go)

        # Flow A: 100 units at t=0. Alone until t=5 (50 done), then shares.
        submit_at(0.0, "a", 100.0)
        # Flow B: 25 units at t=5. Shares at 5/ms -> done at t=10.
        submit_at(5.0, "b", 25.0)
        sim.run()
        assert finish_times["b"] == pytest.approx(10.0)
        # A: 50 drained alone by t=5, 25 more shared by t=10, 25 left at
        # full rate again -> done at t=12.5.
        assert finish_times["a"] == pytest.approx(12.5)

    def test_overhead_delays_start(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0, overhead_ms=3.0)
        done = server.submit(100.0)
        times = []

        def proc():
            yield done
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [pytest.approx(13.0)]

    def test_zero_work_completes_immediately(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=1.0)
        done = server.submit(0.0)
        sim.run()
        assert done.triggered

    def test_negative_work_raises(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=1.0)
        with pytest.raises(ValueError):
            server.submit(-1.0)

    def test_bad_capacity_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FluidShareServer(sim, capacity=0.0)
        with pytest.raises(ValueError):
            FluidShareServer(sim, capacity=1.0, overhead_ms=-1.0)

    def test_n_flows_n_times_slower(self):
        # The paper's scaling bottleneck in miniature: N concurrent
        # prefetches each take ~N times longer than a lone transfer.
        for n in (1, 2, 4):
            sim = Simulator()
            server = FluidShareServer(sim, capacity=10.0)
            dones = [server.submit(50.0) for _ in range(n)]
            sim.run()
            for done in dones:
                assert done.value == pytest.approx(5.0 * n)

    def test_utilization_tracks_busy_time(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0)
        server.submit(50.0)  # busy 0..5
        sim.run_until(10.0)
        assert server.utilization(10.0) == pytest.approx(0.5)

    def test_utilization_bad_horizon(self):
        sim = Simulator()
        server = FluidShareServer(sim, capacity=10.0)
        with pytest.raises(ValueError):
            server.utilization(0.0)

    def test_float_dust_completes_at_large_sim_time(self):
        # Regression: a flow left with a few ulps of residual work at large
        # sim.now rearms with a delay smaller than one clock ulp, so the
        # completion fires at the same timestamp, drains nothing, and the
        # server livelocks rearming forever.  The timer firing un-superseded
        # must force the soonest flow to finish.
        sim = Simulator()
        server = FluidShareServer(sim, capacity=0.5)
        sim.schedule(40_000.0, lambda: None)
        sim.run()  # move the clock far enough that ulp(now) >> dust/rate
        done = server.submit(1.0)
        flow = next(iter(server._flows.values()))
        flow.remaining = 5e-12  # inject the dust _advance() can leave behind
        server._reschedule_completion()
        sim.run()  # hangs forever without the forced-completion path
        assert done.triggered
        assert server.active_flows == 0

    def test_flows_complete_across_many_clock_magnitudes(self):
        # The completion path must terminate whether the clock is at 0 or
        # deep into a long session where ulp(now) dwarfs residual work.
        for start in (0.0, 1e3, 1e6, 1e9):
            sim = Simulator()
            server = FluidShareServer(sim, capacity=0.125)
            if start:
                sim.schedule(start, lambda: None)
                sim.run()
            events = [server.submit(w) for w in (0.3, 1.7, 0.0001)]
            sim.run()
            assert all(ev.triggered for ev in events)
            assert server.active_flows == 0


class TestSemaphore:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        sem = Semaphore(sim, slots=1)
        order = []

        def worker(name, hold_ms):
            yield sem.acquire()
            order.append((name, "start", sim.now))
            yield hold_ms
            sem.release()
            order.append((name, "end", sim.now))

        sim.spawn(worker("a", 5.0))
        sim.spawn(worker("b", 5.0))
        sim.run()
        assert order == [
            ("a", "start", 0.0),
            ("a", "end", 5.0),
            ("b", "start", 5.0),
            ("b", "end", 10.0),
        ]

    def test_two_slots_run_concurrently(self):
        sim = Simulator()
        sem = Semaphore(sim, slots=2)
        ends = []

        def worker():
            yield sem.acquire()
            yield 5.0
            sem.release()
            ends.append(sim.now)

        for _ in range(2):
            sim.spawn(worker())
        sim.run()
        assert ends == [5.0, 5.0]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        sem = Semaphore(sim, slots=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_zero_slots_raises(self):
        with pytest.raises(ValueError):
            Semaphore(Simulator(), slots=0)


class TestQueue:
    def test_put_then_get(self):
        sim = Simulator()
        q = Queue(sim)
        q.put("x")
        got = []

        def proc():
            item = yield q.get()
            got.append(item)

        sim.spawn(proc())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        q = Queue(sim)
        got = []

        def consumer():
            item = yield q.get()
            got.append((item, sim.now))

        sim.spawn(consumer())
        sim.schedule(7.0, lambda: q.put("late"))
        sim.run()
        assert got == [("late", 7.0)]

    def test_fifo_ordering(self):
        sim = Simulator()
        q = Queue(sim)
        for i in range(3):
            q.put(i)
        got = []

        def consumer():
            for _ in range(3):
                item = yield q.get()
                got.append(item)

        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_len(self):
        sim = Simulator()
        q = Queue(sim)
        assert len(q) == 0
        q.put(1)
        assert len(q) == 1
