"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Event, SimulationError, Simulator, all_of


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_fifo_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run_until(5.0)
        assert log == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def proc():
            value = yield ev
            got.append(value)

        sim.spawn(proc())
        sim.schedule(2.0, lambda: ev.succeed("payload"))
        sim.run()
        assert got == ["payload"]

    def test_double_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_timeout_event(self):
        sim = Simulator()
        times = []

        def proc():
            yield sim.timeout(4.0)
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [4.0]


class TestProcesses:
    def test_yield_delay(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)
            yield 3.0
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_completion_event_carries_return(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        done = sim.spawn(proc())
        sim.run()
        assert done.triggered
        assert done.value == 42

    def test_waiting_on_already_triggered_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        got = []

        def proc():
            value = yield ev
            got.append(value)

        sim.spawn(proc())
        sim.run()
        assert got == ["early"]

    def test_negative_yield_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        with pytest.raises(SimulationError):
            sim.spawn(proc())
            sim.run()

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "nope"

        with pytest.raises(SimulationError):
            sim.spawn(proc())
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield period
                log.append((name, sim.now))

        sim.spawn(ticker("fast", 1.0))
        sim.spawn(ticker("slow", 2.5))
        sim.run()
        assert log == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.5),
            ("fast", 3.0),
            ("slow", 5.0),
            ("slow", 7.5),
        ]


class TestAllOf:
    def test_fires_at_latest(self):
        sim = Simulator()
        events = [sim.timeout(1.0), sim.timeout(5.0), sim.timeout(3.0)]
        fired_at = []

        def proc():
            yield all_of(sim, events)
            fired_at.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert fired_at == [5.0]

    def test_empty_list_fires_immediately(self):
        sim = Simulator()
        fired = []

        def proc():
            value = yield all_of(sim, [])
            fired.append((sim.now, value))

        sim.spawn(proc())
        sim.run()
        assert fired == [(0.0, [])]

    def test_collects_values_in_order(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        sim.schedule(2.0, lambda: e2.succeed("second"))
        sim.schedule(1.0, lambda: e1.succeed("first"))
        results = []

        def proc():
            values = yield all_of(sim, [e1, e2])
            results.append(values)

        sim.spawn(proc())
        sim.run()
        assert results == [["first", "second"]]


class TestAlreadyTriggeredCombinators:
    """any_of/all_of built over events that have already fired."""

    def test_any_of_with_pre_triggered_event(self):
        from repro.sim import any_of

        sim = Simulator()
        done = sim.event()
        done.succeed("cached")
        pending = sim.timeout(50.0)
        results = []

        def proc():
            winner, value = yield any_of(sim, [pending, done])
            results.append((sim.now, winner is done, value))

        sim.spawn(proc())
        sim.run()
        # the pre-triggered event wins the race at t=0, not at 50 ms
        assert results == [(0.0, True, "cached")]

    def test_any_of_with_all_pre_triggered(self):
        from repro.sim import any_of

        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        e1.succeed("first")
        e2.succeed("second")
        results = []

        def proc():
            winner, value = yield any_of(sim, [e1, e2])
            results.append((winner is e1, value))

        sim.spawn(proc())
        sim.run()
        # deterministic FIFO ordering: the first listed event wins
        assert results == [(True, "first")]

    def test_all_of_with_pre_triggered_constituent(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("ready")
        later = sim.timeout(3.0)
        results = []

        def proc():
            values = yield all_of(sim, [done, later])
            results.append((sim.now, values))

        sim.spawn(proc())
        sim.run()
        # still waits for the latest constituent, values stay in order
        assert results == [(3.0, ["ready", None])]

    def test_all_of_with_all_pre_triggered(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        e1.succeed(1)
        e2.succeed(2)
        results = []

        def proc():
            values = yield all_of(sim, [e1, e2])
            results.append((sim.now, values))

        sim.spawn(proc())
        sim.run()
        assert results == [(0.0, [1, 2])]
