"""Documentation completeness: every public item carries a docstring.

A release-quality library documents its public surface; this test walks
every ``repro`` module and asserts modules, public classes, and public
functions/methods all have docstrings.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MEMBER_NAMES = {
    # dataclass-generated or trivially inherited members
    "__init__",
    "__post_init__",
}


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # entry-point shim
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_repro_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_") or method_name in SKIP_MEMBER_NAMES:
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
