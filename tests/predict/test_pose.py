"""Unit tests for the pose predictor and the FNV-1a digest helpers.

The predictor's contract: deterministic forecasts (same observations →
bit-identical predictions), exact extrapolation on linear motion,
confidence radii that widen after realized error and re-converge after
clean stretches, and misprediction accounting against the shipped
radius.  The digest helpers must be order- and value-sensitive down to
the float64 bit pattern — they are the oracle the rollback correction
and the sync validator both trust.
"""

import math

import pytest

from repro.geometry import Vec2
from repro.predict import (
    PosePrediction,
    PosePredictor,
    PredictConfig,
    float_bits,
    fnv1a,
    int_bits,
    pose_digest,
    stored_frame_digest,
    wrap_angle,
)
from repro.trace.movement import FRAME_MS


def feed_linear(predictor, n, vx=0.001, vy=0.0, heading=0.0, dt=FRAME_MS):
    """Observe ``n`` poses along a constant-velocity line; returns last t."""
    t = 0.0
    for i in range(n):
        t = i * dt
        predictor.observe(t, Vec2(vx * t, vy * t), heading)
    return t


class TestPredictConfig:
    def test_defaults_valid(self):
        config = PredictConfig()
        assert config.horizon_frames == 6
        assert config.model == "cv"

    @pytest.mark.parametrize("kwargs", [
        dict(horizon_frames=0),
        dict(model="kalman"),
        dict(ewma_alpha=0.0),
        dict(error_alpha=1.5),
        dict(confidence_margin=0.0),
        dict(confidence_init_m=-1.0),
        dict(max_confidence_m=0.0),
        dict(speculative_ttl_ms=0.0),
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PredictConfig(**kwargs)


class TestWrapAngle:
    def test_identity_inside_band(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)
        assert wrap_angle(-1.0) == pytest.approx(-1.0)

    def test_wraps_full_turns(self):
        assert wrap_angle(2 * math.pi + 0.25) == pytest.approx(0.25)
        assert wrap_angle(-2 * math.pi - 0.25) == pytest.approx(-0.25)

    def test_shortest_turn_across_pi(self):
        # 350 degrees forward is 10 degrees backward.
        assert wrap_angle(math.radians(350)) == pytest.approx(
            math.radians(-10)
        )


class TestPosePredictor:
    def test_no_forecast_before_velocity(self):
        predictor = PosePredictor(PredictConfig())
        assert predictor.predict(0.0) is None
        predictor.observe(0.0, Vec2(0.0, 0.0), 0.0)
        assert predictor.predict(0.0) is None  # one sample: no velocity yet

    def test_linear_motion_extrapolates_exactly(self):
        predictor = PosePredictor(PredictConfig(horizon_frames=6))
        t = feed_linear(predictor, 5, vx=0.002)
        forecast = predictor.predict(t)
        assert forecast is not None
        expected_t = t + 6 * FRAME_MS
        assert forecast.t_ms == expected_t
        assert forecast.position.x == pytest.approx(0.002 * expected_t)
        assert forecast.position.y == pytest.approx(0.0)

    def test_forecasts_are_deterministic(self):
        def one():
            predictor = PosePredictor(PredictConfig(model="ewma"))
            t = feed_linear(predictor, 8, vx=0.0015, vy=-0.0005, heading=0.3)
            forecast = predictor.predict(t)
            return (forecast.t_ms, forecast.position.x, forecast.position.y,
                    forecast.heading, forecast.confidence_m)

        assert one() == one()

    def test_accurate_forecasts_shrink_the_radius(self):
        config = PredictConfig(confidence_init_m=0.5, error_alpha=0.5)
        predictor = PosePredictor(config)
        t = feed_linear(predictor, 3)
        initial = predictor.confidence_m
        # Keep observing the same line: realized error stays ~0, so the
        # error EWMA (and hence the radius) decays toward zero.
        for i in range(3, 30):
            predictor.predict(i * FRAME_MS)
            t = i * FRAME_MS
            predictor.observe(t, Vec2(0.001 * t, 0.0), 0.0)
        assert predictor.confidence_m < initial
        assert predictor.mispredictions == 0

    def test_teleport_counts_a_misprediction_and_widens_radius(self):
        config = PredictConfig(confidence_init_m=0.1, error_alpha=0.5)
        predictor = PosePredictor(config)
        t = feed_linear(predictor, 4)
        before = predictor.confidence_m
        forecast = predictor.predict(t)
        assert forecast is not None
        # Reality at the forecast's target time is a 50 m teleport away.
        predictor.observe(forecast.t_ms, Vec2(50.0, 50.0), 0.0)
        assert predictor.mispredictions == 1
        assert predictor.confidence_m > before
        assert predictor.misprediction_rate == 1.0

    def test_ewma_model_lags_a_sharp_turn(self):
        cv = PosePredictor(PredictConfig(model="cv"))
        ewma = PosePredictor(PredictConfig(model="ewma", ewma_alpha=0.2))
        for predictor in (cv, ewma):
            # Straight line, then a hard 90-degree direction change.
            for i in range(6):
                predictor.observe(i * FRAME_MS, Vec2(0.001 * i * FRAME_MS, 0.0), 0.0)
            t = 6 * FRAME_MS
            predictor.observe(t, Vec2(0.001 * 5 * FRAME_MS, 0.002 * FRAME_MS), 0.0)
        f_cv = cv.predict(6 * FRAME_MS)
        f_ewma = ewma.predict(6 * FRAME_MS)
        # cv chases the new velocity; ewma still carries the old heading.
        assert f_ewma.position.x > f_cv.position.x

    def test_misprediction_rate_zero_before_scoring(self):
        predictor = PosePredictor(PredictConfig())
        t = feed_linear(predictor, 3)
        predictor.predict(t)
        assert predictor.misprediction_rate == 0.0


class TestDigests:
    def test_fnv1a_order_sensitive(self):
        assert fnv1a(b"ab") != fnv1a(b"ba")
        assert fnv1a(b"") == 0xCBF29CE484222325  # the FNV-1a offset basis

    def test_int_and_float_bits_distinguish_values(self):
        assert int_bits(1, 2) != int_bits(2, 1)
        assert float_bits(0.1) != float_bits(0.1 + 1e-16) or (
            0.1 == 0.1 + 1e-16
        )
        # -0.0 and 0.0 compare equal but have different bit patterns: the
        # digest is over bits, not values.
        assert float_bits(-0.0) != float_bits(0.0)

    def test_pose_digest_sensitive_to_every_field(self):
        base = pose_digest(1.0, 2.0, 3.0, 4.0)
        assert pose_digest(1.5, 2.0, 3.0, 4.0) != base
        assert pose_digest(1.0, 2.5, 3.0, 4.0) != base
        assert pose_digest(1.0, 2.0, 3.5, 4.0) != base
        assert pose_digest(1.0, 2.0, 3.0, 4.5) != base
        assert pose_digest(1.0, 2.0, 3.0, 4.0) == base

    def test_stored_frame_digest_covers_viewpoint_and_size(self):
        class Stored:
            """Minimal StoredFrame stand-in for digesting."""

            def __init__(self, wire_bytes, viewpoint):
                self.wire_bytes = wire_bytes
                self.viewpoint = viewpoint

        a = stored_frame_digest(Stored(100, Vec2(1.0, 2.0)), (3, 4))
        assert stored_frame_digest(Stored(101, Vec2(1.0, 2.0)), (3, 4)) != a
        assert stored_frame_digest(Stored(100, Vec2(1.1, 2.0)), (3, 4)) != a
        assert stored_frame_digest(Stored(100, Vec2(1.0, 2.0)), (4, 3)) != a
        assert stored_frame_digest(Stored(100, Vec2(1.0, 2.0)), (3, 4)) == a


class TestPosePredictionDataclass:
    def test_confident_property(self):
        finite = PosePrediction(0.0, Vec2(0, 0), 0.0, 1.0)
        assert finite.confident
        infinite = PosePrediction(0.0, Vec2(0, 0), 0.0, math.inf)
        assert not infinite.confident
