"""Tests for Constraint 1 and the adaptive cutoff scheme."""

import numpy as np
import pytest

from repro.core import (
    CutoffSchemeConfig,
    RenderBudget,
    build_cutoff_map,
    exact_max_radius,
    max_radius_satisfying,
    measure_fi_budget,
    satisfies_constraint,
)
from repro.geometry import Rect, Vec2, Vec3
from repro.render import PIXEL2, RenderCostModel
from repro.world import Scene, SceneObject


def obj(object_id, x, y, triangles):
    return SceneObject(
        object_id=object_id,
        kind_name="tree",
        center=Vec3(x, y, 1.0),
        radius=1.0,
        triangles=triangles,
        luminance=0.5,
        contrast=0.3,
        texture_seed=0,
    )


def uniform_scene(spacing=5.0, triangles=120_000, extent=200.0):
    objects = []
    oid = 0
    steps = int(extent / spacing)
    for j in range(steps):
        for i in range(steps):
            objects.append(obj(oid, i * spacing + 2.0, j * spacing + 2.0, triangles))
            oid += 1
    return Scene(Rect(0, 0, extent, extent), objects, lambda p: 0.0)


MODEL = RenderCostModel(PIXEL2)


class TestRenderBudget:
    def test_paper_budget(self):
        budget = RenderBudget(headroom=1.0)
        assert budget.near_be_budget_ms == pytest.approx(12.7)

    def test_headroom_scales_budget(self):
        assert RenderBudget(headroom=0.5).near_be_budget_ms == pytest.approx(
            12.7 * 0.5
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RenderBudget(frame_budget_ms=0)
        with pytest.raises(ValueError):
            RenderBudget(fi_ms=20.0)
        with pytest.raises(ValueError):
            RenderBudget(headroom=0.0)

    def test_measure_fi_budget_conservative_floor(self):
        # Measured FI well below 4 ms still budgets the paper's 4 ms.
        budget = measure_fi_budget(MODEL, fi_triangles=300_000, safety_factor=1.5)
        assert budget.fi_ms == pytest.approx(4.0)

    def test_measure_fi_budget_tracks_heavy_fi(self):
        # 1.5 M triangles ~ 5 ms measured -> bound rises above the floor.
        budget = measure_fi_budget(MODEL, fi_triangles=1_500_000, safety_factor=1.2)
        assert budget.fi_ms == pytest.approx(6.0)

    def test_measure_fi_budget_rejects_impossible_fi(self):
        with pytest.raises(ValueError):
            measure_fi_budget(MODEL, fi_triangles=10_000_000)

    def test_bad_safety_factor(self):
        with pytest.raises(ValueError):
            measure_fi_budget(MODEL, 100, safety_factor=0.5)


class TestSatisfiesConstraint:
    def test_small_radius_fits(self):
        scene = uniform_scene()
        assert satisfies_constraint(MODEL, scene, Vec2(100, 100), 3.0, RenderBudget())

    def test_huge_radius_violates(self):
        scene = uniform_scene(spacing=2.5, triangles=200_000)
        assert not satisfies_constraint(
            MODEL, scene, Vec2(100, 100), 80.0, RenderBudget()
        )

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            satisfies_constraint(MODEL, uniform_scene(), Vec2(0, 0), -1, RenderBudget())


class TestMaxRadius:
    def test_bisection_result_satisfies(self):
        scene = uniform_scene(spacing=3.0)
        budget = RenderBudget()
        p = Vec2(100, 100)
        radius = max_radius_satisfying(MODEL, scene, p, budget, max_radius=150.0)
        assert satisfies_constraint(MODEL, scene, p, radius, budget)
        # and slightly beyond is at least as expensive
        assert MODEL.near_be_ms(scene, p, radius + 5.0) >= MODEL.near_be_ms(
            scene, p, radius
        )

    def test_exact_matches_bisection(self):
        scene = uniform_scene(spacing=4.0)
        budget = RenderBudget()
        for point in (Vec2(50, 50), Vec2(100, 120), Vec2(30, 170)):
            exact = exact_max_radius(scene, MODEL, point, budget, max_radius=150.0)
            bisect = max_radius_satisfying(
                MODEL, scene, point, budget, max_radius=150.0, tolerance=0.05
            )
            assert exact == pytest.approx(bisect, abs=0.5)

    def test_exact_satisfies_constraint(self):
        scene = uniform_scene(spacing=3.0)
        budget = RenderBudget()
        p = Vec2(77, 88)
        radius = exact_max_radius(scene, MODEL, p, budget, max_radius=150.0)
        assert satisfies_constraint(MODEL, scene, p, radius, budget)

    def test_empty_scene_returns_max(self):
        scene = Scene(Rect(0, 0, 100, 100), [], lambda p: 0.0)
        assert exact_max_radius(scene, MODEL, Vec2(50, 50), RenderBudget(), 120.0) == 120.0

    def test_denser_scene_smaller_radius(self):
        sparse = uniform_scene(spacing=8.0)
        dense = uniform_scene(spacing=2.5)
        budget = RenderBudget()
        p = Vec2(100, 100)
        r_sparse = exact_max_radius(sparse, MODEL, p, budget, 150.0)
        r_dense = exact_max_radius(dense, MODEL, p, budget, 150.0)
        assert r_dense < r_sparse

    def test_validation(self):
        scene = uniform_scene()
        with pytest.raises(ValueError):
            exact_max_radius(scene, MODEL, Vec2(0, 0), RenderBudget(), 0.0)
        with pytest.raises(ValueError):
            max_radius_satisfying(MODEL, scene, Vec2(0, 0), RenderBudget(), 10.0, 0)


class TestCutoffScheme:
    def _two_zone_scene(self):
        """Dense west half, sparse east half -> the tree must split."""
        objects = []
        oid = 0
        for j in range(40):
            for i in range(40):
                x, y = i * 5 + 2, j * 5 + 2
                triangles = 500_000 if x < 100 else 5_000
                objects.append(obj(oid, x, y, triangles))
                oid += 1
        return Scene(Rect(0, 0, 200, 200), objects, lambda p: 0.0)

    def test_nonuniform_world_splits(self):
        scene = self._two_zone_scene()
        cutoff_map = build_cutoff_map(
            scene, MODEL, RenderBudget(), seed=1,
            config=CutoffSchemeConfig(max_depth=4),
        )
        assert cutoff_map.stats().leaf_count > 1
        # Dense side gets a smaller cutoff than the sparse side.
        dense = cutoff_map.cutoff_for(Vec2(40, 100))
        sparse = cutoff_map.cutoff_for(Vec2(170, 100))
        assert dense < sparse

    def test_uniform_world_single_leaf(self):
        scene = uniform_scene(spacing=5.0, triangles=100_000)
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=1)
        assert cutoff_map.stats().leaf_count <= 4

    def test_leaf_radius_is_min_of_samples(self):
        scene = self._two_zone_scene()
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=2)
        for leaf in cutoff_map.tree.leaves():
            assert leaf.payload.cutoff_radius == pytest.approx(
                min(leaf.payload.sampled_radii)
            )

    def test_leaf_for_consistent_with_cutoff_for(self):
        scene = self._two_zone_scene()
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=3)
        p = Vec2(55, 66)
        key, radius = cutoff_map.leaf_for(p)
        assert radius == cutoff_map.cutoff_for(p)
        assert Rect(*key).contains_closed(p)

    def test_deterministic_in_seed(self):
        scene = self._two_zone_scene()
        a = build_cutoff_map(scene, MODEL, RenderBudget(), seed=7)
        b = build_cutoff_map(scene, MODEL, RenderBudget(), seed=7)
        assert a.leaf_radii() == b.leaf_radii()

    def test_samples_counted(self):
        scene = uniform_scene()
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=1)
        config = cutoff_map.config
        assert cutoff_map.samples_evaluated >= config.k_samples
        assert cutoff_map.modeled_processing_hours() > 0

    def test_reachable_bias(self):
        scene = self._two_zone_scene()
        # Only the sparse east half is reachable: radii reflect east density.
        cutoff_map = build_cutoff_map(
            scene, MODEL, RenderBudget(), seed=4,
            reachable=lambda p: p.x > 120,
            config=CutoffSchemeConfig(max_depth=2),
        )
        east = cutoff_map.cutoff_for(Vec2(170, 100))
        assert east > 10.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CutoffSchemeConfig(k_samples=0)
        with pytest.raises(ValueError):
            CutoffSchemeConfig(agreement_ratio=0.5)
        with pytest.raises(ValueError):
            CutoffSchemeConfig(max_radius=0)

    def test_time_model_validation(self):
        scene = uniform_scene()
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=1)
        with pytest.raises(ValueError):
            cutoff_map.modeled_processing_hours(per_sample_s=-1)

    def test_all_leaf_radii_satisfy_constraint_at_samples(self):
        """The invariant the scheme exists for: using a leaf's radius at
        any of its sampled locations meets Constraint 1."""
        scene = self._two_zone_scene()
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=5)
        budget = RenderBudget()
        rng = np.random.default_rng(0)
        for leaf in list(cutoff_map.tree.leaves())[:10]:
            for p in leaf.region.sample(rng, 3):
                radius = leaf.payload.cutoff_radius
                # min-of-samples is conservative; allow the occasional
                # unsampled hotspot (the paper's Fig. 6 shows ~0.25%
                # violations) but never a gross violation.
                cost = MODEL.near_be_ms(scene, p, radius)
                assert cost < budget.near_be_budget_ms * 1.5
