"""Tests for the content-addressed panorama disk cache."""

import json

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.core.store import (
    CACHE_SCHEMA_VERSION,
    PanoramaDiskCache,
    canonical_json,
    content_digest,
    world_cache_key,
)
from repro.render.rasterizer import RenderConfig


def make_key(seed=3, crf=None, width=64):
    config = RenderConfig(width=width, height=32)
    crf = crf if crf is not None else FrameCodec().crf
    return world_cache_key("racing", 0.2, seed, config, crf, 1.7)


def make_frame(seed=0, shape=(32, 64)):
    image = np.random.default_rng(seed).random(shape).astype(np.float32)
    return image, FrameCodec().encode(image)


class TestAddressing:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_digest_changes_with_content(self):
        assert content_digest({"a": 1}) != content_digest({"a": 2})

    def test_world_key_covers_render_config(self):
        assert make_key(width=64) != make_key(width=128)
        assert make_key(crf=20.0) != make_key(crf=30.0)
        assert make_key(seed=1) != make_key(seed=2)


class TestFrameRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = PanoramaDiskCache(tmp_path, make_key())
        image, encoded = make_frame()
        assert cache.load_frame((1.0, 2.0), 5.0, "far") is None
        cache.store_frame((1.0, 2.0), 5.0, "far", image, encoded)
        hit = cache.load_frame((1.0, 2.0), 5.0, "far")
        assert hit is not None
        got_image, got_encoded = hit
        assert np.array_equal(got_image, image)
        assert got_encoded.data == encoded.data
        assert got_encoded.width == encoded.width
        assert got_encoded.height == encoded.height
        assert got_encoded.crf == encoded.crf
        assert got_encoded.is_keyframe == encoded.is_keyframe
        assert cache.stats().hits == 1
        assert cache.stats().misses == 1

    def test_key_ingredients_partition_entries(self, tmp_path):
        cache = PanoramaDiskCache(tmp_path, make_key())
        image, encoded = make_frame()
        cache.store_frame((1.0, 2.0), 5.0, "far", image, encoded)
        assert cache.load_frame((1.0, 2.1), 5.0, "far") is None
        assert cache.load_frame((1.0, 2.0), 6.0, "far") is None
        assert cache.load_frame((1.0, 2.0), 5.0, "whole") is None

    def test_different_world_key_misses(self, tmp_path):
        writer = PanoramaDiskCache(tmp_path, make_key(seed=1))
        reader = PanoramaDiskCache(tmp_path, make_key(seed=2))
        image, encoded = make_frame()
        writer.store_frame((0.0, 0.0), 1.0, "far", image, encoded)
        assert reader.load_frame((0.0, 0.0), 1.0, "far") is None
        assert writer.load_frame((0.0, 0.0), 1.0, "far") is not None

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        cache = PanoramaDiskCache(tmp_path, make_key())
        image, encoded = make_frame()
        cache.store_frame((0.0, 0.0), 1.0, "far", image, encoded)
        monkeypatch.setattr(
            "repro.core.store.CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cache.load_frame((0.0, 0.0), 1.0, "far") is None

    def test_corrupt_entry_degrades_to_miss_and_is_dropped(self, tmp_path):
        cache = PanoramaDiskCache(tmp_path, make_key())
        image, encoded = make_frame()
        cache.store_frame((0.0, 0.0), 1.0, "far", image, encoded)
        (entry,) = list(tmp_path.glob("f_*.npz"))
        entry.write_bytes(b"garbage")
        assert cache.load_frame((0.0, 0.0), 1.0, "far") is None
        assert not entry.exists()


class TestValueRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = PanoramaDiskCache(tmp_path, make_key())
        payload = {"leaf": [0.0, 0.0, 4.0, 4.0], "k_samples": 2, "seed": 0}
        assert cache.load_value("dist_thresh", payload) is None
        cache.store_value("dist_thresh", payload, 3.25)
        assert cache.load_value("dist_thresh", payload) == 3.25

    def test_namespaces_are_disjoint(self, tmp_path):
        cache = PanoramaDiskCache(tmp_path, make_key())
        cache.store_value("a", {"x": 1}, "one")
        assert cache.load_value("b", {"x": 1}) is None

    def test_corrupt_value_degrades_to_miss(self, tmp_path):
        cache = PanoramaDiskCache(tmp_path, make_key())
        cache.store_value("a", {"x": 1}, "one")
        (entry,) = list(tmp_path.glob("v_*.json"))
        entry.write_text(json.dumps({"key": "wrong", "value": "evil"}))
        assert cache.load_value("a", {"x": 1}) is None


class TestEviction:
    def test_lru_cap_enforced(self, tmp_path):
        image, encoded = make_frame()
        probe = PanoramaDiskCache(tmp_path, make_key())
        probe.store_frame((0.0, 0.0), 1.0, "far", image, encoded)
        entry_bytes = probe.size_bytes()
        cache = PanoramaDiskCache(
            tmp_path / "capped", make_key(), max_bytes=3 * entry_bytes
        )
        for index in range(6):
            cache.store_frame((float(index), 0.0), 1.0, "far", image, encoded)
        assert cache.size_bytes() <= 3 * entry_bytes
        assert cache.evictions >= 3
        assert cache.entry_count() <= 3

    def test_recently_used_survives(self, tmp_path):
        import os
        import time as time_module

        image, encoded = make_frame()
        probe = PanoramaDiskCache(tmp_path, make_key())
        probe.store_frame((0.0, 0.0), 1.0, "far", image, encoded)
        entry_bytes = probe.size_bytes()
        root = tmp_path / "capped"
        cache = PanoramaDiskCache(root, make_key(), max_bytes=2 * entry_bytes)
        cache.store_frame((1.0, 0.0), 1.0, "far", image, encoded)
        cache.store_frame((2.0, 0.0), 1.0, "far", image, encoded)
        # Backdate the first entry, touch it via a hit, then overflow: the
        # hit must have refreshed its recency so the *second* entry goes.
        for entry in root.iterdir():
            os.utime(entry, (time_module.time() - 100, time_module.time() - 100))
        assert cache.load_frame((1.0, 0.0), 1.0, "far") is not None
        cache.store_frame((3.0, 0.0), 1.0, "far", image, encoded)
        assert cache.load_frame((1.0, 0.0), 1.0, "far") is not None
        assert cache.load_frame((2.0, 0.0), 1.0, "far") is None

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PanoramaDiskCache(tmp_path, make_key(), max_bytes=0)
