"""Tests for the prefetcher, pipeline law (Eq. 2), merger, and preprocessing."""

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.core import (
    FrameCache,
    PanoramaStore,
    PipelineTimings,
    Prefetcher,
    RenderBudget,
    build_cutoff_map,
    calibrate_size_model,
    compose_display,
    frame_interval_ms,
    layer_from_decoded,
    preprocess_game,
    switch_discontinuities,
)
from repro.core.dist_thresh import DistThreshMap
from repro.core.preprocess import FrameSizeModel
from repro.geometry import Vec2
from repro.render import PIXEL2, RenderCostModel, RenderConfig, render_near_be, eye_at
from repro.trace import generate_trajectory
from repro.world import load_game

CFG = RenderConfig(width=128, height=64)
MODEL = RenderCostModel(PIXEL2)


@pytest.fixture(scope="module")
def pool_setup():
    gw = load_game("pool")
    budget = RenderBudget(fi_ms=1.0)
    cutoff_map = build_cutoff_map(gw.scene, MODEL, budget, seed=1)
    dist_map = DistThreshMap(gw.scene, CFG, cutoff_map, seed=1)
    return gw, cutoff_map, dist_map


class TestPrefetcher:
    def test_first_plan_needs_fetch(self, pool_setup):
        gw, cm, dm = pool_setup
        pf = Prefetcher(gw.scene, gw.grid, cm, dm, FrameCache())
        decision = pf.plan(gw.bounds.center, 0.0, now_ms=0.0)
        assert decision.needs_fetch
        assert pf.fetches == 1

    def test_admit_then_hit(self, pool_setup):
        gw, cm, dm = pool_setup
        pf = Prefetcher(gw.scene, gw.grid, cm, dm, FrameCache())
        p = gw.bounds.center
        d1 = pf.plan(p, 0.0, 0.0)
        pf.admit(d1, payload=None, size_bytes=1000, now_ms=0.0)
        d2 = pf.plan(p, 0.0, 16.7)
        assert not d2.needs_fetch
        assert d2.cached is not None

    def test_reuse_within_snap_distance(self, pool_setup):
        # Sub-pitch movement snaps to the same grid point: exact cache hit
        # regardless of how tight the leaf's dist_thresh is.
        gw, cm, dm = pool_setup
        pf = Prefetcher(gw.scene, gw.grid, cm, dm, FrameCache())
        p = gw.bounds.center
        d1 = pf.plan(p, 0.0, 0.0)
        pf.admit(d1, None, 1000, 0.0)
        moved = Vec2(p.x + 0.01, p.y)
        d2 = pf.plan(moved, 0.0, 16.7)
        assert not d2.needs_fetch

    def test_trajectory_hit_ratio_high(self, pool_setup):
        """Caching absorbs a large share of fetches even for the worst-case
        indoor game (the paper's indoor similarity is the lowest of the
        nine games, Fig. 1b; Table 6's 80%+ ratios are the outdoor apps,
        covered by the benchmarks)."""
        gw, cm, dm = pool_setup
        cache = FrameCache()
        pf = Prefetcher(gw.scene, gw.grid, cm, dm, cache)
        traj = generate_trajectory(gw, duration_s=10, seed=4)
        for s in traj.samples:
            decision = pf.plan(s.position, s.heading, s.t_ms)
            if decision.needs_fetch:
                pf.admit(decision, None, 1000, s.t_ms)
        assert cache.stats.hit_ratio > 0.4

    def test_lookahead_projects_target(self, pool_setup):
        gw, cm, dm = pool_setup
        pf = Prefetcher(gw.scene, gw.grid, cm, dm, FrameCache(), lookahead_m=1.0)
        p = Vec2(5.0, 6.0)
        decision = pf.plan(p, heading=0.0, now_ms=0.0)
        assert decision.position.x > p.x + 0.5

    def test_validation(self, pool_setup):
        gw, cm, dm = pool_setup
        with pytest.raises(ValueError):
            Prefetcher(gw.scene, gw.grid, cm, dm, FrameCache(), lookahead_m=-1)
        with pytest.raises(ValueError):
            Prefetcher(
                gw.scene, gw.grid, cm, dm, FrameCache(), near_significance=-0.1
            )


class TestPipeline:
    def test_eq2_max_of_tasks(self):
        t = PipelineTimings(
            render_fi_ms=2.0, render_near_be_ms=8.0, decode_ms=7.9,
            prefetch_ms=5.0, sync_ms=2.5, merge_ms=1.2, setup_ms=1.5,
        )
        # render path = 1.5 + 2 + 8 = 11.5 dominates
        assert t.split_render_ms() == pytest.approx(11.5 + 1.2)
        assert t.bottleneck() == "render"

    def test_network_bound_interval(self):
        t = PipelineTimings(
            render_fi_ms=2.0, render_near_be_ms=4.0, decode_ms=7.9,
            prefetch_ms=18.5, sync_ms=2.5, merge_ms=1.2,
        )
        assert t.bottleneck() == "prefetch"
        assert t.split_render_ms() == pytest.approx(19.7)

    def test_vsync_quantization(self):
        fast = PipelineTimings(1.0, 4.0, 3.0, 2.0, 2.0, 1.0)
        assert frame_interval_ms(fast) == pytest.approx(1000.0 / 60.0)
        slow = PipelineTimings(1.0, 4.0, 3.0, 18.0, 2.0, 1.0)
        assert frame_interval_ms(slow) == pytest.approx(19.0)
        assert frame_interval_ms(slow, quantize=True) == pytest.approx(
            2 * 1000.0 / 60.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineTimings(-1, 0, 0, 0, 0, 0)
        good = PipelineTimings(1, 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            frame_interval_ms(good, target_interval_ms=0)


class TestMerger:
    def test_layer_from_decoded_full_coverage(self):
        image = np.random.default_rng(0).random((32, 64)).astype(np.float32)
        layer = layer_from_decoded(image)
        assert layer.coverage == 1.0
        with pytest.raises(ValueError):
            layer_from_decoded(np.zeros((4, 4, 3)))

    def test_compose_display_overwrites_near(self, pool_setup):
        gw, cm, _ = pool_setup
        eye = eye_at(gw.scene, gw.bounds.center, 1.7)
        cutoff = cm.cutoff_for(gw.bounds.center)
        near = render_near_be(gw.scene, eye, CFG, cutoff)
        far = np.zeros((CFG.height, CFG.width), dtype=np.float32)
        out = compose_display(far, near)
        assert out.shape == far.shape
        # Near-covered pixels take the near values; the rest stay zero.
        assert np.all(out[~near.mask] == 0.0)
        if near.mask.any():
            assert np.array_equal(out[near.mask], near.image[near.mask])

    def test_switch_discontinuities_identity_runs(self):
        a = np.random.default_rng(1).random((32, 64)).astype(np.float32)
        b = np.clip(a + 0.01, 0, 1)
        # a reused 3 times, then switch to b: exactly one switch measured.
        values = switch_discontinuities([a, a, a, b, b])
        assert len(values) == 1
        assert values[0] > 0.9
        with pytest.raises(ValueError):
            switch_discontinuities([])


class TestPanoramaStore:
    def test_rendering_store_roundtrip(self, pool_setup):
        gw, cm, _ = pool_setup
        store = PanoramaStore(gw, CFG, FrameCodec(), cutoff_map=cm, kind="far")
        gp = gw.grid.snap(gw.bounds.center)
        frame = store.frame_for(gp)
        assert frame.encoded is not None
        assert frame.decoded is not None
        assert frame.wire_bytes > 10_000
        # Memoized: second request does not re-render.
        renders_before = store.renders
        again = store.frame_for(gp)
        assert store.renders == renders_before
        assert again is frame

    def test_emulated_store_sizes_only(self, pool_setup):
        gw, cm, _ = pool_setup
        model = FrameSizeModel(mean_bytes=200_000, std_bytes=20_000)
        store = PanoramaStore(
            gw, CFG, FrameCodec(), cutoff_map=cm, render_frames=False,
            size_model=model,
        )
        frame = store.frame_for((10, 10))
        assert frame.encoded is None
        assert frame.wire_bytes > 100_000
        assert store.renders == 0

    def test_size_model_deterministic(self):
        model = FrameSizeModel(mean_bytes=100_000, std_bytes=10_000)
        assert model.sample((3, 4)) == model.sample((3, 4))
        assert model.sample((3, 4)) != model.sample((5, 6))

    def test_validation(self, pool_setup):
        gw, cm, _ = pool_setup
        with pytest.raises(ValueError):
            PanoramaStore(gw, CFG, FrameCodec(), kind="far")  # no cutoff map
        with pytest.raises(ValueError):
            PanoramaStore(gw, CFG, FrameCodec(), cutoff_map=cm, kind="medium")
        with pytest.raises(ValueError):
            PanoramaStore(
                gw, CFG, FrameCodec(), cutoff_map=cm, render_frames=False
            )
        with pytest.raises(ValueError):
            FrameSizeModel(mean_bytes=0, std_bytes=1)


class TestPreprocessGame:
    def test_full_offline_pipeline(self, pool_setup):
        gw, _, _ = pool_setup
        artifacts = preprocess_game(gw, MODEL, CFG, FrameCodec(), seed=2,
                                    size_samples=3)
        assert artifacts.budget.near_be_budget_ms > 0
        assert artifacts.cutoff_map.stats().leaf_count >= 1
        # Far frames strip content, so they are smaller on average.
        assert (
            artifacts.far_size_model.mean_bytes
            < artifacts.whole_size_model.mean_bytes
        )

    def test_calibrate_size_model_far_smaller(self, pool_setup):
        gw, cm, _ = pool_setup
        codec = FrameCodec()
        far = calibrate_size_model(gw, CFG, codec, cm, kind="far", samples=3, seed=5)
        whole = calibrate_size_model(gw, CFG, codec, None, kind="whole", samples=3, seed=5)
        assert far.mean_bytes < whole.mean_bytes
        with pytest.raises(ValueError):
            calibrate_size_model(gw, CFG, codec, cm, samples=1)
