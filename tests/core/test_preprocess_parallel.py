"""Determinism of the parallel preprocessing driver.

The acceptance bar for the perf layer: fanning the offline pipeline over
worker processes must be a pure optimisation.  ``workers=4`` has to
produce bit-identical cutoff maps, dist-thresh maps, and panorama frame
bytes to ``workers=1`` — across games and seeds — and eager precomputation
has to agree with the historical lazy path.
"""

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.core.cutoff import leaf_key
from repro.core.preprocess import PreprocessOptions, preprocess_game
from repro.geometry import Vec2
from repro.render import RenderCostModel
from repro.render.rasterizer import RenderConfig
from repro.systems.base import SessionConfig
from repro.world.games import load_game

CONFIG = RenderConfig(width=48, height=24)
COST = RenderCostModel(SessionConfig().device)


def _grid_points(world, count=3):
    seen = []
    for point in world.spawn_points(count * 2):
        snapped = world.grid.snap(point)
        if snapped not in seen:
            seen.append(snapped)
    return seen[:count]


def _preprocess(world, seed, workers, cache_dir, grid_points):
    options = PreprocessOptions(
        workers=workers,
        cache_dir=str(cache_dir),
        eager_dist_thresh=True,
        panorama_grid_points=grid_points,
        chunk_size=2,
    )
    return preprocess_game(
        world,
        COST,
        CONFIG,
        FrameCodec(),
        seed=seed,
        size_samples=2,
        options=options,
    )


def _leaf_list(cutoff_map):
    return sorted(
        (leaf_key(leaf.region), leaf.payload.cutoff_radius)
        for leaf in cutoff_map.tree.leaves()
    )


@pytest.mark.parametrize("game,scale", [("racing", 0.12), ("bowling", 0.5)])
@pytest.mark.parametrize("seed", [0, 7])
def test_parallel_output_bit_identical_to_serial(tmp_path, game, scale, seed):
    world = load_game(game, scale=scale)
    grid_points = _grid_points(world)
    serial = _preprocess(world, seed, 1, tmp_path / "serial", grid_points)
    parallel = _preprocess(world, seed, 4, tmp_path / "parallel", grid_points)

    # Cutoff maps: identical leaf partitions and radii.
    assert _leaf_list(serial.cutoff_map) == _leaf_list(parallel.cutoff_map)

    # Dist-thresh maps: every leaf present with the exact same float.
    assert serial.dist_thresh_map._cache == parallel.dist_thresh_map._cache
    assert serial.dist_thresh_map.computed_leaves > 0

    # Size models: identical calibrations.
    assert serial.far_size_model == parallel.far_size_model
    assert serial.whole_size_model == parallel.whole_size_model

    # Panorama frames: byte-for-byte equal encoded payloads.
    for grid_point in grid_points:
        viewpoint = world.grid.to_world(grid_point)
        cutoff = serial.cutoff_map.cutoff_for(viewpoint)
        hit_s = serial.disk_cache.load_frame(
            (viewpoint.x, viewpoint.y), cutoff, "far"
        )
        hit_p = parallel.disk_cache.load_frame(
            (viewpoint.x, viewpoint.y), cutoff, "far"
        )
        assert hit_s is not None and hit_p is not None
        assert hit_s[1].data == hit_p[1].data
        assert np.array_equal(hit_s[0], hit_p[0])


def test_eager_matches_lazy_thresholds(tmp_path):
    world = load_game("racing", scale=0.12)
    eager = _preprocess(world, 0, 1, tmp_path / "eager", _grid_points(world))
    lazy = preprocess_game(
        world, COST, CONFIG, FrameCodec(), seed=0, size_samples=2
    )
    assert lazy.dist_thresh_map.computed_leaves == 0
    for key, expected in eager.dist_thresh_map._cache.items():
        centre = Vec2((key[0] + key[2]) / 2.0, (key[1] + key[3]) / 2.0)
        assert lazy.dist_thresh_map.threshold_for(centre) == expected


def test_warm_cache_rerun_skips_computation(tmp_path):
    world = load_game("racing", scale=0.12)
    grid_points = _grid_points(world)
    cold = _preprocess(world, 0, 1, tmp_path / "cache", grid_points)
    cold_misses = cold.disk_cache.misses
    assert cold_misses > 0
    warm = _preprocess(world, 0, 1, tmp_path / "cache", grid_points)
    # Everything — thresholds, panoramas, size models — comes off disk.
    assert warm.disk_cache.misses == 0
    assert warm.dist_thresh_map._cache == cold.dist_thresh_map._cache
    assert warm.far_size_model == cold.far_size_model


def test_default_options_unchanged_signature(tmp_path):
    """No options == historical behaviour: nothing eager, nothing on disk."""
    world = load_game("racing", scale=0.12)
    artifacts = preprocess_game(
        world, COST, CONFIG, FrameCodec(), seed=0, size_samples=2
    )
    assert artifacts.disk_cache is None
    assert artifacts.dist_thresh_map.computed_leaves == 0
    assert not list(tmp_path.iterdir())


def test_panorama_stage_requires_cache_dir():
    with pytest.raises(ValueError):
        PreprocessOptions(panorama_grid_points=[(0, 0)])
