"""Property tests: vector-scan parity under arbitrary cache interleavings.

The vectorized candidate scan promises bit-identity with the scalar
loop.  A fixed unit test can only pin the interleavings someone thought
of; here hypothesis drives *arbitrary* insert → evict → lookup →
nearest sequences (including LRU pressure evictions and, in the second
property, speculative tagging with confirm/discard/expire) against a
scalar twin and asserts every observable answer matches.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachedFrame, FrameCache
from repro.geometry import Vec2

GRID_RANGE = 6  # small grid: collisions, replacements, near ties
LEAVES = ("leaf-a", "leaf-b")
NEAR_SETS = (frozenset({1}), frozenset({1, 2}))


def make_frame(gx, gy, size_bytes, t_ms, leaf="leaf-a",
               near_ids=frozenset({1}), speculative=False, digest=0):
    return CachedFrame(
        grid_point=(gx, gy),
        position=Vec2(float(gx), float(gy)),
        leaf=leaf,
        near_ids=near_ids,
        payload=None,
        size_bytes=size_bytes,
        inserted_ms=t_ms,
        last_used_ms=t_ms,
        speculative=speculative,
        digest=digest,
    )


coords = st.integers(min_value=0, max_value=GRID_RANGE)

plain_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), coords, coords,
                  st.integers(min_value=100, max_value=500)),
        st.tuples(st.just("lookup"), coords, coords,
                  st.sampled_from(LEAVES), st.sampled_from(NEAR_SETS),
                  st.floats(min_value=0.0, max_value=4.0)),
        st.tuples(st.just("nearest"),
                  st.floats(min_value=-1.0, max_value=GRID_RANGE + 1.0),
                  st.floats(min_value=-1.0, max_value=GRID_RANGE + 1.0)),
    ),
    max_size=40,
)

spec_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), coords, coords,
                  st.integers(min_value=100, max_value=500),
                  st.booleans()),
        st.tuples(st.just("lookup"), coords, coords),
        st.tuples(st.just("nearest"), coords, coords),
        st.tuples(st.just("confirm"), coords, coords),
        st.tuples(st.just("discard"), coords, coords),
        st.tuples(st.just("expire"), st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("drop_spec")),
    ),
    max_size=50,
)


def key_of(frame):
    """Observable identity of a lookup/nearest answer."""
    if frame is None:
        return None
    return (frame.grid_point, frame.size_bytes, frame.speculative,
            frame.digest)


class TestVectorParityUnderInterleavings:
    @given(ops=plain_ops)
    @settings(max_examples=60, deadline=None)
    def test_insert_evict_lookup_nearest_parity(self, ops):
        """Scalar and vector caches agree after every operation."""
        # Small capacity: a handful of inserts forces LRU evictions.
        scalar = FrameCache(capacity_bytes=1500)
        vector = FrameCache(capacity_bytes=1500)
        vector.vector_scan = True
        t_ms = 0.0
        for op in ops:
            t_ms += 16.0
            if op[0] == "insert":
                _, gx, gy, size = op
                leaf = LEAVES[(gx + gy) % 2]
                near = NEAR_SETS[gx % 2]
                scalar.insert(make_frame(gx, gy, size, t_ms, leaf, near))
                vector.insert(make_frame(gx, gy, size, t_ms, leaf, near))
            elif op[0] == "lookup":
                _, gx, gy, leaf, near, thresh = op
                position = Vec2(float(gx), float(gy))
                a = scalar.lookup((gx, gy), position, leaf, near, thresh, t_ms)
                b = vector.lookup((gx, gy), position, leaf, near, thresh, t_ms)
                assert key_of(a) == key_of(b)
            else:
                _, x, y = op
                a = scalar.nearest(Vec2(x, y), t_ms)
                b = vector.nearest(Vec2(x, y), t_ms)
                assert key_of(a) == key_of(b)
            assert len(scalar) == len(vector)
            assert scalar.stats.hits == vector.stats.hits
            assert scalar.stats.misses == vector.stats.misses
        assert [key_of(f) for f in scalar.frames()] == [
            key_of(f) for f in vector.frames()
        ]


class TestSpeculativeTaggingParity:
    @given(ops=spec_ops)
    @settings(max_examples=60, deadline=None)
    def test_speculative_interleavings_parity(self, ops):
        """Parity holds with speculative tagging in the mix.

        confirm/discard are resolved per cache by grid point (the twin
        caches hold distinct objects), and nearest() must filter
        unconfirmed speculative entries identically in both modes.
        """
        scalar = FrameCache(capacity_bytes=2000)
        vector = FrameCache(capacity_bytes=2000)
        vector.vector_scan = True
        t_ms = 0.0
        for op in ops:
            t_ms += 16.0
            if op[0] == "insert":
                _, gx, gy, size, speculative = op
                digest = (gx << 8) | gy if speculative else 0
                scalar.insert(make_frame(gx, gy, size, t_ms,
                                         speculative=speculative,
                                         digest=digest))
                vector.insert(make_frame(gx, gy, size, t_ms,
                                         speculative=speculative,
                                         digest=digest))
            elif op[0] == "lookup":
                _, gx, gy = op
                position = Vec2(float(gx), float(gy))
                a = scalar.lookup((gx, gy), position, "leaf-a",
                                  frozenset({1}), 2.0, t_ms)
                b = vector.lookup((gx, gy), position, "leaf-a",
                                  frozenset({1}), 2.0, t_ms)
                assert key_of(a) == key_of(b)
            elif op[0] == "nearest":
                _, gx, gy = op
                a = scalar.nearest(Vec2(float(gx), float(gy)), t_ms)
                b = vector.nearest(Vec2(float(gx), float(gy)), t_ms)
                assert key_of(a) == key_of(b)
                if a is not None:
                    # The stale fallback never serves unvalidated state.
                    assert not a.speculative
            elif op[0] in ("confirm", "discard"):
                _, gx, gy = op
                for cache in (scalar, vector):
                    resident = cache._frames.get((gx, gy))
                    if resident is None:
                        continue
                    if op[0] == "confirm":
                        cache.confirm(resident)
                    else:
                        cache.discard(resident)
            elif op[0] == "expire":
                _, ttl = op
                a = scalar.expire_speculative(t_ms, float(ttl))
                b = vector.expire_speculative(t_ms, float(ttl))
                assert a == b
            else:  # drop_spec
                assert scalar.drop_speculative() == vector.drop_speculative()
            assert scalar.speculative_count == vector.speculative_count
            assert len(scalar) == len(vector)
        assert [key_of(f) for f in scalar.frames()] == [
            key_of(f) for f in vector.frames()
        ]
        assert (scalar.stats.speculative_confirms
                == vector.stats.speculative_confirms)
        assert (scalar.stats.speculative_discards
                == vector.stats.speculative_discards)
        assert (scalar.stats.speculative_expired
                == vector.stats.speculative_expired)
