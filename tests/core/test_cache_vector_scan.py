"""Bit-identity of the vectorized cache scan against the scalar loop.

The batched online path flips ``FrameCache.vector_scan`` on; lookups and
stale-fallback scans must then return *the same frame object* the scalar
loop would — including tie-breaks, where several candidates sit at
exactly the same distance and the winner is the first strict improvement
in insertion order.
"""

import math

import numpy as np
import pytest

from repro.core.cache import CachedFrame, FrameCache
from repro.geometry import Vec2


def make_frame(grid_point, position, leaf="leaf-a", near_ids=frozenset({1, 2}),
               size_bytes=100, now_ms=0.0):
    return CachedFrame(
        grid_point=grid_point,
        position=position,
        leaf=leaf,
        near_ids=near_ids,
        payload=None,
        size_bytes=size_bytes,
        inserted_ms=now_ms,
        last_used_ms=now_ms,
    )


def paired_caches(frames):
    """One scalar and one vector cache holding identical entries."""
    scalar = FrameCache(capacity_bytes=1 << 20)
    vector = FrameCache(capacity_bytes=1 << 20)
    vector.vector_scan = True
    for frame in frames:
        scalar.insert(frame)
        vector.insert(
            make_frame(frame.grid_point, frame.position, frame.leaf,
                       frame.near_ids, frame.size_bytes)
        )
    return scalar, vector


class TestTieBreaking:
    def test_exact_tie_resolves_to_insertion_order(self):
        """Two candidates at exactly equal distance: first inserted wins."""
        frames = [
            make_frame((0, 1), Vec2(0.0, 1.0)),
            make_frame((0, -1), Vec2(0.0, -1.0)),  # same distance from origin
            make_frame((2, 0), Vec2(2.0, 0.0)),
        ]
        scalar, vector = paired_caches(frames)
        query = dict(
            grid_point=(9, 9), position=Vec2(0.0, 0.0), leaf="leaf-a",
            near_ids=frozenset({1, 2}), dist_thresh=5.0, now_ms=1.0,
        )
        a = scalar.lookup(**query)
        b = vector.lookup(**query)
        assert a is not None and b is not None
        assert a.grid_point == b.grid_point == (0, 1)

    def test_nearest_tie_matches_min(self):
        frames = [
            make_frame((1, 0), Vec2(1.0, 0.0)),
            make_frame((-1, 0), Vec2(-1.0, 0.0)),
        ]
        scalar, vector = paired_caches(frames)
        a = scalar.nearest(Vec2(0.0, 0.0))
        b = vector.nearest(Vec2(0.0, 0.0))
        assert a.grid_point == b.grid_point == (1, 0)

    def test_threshold_boundary_exact(self):
        """A candidate at exactly dist_thresh is a hit in both scans."""
        frames = [make_frame((3, 4), Vec2(3.0, 4.0))]
        scalar, vector = paired_caches(frames)
        thresh = math.hypot(3.0, 4.0)  # exactly 5.0
        for cache in (scalar, vector):
            hit = cache.lookup(
                grid_point=(9, 9), position=Vec2(0.0, 0.0), leaf="leaf-a",
                near_ids=frozenset({1, 2}), dist_thresh=thresh, now_ms=1.0,
            )
            assert hit is not None and hit.grid_point == (3, 4)


@pytest.mark.parametrize("seed", range(6))
class TestRandomizedEquivalence:
    def test_lookup_and_nearest_agree(self, seed):
        rng = np.random.default_rng(seed)
        leaves = ["leaf-a", "leaf-b"]
        near_sets = [frozenset({1}), frozenset({1, 2})]
        frames = []
        for index in range(40):
            # snap to a coarse lattice so exact distance ties are common
            x = float(rng.integers(-3, 4))
            y = float(rng.integers(-3, 4))
            frames.append(
                make_frame(
                    (index, 0), Vec2(x, y),
                    leaf=leaves[int(rng.integers(2))],
                    near_ids=near_sets[int(rng.integers(2))],
                )
            )
        scalar, vector = paired_caches(frames)
        for q in range(60):
            position = Vec2(
                float(rng.integers(-3, 4)), float(rng.integers(-3, 4))
            )
            query = dict(
                grid_point=(99, q),  # never an exact grid hit
                position=position,
                leaf=leaves[q % 2],
                near_ids=near_sets[q % 2],
                dist_thresh=float(rng.uniform(0.0, 5.0)),
                now_ms=float(q),
            )
            a = scalar.lookup(**query)
            b = vector.lookup(**query)
            if a is None:
                assert b is None
            else:
                assert b is not None
                assert a.grid_point == b.grid_point
            na = scalar.nearest(position, now_ms=float(q))
            nb = vector.nearest(position, now_ms=float(q))
            assert na.grid_point == nb.grid_point
        assert scalar.stats.hits == vector.stats.hits
        assert scalar.stats.misses == vector.stats.misses

    def test_equivalence_survives_mutation(self, seed):
        """Inserts and evictions dirty the index; results stay identical."""
        rng = np.random.default_rng(seed + 100)
        scalar = FrameCache(capacity_bytes=1200)  # forces evictions
        vector = FrameCache(capacity_bytes=1200)
        vector.vector_scan = True
        for index in range(30):
            x, y = float(rng.integers(-2, 3)), float(rng.integers(-2, 3))
            for cache in (scalar, vector):
                cache.insert(make_frame((index, 1), Vec2(x, y), now_ms=index))
            position = Vec2(float(rng.integers(-2, 3)),
                            float(rng.integers(-2, 3)))
            a = scalar.lookup(
                grid_point=(99, index), position=position, leaf="leaf-a",
                near_ids=frozenset({1, 2}), dist_thresh=2.5,
                now_ms=float(index),
            )
            b = vector.lookup(
                grid_point=(99, index), position=position, leaf="leaf-a",
                near_ids=frozenset({1, 2}), dist_thresh=2.5,
                now_ms=float(index),
            )
            assert (a is None) == (b is None)
            if a is not None:
                assert a.grid_point == b.grid_point
        assert len(scalar) == len(vector)
        assert scalar.stats.evictions == vector.stats.evictions


class TestUnknownKeys:
    def test_unknown_leaf_or_near_set_misses(self):
        scalar, vector = paired_caches([make_frame((0, 0), Vec2(0.0, 0.0))])
        for cache in (scalar, vector):
            assert cache.lookup(
                grid_point=(9, 9), position=Vec2(0.0, 0.0), leaf="leaf-zz",
                near_ids=frozenset({1, 2}), dist_thresh=10.0, now_ms=1.0,
            ) is None
            assert cache.lookup(
                grid_point=(9, 9), position=Vec2(0.0, 0.0), leaf="leaf-a",
                near_ids=frozenset({7}), dist_thresh=10.0, now_ms=1.0,
            ) is None
