"""Tests for the far-BE frame cache (§5.3 lookup + replacement)."""

import pytest

from repro.core import FLF, LRU, CachedFrame, FrameCache
from repro.geometry import Vec2

LEAF_A = (0.0, 0.0, 50.0, 50.0)
LEAF_B = (50.0, 0.0, 100.0, 50.0)


def frame(gp, x, y, leaf=LEAF_A, near=frozenset(), size=100, t=0.0, origin=-1):
    return CachedFrame(
        grid_point=gp,
        position=Vec2(x, y),
        leaf=leaf,
        near_ids=frozenset(near),
        payload=None,
        size_bytes=size,
        inserted_ms=t,
        last_used_ms=t,
        origin_player=origin,
    )


class TestLookup:
    def test_exact_hit(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0))
        hit = cache.lookup((5, 5), Vec2(5, 5), LEAF_A, frozenset(), 0.0, now_ms=1.0)
        assert hit is not None
        assert cache.stats.exact_hits == 1

    def test_similar_hit_within_thresh(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0, near={1, 2}))
        hit = cache.lookup(
            (6, 5), Vec2(5.5, 5.0), LEAF_A, frozenset({1, 2}), dist_thresh=1.0,
            now_ms=1.0,
        )
        assert hit is not None
        assert hit.grid_point == (5, 5)

    def test_criterion1_distance(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0, near={1}))
        miss = cache.lookup(
            (9, 5), Vec2(9.0, 5.0), LEAF_A, frozenset({1}), dist_thresh=1.0,
            now_ms=1.0,
        )
        assert miss is None
        assert cache.stats.misses == 1

    def test_criterion2_leaf(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0, leaf=LEAF_A, near={1}))
        miss = cache.lookup(
            (6, 5), Vec2(5.5, 5.0), LEAF_B, frozenset({1}), dist_thresh=5.0,
            now_ms=1.0,
        )
        assert miss is None

    def test_criterion3_near_set(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0, near={1, 2}))
        miss = cache.lookup(
            (6, 5), Vec2(5.5, 5.0), LEAF_A, frozenset({1, 2, 3}), dist_thresh=5.0,
            now_ms=1.0,
        )
        assert miss is None

    def test_closest_candidate_wins(self):
        cache = FrameCache()
        cache.insert(frame((2, 5), 2.0, 5.0, near={1}))
        cache.insert(frame((4, 5), 4.0, 5.0, near={1}))
        hit = cache.lookup(
            (5, 5), Vec2(4.5, 5.0), LEAF_A, frozenset({1}), dist_thresh=5.0,
            now_ms=1.0,
        )
        assert hit.grid_point == (4, 5)

    def test_exact_only_mode(self):
        cache = FrameCache(exact_only=True)
        cache.insert(frame((5, 5), 5.0, 5.0, near={1}))
        assert cache.lookup((5, 5), Vec2(5, 5), LEAF_A, frozenset({1}), 9.0, 1.0)
        assert (
            cache.lookup((6, 5), Vec2(5.1, 5.0), LEAF_A, frozenset({1}), 9.0, 1.0)
            is None
        )

    def test_negative_thresh_rejected(self):
        cache = FrameCache()
        with pytest.raises(ValueError):
            cache.lookup((0, 0), Vec2(0, 0), LEAF_A, frozenset(), -1.0, 0.0)

    def test_hit_ratio(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0))
        cache.lookup((5, 5), Vec2(5, 5), LEAF_A, frozenset(), 0.0, 1.0)
        cache.lookup((9, 9), Vec2(9, 9), LEAF_A, frozenset(), 0.0, 2.0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)
        assert cache.stats.lookups == 2

    def test_empty_cache_hit_ratio_zero(self):
        assert FrameCache().stats.hit_ratio == 0.0


class TestInsertAndReplacement:
    def test_insert_replaces_same_grid_point(self):
        cache = FrameCache()
        cache.insert(frame((5, 5), 5.0, 5.0, size=100))
        cache.insert(frame((5, 5), 5.0, 5.0, size=200))
        assert len(cache) == 1
        assert cache.used_bytes == 200

    def test_oversized_frame_rejected(self):
        cache = FrameCache(capacity_bytes=100)
        with pytest.raises(ValueError):
            cache.insert(frame((0, 0), 0, 0, size=101))

    def test_lru_evicts_least_recently_used(self):
        cache = FrameCache(capacity_bytes=250, policy=LRU)
        cache.insert(frame((1, 0), 1, 0, size=100, t=1.0))
        cache.insert(frame((2, 0), 2, 0, size=100, t=2.0))
        # Touch the older frame so (2,0) becomes the LRU victim.
        cache.lookup((1, 0), Vec2(1, 0), LEAF_A, frozenset(), 0.0, now_ms=5.0)
        cache.insert(frame((3, 0), 3, 0, size=100, t=6.0))
        points = {f.grid_point for f in cache.frames()}
        assert points == {(1, 0), (3, 0)}
        assert cache.stats.evictions == 1

    def test_flf_evicts_furthest(self):
        cache = FrameCache(capacity_bytes=250, policy=FLF)
        cache.insert(frame((1, 0), 1, 0, size=100, t=1.0))
        cache.insert(frame((50, 0), 50, 0, size=100, t=2.0))
        # New frame inserted at x=2: the far frame at x=50 is evicted.
        cache.insert(frame((2, 0), 2, 0, size=100, t=3.0))
        points = {f.grid_point for f in cache.frames()}
        assert points == {(1, 0), (2, 0)}

    def test_clear(self):
        cache = FrameCache()
        cache.insert(frame((1, 1), 1, 1))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            FrameCache(policy="mru")
        with pytest.raises(ValueError):
            frame((0, 0), 0, 0, size=-1)


class TestCacheVersionSemantics:
    """The five §4.6 cache configurations express through the flags."""

    def test_version1_exact_self(self):
        # Version 1: own frames, exact only -> moving to a new point misses.
        cache = FrameCache(exact_only=True)
        cache.insert(frame((1, 0), 1, 0, origin=0))
        assert cache.lookup((2, 0), Vec2(1.03, 0), LEAF_A, frozenset(), 9.0, 1.0) is None

    def test_version3_similar_self(self):
        cache = FrameCache()
        cache.insert(frame((1, 0), 1.0, 0, near={7}, origin=0))
        assert cache.lookup(
            (2, 0), Vec2(1.03, 0), LEAF_A, frozenset({7}), 9.0, 1.0
        ) is not None

    def test_overheard_frames_carry_origin(self):
        cache = FrameCache()
        cache.insert(frame((1, 0), 1.0, 0, near={7}, origin=2))
        hit = cache.lookup((1, 0), Vec2(1, 0), LEAF_A, frozenset({7}), 9.0, 1.0)
        assert hit.origin_player == 2
