"""Tests for the batched online frame loop and its building blocks."""

import numpy as np
import pytest

from repro.codec import FrameCodec
from repro.core.merger import compose_display, compose_display_into
from repro.core.online import (
    OnlineFrameLoop,
    PlayerFrameInput,
    SsimBatchQueue,
)
from repro.core.pipeline import (
    PipelineTimings,
    batched_frame_intervals_ms,
    frame_interval_ms,
    frame_intervals_ms,
)
from repro.geometry import Vec2
from repro.perf import FrameArena
from repro.render.rasterizer import Layer
from repro.similarity import ssim

SHAPE = (16, 32)


def textured_frame(seed, shape=SHAPE):
    rng = np.random.default_rng(seed)
    y = np.linspace(0, 1, shape[0])[:, None]
    coarse = rng.random(((shape[0] + 3) // 4, (shape[1] + 3) // 4))
    detail = np.kron(coarse, np.ones((4, 4)))[: shape[0], : shape[1]] * 0.25
    return np.clip(0.3 + 0.4 * y + detail, 0, 1).astype(np.float32)


def layer(seed, coverage=0.3, shape=SHAPE):
    rng = np.random.default_rng(seed + 1000)
    return Layer(
        image=rng.random(shape).astype(np.float32),
        mask=rng.random(shape) < coverage,
        depth=np.full(shape, 1.0),
    )


def build_schedule(codec, n_ticks=12, n_players=3, cell=4):
    """A synthetic multi-player schedule with genuine hits and misses.

    Players walk along a line; panorama viewpoints snap to ``cell``-sized
    segments so each encoded frame serves a run of ticks.
    """
    near_sets = [frozenset({1, 2}), frozenset({1, 2, 3})]
    encoded = {}
    ticks = []
    for t in range(n_ticks):
        tick = []
        for p in range(n_players):
            step = t + 3 * p
            gx = (step // cell) * cell
            key = (gx, p % 2)
            if key not in encoded:
                encoded[key] = codec.encode(textured_frame(hash(key) % 1000))
            tick.append(
                PlayerFrameInput(
                    grid_point=key,
                    position=Vec2(float(gx), float(p)),
                    leaf=("leaf", p % 2),
                    near_ids=near_sets[p % 2],
                    dist_thresh=1.5,
                    encoded=encoded[key],
                    wire_bytes=1200 + 10 * p,
                    near_layer=layer(step),
                    fi_layer=layer(step + 500) if p else None,
                    reference=textured_frame(step + 2000),
                )
            )
        ticks.append(tick)
    return ticks


class TestCrossModeIdentity:
    @pytest.fixture(scope="class")
    def schedule(self):
        return build_schedule(FrameCodec())

    def test_digest_and_metrics_identical(self, schedule):
        loop = OnlineFrameLoop(
            ticks=schedule, ssim_stride=2, ssim_batch_target=5
        )
        scalar = loop.run(batched=False)
        vector = loop.run(batched=True)
        reuse = loop.run(batched=True, arena=FrameArena())
        assert scalar.fetches > 0 and scalar.cache_hits > 0
        assert scalar.metrics() == vector.metrics()
        assert scalar.metrics() == reuse.metrics()

    def test_ssim_values_match_inline(self, schedule):
        loop = OnlineFrameLoop(
            ticks=schedule, ssim_stride=1, ssim_batch_target=4
        )
        scalar = loop.run(batched=False)
        batched = loop.run(batched=True, arena=FrameArena())
        assert scalar.ssim_values == batched.ssim_values
        assert len(scalar.ssim_values) == sum(len(t) for t in schedule)

    def test_arena_reaches_steady_state(self, schedule):
        loop = OnlineFrameLoop(
            ticks=schedule, ssim_stride=1, ssim_batch_target=6
        )
        arena = FrameArena()
        loop.run(batched=True, arena=arena)
        assert arena.reuse_ratio > 0.5

    def test_invalid_config(self, schedule):
        with pytest.raises(ValueError):
            OnlineFrameLoop(ticks=schedule, ssim_stride=0)
        with pytest.raises(ValueError):
            OnlineFrameLoop(ticks=schedule, link_mbps=0.0)


class TestSsimBatchQueue:
    def test_scores_match_inline_in_submission_order(self):
        queue = SsimBatchQueue(batch_target=100)
        got = []
        pairs = [
            (textured_frame(s), textured_frame(s + 30)) for s in range(7)
        ]
        for a, b in pairs:
            queue.submit(a, b, got.append)
        assert got == []  # deferred until the flush
        queue.flush()
        assert got == [ssim(a, b) for a, b in pairs]

    def test_auto_flush_at_batch_target(self):
        queue = SsimBatchQueue(batch_target=3)
        got = []
        for s in range(3):
            queue.submit(textured_frame(s), textured_frame(s + 9), got.append)
        assert len(got) == 3 and len(queue) == 0
        assert queue.flushes == 1

    def test_mixed_shapes_grouped(self):
        queue = SsimBatchQueue(batch_target=100)
        got = []
        pairs = [
            (textured_frame(0), textured_frame(1)),
            (textured_frame(2, (24, 24)), textured_frame(3, (24, 24))),
            (textured_frame(4), textured_frame(5)),
        ]
        for a, b in pairs:
            queue.submit(a, b, got.append)
        queue.flush()
        assert got == [ssim(a, b) for a, b in pairs]

    def test_on_flush_hook_and_counts(self):
        queue = SsimBatchQueue(batch_target=2)
        seen = []
        queue.on_flush = seen.append
        for s in range(4):
            queue.submit(textured_frame(s), textured_frame(s + 4),
                         lambda _v: None)
        assert seen == [2, 2]
        assert queue.jobs_total == 4

    def test_empty_flush_is_noop(self):
        queue = SsimBatchQueue()
        queue.flush()
        assert queue.flushes == 0

    def test_invalid_batch_target(self):
        with pytest.raises(ValueError):
            SsimBatchQueue(batch_target=0)


class TestComposeDisplayInto:
    def test_matches_compose_display(self):
        far = textured_frame(0)
        near, fi = layer(1), layer(2)
        out = np.empty(SHAPE, dtype=np.float32)
        result = compose_display_into(out, far, near, fi)
        assert result is out
        np.testing.assert_array_equal(result, compose_display(far, near, fi))

    def test_without_fi_layer(self):
        far, near = textured_frame(3), layer(4)
        out = np.empty(SHAPE, dtype=np.float32)
        np.testing.assert_array_equal(
            compose_display_into(out, far, near),
            compose_display(far, near),
        )

    def test_validates_buffer(self):
        far, near = textured_frame(5), layer(6)
        with pytest.raises(ValueError):
            compose_display_into(
                np.empty(SHAPE, dtype=np.float64), far, near
            )
        with pytest.raises(ValueError):
            compose_display_into(
                np.empty((8, 8), dtype=np.float32), far, near
            )


class TestFrameIntervals:
    def timings(self, prefetch_ms):
        return PipelineTimings(
            render_fi_ms=3.0, render_near_be_ms=4.0, decode_ms=3.7,
            prefetch_ms=prefetch_ms, sync_ms=1.0, merge_ms=1.0, setup_ms=0.5,
        )

    def test_batch_matches_scalar(self):
        seq = [self.timings(p) for p in (0.0, 5.0, 16.0, 40.0)]
        batch = frame_intervals_ms(seq)
        assert list(batch) == [frame_interval_ms(t) for t in seq]

    def test_quantized_batch_matches_scalar(self):
        seq = [self.timings(p) for p in (0.0, 16.0, 17.0, 40.0)]
        batch = frame_intervals_ms(seq, quantize=True)
        assert list(batch) == [
            frame_interval_ms(t, quantize=True) for t in seq
        ]

    def test_constant_task_fast_path_matches(self):
        prefetch = np.array([0.0, 5.0, 16.0, 40.0])
        fast = batched_frame_intervals_ms(
            prefetch, render_ms=7.5, decode_ms=3.7, sync_ms=1.0, merge_ms=1.0
        )
        slow = frame_intervals_ms([self.timings(p) for p in prefetch])
        assert list(fast) == list(slow)

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_intervals_ms([], target_interval_ms=0.0)
        with pytest.raises(ValueError):
            batched_frame_intervals_ms(
                np.zeros(1), render_ms=1.0, decode_ms=1.0, sync_ms=1.0,
                merge_ms=1.0, target_interval_ms=-1.0,
            )
