"""Tests for dist_thresh derivation (§5.3's binary search)."""

import numpy as np
import pytest

from repro.core import RenderBudget, build_cutoff_map, measure_dist_thresh
from repro.core.dist_thresh import DistThreshMap
from repro.geometry import Rect, Vec2, Vec3
from repro.render import PIXEL2, RenderCostModel, RenderConfig
from repro.world import Scene, SceneObject

CFG = RenderConfig(width=128, height=64)
MODEL = RenderCostModel(PIXEL2)


def obj(object_id, x, y, radius=2.0, triangles=50_000):
    return SceneObject(
        object_id=object_id,
        kind_name="tree",
        center=Vec3(x, y, radius),
        radius=radius,
        triangles=triangles,
        luminance=0.4,
        contrast=0.35,
        texture_seed=object_id * 31 + 3,
    )


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(8)
    objects = [
        obj(i, float(rng.uniform(10, 190)), float(rng.uniform(10, 190)))
        for i in range(60)
    ]
    return Scene(Rect(0, 0, 200, 200), objects, lambda p: 0.0)


class TestMeasureDistThresh:
    def test_positive_and_bounded(self, scene):
        rng = np.random.default_rng(1)
        thresh = measure_dist_thresh(scene, CFG, Vec2(100, 100), 10.0, rng)
        assert 0.05 <= thresh <= 32.0

    def test_larger_cutoff_larger_thresh(self, scene):
        """Fig. 5's consequence: bigger cutoffs tolerate more displacement."""
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        small = measure_dist_thresh(scene, CFG, Vec2(100, 100), 3.0, rng_a)
        large = measure_dist_thresh(scene, CFG, Vec2(100, 100), 40.0, rng_b)
        assert large >= small

    def test_validation(self, scene):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            measure_dist_thresh(scene, CFG, Vec2(0, 0), -1.0, rng)
        with pytest.raises(ValueError):
            measure_dist_thresh(scene, CFG, Vec2(0, 0), 1.0, rng, resolution_m=0)


class TestDistThreshMap:
    def test_lazy_memoization(self, scene):
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=1)
        dist_map = DistThreshMap(scene, CFG, cutoff_map, k_samples=1, seed=1)
        assert dist_map.computed_leaves == 0
        t1 = dist_map.threshold_for(Vec2(100, 100))
        assert dist_map.computed_leaves == 1
        t2 = dist_map.threshold_for(Vec2(100.5, 100.5))
        # Same leaf (uniform-ish world): memoized, identical value.
        if cutoff_map.leaf_for(Vec2(100, 100))[0] == cutoff_map.leaf_for(Vec2(100.5, 100.5))[0]:
            assert t1 == t2
            assert dist_map.computed_leaves == 1

    def test_thresholds_positive(self, scene):
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=2)
        dist_map = DistThreshMap(scene, CFG, cutoff_map, k_samples=1, seed=2)
        for p in (Vec2(50, 50), Vec2(150, 150)):
            assert dist_map.threshold_for(p) > 0

    def test_validation(self, scene):
        cutoff_map = build_cutoff_map(scene, MODEL, RenderBudget(), seed=3)
        with pytest.raises(ValueError):
            DistThreshMap(scene, CFG, cutoff_map, k_samples=0)
