"""End-to-end kernel-mode pinning across the preprocessing pipeline.

The acceptance bar for the kernel layer is that ``vector`` and
``vector+reuse`` are invisible everywhere except wall clock: panorama
bytes out of :class:`PanoramaStore`, calibrated size models, and
dist-thresh values must all be bit-identical to the ``scalar`` oracle.
These tests pin that end to end, plus the config plumbing
(``SessionConfig.kernels`` override, cache-key invariance).
"""

import dataclasses

import pytest

from repro import perf
from repro.codec import FrameCodec
from repro.core.dist_thresh import leaf_threshold
from repro.core.preprocess import PanoramaStore, calibrate_size_model
from repro.core.store import world_cache_key
from repro.render import KERNEL_MODES
from repro.render.rasterizer import RenderConfig
from repro.systems.base import SessionConfig
from repro.world import load_game

SCALE = 0.15
BASE_CONFIG = RenderConfig(width=64, height=32)


def _mode_config(mode):
    return dataclasses.replace(BASE_CONFIG, kernels=mode)


def _world():
    return load_game("racing", scale=SCALE)


def _demand(world, count=8):
    """A deterministic sweep of distinct grid points."""
    points = []
    index = 0
    while len(points) < count:
        index += 1
        snapped = world.grid.snap(world.track.point_at(
            index * world.track.length() / (count * 2)
        ))
        if snapped not in points:
            points.append(snapped)
    return points


def _served_bytes(world, mode, cutoff_map):
    """Encoded panorama bytes served for the demand set under one mode."""
    store = PanoramaStore(
        world,
        _mode_config(mode),
        FrameCodec(),
        cutoff_map=cutoff_map,
        kind="far",
        eye_height=world.spec.player.eye_height,
    )
    return [store.frame_for(gp).encoded.data for gp in _demand(world)]


@pytest.fixture(scope="module")
def world_and_cutoffs():
    """One world + cutoff map shared by the mode-comparison tests."""
    from repro.core import build_cutoff_map, measure_fi_budget
    from repro.render import RenderCostModel

    world = _world()
    cost_model = RenderCostModel(SessionConfig().device)
    budget = measure_fi_budget(cost_model, world.spec.fi_triangles)
    cutoff_map = build_cutoff_map(world.scene, cost_model, budget, seed=0)
    return world, cutoff_map


class TestStoreBitIdentity:
    def test_panorama_bytes_identical_across_modes(self, world_and_cutoffs):
        """The acceptance pin: scalar == vector == vector+reuse bytes."""
        world, cutoff_map = world_and_cutoffs
        served = {
            mode: _served_bytes(world, mode, cutoff_map)
            for mode in KERNEL_MODES
        }
        assert served["vector"] == served["scalar"]
        assert served["vector+reuse"] == served["scalar"]

    def test_reuse_store_exposes_dirty_map(self, world_and_cutoffs):
        world, cutoff_map = world_and_cutoffs
        store = PanoramaStore(
            world,
            _mode_config("vector+reuse"),
            FrameCodec(),
            cutoff_map=cutoff_map,
            kind="far",
            eye_height=world.spec.player.eye_height,
        )
        assert store.reuse_dirty_map is None  # nothing encoded yet
        for grid_point in _demand(world, count=3):
            store.frame_for(grid_point)
        assert store.reuse_dirty_map is not None

    def test_non_reuse_store_has_no_dirty_map(self, world_and_cutoffs):
        world, cutoff_map = world_and_cutoffs
        store = PanoramaStore(
            world,
            _mode_config("vector"),
            FrameCodec(),
            cutoff_map=cutoff_map,
            kind="far",
            eye_height=world.spec.player.eye_height,
        )
        store.frame_for(_demand(world, count=1)[0])
        assert store.reuse_dirty_map is None


class TestDerivedValues:
    def test_size_model_identical_across_modes(self, world_and_cutoffs):
        world, cutoff_map = world_and_cutoffs
        models = [
            calibrate_size_model(
                world, _mode_config(mode), FrameCodec(), cutoff_map,
                kind="far", samples=2, seed=0,
            )
            for mode in KERNEL_MODES
        ]
        assert len({(m.mean_bytes, m.std_bytes) for m in models}) == 1

    def test_leaf_threshold_identical_across_modes(self, world_and_cutoffs):
        world, cutoff_map = world_and_cutoffs
        leaf = next(iter(cutoff_map.tree.leaves()))
        from repro.core.cutoff import leaf_key

        key = leaf_key(leaf.region)
        cutoff = leaf.payload.cutoff_radius
        values = {
            mode: leaf_threshold(
                world.scene, _mode_config(mode), key, cutoff, seed=0,
                k_samples=1,
            )
            for mode in KERNEL_MODES
        }
        assert values["vector"] == values["scalar"]
        assert values["vector+reuse"] == values["scalar"]

    def test_reuse_mode_exercises_ssim_counters(self, world_and_cutoffs):
        """The reuse path actually runs (counters move) during probing."""
        world, cutoff_map = world_and_cutoffs
        leaf = next(iter(cutoff_map.tree.leaves()))
        from repro.core.cutoff import leaf_key

        perf.reset()
        leaf_threshold(
            world.scene, _mode_config("vector+reuse"),
            leaf_key(leaf.region), leaf.payload.cutoff_radius,
            seed=0, k_samples=1,
        )
        assert perf.counter("ssim.rows_total") > 0


class TestConfigPlumbing:
    def test_session_config_overrides_render_config(self):
        config = SessionConfig(kernels="scalar")
        assert config.render_config.kernels == "scalar"

    def test_session_config_default_keeps_render_config(self):
        config = SessionConfig()
        assert config.kernels is None
        assert config.render_config.kernels == "vector"

    def test_session_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SessionConfig(kernels="gpu")

    def test_render_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            RenderConfig(kernels="gpu")

    def test_reuse_enabled_property(self):
        assert _mode_config("vector+reuse").reuse_enabled
        assert not _mode_config("vector").reuse_enabled
        assert not _mode_config("scalar").reuse_enabled

    def test_cache_key_ignores_kernel_mode(self):
        """Bit-identical modes share disk-cache entries."""
        keys = {
            str(world_cache_key(
                "racing", SCALE, 0, _mode_config(mode), 23.0, 1.7
            ))
            for mode in KERNEL_MODES
        }
        assert len(keys) == 1

    def test_cache_key_still_sees_other_render_knobs(self):
        changed = dataclasses.replace(BASE_CONFIG, width=128)
        assert world_cache_key(
            "racing", SCALE, 0, BASE_CONFIG, 23.0, 1.7
        ) != world_cache_key("racing", SCALE, 0, changed, 23.0, 1.7)
