"""Tests for ray queries (foothold finding, sphere intersection)."""

import math

import pytest

from repro.geometry import (
    Ray,
    Vec2,
    Vec3,
    camera_height,
    find_foothold,
    intersect_sphere,
    march_heightfield,
)


def hilly(p: Vec2) -> float:
    return 2.0 * math.sin(p.x * 0.5)


class TestFoothold:
    def test_flat_terrain(self):
        foot = find_foothold(lambda p: 0.0, Vec2(3, 4))
        assert foot == Vec3(3, 4, 0)

    def test_hilly_terrain(self):
        foot = find_foothold(hilly, Vec2(math.pi, 0))
        assert foot.z == pytest.approx(2.0 * math.sin(math.pi * 0.5))

    def test_camera_height_adds_eye(self):
        h = camera_height(lambda p: 10.0, Vec2(0, 0), eye_height=1.7)
        assert h == pytest.approx(11.7)

    def test_negative_eye_height_raises(self):
        with pytest.raises(ValueError):
            camera_height(lambda p: 0.0, Vec2(0, 0), eye_height=-1)


class TestSphereIntersection:
    def test_direct_hit(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(1, 0, 0))
        t = intersect_sphere(ray, Vec3(10, 0, 0), 1.0)
        assert t == pytest.approx(9.0)

    def test_miss(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(1, 0, 0))
        assert intersect_sphere(ray, Vec3(10, 5, 0), 1.0) is None

    def test_behind_origin(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(1, 0, 0))
        assert intersect_sphere(ray, Vec3(-10, 0, 0), 1.0) is None

    def test_origin_inside_sphere(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(1, 0, 0))
        t = intersect_sphere(ray, Vec3(0, 0, 0), 2.0)
        assert t == pytest.approx(2.0)

    def test_zero_direction(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(0, 0, 0))
        assert intersect_sphere(ray, Vec3(1, 0, 0), 0.5) is None

    def test_negative_radius_raises(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(1, 0, 0))
        with pytest.raises(ValueError):
            intersect_sphere(ray, Vec3(1, 0, 0), -1.0)

    def test_ray_at(self):
        ray = Ray(Vec3(1, 2, 3), Vec3(1, 0, 0))
        assert ray.at(4.0) == Vec3(5, 2, 3)


class TestMarchHeightfield:
    def test_downward_ray_hits_flat_ground(self):
        ray = Ray(Vec3(0, 0, 10), Vec3(1, 0, -1))
        hit = march_heightfield(lambda p: 0.0, ray, max_distance=30.0)
        assert hit is not None
        assert hit.z == pytest.approx(0.0, abs=1e-3)
        assert hit.x == pytest.approx(10.0, abs=1e-3)

    def test_horizontal_ray_over_flat_ground_misses(self):
        ray = Ray(Vec3(0, 0, 5), Vec3(1, 0, 0))
        assert march_heightfield(lambda p: 0.0, ray, max_distance=100.0) is None

    def test_zero_direction_returns_none(self):
        ray = Ray(Vec3(0, 0, 5), Vec3(0, 0, 0))
        assert march_heightfield(lambda p: 0.0, ray, max_distance=10.0) is None

    def test_bad_parameters_raise(self):
        ray = Ray(Vec3(0, 0, 5), Vec3(1, 0, -1))
        with pytest.raises(ValueError):
            march_heightfield(lambda p: 0.0, ray, max_distance=0)
        with pytest.raises(ValueError):
            march_heightfield(lambda p: 0.0, ray, max_distance=5, step=0)
