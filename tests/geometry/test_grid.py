"""Tests for WorldGrid and Rect."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect, Vec2, WorldGrid


@pytest.fixture
def small_grid():
    return WorldGrid(Rect(0, 0, 10, 10), pitch=1.0)


class TestRect:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.center == Vec2(2, 1)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_contains_half_open(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(Vec2(0, 0))
        assert not r.contains(Vec2(1, 1))
        assert r.contains_closed(Vec2(1, 1))

    def test_clamp(self):
        r = Rect(0, 0, 1, 1)
        assert r.clamp(Vec2(5, -3)) == Vec2(1, 0)

    def test_quadrants_tile_parent(self):
        r = Rect(0, 0, 4, 4)
        quads = r.quadrants()
        assert len(quads) == 4
        assert sum(q.area for q in quads) == r.area
        # Every quadrant lies inside the parent.
        for q in quads:
            assert q.x_min >= r.x_min and q.x_max <= r.x_max
            assert q.y_min >= r.y_min and q.y_max <= r.y_max

    def test_sample_within_bounds(self):
        r = Rect(-5, 2, 5, 8)
        rng = np.random.default_rng(0)
        for p in r.sample(rng, 50):
            assert r.contains_closed(p)


class TestWorldGrid:
    def test_grid_shape(self, small_grid):
        assert small_grid.nx == 11
        assert small_grid.ny == 11
        assert small_grid.total_points == 121

    def test_bad_pitch(self):
        with pytest.raises(ValueError):
            WorldGrid(Rect(0, 0, 1, 1), pitch=0)

    def test_snap_roundtrip(self, small_grid):
        gp = small_grid.snap(Vec2(3.4, 6.6))
        assert gp == (3, 7)
        assert small_grid.to_world(gp) == Vec2(3, 7)

    def test_snap_clamps_outside(self, small_grid):
        assert small_grid.snap(Vec2(-5, 50)) == (0, 10)

    def test_to_world_out_of_range(self, small_grid):
        with pytest.raises(IndexError):
            small_grid.to_world((99, 0))

    def test_neighbors_interior_corner(self, small_grid):
        assert len(small_grid.neighbors((5, 5))) == 8
        assert len(small_grid.neighbors((0, 0))) == 3
        assert len(small_grid.neighbors((5, 5), hops=2)) == 24

    def test_reachability_mask(self):
        # Only the left half of the world is reachable.
        grid = WorldGrid(Rect(0, 0, 10, 10), 1.0, reachable=lambda p: p.x < 5)
        assert grid.is_reachable((0, 0))
        assert not grid.is_reachable((9, 0))
        assert not grid.is_reachable((50, 50))
        nbrs = grid.neighbors((4, 5))
        assert all(i < 5 for i, _ in nbrs)

    def test_count_reachable_full(self, small_grid):
        rng = np.random.default_rng(1)
        assert small_grid.count_reachable(rng) == 121

    def test_count_reachable_half(self):
        grid = WorldGrid(Rect(0, 0, 100, 100), 1.0, reachable=lambda p: p.x < 50)
        rng = np.random.default_rng(2)
        est = grid.count_reachable(rng, sample_size=8000)
        assert 0.4 * grid.total_points < est < 0.6 * grid.total_points

    def test_points_within_radius(self, small_grid):
        pts = small_grid.points_within(Vec2(5, 5), 1.0)
        assert set(pts) == {(4, 5), (5, 4), (5, 5), (5, 6), (6, 5)}

    def test_points_within_negative_radius(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.points_within(Vec2(5, 5), -1)

    def test_grid_distance(self, small_grid):
        assert small_grid.grid_distance((0, 0), (3, 4)) == 5

    @given(
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=10),
    )
    def test_snap_is_nearest(self, x, y):
        grid = WorldGrid(Rect(0, 0, 10, 10), pitch=1.0)
        p = Vec2(x, y)
        gp = grid.snap(p)
        # No other grid point is strictly closer than the snapped one.
        best = grid.to_world(gp).distance_to(p)
        for nbr in grid.neighbors(gp):
            assert grid.to_world(nbr).distance_to(p) >= best - 1e-9

    @given(st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10))
    def test_world_snap_identity(self, i, j):
        grid = WorldGrid(Rect(0, 0, 10, 10), pitch=1.0)
        assert grid.snap(grid.to_world((i, j))) == (i, j)
