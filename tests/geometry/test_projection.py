"""Tests for projection math (equirectangular mapping, angular sizes)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    FovSpec,
    Vec3,
    angles_to_direction,
    angles_to_pixel,
    angular_displacement,
    angular_radius,
    crop_fov,
    direction_to_angles,
    pixel_to_angles,
)


class TestAngles:
    def test_cardinal_directions(self):
        az, el = direction_to_angles(Vec3(1, 0, 0))
        assert az == pytest.approx(0.0)
        assert el == pytest.approx(0.0)
        az, el = direction_to_angles(Vec3(0, 1, 0))
        assert az == pytest.approx(math.pi / 2)
        az, el = direction_to_angles(Vec3(0, 0, 1))
        assert el == pytest.approx(math.pi / 2)

    def test_negative_azimuth_wraps(self):
        az, _ = direction_to_angles(Vec3(0, -1, 0))
        assert az == pytest.approx(3 * math.pi / 2)

    @given(
        st.floats(min_value=0, max_value=2 * math.pi - 1e-6),
        st.floats(min_value=-math.pi / 2 + 0.01, max_value=math.pi / 2 - 0.01),
    )
    def test_angle_direction_roundtrip(self, az, el):
        direction = angles_to_direction(az, el)
        az2, el2 = direction_to_angles(direction)
        assert az2 == pytest.approx(az, abs=1e-9)
        assert el2 == pytest.approx(el, abs=1e-9)


class TestPixelMapping:
    def test_forward_center_row(self):
        u, v = angles_to_pixel(0.0, 0.0, 360, 180)
        assert u == pytest.approx(0.0)
        assert v == pytest.approx(90.0)

    def test_zenith_top_row(self):
        _, v = angles_to_pixel(0.0, math.pi / 2, 360, 180)
        assert v == pytest.approx(0.0)

    @given(
        st.floats(min_value=0, max_value=359.0),
        st.floats(min_value=1.0, max_value=179.0),
    )
    def test_pixel_roundtrip(self, u, v):
        az, el = pixel_to_angles(u, v, 360, 180)
        u2, v2 = angles_to_pixel(az, el, 360, 180)
        assert u2 == pytest.approx(u, abs=1e-6)
        assert v2 == pytest.approx(v, abs=1e-6)


class TestAngularSize:
    def test_shrinks_with_distance(self):
        near = angular_radius(1.0, 2.0)
        far = angular_radius(1.0, 20.0)
        assert near > far

    def test_inside_sphere_fills_view(self):
        assert angular_radius(5.0, 1.0) == math.pi

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            angular_radius(-1.0, 5.0)

    def test_small_angle_approximation(self):
        # For d >> r, angular radius ~ r/d.
        assert angular_radius(1.0, 100.0) == pytest.approx(0.01, rel=1e-3)

    def test_displacement_inverse_distance(self):
        # The near-object effect: same displacement, nearer object moves more.
        near_shift = angular_displacement(0.5, 2.0)
        far_shift = angular_displacement(0.5, 50.0)
        assert near_shift > 10 * far_shift

    @given(
        st.floats(min_value=0.01, max_value=10),
        st.floats(min_value=0.01, max_value=1000),
    )
    def test_angular_radius_monotone_in_distance(self, r, d):
        assert angular_radius(r, d) >= angular_radius(r, d * 2)


class TestCropFov:
    def _gradient_pano(self):
        # Azimuth gradient: pixel value = column index.
        pano = np.tile(np.arange(360, dtype=np.float64), (180, 1))
        return pano

    def test_output_shape(self):
        pano = self._gradient_pano()
        out = crop_fov(pano, yaw=0.0, pitch=0.0, fov=FovSpec(), out_width=64, out_height=48)
        assert out.shape == (48, 64)

    def test_yaw_shifts_view(self):
        pano = self._gradient_pano()
        fov = FovSpec()
        front = crop_fov(pano, 0.0, 0.0, fov, 32, 32)
        side = crop_fov(pano, math.pi / 2, 0.0, fov, 32, 32)
        # Looking 90 degrees to the left reads columns ~90 later.
        center_front = front[16, 16]
        center_side = side[16, 16]
        assert (center_side - center_front) % 360 == pytest.approx(90, abs=2)

    def test_multichannel_passthrough(self):
        pano = np.zeros((90, 180, 3))
        pano[..., 1] = 7.0
        out = crop_fov(pano, 0.0, 0.0, FovSpec(), 16, 16)
        assert out.shape == (16, 16, 3)
        assert np.all(out[..., 1] == 7.0)

    def test_invalid_panorama_raises(self):
        with pytest.raises(ValueError):
            crop_fov(np.zeros(10), 0.0, 0.0, FovSpec(), 8, 8)

    def test_invalid_fov_raises(self):
        with pytest.raises(ValueError):
            FovSpec(h_fov=0.0)
