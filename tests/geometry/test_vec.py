"""Unit and property tests for repro.geometry.vec."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Vec2, Vec3

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestVec2:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_ops(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)
        assert Vec2(2, 4) / 2 == Vec2(1, 2)
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_dot_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0
        assert Vec2(2, 3).dot(Vec2(4, 5)) == 23
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1

    def test_norm_and_distance(self):
        assert Vec2(3, 4).norm() == 5
        assert Vec2(3, 4).norm_sq() == 25
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == 5

    def test_normalized(self):
        n = Vec2(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)
        with pytest.raises(ZeroDivisionError):
            Vec2.zero().normalized()

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, 10)

    def test_angle_and_from_angle(self):
        assert math.isclose(Vec2(0, 1).angle(), math.pi / 2)
        v = Vec2.from_angle(math.pi / 4, length=math.sqrt(2))
        assert math.isclose(v.x, 1.0)
        assert math.isclose(v.y, 1.0)

    def test_rotated_quarter_turn(self):
        r = Vec2(1, 0).rotated(math.pi / 2)
        assert math.isclose(r.x, 0.0, abs_tol=1e-12)
        assert math.isclose(r.y, 1.0)

    def test_iteration_and_tuple(self):
        assert list(Vec2(1, 2)) == [1, 2]
        assert Vec2(1, 2).as_tuple() == (1, 2)

    def test_frozen(self):
        with pytest.raises(Exception):
            Vec2(1, 2).x = 5  # type: ignore[misc]

    @given(finite, finite, finite, finite)
    def test_add_commutes(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a + b == b + a

    @given(finite, finite)
    def test_norm_non_negative(self, x, y):
        assert Vec2(x, y).norm() >= 0

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(finite, finite, st.floats(min_value=0, max_value=1))
    def test_lerp_stays_on_segment(self, x, y, t):
        a = Vec2.zero()
        b = Vec2(x, y)
        p = a.lerp(b, t)
        assert p.norm() <= b.norm() + 1e-6


class TestVec3:
    def test_arithmetic(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)

    def test_cross_right_handed(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_dot_orthogonal(self):
        assert Vec3(1, 0, 0).dot(Vec3(0, 1, 0)) == 0

    def test_norm(self):
        assert Vec3(2, 3, 6).norm() == 7

    def test_ground_projection(self):
        assert Vec3(1, 2, 3).ground() == Vec2(1, 2)
        assert Vec3.from_ground(Vec2(1, 2), z=5) == Vec3(1, 2, 5)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec3.zero().normalized()

    def test_lerp(self):
        assert Vec3.zero().lerp(Vec3(2, 4, 6), 0.5) == Vec3(1, 2, 3)

    @given(finite, finite, finite)
    def test_cross_perpendicular(self, x, y, z):
        v = Vec3(x, y, z)
        w = Vec3(1.0, -2.0, 0.5)
        c = v.cross(w)
        # Cross product is orthogonal to both operands.
        assert abs(c.dot(v)) <= 1e-3 * max(1.0, v.norm_sq() * w.norm())
        assert abs(c.dot(w)) <= 1e-3 * max(1.0, v.norm_sq() * w.norm())
