"""Tests for the region quadtree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import QuadTree, Rect, Vec2


def depth_policy(target_depth):
    """Split until ``target_depth``; leaf payload is the region area."""

    def policy(region, depth):
        return depth >= target_depth, region.area

    return policy


class TestBuild:
    def test_single_leaf(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(0))
        stats = tree.stats()
        assert stats.leaf_count == 1
        assert stats.max_depth == 0
        assert tree.root.is_leaf

    def test_uniform_depth_two(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(2))
        stats = tree.stats()
        assert stats.leaf_count == 16
        assert stats.max_depth == 2
        assert stats.avg_depth == 2.0
        assert stats.node_count == 1 + 4 + 16

    def test_max_depth_bounds_runaway_policy(self):
        # A policy that never stops is cut off at max_depth.
        tree = QuadTree.build(
            Rect(0, 0, 1, 1), lambda region, depth: (False, None), max_depth=3
        )
        assert tree.stats().max_depth == 3
        assert tree.stats().leaf_count == 64

    def test_negative_max_depth_raises(self):
        with pytest.raises(ValueError):
            QuadTree.build(Rect(0, 0, 1, 1), depth_policy(0), max_depth=-1)

    def test_nonuniform_split(self):
        # Only the SW corner keeps splitting: payload marks region.
        def policy(region, depth):
            wants_split = region.contains(Vec2(0.01, 0.01)) and depth < 3
            return not wants_split, depth

        tree = QuadTree.build(Rect(0, 0, 8, 8), policy)
        stats = tree.stats()
        assert stats.max_depth == 3
        # Each split adds 3 extra leaves: 1 -> 4 -> 7 -> 10.
        assert stats.leaf_count == 10


class TestLookup:
    def test_leaf_for_center(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(2))
        leaf = tree.leaf_for(Vec2(1, 1))
        assert leaf.region.contains(Vec2(1, 1))
        assert leaf.depth == 2

    def test_leaf_for_outside_raises(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(1))
        with pytest.raises(ValueError):
            tree.leaf_for(Vec2(9, 9))

    def test_max_edge_resolves(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(2))
        leaf = tree.leaf_for(Vec2(8, 8))
        assert leaf.region.contains_closed(Vec2(8, 8))

    def test_boundary_point_deterministic(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(2))
        a = tree.leaf_for(Vec2(4, 4))
        b = tree.leaf_for(Vec2(4, 4))
        assert a is b

    @given(
        st.floats(min_value=0, max_value=8),
        st.floats(min_value=0, max_value=8),
    )
    def test_every_point_has_exactly_one_leaf(self, x, y):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(3))
        p = Vec2(x, y)
        leaf = tree.leaf_for(p)
        assert leaf.region.contains_closed(p)
        # Interior points are claimed by exactly one leaf under half-open
        # containment.
        owners = [l for l in tree.leaves() if l.region.contains(p)]
        assert len(owners) <= 1


class TestTraversal:
    def test_leaves_tile_world(self):
        world = Rect(0, 0, 8, 8)
        tree = QuadTree.build(world, depth_policy(2))
        assert sum(l.region.area for l in tree.leaves()) == pytest.approx(world.area)

    def test_leaf_payloads(self):
        tree = QuadTree.build(Rect(0, 0, 8, 8), depth_policy(1))
        payloads = tree.leaf_payloads()
        assert payloads == [16.0] * 4
