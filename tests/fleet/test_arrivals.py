"""Tests for seeded arrival workloads and the trace-file format."""

import pytest

from repro.fleet import (
    WORKLOADS,
    ArrivalTrace,
    PlayerArrival,
    diurnal_arrivals,
    flash_crowd_arrivals,
    generate_arrivals,
    poisson_arrivals,
)


class TestPlayerArrival:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            PlayerArrival(t_ms=-1.0, game="racing")

    def test_rejects_nan_time(self):
        with pytest.raises(ValueError):
            PlayerArrival(t_ms=float("nan"), game="racing")

    def test_rejects_empty_game(self):
        with pytest.raises(ValueError):
            PlayerArrival(t_ms=0.0, game="")

    def test_rejects_whitespace_game(self):
        with pytest.raises(ValueError):
            PlayerArrival(t_ms=0.0, game="two words")


class TestArrivalTrace:
    def test_rejects_out_of_order(self):
        with pytest.raises(ValueError, match="out of order"):
            ArrivalTrace([
                PlayerArrival(100.0, "racing"),
                PlayerArrival(50.0, "racing"),
            ])

    def test_horizon_and_games(self):
        trace = ArrivalTrace([
            PlayerArrival(10.0, "viking"),
            PlayerArrival(20.0, "racing"),
            PlayerArrival(30.0, "viking"),
        ])
        assert trace.horizon_ms == 30.0
        assert trace.games() == ("racing", "viking")
        assert len(trace) == 3

    def test_empty_trace(self):
        trace = ArrivalTrace([])
        assert trace.horizon_ms == 0.0
        assert trace.games() == ()
        assert trace.to_text() == ""


class TestGenerators:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_same_seed_bit_identical(self, workload):
        a = generate_arrivals(workload, 2.0, 10.0, seed=11)
        b = generate_arrivals(workload, 2.0, 10.0, seed=11)
        assert a == b

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_different_seeds_differ(self, workload):
        a = generate_arrivals(workload, 2.0, 10.0, seed=11)
        b = generate_arrivals(workload, 2.0, 10.0, seed=12)
        assert a != b

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_times_within_horizon(self, workload):
        trace = generate_arrivals(workload, 3.0, 8.0, seed=5)
        assert all(0.0 <= a.t_ms <= 8000.0 for a in trace)

    def test_poisson_rate_scales_count(self):
        slow = poisson_arrivals(0.5, 60.0, seed=3)
        fast = poisson_arrivals(5.0, 60.0, seed=3)
        assert len(fast) > len(slow)

    def test_diurnal_trough_thinner_than_peak(self):
        trace = diurnal_arrivals(8.0, 60.0, seed=3, floor=0.1)
        # One wave over the horizon: the peak sits mid-trace, the
        # troughs at the edges.  Compare arrival counts in the middle
        # third against the outer thirds.
        third = 20_000.0
        edges = sum(1 for a in trace
                    if a.t_ms < third or a.t_ms > 2 * third)
        middle = sum(1 for a in trace if third <= a.t_ms <= 2 * third)
        assert middle > edges

    def test_flash_surge_lands_in_window(self):
        trace = flash_crowd_arrivals(
            0.2, 20.0, seed=3, surge_players=40,
            surge_at_frac=0.5, surge_width_s=1.0,
        )
        in_window = sum(1 for a in trace if 10_000.0 <= a.t_ms <= 11_000.0)
        assert in_window >= 40

    def test_multi_game_assignment(self):
        trace = poisson_arrivals(5.0, 20.0, seed=4,
                                 games=("racing", "viking"))
        assert set(trace.games()) == {"racing", "viking"}

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            generate_arrivals("bursty", 1.0, 10.0, seed=1)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, seed=1)


class TestTraceFormat:
    def test_round_trip(self):
        original = poisson_arrivals(2.0, 10.0, seed=9)
        assert ArrivalTrace.parse(original.to_text()) == original

    def test_comments_and_blanks_skipped(self):
        trace = ArrivalTrace.parse(
            "# header\n\n100 racing  # inline comment\n\n200 viking\n"
        )
        assert len(trace) == 2
        assert trace.arrivals[1].game == "viking"

    def test_wrong_field_count_is_line_numbered(self):
        with pytest.raises(ValueError, match=r"trace\.txt:2: expected"):
            ArrivalTrace.parse("100 racing\n200 racing extra\n",
                               source="trace.txt")

    def test_non_numeric_time_is_line_numbered(self):
        with pytest.raises(ValueError,
                           match=r"trace\.txt:3: arrival time 'soon'"):
            ArrivalTrace.parse("100 racing\n200 racing\nsoon racing\n",
                               source="trace.txt")

    def test_out_of_order_is_line_numbered(self):
        with pytest.raises(ValueError, match=r"trace\.txt:2: .*before"):
            ArrivalTrace.parse("500 racing\n100 racing\n",
                               source="trace.txt")

    def test_bad_arrival_value_is_line_numbered(self):
        with pytest.raises(ValueError, match=r"trace\.txt:1:"):
            ArrivalTrace.parse("-5 racing\n", source="trace.txt")

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 racing\n1000 racing\n")
        trace = ArrivalTrace.from_file(path)
        assert len(trace) == 2

    def test_from_file_error_names_path(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("nope\n")
        with pytest.raises(ValueError, match=r"bad\.txt:1"):
            ArrivalTrace.from_file(path)
