"""Tests for fleet admission control and the shared panorama store."""

import pytest

from repro.fleet import (
    FleetAdmissionController,
    FleetBudget,
    SessionEstimate,
    SharedPanoramaStore,
)

WORLD_KEY = {"game": "racing", "scale": 1.0, "seed": 3}


def estimate(players=4, renders_per_s=20.0, be_kbps=100.0, fi_kbps=50.0):
    return SessionEstimate(
        players=players,
        renders_per_s=renders_per_s,
        be_kbps_per_player=be_kbps,
        fi_kbps=fi_kbps,
    )


class TestFleetBudget:
    def test_usable_renders_derated(self):
        budget = FleetBudget(gpu_slots=4, render_ms=25.0,
                             render_headroom=0.8)
        assert budget.usable_renders_per_s == pytest.approx(128.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetBudget(gpu_slots=0)
        with pytest.raises(ValueError):
            FleetBudget(render_ms=0.0)
        with pytest.raises(ValueError):
            FleetBudget(render_headroom=1.5)
        with pytest.raises(ValueError):
            FleetBudget(max_sessions=0)

    def test_bandwidth_budget(self):
        budget = FleetBudget(bandwidth_mbps=100.0, utilization_bound=0.5)
        assert budget.bandwidth.capacity_mbps == 100.0
        assert budget.bandwidth.utilization_bound == 0.5


class TestAdmissionReasons:
    def test_admits_within_budget(self):
        controller = FleetAdmissionController(FleetBudget())
        decision = controller.evaluate([], estimate())
        assert decision.admitted and decision.reason == "admitted"
        assert decision.sessions_after == 1

    def test_fleet_full(self):
        controller = FleetAdmissionController(
            FleetBudget(max_sessions=2)
        )
        active = [estimate(), estimate()]
        decision = controller.evaluate(active, estimate())
        assert not decision.admitted and decision.reason == "fleet-full"

    def test_constraint_1_render_throughput(self):
        # Usable: 1 slot * (1000/50) * 0.8 = 16 renders/s.
        budget = FleetBudget(gpu_slots=1, render_ms=50.0)
        controller = FleetAdmissionController(budget)
        decision = controller.evaluate([], estimate(renders_per_s=20.0))
        assert not decision.admitted and decision.reason == "constraint-1"
        assert decision.render_utilization > 1.0

    def test_constraint_2_backhaul(self):
        # 10 Mbps * 0.8 usable; 4 players * 100 kbps BE + 50 kbps FI
        # fits, but 100 players do not.
        budget = FleetBudget(bandwidth_mbps=10.0)
        controller = FleetAdmissionController(budget)
        ok = controller.evaluate([], estimate(players=4))
        assert ok.admitted
        decision = controller.evaluate(
            [], estimate(players=100, renders_per_s=0.0)
        )
        assert not decision.admitted and decision.reason == "constraint-2"

    def test_check_order_fleet_full_first(self):
        budget = FleetBudget(gpu_slots=1, render_ms=50.0, max_sessions=1)
        controller = FleetAdmissionController(budget)
        decision = controller.evaluate(
            [estimate()], estimate(renders_per_s=1e6)
        )
        assert decision.reason == "fleet-full"


class TestDedupDiscount:
    def test_miss_ratio_converts_to_capacity(self):
        # 16 renders/s usable; raw demand 10 + 10 = 20 exceeds it, but
        # at a 0.5 observed miss ratio only 10 reach the GPUs.
        budget = FleetBudget(gpu_slots=1, render_ms=50.0)
        full = FleetAdmissionController(budget, miss_ratio=lambda: 1.0)
        deduped = FleetAdmissionController(budget, miss_ratio=lambda: 0.5)
        active = [estimate(renders_per_s=10.0)]
        candidate = estimate(renders_per_s=10.0)
        assert full.evaluate(active, candidate).reason == "constraint-1"
        decision = deduped.evaluate(active, candidate)
        assert decision.admitted
        assert decision.miss_ratio == 0.5
        assert decision.predicted_renders_per_s == pytest.approx(10.0)

    def test_miss_ratio_clamped(self):
        controller = FleetAdmissionController(
            FleetBudget(), miss_ratio=lambda: 7.5
        )
        assert controller.evaluate([], estimate()).miss_ratio == 1.0

    def test_no_discount_on_bandwidth(self):
        # Dedup helps the farm, not the backhaul: a bandwidth-bound
        # candidate stays rejected at any miss ratio.
        budget = FleetBudget(bandwidth_mbps=10.0)
        controller = FleetAdmissionController(budget, miss_ratio=lambda: 0.05)
        decision = controller.evaluate(
            [], estimate(players=100, renders_per_s=0.0)
        )
        assert decision.reason == "constraint-2"


class TestSharedStore:
    def test_cross_session_hits(self):
        store = SharedPanoramaStore(shared=True)
        store.register_world("racing", WORLD_KEY)
        hit, address = store.lookup(0, "racing", (3, 4))
        assert not hit
        store.commit(address)
        hit, again = store.lookup(1, "racing", (3, 4))
        assert hit and again == address
        assert store.hits == 1 and store.misses == 1
        assert store.hit_ratio == 0.5

    def test_isolated_namespacing(self):
        store = SharedPanoramaStore(shared=False)
        store.register_world("racing", WORLD_KEY)
        _, a0 = store.lookup(0, "racing", (3, 4))
        store.commit(a0)
        hit, a1 = store.lookup(1, "racing", (3, 4))
        assert not hit and a1 != a0
        # The same session still hits its own renders.
        hit, _ = store.lookup(0, "racing", (3, 4))
        assert hit

    def test_worlds_do_not_alias(self):
        store = SharedPanoramaStore()
        store.register_world("racing", WORLD_KEY)
        store.register_world("viking", {**WORLD_KEY, "game": "viking"})
        a = store.address("racing", (0, 0))
        b = store.address("viking", (0, 0))
        assert a != b

    def test_spacing_does_not_alias(self):
        coarse = SharedPanoramaStore(spacing_m=2.0)
        fine = SharedPanoramaStore(spacing_m=1.0)
        for store in (coarse, fine):
            store.register_world("racing", WORLD_KEY)
        assert (coarse.address("racing", (0, 0))
                != fine.address("racing", (0, 0)))

    def test_unregistered_world_raises(self):
        store = SharedPanoramaStore()
        with pytest.raises(KeyError, match="register_world"):
            store.address("racing", (0, 0))

    def test_bad_spacing(self):
        with pytest.raises(ValueError):
            SharedPanoramaStore(spacing_m=0.0)

    def test_per_session_counters(self):
        store = SharedPanoramaStore()
        store.register_world("racing", WORLD_KEY)
        _, address = store.lookup(0, "racing", (1, 1))
        store.commit(address)
        store.lookup(1, "racing", (1, 1))
        store.lookup(1, "racing", (2, 2))
        assert store.session_hits == {1: 1}
        assert store.session_misses == {0: 1, 1: 1}

    def test_snapshot(self):
        store = SharedPanoramaStore()
        store.register_world("racing", WORLD_KEY)
        _, address = store.lookup(0, "racing", (1, 1))
        store.commit(address)
        snap = store.snapshot()
        assert snap == {
            "shared": True, "lookups": 1, "hits": 0, "misses": 1,
            "hit_ratio": 0.0, "rendered": 1,
        }


class TestExpectedMissRatio:
    def test_no_evidence_assumes_all_miss(self):
        store = SharedPanoramaStore()
        assert store.expected_miss_ratio() == 1.0

    def test_isolated_always_full_miss(self):
        store = SharedPanoramaStore(shared=False)
        store.register_world("racing", WORLD_KEY)
        _, address = store.lookup(0, "racing", (1, 1))
        store.commit(address)
        store.lookup(0, "racing", (1, 1))
        assert store.expected_miss_ratio() == 1.0

    def test_tracks_observed_miss_ratio(self):
        store = SharedPanoramaStore()
        store.register_world("racing", WORLD_KEY)
        _, address = store.lookup(0, "racing", (1, 1))
        store.commit(address)
        for _ in range(3):
            store.lookup(1, "racing", (1, 1))
        assert store.expected_miss_ratio() == pytest.approx(0.25)

    def test_floor_keeps_renders_nonfree(self):
        store = SharedPanoramaStore()
        store.register_world("racing", WORLD_KEY)
        _, address = store.lookup(0, "racing", (1, 1))
        store.commit(address)
        for _ in range(100):
            store.lookup(1, "racing", (1, 1))
        assert store.expected_miss_ratio() == 0.05
