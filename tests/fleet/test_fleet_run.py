"""End-to-end fleet runs: determinism, bit-identity, CLI contract."""

import pytest

from repro.cli import _first_divergence, main
from repro.fleet import (
    ArrivalTrace,
    FleetBudget,
    FleetConfig,
    LobbyConfig,
    PlayerArrival,
    run_fleet,
)
from repro.systems import SessionConfig, run_system


def small_config(**overrides):
    defaults = dict(
        workload="poisson", rate_per_s=1.0, duration_s=8.0, seed=7,
        games=("racing",), session_duration_s=4.0,
        lobby=LobbyConfig(session_size=2, min_session_size=2,
                          max_wait_ms=1000.0),
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(workload="bursty")
        with pytest.raises(ValueError):
            FleetConfig(games=())
        with pytest.raises(ValueError):
            FleetConfig(fidelity="half")
        with pytest.raises(ValueError):
            FleetConfig(system="warpdrive")
        with pytest.raises(ValueError):
            FleetConfig(spacing_m=0.0)

    def test_resolve_prefers_explicit_trace(self):
        trace = ArrivalTrace([PlayerArrival(0.0, "racing")])
        config = small_config(arrivals=trace)
        assert config.resolve_arrivals() is trace

    def test_unknown_game_in_trace_rejected(self):
        trace = ArrivalTrace([PlayerArrival(0.0, "tetris")])
        with pytest.raises(ValueError, match="unknown game"):
            run_fleet(small_config(arrivals=trace))


class TestDeterminism:
    def test_same_seed_bit_identical_summary(self):
        config = small_config()
        a = run_fleet(config)
        b = run_fleet(config)
        assert a.summary == b.summary
        assert a.sessions == b.sessions

    def test_different_seed_differs(self):
        a = run_fleet(small_config(seed=7))
        b = run_fleet(small_config(seed=8))
        assert a.summary != b.summary

    def test_summary_to_dict_round_trips_counts(self):
        summary = run_fleet(small_config()).summary
        d = summary.to_dict()
        assert d["sessions"]["completed"] == summary.sessions_completed
        assert d["store"]["lookups"] == summary.store_lookups
        assert d["farm"]["renders"] == summary.farm.renders


class TestSingleSessionIdentity:
    def test_one_session_fleet_matches_repro_run(self):
        # Four players at t=0 form exactly one racing session; under
        # fidelity="full" session 0 replays with the fleet seed itself,
        # so the replay must be bit-identical to the equivalent
        # standalone `repro run coterie racing 4`.
        trace = ArrivalTrace(
            [PlayerArrival(0.0, "racing") for _ in range(4)]
        )
        config = small_config(
            arrivals=trace, fidelity="full", seed=7,
            session_duration_s=4.0,
            lobby=LobbyConfig(session_size=4, min_session_size=4),
        )
        fleet = run_fleet(config)
        assert fleet.summary.sessions_completed == 1
        assert len(fleet.session_runs) == 1
        standalone = run_system(
            "coterie", "racing", 4,
            SessionConfig(duration_s=4.0, seed=7),
        )
        assert _first_divergence(fleet.session_runs[0], standalone) is None


class TestSharedVsIsolated:
    def test_dedup_reduces_renders_at_equal_demand(self):
        shared = run_fleet(small_config(shared=True))
        isolated = run_fleet(small_config(shared=False))
        # Identical arrivals and demand either way.
        assert shared.summary.store_lookups == isolated.summary.store_lookups
        assert isolated.summary.dedup_ratio == 0.0
        assert shared.summary.dedup_ratio > 0.2
        assert shared.summary.farm.renders < isolated.summary.farm.renders


class TestFleetCli:
    def test_unknown_game_exits_2(self, capsys):
        assert main(["fleet", "--games", "tetris"]) == 2
        assert "unknown game" in capsys.readouterr().err

    def test_malformed_trace_exits_2_with_line(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("100 racing\nnot-a-number racing\n")
        assert main(["fleet", "--arrivals", str(path)]) == 2
        err = capsys.readouterr().err
        assert f"{path}:2" in err

    def test_empty_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# no arrivals\n")
        assert main(["fleet", "--arrivals", str(path)]) == 2
        assert "empty" in capsys.readouterr().err

    def test_trace_with_unknown_game_exits_2(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        path.write_text("0 tetris\n")
        assert main(["fleet", "--arrivals", str(path)]) == 2
        assert "unknown game" in capsys.readouterr().err

    def test_bad_config_exits_2(self, capsys):
        code = main(["fleet", "--session-size", "2",
                     "--min-session-size", "3"])
        assert code == 2
        assert "invalid fleet configuration" in capsys.readouterr().err

    def test_smoke_run_prints_summary(self, capsys):
        code = main(["fleet", "poisson", "--rate", "1", "--duration", "6",
                     "--session-duration", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions/sec" in out
        assert "dedup" in out
        assert "join latency" in out

    def test_trace_replay_runs(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        path.write_text("0 racing\n0 racing\n")
        code = main(["fleet", "--arrivals", str(path),
                     "--session-duration", "3",
                     "--session-size", "2", "--min-session-size", "2"])
        assert code == 0
        assert "trace" in capsys.readouterr().out

    def test_verify_determinism_exits_0(self, capsys):
        code = main(["fleet", "poisson", "--rate", "1", "--duration", "6",
                     "--session-duration", "3", "--verify-determinism"])
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out
