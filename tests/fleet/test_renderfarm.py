"""Tests for the shared render farm's scheduling discipline."""

import pytest

from repro.fleet import RenderFarm
from repro.sim import Simulator


def make_farm(sim, **kwargs):
    defaults = dict(gpu_slots=1, render_ms=10.0, dispatch_overhead_ms=2.0,
                    batch_max=4)
    defaults.update(kwargs)
    return RenderFarm(sim, **defaults)


class TestValidation:
    def test_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RenderFarm(sim, gpu_slots=0)
        with pytest.raises(ValueError):
            RenderFarm(sim, render_ms=0.0)
        with pytest.raises(ValueError):
            RenderFarm(sim, dispatch_overhead_ms=-1.0)
        with pytest.raises(ValueError):
            RenderFarm(sim, batch_max=0)


class TestCompletion:
    def test_single_render_timing(self):
        sim = Simulator()
        farm = make_farm(sim)
        done = farm.submit(0, "addr-a", deadline_ms=100.0)
        sim.run()
        # One batch of one: overhead (2) + render (10).
        assert done.triggered and done.value == 12.0
        snap = farm.snapshot()
        assert snap.renders == 1 and snap.batches == 1
        assert snap.deadline_misses == 0
        assert snap.mean_wait_ms == 12.0

    def test_batch_amortizes_overhead(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=4)
        # Occupy the slot so the next four requests queue and batch.
        farm.submit(0, "warm", deadline_ms=1000.0)
        events = [farm.submit(0, f"addr-{i}", deadline_ms=1000.0)
                  for i in range(4)]
        sim.run()
        snap = farm.snapshot()
        # warm batch (1) + one batch of four.
        assert snap.batches == 2
        assert snap.renders == 5
        assert snap.mean_batch == 2.5
        # The four-batch lands at 12 (warm) + 2 + 4*10 = 54.
        assert all(e.value == 54.0 for e in events)

    def test_completion_hook_runs_per_request(self):
        sim = Simulator()
        landed = []
        farm = RenderFarm(sim, gpu_slots=2, render_ms=5.0,
                          dispatch_overhead_ms=0.0, batch_max=2,
                          completion_hook=lambda r: landed.append(r.address))
        for i in range(3):
            farm.submit(0, f"addr-{i}", deadline_ms=100.0)
        sim.run()
        assert sorted(landed) == ["addr-0", "addr-1", "addr-2"]

    def test_deadline_misses_counted(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=1)
        farm.submit(0, "a", deadline_ms=12.0)   # lands exactly at 12: ok
        farm.submit(0, "b", deadline_ms=12.0)   # lands at 24: missed
        sim.run()
        assert farm.snapshot().deadline_misses == 1


class TestPriority:
    def test_earliest_deadline_first(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=1)
        farm.submit(0, "warm", deadline_ms=0.0)
        late = farm.submit(1, "late", deadline_ms=500.0)
        soon = farm.submit(2, "soon", deadline_ms=50.0)
        sim.run()
        assert soon.value < late.value

    def test_fairness_breaks_deadline_ties(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=1)
        # Session 0 accumulates served credit first.
        farm.submit(0, "s0-warm", deadline_ms=0.0)
        sim.run()
        assert farm.served(0) == 1
        # Occupy the slot so both contenders are pending at dispatch
        # time, then submit session 0 first.  Equal deadlines: the
        # session with less served credit goes first anyway.
        farm.submit(3, "blocker", deadline_ms=0.0)
        first = farm.submit(0, "s0-next", deadline_ms=500.0)
        second = farm.submit(1, "s1-first", deadline_ms=500.0)
        sim.run()
        assert second.value < first.value

    def test_fifo_breaks_remaining_ties(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=1)
        farm.submit(0, "warm", deadline_ms=0.0)
        a = farm.submit(1, "a", deadline_ms=500.0)
        b = farm.submit(2, "b", deadline_ms=500.0)
        sim.run()
        assert a.value < b.value


class TestCoalescing:
    def test_duplicate_address_coalesces(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=1)
        farm.submit(0, "warm", deadline_ms=0.0)
        first = farm.submit(1, "shared-addr", deadline_ms=500.0)
        second = farm.submit(2, "shared-addr", deadline_ms=500.0)
        sim.run()
        assert first is second
        snap = farm.snapshot()
        assert snap.coalesced == 1
        assert snap.renders == 2  # warm + one shared render

    def test_no_coalescing_when_isolated(self):
        sim = Simulator()
        farm = make_farm(sim, cross_session=False)
        a = farm.submit(1, "same-addr", deadline_ms=500.0)
        b = farm.submit(2, "same-addr", deadline_ms=500.0)
        sim.run()
        assert a is not b
        assert farm.snapshot().coalesced == 0
        assert farm.snapshot().renders == 2

    def test_completed_render_does_not_coalesce(self):
        sim = Simulator()
        farm = make_farm(sim)
        farm.submit(0, "addr", deadline_ms=100.0)
        sim.run()
        farm.submit(1, "addr", deadline_ms=100.0)
        sim.run()
        # Re-submitting after completion is a fresh render (the shared
        # store is what prevents this, not the farm).
        assert farm.snapshot().renders == 2
        assert farm.snapshot().coalesced == 0


class TestIsolatedBatching:
    def test_isolated_batches_are_single_session(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=4,
                         cross_session=False)
        farm.submit(0, "warm", deadline_ms=0.0)
        for i in range(2):
            farm.submit(1, f"s1-{i}", deadline_ms=500.0)
            farm.submit(2, f"s2-{i}", deadline_ms=500.0)
        sim.run()
        snap = farm.snapshot()
        # warm + one batch per session (2 renders each): 3 batches, not
        # the 2 a cross-session farm would need.
        assert snap.batches == 3
        assert snap.renders == 5

    def test_cross_session_batches_mix_sessions(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=4, cross_session=True)
        farm.submit(0, "warm", deadline_ms=0.0)
        for i in range(2):
            farm.submit(1, f"s1-{i}", deadline_ms=500.0)
            farm.submit(2, f"s2-{i}", deadline_ms=500.0)
        sim.run()
        assert farm.snapshot().batches == 2


class TestAccounting:
    def test_queue_peak_tracks_backlog(self):
        sim = Simulator()
        farm = make_farm(sim, gpu_slots=1, batch_max=1)
        for i in range(5):
            farm.submit(0, f"addr-{i}", deadline_ms=1000.0)
        assert farm.queue_depth == 4  # one dispatched immediately
        sim.run()
        assert farm.queue_depth == 0
        assert farm.snapshot().queue_peak == 4

    def test_empty_farm_snapshot(self):
        farm = make_farm(Simulator())
        snap = farm.snapshot()
        assert snap.renders == 0
        assert snap.mean_wait_ms == 0.0
        assert snap.p99_wait_ms == 0.0
        assert snap.to_dict()["renders"] == 0
