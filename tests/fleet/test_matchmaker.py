"""Tests for the lobby/matchmaker layer against scripted admission."""

import pytest

from repro.fleet import (
    ArrivalTrace,
    FleetAdmissionController,
    FleetBudget,
    LobbyConfig,
    Matchmaker,
    PlayerArrival,
    SessionEstimate,
)
from repro.sim import Simulator


def estimate(players):
    return SessionEstimate(players=players, renders_per_s=1.0,
                           be_kbps_per_player=10.0, fi_kbps=5.0)


def trace(times, game="racing"):
    return ArrivalTrace([PlayerArrival(t, game) for t in times])


def make_matchmaker(sim, config=None, controller=None, launched=None):
    launched = launched if launched is not None else []
    active = []

    def launch(game, members, decision):
        launched.append((sim.now, game, members))
        active.append(estimate(len(members)))

    mm = Matchmaker(
        sim,
        config or LobbyConfig(),
        controller or FleetAdmissionController(FleetBudget()),
        estimate_for=lambda game, n: estimate(n),
        launch=launch,
        active_estimates=lambda: list(active),
    )
    return mm, launched


class TestLobbyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LobbyConfig(session_size=0)
        with pytest.raises(ValueError):
            LobbyConfig(session_size=2, min_session_size=3)
        with pytest.raises(ValueError):
            LobbyConfig(min_session_size=0)
        with pytest.raises(ValueError):
            LobbyConfig(retry_ms=0.0)
        with pytest.raises(ValueError):
            LobbyConfig(max_wait_ms=2000.0, patience_ms=1000.0)


class TestFormation:
    def test_full_lobby_launches_immediately(self):
        sim = Simulator()
        mm, launched = make_matchmaker(
            sim, LobbyConfig(session_size=2, min_session_size=2)
        )
        mm.feed(trace([0.0, 100.0]))
        sim.run()
        assert len(launched) == 1
        when, game, members = launched[0]
        assert when == 100.0 and game == "racing"
        assert members == (0.0, 100.0)
        assert mm.stats.players_matched == 2
        assert mm.stats.sessions_formed == 1

    def test_timeout_forms_short_session(self):
        sim = Simulator()
        mm, launched = make_matchmaker(
            sim, LobbyConfig(session_size=4, min_session_size=2,
                             max_wait_ms=1000.0)
        )
        mm.feed(trace([0.0, 200.0]))
        sim.run()
        assert len(launched) == 1
        when, _, members = launched[0]
        assert when == 1000.0
        assert members == (0.0, 200.0)

    def test_below_minimum_stays_waiting(self):
        sim = Simulator()
        mm, launched = make_matchmaker(
            sim, LobbyConfig(session_size=4, min_session_size=2)
        )
        mm.feed(trace([0.0]))
        sim.run()
        assert launched == []
        assert mm.waiting() == 1
        assert mm.stats.players_arrived == 1

    def test_lobbies_are_per_game(self):
        sim = Simulator()
        mm, launched = make_matchmaker(
            sim, LobbyConfig(session_size=2, min_session_size=2)
        )
        mm.feed(ArrivalTrace([
            PlayerArrival(0.0, "racing"),
            PlayerArrival(10.0, "viking"),
            PlayerArrival(20.0, "racing"),
            PlayerArrival(30.0, "viking"),
        ]))
        sim.run()
        assert [(t, g) for t, g, _ in launched] == [
            (20.0, "racing"), (30.0, "viking"),
        ]

    def test_overflow_starts_next_lobby(self):
        sim = Simulator()
        mm, launched = make_matchmaker(
            sim, LobbyConfig(session_size=2, min_session_size=2)
        )
        mm.feed(trace([0.0, 10.0, 20.0]))
        sim.run()
        assert len(launched) == 1
        assert mm.waiting() == 1


class TestAdmissionInteraction:
    def test_rejection_retries_until_patience(self):
        sim = Simulator()
        # max_sessions=0 is invalid, so reject via an impossible render
        # budget instead: every evaluation fails constraint-1.
        controller = FleetAdmissionController(
            FleetBudget(gpu_slots=1, render_ms=1000.0)
        )
        config = LobbyConfig(session_size=2, min_session_size=2,
                             max_wait_ms=100.0, retry_ms=200.0,
                             patience_ms=1000.0)
        mm, launched = make_matchmaker(sim, config, controller)
        mm.feed(trace([0.0, 0.0]))
        sim.run()
        assert launched == []
        assert mm.stats.sessions_rejected == 1
        assert mm.stats.players_rejected == 2
        assert mm.stats.rejects_by_reason == {"constraint-1": 1}
        # Formed at 0, retries at 200..1000 while oldest_wait + retry
        # stays within patience: retries at 0,200,...,800 → 5 retries.
        assert mm.stats.admission_retries == 5
        assert sim.now == 1000.0

    def test_retry_succeeds_when_capacity_frees(self):
        sim = Simulator()
        admit_after = 400.0
        controller = FleetAdmissionController(FleetBudget())
        real_evaluate = controller.evaluate

        def gated(active, candidate):
            decision = real_evaluate(active, candidate)
            if sim.now < admit_after:
                return type(decision)(
                    admitted=False, reason="constraint-1",
                    sessions_after=decision.sessions_after,
                    predicted_renders_per_s=0.0,
                    render_utilization=0.0, predicted_mbps=0.0,
                    miss_ratio=1.0,
                )
            return decision

        controller.evaluate = gated
        config = LobbyConfig(session_size=2, min_session_size=2,
                             retry_ms=250.0, patience_ms=4000.0)
        mm, launched = make_matchmaker(sim, config, controller)
        mm.feed(trace([0.0, 0.0]))
        sim.run()
        assert len(launched) == 1
        assert launched[0][0] == 500.0  # retries at 250, 500
        assert mm.stats.admission_retries == 2
        assert mm.stats.sessions_admitted == 1

    def test_feed_rejects_past_arrivals(self):
        sim = Simulator()
        mm, _ = make_matchmaker(sim)
        sim.schedule(100.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="in the past"):
            mm.feed(trace([50.0]))
