#!/usr/bin/env python
"""Ease of porting (§6): bring a brand-new game up under Coterie.

The paper's framework is app-independent: porting a game takes (1) running
the offline preprocessing, (2) generating far-BE panoramas, (3) attaching
the merge prefab, (4) applying the plugins.  Here we define a game that is
NOT in the study's catalog — a small orchard-village "Harvest" map — from
scratch, and run the same four steps.

Run:  python examples/port_a_new_game.py
"""

import numpy as np

from repro.codec import FrameCodec
from repro.core import PanoramaStore, build_cutoff_map, measure_fi_budget
from repro.core.dist_thresh import DistThreshMap
from repro.geometry import Rect, Vec2, WorldGrid
from repro.render import PIXEL2, RenderConfig, RenderCostModel
from repro.render.splitter import eye_at, render_display_frame
from repro.similarity import ssim
from repro.world import (
    DensityField,
    FullAreaMask,
    KindMixture,
    RollingTerrain,
    Scene,
    generate_scene,
    kind,
)
from repro.world.games import GRID_PITCH


def build_harvest_world():
    """Step 0: the game developer's world — not part of the 9-game study."""
    bounds = Rect(0, 0, 120.0, 90.0)
    terrain = RollingTerrain(amplitude=1.0, wavelength=45.0, phase_seed=2024)
    density = DensityField(
        base=1_500.0,
        blobs=DensityField.random_blobs(
            bounds, 12, (5.0, 12.0), (2_000.0, 9_000.0),
            np.random.default_rng(2024),
        ),
    )
    mixture = KindMixture(
        kinds=(kind("tree"), kind("hut"), kind("fence"), kind("crate")),
        weights=(0.45, 0.25, 0.18, 0.12),
    )
    scene = generate_scene(
        bounds, terrain, density, mixture, seed=2024,
        clutter_mixture=KindMixture((kind("grass"), kind("rock")), (0.7, 0.3)),
        clutter_per_m2=0.05,
    )
    scene = Scene(bounds, scene.objects, terrain, ground_seed=2024)
    grid = WorldGrid(bounds, GRID_PITCH, reachable=FullAreaMask(bounds))
    return scene, grid


def main() -> None:
    scene, grid = build_harvest_world()
    print(f"'Harvest' world built: {len(scene)} objects, "
          f"{scene.total_triangles() / 1e6:.0f} M triangles")

    model = RenderCostModel(PIXEL2)
    config = RenderConfig()
    codec = FrameCodec()

    # Port step 1: offline preprocessing (cutoffs + distance thresholds).
    budget = measure_fi_budget(model, fi_triangles=400_000)
    cutoff_map = build_cutoff_map(scene, model, budget, seed=1)
    dist_map = DistThreshMap(scene, config, cutoff_map, seed=1)
    stats = cutoff_map.stats()
    print(f"1. cutoffs computed: {stats.leaf_count} leaf regions, "
          f"radii {min(cutoff_map.leaf_radii()):.1f}-"
          f"{max(cutoff_map.leaf_radii()):.1f} m")

    # Port step 2: generate far-BE panoramas for the radii.  The store API
    # takes a GameWorld; wrap the custom pieces in one (spec only supplies
    # the player/device profile defaults).
    from repro.world.games import GameWorld, game_spec
    harvest = GameWorld(
        spec=game_spec("viking"),  # device/player profile defaults
        scene=scene, grid=grid, terrain=scene.terrain, track=None, scale=1.0,
    )
    store = PanoramaStore(harvest, config, codec, cutoff_map=cutoff_map)
    center = Vec2(60.0, 45.0)
    frame = store.frame_for(grid.snap(center))
    print(f"2. far-BE panoramas: {frame.wire_bytes / 1000:.0f} KB "
          f"4K-equivalent per frame")

    # Port step 3: merge near + far on the client (the SphereTexture step).
    cutoff = cutoff_map.cutoff_for(center)
    displayed = render_display_frame(scene, eye_at(scene, center), config, cutoff)
    print(f"3. merged display frame rendered ({displayed.shape[1]}x"
          f"{displayed.shape[0]})")

    # Port step 4: verify frame reuse works out of the box — merge a far-BE
    # frame cached at the spawn with the near BE rendered after moving
    # dist_thresh metres, and compare against the all-local reference.
    from repro.render.splitter import reference_frame, render_far_be

    thresh = dist_map.threshold_for(center)
    cached_far = render_far_be(scene, eye_at(scene, center), config, cutoff)
    moved = Vec2(center.x + min(0.5, thresh), center.y)
    reused = render_display_frame(
        scene, eye_at(scene, moved), config, cutoff, far_be=cached_far
    )
    reference = reference_frame(scene, eye_at(scene, moved), config)
    print(f"4. cache reuse live: dist_thresh {thresh:.2f} m at spawn; "
          f"reused-frame SSIM vs reference {ssim(reused, reference):.3f}")
    print("\nNew game ported with zero framework changes.")


if __name__ == "__main__":
    main()
