#!/usr/bin/env python
"""Multiplayer scaling: why Multi-Furion fails and Coterie doesn't.

Sweeps 1-4 players across the replicated-Furion architecture and Coterie
on one game and prints the Figure-11 series side by side, together with
the per-player network load (the Table 9 story).

Run:  python examples/multiplayer_scaling.py [game]
"""

import sys

from repro.systems import SessionConfig, prepare_artifacts, run_coterie, run_multi_furion
from repro.world import load_game


def main(game: str = "viking") -> None:
    world = load_game(game)
    config = SessionConfig(duration_s=10.0, seed=7)
    print(f"Preparing offline artifacts for {world.spec.title}...")
    artifacts = prepare_artifacts(world, config)

    print(f"\n{'players':>8} | {'Furion FPS':>10} | {'Coterie FPS':>11} | "
          f"{'Furion Mbps/p':>13} | {'Coterie Mbps/p':>14} | {'hit':>5}")
    print("-" * 75)
    for players in (1, 2, 3, 4):
        furion = run_multi_furion(world, players, config)
        coterie = run_coterie(world, players, config, artifacts)
        hit = coterie.mean_cache_hit_ratio
        print(
            f"{players:>8} | {furion.mean_fps:>10.1f} | {coterie.mean_fps:>11.1f} | "
            f"{furion.per_player_be_mbps():>13.0f} | "
            f"{coterie.per_player_be_mbps():>14.0f} | {100 * hit:>4.0f}%"
        )

    print(
        "\nThe replicated architecture loses 60 FPS beyond one player as the "
        "shared medium saturates;\nCoterie's frame cache keeps per-player "
        "traffic low enough for four players (paper Fig. 11)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "viking")
