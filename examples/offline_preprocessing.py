#!/usr/bin/env python
"""The §6 offline preprocessing pipeline, step by step, on one game.

Shows what the Coterie server computes before game play: the FI render
budget, the adaptive cutoff quadtree (with its leaf regions and radii),
per-leaf distance thresholds, and the far-BE frame store with real
encoded frame sizes.

Run:  python examples/offline_preprocessing.py [game]
"""

import sys

import numpy as np

from repro.codec import FrameCodec
from repro.core import (
    PanoramaStore,
    build_cutoff_map,
    measure_dist_thresh,
    measure_fi_budget,
)
from repro.core.dist_thresh import DistThreshMap
from repro.render import PIXEL2, RenderConfig, RenderCostModel
from repro.world import load_game


def main(game: str = "cts") -> None:
    world = load_game(game)
    model = RenderCostModel(PIXEL2)
    config = RenderConfig()
    codec = FrameCodec(crf=25)

    print(f"== Offline preprocessing for {world.spec.title} ==\n")

    # Step 1: measure the FI budget on the target device (Constraint 1).
    budget = measure_fi_budget(model, world.spec.fi_triangles)
    print(f"1. FI budget: RT_FI bounded at {budget.fi_ms:.1f} ms "
          f"-> near-BE budget {budget.near_be_budget_ms:.1f} ms")

    # Step 2: adaptive cutoff scheme (recursive quadtree partitioning).
    reachable = None
    if world.track is not None:
        reachable = lambda p: world.grid.is_reachable(world.grid.snap(p))
    cutoff_map = build_cutoff_map(
        world.scene, model, budget, reachable=reachable, seed=3
    )
    stats = cutoff_map.stats()
    radii = np.array(cutoff_map.leaf_radii())
    print(f"\n2. Adaptive cutoff scheme:")
    print(f"   {stats.leaf_count} leaf regions "
          f"(depth {stats.avg_depth:.2f} avg / {stats.max_depth} max)")
    print(f"   cutoff radii: {radii.min():.1f} - {radii.max():.1f} m "
          f"(median {np.median(radii):.1f} m)")
    print(f"   {cutoff_map.samples_evaluated} constraint evaluations; "
          f"modeled on-device time "
          f"{cutoff_map.modeled_processing_hours():.2f} h")

    # Step 3: distance threshold for one visited leaf (binary search on
    # real rendered far-BE SSIM).
    spawn = world.spawn_points(1)[0]
    leaf_key, cutoff = cutoff_map.leaf_for(spawn)
    rng = np.random.default_rng(5)
    thresh = measure_dist_thresh(world.scene, config, spawn, cutoff, rng)
    print(f"\n3. dist_thresh at the spawn leaf (cutoff {cutoff:.1f} m): "
          f"{thresh:.2f} m of reuse displacement keeps SSIM > 0.9")

    # Step 4: pre-render + pre-encode far-BE panoramas.
    store = PanoramaStore(world, config, codec, cutoff_map=cutoff_map)
    sizes = []
    for step in range(4):
        point = world.grid.snap(
            world.bounds.clamp(spawn.__class__(spawn.x + 2.0 * step, spawn.y))
        )
        frame = store.frame_for(point)
        sizes.append(frame.wire_bytes)
    print(f"\n4. Far-BE panorama store: {store.renders} frames rendered+encoded")
    print(f"   4K-equivalent sizes: "
          + ", ".join(f"{s / 1000:.0f} KB" for s in sizes))

    print("\nArtifacts ready: a Coterie client can now join (see "
          "examples/quickstart.py).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cts")
