#!/usr/bin/env python
"""The §7.4 user study, end to end: record, replay, grade.

Records single-player movement traces, replays them under full-fidelity
Coterie (frames really rendered, encoded, decoded, merged), measures the
SSIM across every far-BE source switch, and grades the replays with the
12-participant opinion model — Table 10's pipeline in one script.

Run:  python examples/user_study_replay.py  (takes a couple of minutes)
"""

from repro.metrics import MOS_LABELS, run_user_study
from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.trace import generate_trajectory, save_traces
from repro.world import load_game

GAMES = ("viking", "cts")
TRACE_SECONDS = 6.0


def main() -> None:
    switch_traces = []
    for game in GAMES:
        world = load_game(game)
        config = SessionConfig(
            duration_s=TRACE_SECONDS, seed=2024, render_frames=True
        )
        print(f"Preparing {world.spec.title}...")
        artifacts = prepare_artifacts(world, config)

        # Record the movement trace (replayable via repro.trace.recorder).
        trace = generate_trajectory(world, TRACE_SECONDS, seed=2024)
        save_traces([trace], f"/tmp/{game}_study_trace.json")

        print(f"Replaying {TRACE_SECONDS:g}s under full-fidelity Coterie...")
        result = run_coterie(world, 1, config, artifacts, ssim_stride=10**9)
        switches = result.players[0].switch_ssims
        if switches:
            print(f"  {len(switches)} far-BE switches, "
                  f"SSIM {min(switches):.3f}-{max(switches):.3f}")
            switch_traces.append(switches)

    print("\nGrading with 12 simulated participants "
          "(1 = very annoying ... 5 = imperceptible):")
    study = run_user_study(switch_traces, n_participants=12, seed=7)
    for score in sorted(MOS_LABELS, reverse=True):
        bar = "#" * int(round(study.percentages[score] / 2))
        print(f"  {score} {MOS_LABELS[score]:30s} "
              f"{study.percentages[score]:5.1f}%  {bar}")
    print(f"\nMean opinion score: {study.mean_score:.2f} "
          f"(paper Table 10: 94.5% of gradings are 4 or 5)")


if __name__ == "__main__":
    main()
