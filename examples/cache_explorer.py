#!/usr/bin/env python
"""Frame-cache exploration: lookup versions and replacement policies.

Replays one player's movement trace against the far-BE frame cache under
(a) the five lookup configurations of Table 4/5 (exact vs similar, own vs
overheard frames) and (b) LRU vs FLF replacement under a tight memory cap.

Run:  python examples/cache_explorer.py [game]
"""

import sys

from repro.codec import FrameCodec
from repro.core import (
    FLF,
    LRU,
    FrameCache,
    Prefetcher,
    preprocess_game,
)
from repro.render import PIXEL2, RenderConfig, RenderCostModel
from repro.trace import generate_party
from repro.world import load_game


def replay(world, artifacts, cache, n_players=1, duration_s=20.0):
    """Drive per-player prefetchers over a party's traces; returns caches."""
    party = generate_party(world, n_players, duration_s, seed=19)
    prefetcher = Prefetcher(
        world.scene, world.grid, artifacts.cutoff_map,
        artifacts.dist_thresh_map, cache,
    )
    for sample in party[0].samples:
        decision = prefetcher.plan(sample.position, sample.heading, sample.t_ms)
        if decision.needs_fetch:
            size = artifacts.far_size_model.sample(decision.grid_point)
            prefetcher.admit(decision, None, size, sample.t_ms)
    return cache


def main(game: str = "viking") -> None:
    world = load_game(game)
    print(f"Preprocessing {world.spec.title}...")
    artifacts = preprocess_game(
        world, RenderCostModel(PIXEL2), RenderConfig(), FrameCodec(), seed=3
    )

    print("\n-- Lookup modes (single player, 20 s trace) --")
    exact = replay(world, artifacts, FrameCache(exact_only=True))
    similar = replay(world, artifacts, FrameCache())
    print(f"  exact grid-point matching : "
          f"{100 * exact.stats.hit_ratio:5.1f}% hits "
          f"(Table 5 V1: 0% — players never revisit exact points)")
    print(f"  similarity lookup (S5.3)  : "
          f"{100 * similar.stats.hit_ratio:5.1f}% hits "
          f"(Table 5 V3: ~80%)")

    print("\n-- Replacement policies under a tight 8 MB cache --")
    for policy in (LRU, FLF):
        cache = replay(
            world, artifacts,
            FrameCache(capacity_bytes=8 * 1024 * 1024, policy=policy),
        )
        print(f"  {policy.upper():3s}: {100 * cache.stats.hit_ratio:5.1f}% hits, "
              f"{cache.stats.evictions} evictions, "
              f"{len(cache)} frames resident")
    print("\nBoth policies track each other closely: spatial and temporal "
          "locality coincide in player movement (S7, 'Caching results').")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "viking")
