#!/usr/bin/env python
"""Quickstart: a 2-player Coterie session on Viking Village.

Builds the procedural world, runs the §6 offline preprocessing (adaptive
cutoff quadtree + frame-size calibration), simulates a short 2-player
session over shared 802.11ac, and prints the QoE summary — the smallest
end-to-end tour of the reproduction.

Run:  python examples/quickstart.py
"""

from repro.systems import SessionConfig, prepare_artifacts, run_coterie
from repro.world import load_game


def main() -> None:
    print("Building Viking Village (procedural 187x130 m world)...")
    world = load_game("viking")
    print(f"  {len(world.scene)} objects, "
          f"{world.scene.total_triangles() / 1e6:.0f} M triangles, "
          f"{world.grid_point_count() / 1e6:.1f} M reachable grid points")

    config = SessionConfig(duration_s=10.0, seed=42)
    print("\nOffline preprocessing (adaptive cutoff scheme, Section 4.3)...")
    artifacts = prepare_artifacts(world, config)
    stats = artifacts.cutoff_map.stats()
    print(f"  quadtree: {stats.leaf_count} leaf regions, "
          f"depth {stats.avg_depth:.2f}/{stats.max_depth}")
    print(f"  modeled offline time: "
          f"{artifacts.cutoff_map.modeled_processing_hours():.2f} h on-device")

    print("\nSimulating a 2-player Coterie session over 802.11ac...")
    result = run_coterie(world, 2, config, artifacts)

    print(f"\n  frame rate        : {result.mean_fps:.1f} FPS")
    print(f"  inter-frame       : {result.mean_inter_frame_ms:.1f} ms")
    print(f"  responsiveness    : {result.mean_responsiveness_ms:.1f} ms "
          f"(motion-to-photon)")
    print(f"  cache hit ratio   : {100 * result.mean_cache_hit_ratio:.1f} %")
    print(f"  BE traffic        : {result.be_mbps:.0f} Mbps total "
          f"({result.per_player_be_mbps():.0f} per player)")
    print(f"  FI sync traffic   : {result.fi_kbps:.0f} Kbps")
    player = result.players[0]
    print(f"  phone CPU / GPU   : {100 * player.metrics.cpu_utilization:.0f} % "
          f"/ {100 * player.metrics.gpu_utilization:.0f} %")
    print(f"  power draw        : {player.power_w:.1f} W")

    if result.mean_fps >= 59 and result.mean_responsiveness_ms < 16.7:
        print("\nQoE met: 60 FPS with sub-16.7 ms responsiveness, "
              "as in the paper's Table 8.")


if __name__ == "__main__":
    main()
