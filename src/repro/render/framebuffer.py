"""Frame buffers and deterministic procedural noise.

Frames are plain ``numpy`` arrays of luminance in [0, 1], shape (H, W),
``float32``.  The paper's frames are 4K RGB; we render grayscale at a
configurable resolution and scale sizes to 4K-equivalents in the network
model (see DESIGN.md) — SSIM and DCT-codec behaviour are driven by luma
structure, which we keep.

The noise here is *value noise* built on integer hashing: deterministic,
seedable, vectorized.  Every textured surface in the renderer (ground,
object surfaces, sky) samples it, which is what gives frames enough spatial
structure for SSIM comparisons and realistic codec output (a flat-shaded
frame would compress to nothing and saturate SSIM at 1.0).
"""

from __future__ import annotations

import numpy as np

_MASK32 = np.uint64(0xFFFFFFFF)


def hash01(ix: np.ndarray, iy: np.ndarray, seed) -> np.ndarray:
    """Deterministic pseudo-random values in [0, 1) from integer lattices.

    A multiply-xorshift mix of the two lattice coordinates and the seed.
    Inputs are broadcast together; any integer dtype is accepted.  ``seed``
    may be a plain integer or a broadcastable integer array (the batched
    rasterizer kernel hashes many objects, each with its own seed, in one
    call) — both forms produce bit-identical values per element.
    """
    x = np.asarray(ix).astype(np.uint64)
    y = np.asarray(iy).astype(np.uint64)
    s = (np.asarray(seed) & 0xFFFFFFFF).astype(np.uint64)
    h = (x * np.uint64(374761393) + y * np.uint64(668265263) + s * np.uint64(2246822519)) & _MASK32
    h = ((h ^ (h >> np.uint64(13))) * np.uint64(1274126177)) & _MASK32
    h = h ^ (h >> np.uint64(16))
    return (h & _MASK32).astype(np.float64) / float(2**32)


def value_noise(x: np.ndarray, y: np.ndarray, seed: int) -> np.ndarray:
    """Bilinear value noise: smooth, deterministic, in [0, 1).

    ``x``/``y`` are continuous coordinates; one noise cell spans one unit,
    so callers control feature size by scaling their coordinates.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x0 = np.floor(x)
    y0 = np.floor(y)
    fx = x - x0
    fy = y - y0
    # Smoothstep the lattice fractions for C1 continuity.
    sx = fx * fx * (3.0 - 2.0 * fx)
    sy = fy * fy * (3.0 - 2.0 * fy)
    ix = x0.astype(np.int64)
    iy = y0.astype(np.int64)
    v00 = hash01(ix, iy, seed)
    v10 = hash01(ix + 1, iy, seed)
    v01 = hash01(ix, iy + 1, seed)
    v11 = hash01(ix + 1, iy + 1, seed)
    top = v00 + (v10 - v00) * sx
    bottom = v01 + (v11 - v01) * sx
    return top + (bottom - top) * sy


def cell_noise(x: np.ndarray, y: np.ndarray, seed) -> np.ndarray:
    """Nearest-cell (blocky) noise: one hash per sample, in [0, 1).

    Four times cheaper than :func:`value_noise`; used for object surface
    texture where per-cell detail is what matters, not smoothness.  Like
    :func:`hash01`, ``seed`` may be a scalar or a broadcastable array.
    """
    ix = np.floor(np.asarray(x, dtype=np.float64)).astype(np.int64)
    iy = np.floor(np.asarray(y, dtype=np.float64)).astype(np.int64)
    return hash01(ix, iy, seed)


def fractal_noise(
    x: np.ndarray, y: np.ndarray, seed: int, octaves: int = 3
) -> np.ndarray:
    """Sum of value-noise octaves, normalized back into [0, 1)."""
    if octaves < 1:
        raise ValueError("octaves must be >= 1")
    total = np.zeros(np.broadcast(np.asarray(x), np.asarray(y)).shape, dtype=np.float64)
    amplitude = 1.0
    frequency = 1.0
    norm = 0.0
    for octave in range(octaves):
        total = total + amplitude * value_noise(
            np.asarray(x) * frequency, np.asarray(y) * frequency, seed + octave * 101
        )
        norm += amplitude
        amplitude *= 0.5
        frequency *= 2.0
    return total / norm


def new_frame(width: int, height: int, fill: float = 0.0) -> np.ndarray:
    """Allocate a luminance frame of the given size."""
    if width < 1 or height < 1:
        raise ValueError(f"invalid frame size {width}x{height}")
    if not 0.0 <= fill <= 1.0:
        raise ValueError("fill must be in [0, 1]")
    return np.full((height, width), fill, dtype=np.float32)


def clip_frame(frame: np.ndarray) -> np.ndarray:
    """Clamp a frame into [0, 1] in place and return it."""
    np.clip(frame, 0.0, 1.0, out=frame)
    return frame


def frames_equal(a: np.ndarray, b: np.ndarray, tolerance: float = 0.0) -> bool:
    """Exact (or tolerance-bounded) frame equality."""
    if a.shape != b.shape:
        return False
    if tolerance == 0.0:
        return bool(np.array_equal(a, b))
    return bool(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))) <= tolerance)
