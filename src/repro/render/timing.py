"""Device render-time models.

The adaptive cutoff scheme needs RT_FI and RT_nearBE for a *device* (§4.3:
"the right choice of cutoff is app and device dependent"), and the paper
grounds rendering speed in triangle counts ("the rendering speed is
correlated with the triangle count of the objects").  We model a device's
render time for a set of objects as

    RT = setup_ms + (sum over objects of triangles * lod(d)) / throughput

where ``lod(d) = 1 / (1 + (d / lod_distance)^2)`` captures distance-based
level-of-detail: engines spend most triangle budget on nearby geometry.
Coefficients are calibrated so the three headline games land in the
paper's measured envelope on the Pixel 2 profile (Table 1: whole-scene
rendering at 24-27 FPS with ~90-99 % GPU, FI under 4 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..geometry import Vec2
from ..world.objects import SceneObject
from ..world.scene import Scene


@dataclass(frozen=True)
class DeviceProfile:
    """Rendering/decoding capability of one device."""

    name: str
    setup_ms: float  # per-frame engine + driver overhead
    triangle_throughput: float  # LOD-weighted triangles per millisecond
    lod_distance: float  # metres at which LOD halves twice (d0)
    view_limit: float  # frustum/far-plane culling distance (m)
    decode_ms_per_mpixel: float  # hardware H.264 decode speed
    merge_ms: float  # compositing far BE + near BE + FI
    lod_floor: float = 0.04  # minimum detail fraction ever rendered

    def __post_init__(self) -> None:
        if min(
            self.setup_ms,
            self.triangle_throughput,
            self.lod_distance,
            self.view_limit,
            self.decode_ms_per_mpixel,
            self.merge_ms,
        ) <= 0:
            raise ValueError(f"device profile fields must be positive: {self}")
        if not 0.0 <= self.lod_floor <= 1.0:
            raise ValueError("lod_floor must be in [0, 1]")


# The testbed devices (§3): Pixel 2 phones and the GTX 1080 Ti server.
PIXEL2 = DeviceProfile(
    name="pixel2",
    setup_ms=1.5,
    triangle_throughput=300_000.0,
    lod_distance=25.0,
    view_limit=300.0,
    decode_ms_per_mpixel=0.95,
    merge_ms=1.2,
)

GTX1080TI = DeviceProfile(
    name="gtx1080ti",
    setup_ms=0.4,
    triangle_throughput=3_500_000.0,
    lod_distance=25.0,
    view_limit=300.0,
    decode_ms_per_mpixel=0.08,
    merge_ms=0.2,
)


class RenderCostModel:
    """Render-time estimates for one device."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device

    def lod_weight(self, distance: float) -> float:
        """Fraction of an object's triangles actually rendered at a distance."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        ratio = distance / self.device.lod_distance
        # Real engines never drop below a minimum mesh LOD, so distant
        # geometry keeps a fixed fraction of its triangle cost.
        return max(self.device.lod_floor, 1.0 / (1.0 + ratio * ratio))

    def weighted_triangles(
        self, objects: Iterable[SceneObject], viewpoint: Vec2
    ) -> float:
        """LOD-weighted triangle count of ``objects`` seen from ``viewpoint``."""
        return sum(
            obj.triangles * self.lod_weight(obj.ground_distance_to(viewpoint))
            for obj in objects
        )

    def objects_ms(self, objects: Iterable[SceneObject], viewpoint: Vec2) -> float:
        """Pure geometry time (no per-frame setup) for a set of objects."""
        return self.weighted_triangles(objects, viewpoint) / self.device.triangle_throughput

    # ------------------------------------------------------------------
    # The quantities the paper's pipeline needs
    # ------------------------------------------------------------------

    def fi_ms(self, fi_triangles: float) -> float:
        """RT_FI: foreground interactions render at full detail (they are
        at arm's length, LOD ~ 1)."""
        if fi_triangles < 0:
            raise ValueError("fi_triangles must be non-negative")
        return fi_triangles / self.device.triangle_throughput

    def near_be_ms(self, scene: Scene, viewpoint: Vec2, cutoff_radius: float) -> float:
        """RT_nearBE: geometry within the cutoff radius."""
        objects = scene.objects_within(viewpoint, cutoff_radius)
        return self.objects_ms(objects, viewpoint)

    def whole_be_ms(self, scene: Scene, viewpoint: Vec2) -> float:
        """Rendering the entire BE locally (the Mobile baseline's load)."""
        objects = scene.objects_within(viewpoint, self.device.view_limit)
        return self.objects_ms(objects, viewpoint)

    def frame_ms(self, *task_ms: float) -> float:
        """Total frame time: per-frame setup plus sequential render tasks."""
        return self.device.setup_ms + sum(task_ms)

    def decode_ms(self, width: int, height: int) -> float:
        """Hardware decode time for one frame of the given resolution."""
        if width <= 0 or height <= 0:
            raise ValueError("frame dimensions must be positive")
        return (width * height / 1e6) * self.device.decode_ms_per_mpixel

    def gpu_utilization(self, render_ms_per_frame: float, frame_interval_ms: float) -> float:
        """GPU busy fraction when spending ``render_ms_per_frame`` per
        ``frame_interval_ms`` interval."""
        if frame_interval_ms <= 0:
            raise ValueError("frame_interval_ms must be positive")
        return min(1.0, max(0.0, render_ms_per_frame / frame_interval_ms))
