"""Software panoramic renderer and device render-time models."""

from .framebuffer import (
    cell_noise,
    clip_frame,
    fractal_noise,
    frames_equal,
    hash01,
    new_frame,
    value_noise,
)
from .rasterizer import (
    KERNEL_MODES,
    Layer,
    RenderConfig,
    draw_objects,
    empty_layer,
    merge_layers,
    render_background,
)
from .splitter import (
    eye_at,
    reference_frame,
    render_display_frame,
    render_far_be,
    render_fi,
    render_near_be,
    render_whole_be,
)
from .stereo import DEFAULT_IPD_M, StereoConfig, side_by_side, stereo_views
from .timing import GTX1080TI, PIXEL2, DeviceProfile, RenderCostModel

__all__ = [
    "DeviceProfile",
    "GTX1080TI",
    "KERNEL_MODES",
    "Layer",
    "PIXEL2",
    "RenderCostModel",
    "RenderConfig",
    "cell_noise",
    "clip_frame",
    "draw_objects",
    "empty_layer",
    "eye_at",
    "fractal_noise",
    "frames_equal",
    "hash01",
    "merge_layers",
    "new_frame",
    "reference_frame",
    "render_background",
    "render_display_frame",
    "render_far_be",
    "render_fi",
    "render_near_be",
    "render_whole_be",
    "side_by_side",
    "stereo_views",
    "value_noise",
    "DEFAULT_IPD_M",
    "StereoConfig",
]
