"""Software panoramic rasterizer.

Renders 360-degree equirectangular luminance frames of a scene from an eye
position, with near/far clipping by *ground distance* — the same radial
criterion the paper's near/far BE split uses.  Objects are drawn as
textured, fogged, depth-tested angular disks; the ground plane is textured
in world space so it translates correctly under player movement; the sky is
an elevation gradient with azimuth-anchored cloud noise.

The projection uses true angular sizes (``angular_radius``), so the
"near-object" effect of §4.2 is emergent: an object at 1 m sweeps across
many pixels when the player steps sideways, an object at 50 m barely moves.

Approximations (documented in DESIGN.md): objects are bounding-sphere
impostors with view-facing procedural texture; ground uses the local
flat-plane distance; terrain does not occlude distant objects.  None of
these affect the distance-dependence that drives frame similarity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .. import perf
from ..geometry import Vec3, angular_radius, direction_to_angles
from ..world.objects import SceneObject
from ..world.scene import Scene
from .framebuffer import cell_noise, clip_frame, fractal_noise, new_frame, value_noise

TWO_PI = 2.0 * math.pi
_INFINITY = float("inf")

#: Recognized frame-pipeline kernel modes.  ``scalar`` is the original
#: per-object reference oracle; ``vector`` batches the per-pixel math into
#: grouped numpy kernels (bit-identical output); ``vector+reuse`` adds
#: dirty-block encode/SSIM reuse on top of the vector rasterizer (also
#: bit-identical — reuse splices cached coefficients, never approximates).
KERNEL_MODES = ("scalar", "vector", "vector+reuse")


@dataclass(frozen=True)
class RenderConfig:
    """Rendering parameters shared by client and server renderers."""

    width: int = 256
    height: int = 128
    view_limit: float = 200.0  # max object draw distance (m)
    fog_distance: float = 300.0  # distance at which fog ~ 63%
    min_angular_radius: float = 0.004  # skip objects smaller than ~1/3 px (rad)
    ground_texture_scale: float = 20.0  # finest ground noise: cells per metre
    sky_luminance: float = 0.85
    ground_luminance: float = 0.42
    fog_luminance: float = 0.74
    object_texture_freq: float = 3.0
    indoor: bool = False
    kernels: str = "vector"  # frame-pipeline kernel mode (KERNEL_MODES)

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 4:
            raise ValueError(f"frame {self.width}x{self.height} too small")
        if self.view_limit <= 0 or self.fog_distance <= 0:
            raise ValueError("view_limit and fog_distance must be positive")
        if self.min_angular_radius < 0:
            raise ValueError("min_angular_radius must be non-negative")
        if self.kernels not in KERNEL_MODES:
            raise ValueError(
                f"kernels must be one of {KERNEL_MODES}, got {self.kernels!r}"
            )

    @property
    def reuse_enabled(self) -> bool:
        """Whether dirty-block encode/SSIM reuse layers are active."""
        return self.kernels == "vector+reuse"


@dataclass
class Layer:
    """One rendered compositing layer.

    ``image`` is the luminance frame; ``mask`` marks pixels this layer
    covers (a far-BE layer covers everything, a near-BE layer only its own
    geometry); ``depth`` is per-pixel distance in metres for depth testing.
    """

    image: np.ndarray
    mask: np.ndarray
    depth: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of the frame this layer covers."""
        return float(self.mask.mean())


def _pixel_angles(config: RenderConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Azimuth per column and elevation per row, at pixel centres."""
    az = (np.arange(config.width) + 0.5) / config.width * TWO_PI
    el = (0.5 - (np.arange(config.height) + 0.5) / config.height) * math.pi
    return az, el


def render_background(
    scene: Scene,
    eye: Vec3,
    config: RenderConfig,
    near_clip: float = 0.0,
    far_clip: float = _INFINITY,
) -> Layer:
    """Sky plus the ground-plane band with ``near_clip < d <= far_clip``.

    ``near_clip``/``far_clip`` act on the ground-hit distance; the sky has
    infinite distance and is included whenever ``far_clip`` is infinite.
    """
    if near_clip < 0 or far_clip < near_clip:
        raise ValueError(f"invalid clip range [{near_clip}, {far_clip}]")
    with perf.timed("raster"):
        return _render_background(scene, eye, config, near_clip, far_clip)


def _render_background(
    scene: Scene,
    eye: Vec3,
    config: RenderConfig,
    near_clip: float,
    far_clip: float,
) -> Layer:
    az, el = _pixel_angles(config)
    image = new_frame(config.width, config.height)
    mask = np.zeros_like(image, dtype=bool)
    depth = np.full_like(image, _INFINITY, dtype=np.float64)
    seed = scene.ground_seed

    include_sky = math.isinf(far_clip)
    if include_sky:
        sky_rows = el >= 0.0
        if np.any(sky_rows):
            el_sky = el[sky_rows][:, None]
            cloud = value_noise(
                az[None, :] * 3.0 / TWO_PI * 8.0,
                np.broadcast_to(el_sky * 4.0, (el_sky.shape[0], az.size)),
                seed + 17,
            )
            sky = config.sky_luminance - 0.18 * (el_sky / (math.pi / 2)) + 0.06 * (
                cloud - 0.5
            )
            if config.indoor:
                # Indoors the "sky" is a ceiling: flat, darker, no clouds.
                sky = np.full_like(sky, config.sky_luminance * 0.7)
            image[sky_rows, :] = sky.astype(np.float32)
            mask[sky_rows, :] = True

    ground_rows = el < -1e-4
    height_above_ground = eye.z - scene.terrain(eye.ground())
    if np.any(ground_rows) and height_above_ground > 1e-6:
        el_g = el[ground_rows]
        d = height_above_ground / np.tan(-el_g)  # per-row ground distance
        visible_rows = (d > near_clip) & (d <= min(far_clip, 10_000.0))
        if np.any(visible_rows):
            rows_idx = np.nonzero(ground_rows)[0][visible_rows]
            d_vis = d[visible_rows][:, None]
            hit_x = eye.x + np.cos(az)[None, :] * d_vis
            hit_y = eye.y + np.sin(az)[None, :] * d_vis
            # Mip-mapped world-anchored texture: the noise cell grows with
            # distance so features stay ~2.5 px wide on screen.  Near rows
            # get centimetre-scale detail (which a centimetre of player
            # movement visibly shifts -> the near-object effect extends to
            # the ground), far rows get coarse stable texture instead of
            # sub-pixel aliasing.
            pixel_rad = math.pi / config.height
            cell = np.maximum(
                1.0 / config.ground_texture_scale, 2.5 * pixel_rad * d_vis
            )
            tex = fractal_noise(hit_x / cell, hit_y / cell, seed + 29, octaves=2)
            lum = config.ground_luminance * (0.7 + 0.6 * tex)
            fog = 1.0 - np.exp(-d_vis / config.fog_distance)
            if config.indoor:
                fog = fog * 0.2  # no atmospheric haze indoors
            value = lum * (1.0 - fog) + config.fog_luminance * fog
            image[rows_idx, :] = value.astype(np.float32)
            mask[rows_idx, :] = True
            depth[rows_idx, :] = d_vis

    return Layer(image=clip_frame(image), mask=mask, depth=depth)


def draw_objects(
    layer: Layer,
    objects: Sequence[SceneObject],
    eye: Vec3,
    config: RenderConfig,
) -> Layer:
    """Depth-test-draw objects into an existing layer (painter-safe).

    Objects are sorted far to near; each pixel write checks the depth
    buffer so near geometry (including ground already in the layer) wins.
    Objects subtending less than about half a pixel are culled (matching
    what any real renderer's LOD would drop at this resolution).
    """
    if not objects:
        return layer
    with perf.timed("raster"):
        if config.kernels == "scalar":
            return _draw_objects_scalar(layer, objects, eye, config)
        return _draw_objects_vector(layer, objects, eye, config)


def _cull_objects(
    objects: Sequence[SceneObject], eye: Vec3, config: RenderConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized visibility cull shared by both kernel paths.

    Returns per-object distances, angular radii, and the indices of the
    surviving objects in far-to-near draw order (stable sort, so depth
    ties resolve identically in both kernels).
    """
    min_ang = max(config.min_angular_radius, 0.55 * math.pi / config.height)
    centers = np.array([obj.center.as_tuple() for obj in objects])
    radii = np.array([obj.radius for obj in objects])
    offsets = centers - np.array([eye.x, eye.y, eye.z])
    dists = np.linalg.norm(offsets, axis=1)
    with np.errstate(invalid="ignore"):
        ang = np.arcsin(np.minimum(1.0, radii / np.maximum(dists, 1e-9)))
    ang = np.where(dists <= radii, math.pi, ang)
    keep = (dists > 1e-6) & (ang >= min_ang)
    order = np.argsort(-dists[keep])
    kept_indices = np.nonzero(keep)[0][order]
    return dists, ang, kept_indices


def _draw_objects_scalar(
    layer: Layer,
    objects: Sequence[SceneObject],
    eye: Vec3,
    config: RenderConfig,
) -> Layer:
    """Reference oracle: per-object scanline loop (pre-kernel code path)."""
    az_cols, el_rows = _pixel_angles(config)
    width, height = config.width, config.height
    image, mask, depth = layer.image, layer.mask, layer.depth

    dists, ang, kept_indices = _cull_objects(objects, eye, config)

    for index in kept_indices:
        obj = objects[index]
        dist = float(dists[index])
        ang_r = min(float(ang[index]), math.pi / 2 - 1e-3)
        az0, el0 = direction_to_angles(obj.center - eye)

        # Pixel-space bounding box (columns wrap around the seam).
        rv = ang_r * height / math.pi
        v0 = (0.5 - el0 / math.pi) * height
        row_lo = max(0, int(math.floor(v0 - rv - 1)))
        row_hi = min(height - 1, int(math.ceil(v0 + rv + 1)))
        if row_lo > row_hi:
            continue
        cos_el = max(0.15, math.cos(el0))
        ru = ang_r / cos_el * width / TWO_PI
        u0 = az0 / TWO_PI * width
        col_lo = int(math.floor(u0 - ru - 1))
        col_hi = int(math.ceil(u0 + ru + 1))
        if col_hi - col_lo + 1 >= width:
            col_lo, col_hi = 0, width - 1

        # Split the (possibly seam-wrapping) column range into contiguous
        # segments so all writes go through cheap slice views.
        segments = []
        if col_lo < 0:
            segments.append((col_lo % width, width))
            segments.append((0, col_hi + 1))
        elif col_hi >= width:
            segments.append((col_lo, width))
            segments.append((0, col_hi - width + 1))
        else:
            segments.append((col_lo, col_hi + 1))

        d_el = (el_rows[row_lo : row_hi + 1] - el0)[:, None]
        fog = 1.0 - math.exp(-dist / config.fog_distance)
        if config.indoor:
            fog *= 0.2
        # Feature size adapts to the object's on-screen size (~2.8 px per
        # noise cell): big near objects show fine detail that decorrelates
        # under small viewpoint shifts, tiny far objects stay smooth.
        ang_r_px = ang_r * height / math.pi
        freq = min(32.0, max(1.0, ang_r_px / 2.8)) * config.object_texture_freq / 3.0

        for c0, c1 in segments:
            if c0 >= c1:
                continue
            daz = (az_cols[c0:c1] - az0 + math.pi) % TWO_PI - math.pi
            daz = (daz * cos_el)[None, :]
            inside = daz * daz + d_el * d_el <= ang_r * ang_r
            if not inside.any():
                continue
            sub_depth = depth[row_lo : row_hi + 1, c0:c1]
            writable = inside & (dist < sub_depth)
            if not writable.any():
                continue
            # View-facing procedural texture, anchored to the object so it
            # translates with it (critical for honest frame similarity).
            tex = cell_noise(
                daz / ang_r * freq + 11.3,
                d_el / ang_r * freq + 7.7,
                obj.texture_seed,
            )
            shade = 1.0 + 0.22 * (d_el / ang_r)  # lit from above
            lum = obj.luminance * (1.0 - obj.contrast * (tex - 0.5)) * shade
            value = lum * (1.0 - fog) + config.fog_luminance * fog
            np.clip(value, 0.0, 1.0, out=value)
            image[row_lo : row_hi + 1, c0:c1][writable] = value.astype(np.float32)[
                writable
            ]
            sub_depth[writable] = dist
            mask[row_lo : row_hi + 1, c0:c1][writable] = True

    return layer


def _pad_dim(n: int) -> int:
    """Smallest power of two >= ``n`` (bucket padding size)."""
    return 1 << (max(1, int(n)) - 1).bit_length()


def _draw_objects_vector(
    layer: Layer,
    objects: Sequence[SceneObject],
    eye: Vec3,
    config: RenderConfig,
) -> Layer:
    """Grouped-kernel object draw, bit-identical to the scalar oracle.

    The scalar loop spends ~40 us of numpy-call overhead per object on
    bounding boxes that are typically a handful of pixels, so the frame
    cost is dominated by interpreter dispatch, not arithmetic.  This path
    restructures the same work into four phases:

    1. **setup** — a cheap per-object Python loop computes the scalar
       draw parameters (bbox, fog, texture frequency) with exactly the
       same ``math.*`` calls as the oracle, emitting one *draw unit* per
       (object, seam segment) in global far-to-near order;
    2. **bucket** — units are grouped by power-of-two-padded bbox size so
       each group forms one rectangular ``(n, rows, cols)`` batch;
    3. **evaluate** — each bucket runs the per-pixel math (angular disk
       test, cell-noise texture, shading, fog) as one vectorized kernel.
       Elementwise float ops are per-element deterministic in numpy, so
       batching cannot change any pixel value;
    4. **scatter** — writes replay sequentially in the original draw
       order with the same strict ``dist < depth`` test, preserving the
       painter/tie semantics of the oracle exactly.

    Padding lanes are masked out via per-unit validity masks; padded
    row/column indices are clamped before the angle-table gather so they
    stay in range (their values are computed but never written).
    """
    az_cols, el_rows = _pixel_angles(config)
    width, height = config.width, config.height
    image, mask, depth = layer.image, layer.mask, layer.depth

    dists, ang, kept_indices = _cull_objects(objects, eye, config)

    # Phase 1 — per-object scalar parameters (identical math to the oracle).
    units = []  # (row_lo, row_hi, c0, c1, az0, el0, cos_el, ang_r, dist,
    #              fog, freq, seed, luminance, contrast)
    for index in kept_indices:
        obj = objects[index]
        dist = float(dists[index])
        ang_r = min(float(ang[index]), math.pi / 2 - 1e-3)
        az0, el0 = direction_to_angles(obj.center - eye)
        rv = ang_r * height / math.pi
        v0 = (0.5 - el0 / math.pi) * height
        row_lo = max(0, int(math.floor(v0 - rv - 1)))
        row_hi = min(height - 1, int(math.ceil(v0 + rv + 1)))
        if row_lo > row_hi:
            continue
        cos_el = max(0.15, math.cos(el0))
        ru = ang_r / cos_el * width / TWO_PI
        u0 = az0 / TWO_PI * width
        col_lo = int(math.floor(u0 - ru - 1))
        col_hi = int(math.ceil(u0 + ru + 1))
        if col_hi - col_lo + 1 >= width:
            col_lo, col_hi = 0, width - 1
        segments = []
        if col_lo < 0:
            segments.append((col_lo % width, width))
            segments.append((0, col_hi + 1))
        elif col_hi >= width:
            segments.append((col_lo, width))
            segments.append((0, col_hi - width + 1))
        else:
            segments.append((col_lo, col_hi + 1))
        fog = 1.0 - math.exp(-dist / config.fog_distance)
        if config.indoor:
            fog *= 0.2
        ang_r_px = ang_r * height / math.pi
        freq = min(32.0, max(1.0, ang_r_px / 2.8)) * config.object_texture_freq / 3.0
        for c0, c1 in segments:
            if c0 >= c1:
                continue
            units.append(
                (row_lo, row_hi, c0, c1, az0, el0, cos_el, ang_r, dist,
                 fog, freq, obj.texture_seed, obj.luminance, obj.contrast)
            )
    if not units:
        return layer
    perf.count("raster.vector.units", len(units))

    # Phase 2 — bucket by padded bbox size.
    buckets: dict = {}
    for pos, unit in enumerate(units):
        key = (_pad_dim(unit[1] - unit[0] + 1), _pad_dim(unit[3] - unit[2]))
        buckets.setdefault(key, []).append(pos)
    perf.count("raster.vector.buckets", len(buckets))

    # Phase 3 — one vectorized evaluation per bucket.
    values = [None] * len(units)  # float32 (rows, cols) per unit
    insides = [None] * len(units)  # bool (rows, cols) per unit
    drawable = np.zeros(len(units), dtype=bool)
    for (rows_pad, cols_pad), members in buckets.items():
        sub = [units[p] for p in members]
        row_lo_a = np.array([u[0] for u in sub])
        n_rows = np.array([u[1] - u[0] + 1 for u in sub])
        c0_a = np.array([u[2] for u in sub])
        n_cols = np.array([u[3] - u[2] for u in sub])
        az0_a = np.array([u[4] for u in sub])[:, None]
        el0_a = np.array([u[5] for u in sub])[:, None]
        cos_a = np.array([u[6] for u in sub])[:, None]
        ang_r3 = np.array([u[7] for u in sub])[:, None, None]
        fog3 = np.array([u[9] for u in sub])[:, None, None]
        freq3 = np.array([u[10] for u in sub])[:, None, None]
        seed3 = np.array([u[11] for u in sub], dtype=np.int64)[:, None, None]
        lum3 = np.array([u[12] for u in sub])[:, None, None]
        con3 = np.array([u[13] for u in sub])[:, None, None]

        # Gathered pixel angles; padded lanes clamp into range and are
        # masked out of `inside` below.
        row_idx = np.minimum(row_lo_a[:, None] + np.arange(rows_pad), height - 1)
        col_idx = np.minimum(c0_a[:, None] + np.arange(cols_pad), width - 1)
        d_el = (el_rows[row_idx] - el0_a)[:, :, None]  # (n, R, 1)
        daz = (az_cols[col_idx] - az0_a + math.pi) % TWO_PI - math.pi
        daz = (daz * cos_a)[:, None, :]  # (n, 1, C)

        inside = daz * daz + d_el * d_el <= ang_r3 * ang_r3
        valid = (np.arange(rows_pad)[None, :] < n_rows[:, None])[:, :, None]
        valid = valid & (np.arange(cols_pad)[None, :] < n_cols[:, None])[:, None, :]
        inside &= valid

        tex = cell_noise(
            daz / ang_r3 * freq3 + 11.3,
            d_el / ang_r3 * freq3 + 7.7,
            seed3,
        )
        shade = 1.0 + 0.22 * (d_el / ang_r3)  # lit from above
        lum = lum3 * (1.0 - con3 * (tex - 0.5)) * shade
        value = lum * (1.0 - fog3) + config.fog_luminance * fog3
        np.clip(value, 0.0, 1.0, out=value)
        value32 = value.astype(np.float32)

        any_inside = inside.reshape(len(sub), -1).any(axis=1)
        for slot, pos in enumerate(members):
            u = units[pos]
            r, c = u[1] - u[0] + 1, u[3] - u[2]
            values[pos] = value32[slot, :r, :c]
            insides[pos] = inside[slot, :r, :c]
            drawable[pos] = any_inside[slot]

    # Phase 4 — sequential scatter in the exact global draw order.
    for pos, unit in enumerate(units):
        if not drawable[pos]:
            continue
        row_lo, row_hi, c0, c1 = unit[:4]
        dist = unit[8]
        sub_depth = depth[row_lo : row_hi + 1, c0:c1]
        writable = insides[pos] & (dist < sub_depth)
        if not writable.any():
            continue
        image[row_lo : row_hi + 1, c0:c1][writable] = values[pos][writable]
        sub_depth[writable] = dist
        mask[row_lo : row_hi + 1, c0:c1][writable] = True

    return layer


def empty_layer(config: RenderConfig) -> Layer:
    """A transparent layer (no coverage, infinite depth)."""
    image = new_frame(config.width, config.height)
    return Layer(
        image=image,
        mask=np.zeros_like(image, dtype=bool),
        depth=np.full(image.shape, _INFINITY, dtype=np.float64),
    )


def merge_layers(base: Layer, *overlays: Layer) -> np.ndarray:
    """Composite overlay layers onto a base frame (§5.1 task 5, "Merging").

    Overlays are applied in order; each overlay's covered pixels replace the
    result so far.  This mirrors Coterie's merge of decoded far BE with the
    locally rendered near BE and FI.
    """
    out = base.image.copy()
    for overlay in overlays:
        if overlay.image.shape != out.shape:
            raise ValueError("layer shapes differ")
        out[overlay.mask] = overlay.image[overlay.mask]
    return out
