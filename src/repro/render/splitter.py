"""Near/far BE split rendering — the paper's key idea (§4.3).

The whole BE of a viewpoint is decomposed by a *cutoff radius* on ground
distance: objects (and ground) within the radius form the **near BE**,
everything beyond it (plus the sky) forms the **far BE**.  Coterie renders
near BE on the phone and prefetches panoramic far-BE frames from the
server; this module renders each piece and merges them back into the
displayed frame.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry import Vec2, Vec3, camera_height
from ..world.objects import SceneObject
from ..world.scene import Scene
from .rasterizer import (
    Layer,
    RenderConfig,
    draw_objects,
    empty_layer,
    merge_layers,
    render_background,
)

_INFINITY = float("inf")


def eye_at(scene: Scene, position: Vec2, eye_height: float = 1.7) -> Vec3:
    """Camera position for a player standing at ``position``.

    Uses the ray-traced foothold + eye height adjustment of §6.
    """
    return Vec3(position.x, position.y, camera_height(scene.terrain, position, eye_height))


def render_whole_be(
    scene: Scene, eye: Vec3, config: RenderConfig
) -> Layer:
    """The undecoupled panoramic BE frame (what Furion prefetches)."""
    layer = render_background(scene, eye, config, near_clip=0.0, far_clip=_INFINITY)
    objects = scene.objects_within(eye.ground(), config.view_limit)
    return draw_objects(layer, objects, eye, config)


def render_far_be(
    scene: Scene, eye: Vec3, config: RenderConfig, cutoff_radius: float
) -> Layer:
    """The far BE: sky, ground beyond the cutoff, objects beyond the cutoff.

    This is the frame Coterie's server pre-renders and clients cache; the
    larger the cutoff, the more stable it is under viewpoint displacement.
    """
    if cutoff_radius < 0:
        raise ValueError("cutoff_radius must be non-negative")
    layer = render_background(
        scene, eye, config, near_clip=cutoff_radius, far_clip=_INFINITY
    )
    objects = scene.objects_in_annulus(
        eye.ground(), cutoff_radius, max(config.view_limit, cutoff_radius)
    )
    return draw_objects(layer, objects, eye, config)


def render_near_be(
    scene: Scene, eye: Vec3, config: RenderConfig, cutoff_radius: float
) -> Layer:
    """The near BE: ground and objects within the cutoff, nothing else.

    Returned as a partial layer (mask marks covered pixels) to composite
    over a far-BE frame.
    """
    if cutoff_radius < 0:
        raise ValueError("cutoff_radius must be non-negative")
    layer = render_background(
        scene, eye, config, near_clip=0.0, far_clip=cutoff_radius
    )
    objects = scene.objects_within(eye.ground(), cutoff_radius)
    return draw_objects(layer, objects, eye, config)


def render_fi(
    avatars: Sequence[SceneObject], eye: Vec3, config: RenderConfig
) -> Layer:
    """Foreground interactions: the players' avatars/vehicles as a layer."""
    layer = empty_layer(config)
    return draw_objects(layer, avatars, eye, config)


def render_display_frame(
    scene: Scene,
    eye: Vec3,
    config: RenderConfig,
    cutoff_radius: float,
    avatars: Sequence[SceneObject] = (),
    far_be: Optional[Layer] = None,
) -> np.ndarray:
    """The final displayed frame: far BE + near BE + FI (§5.1 merging).

    ``far_be`` may be a cached/decoded far-BE layer rendered from a *nearby*
    viewpoint — exactly the reuse Coterie performs; ``None`` renders it
    fresh from ``eye``.
    """
    if far_be is None:
        far_be = render_far_be(scene, eye, config, cutoff_radius)
    near = render_near_be(scene, eye, config, cutoff_radius)
    fi = render_fi(avatars, eye, config)
    return merge_layers(far_be, near, fi)


def reference_frame(
    scene: Scene,
    eye: Vec3,
    config: RenderConfig,
    avatars: Sequence[SceneObject] = (),
) -> np.ndarray:
    """Ground-truth frame: everything rendered locally from ``eye``.

    The image-quality baseline of Table 7 ("frames directly generated on
    the client").
    """
    whole = render_whole_be(scene, eye, config)
    fi = render_fi(avatars, eye, config)
    return merge_layers(whole, fi)
