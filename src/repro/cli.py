"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the everyday workflows:

* ``run`` — simulate one (system, game, players) experiment and print the
  QoE/network summary; ``--trace``/``--events`` capture a sim-time trace
  (Perfetto JSON / JSONL event log), ``--metrics``/``--openmetrics``
  sample the sim-time metrics pipeline (JSONL series dump / OpenMetrics
  text snapshot), ``--dashboard`` renders a live sparkline view, and
  ``--perf`` prints the stage profile table afterwards;
* ``report`` — frame-budget attribution from a ``--events`` JSONL log
  (per-stage p50/p95/p99 and the deadline-miss breakdown), SLO
  attainment from a ``--metrics`` dump, or ``--diff A B`` run-diff
  forensics between two dumps (exit 1 on regression);
* ``preprocess`` — run the §6 offline pipeline for a game and print the
  cutoff-scheme statistics (Table 3's columns);
* ``fleet`` — simulate fleet-scale multi-session serving (matchmaker,
  fleet admission, shared render farm, cross-session dedup) under a
  seeded arrival workload or a committed ``--arrivals`` trace file, and
  print the fleet summary block;
* ``games`` — list the nine study games with their published dimensions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import dataclasses

from . import perf
from .adapt import AbrConfig
from .faults import ChurnSchedule, FaultSchedule
from .fleet import (
    FIDELITIES,
    WORKLOADS,
    ArrivalTrace,
    FleetBudget,
    FleetConfig,
    LobbyConfig,
    fleet_slos,
    run_fleet,
)
from .net import TRACE_PROFILES, ImpairmentConfig, RateTrace
from .predict import PredictConfig
from .render import KERNEL_MODES
from .session import SyncConfig
from .systems import SYSTEMS, SessionConfig, prepare_artifacts, run_system
from .telemetry import (
    FrameBudgetReport,
    LiveDashboard,
    MetricsHub,
    SloEngine,
    SpanTracer,
    diff_dumps,
    emit_slo_instants,
    read_metrics_jsonl,
    render_diff,
    results_from_dump,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
    write_openmetrics,
)
from .world import ALL_GAMES, game_spec, load_game


def _cmd_games(_args: argparse.Namespace) -> int:
    print(f"{'name':10} {'title':24} {'genre':24} {'dimensions':>12}  type")
    for name in ALL_GAMES:
        spec = game_spec(name)
        dims = f"{spec.dimensions[0]:g}x{spec.dimensions[1]:g} m"
        kind = "indoor" if spec.indoor else "outdoor"
        print(f"{name:10} {spec.title:24} {spec.genre:24} {dims:>12}  {kind}")
    return 0


MAX_CLI_PLAYERS = 32


def _player_count(text: str) -> int:
    """Argparse type for the ``players`` positional: int in [1, 32]."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"players must be an integer, got {text!r}"
        ) from None
    if not 1 <= value <= MAX_CLI_PLAYERS:
        raise argparse.ArgumentTypeError(
            f"players must be between 1 and {MAX_CLI_PLAYERS}, got {value}"
        )
    return value


def _cmd_run(args: argparse.Namespace) -> int:
    if args.system == "mobile" and (args.trace_profile or args.abr):
        print("--trace-profile/--abr require a networked system "
              "(coterie, multi_furion, multi_furion_cache, thin_client)",
              file=sys.stderr)
        return 2
    impairment = None
    if args.loss > 0:
        impairment = ImpairmentConfig.bursty(args.loss, seed=args.seed)
    if args.trace_profile is not None:
        if args.trace_profile in TRACE_PROFILES:
            rate_trace = RateTrace.named(
                args.trace_profile, seed=args.seed,
                duration_ms=args.duration * 1000.0,
            )
        else:
            try:
                rate_trace = RateTrace.from_file(args.trace_profile)
            except (OSError, ValueError) as exc:
                print(f"invalid --trace-profile: {exc}", file=sys.stderr)
                return 2
        if impairment is None:
            impairment = ImpairmentConfig(rate_trace=rate_trace)
        else:
            impairment = dataclasses.replace(impairment, rate_trace=rate_trace)
    faults = None
    if args.faults:
        try:
            faults = FaultSchedule.parse(args.faults)
        except ValueError as exc:
            print(f"invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    churn = None
    if args.churn is not None:
        if args.system in ("mobile",):
            print("--churn requires a networked system "
                  "(coterie, multi_furion, multi_furion_cache, thin_client)",
                  file=sys.stderr)
            return 2
        try:
            churn = ChurnSchedule.parse(args.churn)
        except ValueError as exc:
            print(f"invalid --churn spec: {exc}", file=sys.stderr)
            return 2
    if args.max_players is not None and args.players > args.max_players:
        print(f"players ({args.players}) exceeds --max-players "
              f"({args.max_players})", file=sys.stderr)
        return 2
    if (args.predict or args.sync_check) and args.system != "coterie":
        print("--predict/--sync-check require the coterie system "
              "(frame cache + PUN sync channel)", file=sys.stderr)
        return 2
    if args.predict_horizon is not None and not args.predict:
        print("--predict-horizon requires --predict", file=sys.stderr)
        return 2
    predict = None
    if args.predict:
        try:
            predict = (PredictConfig() if args.predict_horizon is None
                       else PredictConfig(horizon_frames=args.predict_horizon))
        except ValueError as exc:
            print(f"invalid --predict-horizon: {exc}", file=sys.stderr)
            return 2
    sync = SyncConfig() if args.sync_check else None
    if args.verify_determinism:
        return _verify_determinism(args, impairment, faults, churn,
                                   predict, sync)
    tracer = SpanTracer() if (args.trace or args.events) else None
    metered = bool(args.metrics or args.openmetrics or args.dashboard)
    hub = MetricsHub() if metered else None
    dashboard = None
    if args.dashboard and hub is not None:
        dashboard = LiveDashboard(hub, engine=SloEngine())
        dashboard.attach()
    config = SessionConfig(duration_s=args.duration, seed=args.seed,
                           wifi_mbps=args.wifi_mbps,
                           impairment=impairment, faults=faults,
                           adapt=AbrConfig() if args.abr else None,
                           churn=churn, max_players=args.max_players,
                           predict=predict, sync=sync,
                           tracer=tracer, metrics=hub, kernels=args.kernels)
    if args.perf:
        with perf.timed("run.simulate"):
            result = run_system(args.system, args.game, args.players, config)
    else:
        result = run_system(args.system, args.game, args.players, config)
    slo_results = None
    if hub is not None:
        horizon_ms = args.duration * 1000.0
        if dashboard is not None:
            slo_results = dashboard.final(horizon_ms)
        else:
            slo_results = SloEngine().evaluate(hub.series)
        if tracer is not None:
            emit_slo_instants(tracer, slo_results)
    metrics0 = result.players[0].metrics
    print(f"{args.system} on {args.game}, {args.players} player(s), "
          f"{args.duration:g}s simulated:")
    print(f"  FPS             : {result.mean_fps:.1f}")
    print(f"  inter-frame     : {result.mean_inter_frame_ms:.1f} ms "
          f"(p95 {metrics0.p95_inter_frame_ms:.1f}, "
          f"p99 {metrics0.p99_inter_frame_ms:.1f})")
    print(f"  responsiveness  : {result.mean_responsiveness_ms:.1f} ms "
          f"(p95 {metrics0.p95_responsiveness_ms:.1f}, "
          f"p99 {metrics0.p99_responsiveness_ms:.1f})")
    if result.mean_cache_hit_ratio is not None:
        print(f"  cache hit ratio : {100 * result.mean_cache_hit_ratio:.1f} %")
    print(f"  BE traffic      : {result.be_mbps:.1f} Mbps "
          f"({result.per_player_be_mbps():.1f}/player)")
    print(f"  FI traffic      : {result.fi_kbps:.1f} Kbps")
    player = result.players[0]
    print(f"  CPU / GPU       : {100 * player.metrics.cpu_utilization:.0f} % "
          f"/ {100 * player.metrics.gpu_utilization:.0f} %")
    print(f"  power draw      : {player.power_w:.2f} W")
    print(f"  kernels         : {_kernels_summary(config.render_config.kernels)}")
    if config.degraded_mode:
        metrics = [p.metrics for p in result.players]
        miss = sum(m.deadline_miss_rate for m in metrics) / len(metrics)
        stale = sum(m.stale_frames for m in metrics)
        max_age = max(m.max_stale_age_ms for m in metrics)
        retries = sum(m.fetch_retries for m in metrics)
        abandoned = sum(m.fetches_abandoned for m in metrics)
        rewarms = sum(m.rewarm_fetches for m in metrics)
        print("  -- resilience --")
        print(f"  deadline misses : {100 * miss:.1f} % of frames")
        print(f"  stale frames    : {stale} (max age {max_age:.1f} ms)")
        print(f"  fetch retries   : {retries} "
              f"({abandoned} abandoned, {rewarms} re-warms)")
    if config.adapt is not None:
        metrics = [p.metrics for p in result.players if p.metrics.frames]
        down = sum(m.abr_steps_down for m in metrics)
        up = sum(m.abr_steps_up for m in metrics)
        drops = sum(m.abr_drops for m in metrics)
        drop_rate = sum(m.drop_rate for m in metrics) / len(metrics)
        mean_crf = sum(m.abr_mean_crf for m in metrics) / len(metrics)
        degraded = sum(m.abr_degraded_ms for m in metrics) / len(metrics)
        print("  -- adaptation --")
        print(f"  CRF ladder      : {down} steps down / {up} up "
              f"(time-weighted CRF {mean_crf:.1f})")
        print(f"  frame drops     : {drops} ({100 * drop_rate:.1f} % of frames)")
        print(f"  degraded time   : {degraded:.0f} ms/player below base quality")
    if config.predict is not None:
        metrics = [p.metrics for p in result.players]
        forecasts = sum(m.spec_predictions for m in metrics)
        prefetches = sum(m.spec_prefetches for m in metrics)
        confirms = sum(m.spec_confirms for m in metrics)
        rollbacks = sum(m.spec_rollbacks for m in metrics)
        expired = sum(m.spec_expired for m in metrics)
        mispredicted = sum(m.spec_mispredictions for m in metrics)
        print("  -- speculation --")
        print(f"  pose forecasts  : {forecasts} "
              f"({mispredicted} beyond confidence radius)")
        print(f"  spec prefetches : {prefetches} "
              f"({confirms} confirmed, {rollbacks} rolled back, "
              f"{expired} expired)")
    if config.sync is not None:
        metrics = [p.metrics for p in result.players]
        alarms = sum(m.desync_alarms for m in metrics)
        resyncs = sum(m.resyncs for m in metrics)
        detect = max((m.desync_detection_ms for m in metrics), default=0.0)
        recover = sum(m.resync_recovery_ms for m in metrics)
        print("  -- sync check --")
        print(f"  desync alarms   : {alarms} "
              f"(worst detection {detect:.1f} ms)")
        print(f"  resyncs         : {resyncs} "
              f"(recovery {recover:.1f} ms total)")
    if result.membership is not None:
        member = result.membership
        print("  -- membership --")
        print(f"  roster          : {member.initial_players} initial, "
              f"{member.total_slots} slots, "
              f"{len(member.final_active)} active at end")
        print(f"  joins           : {member.joins_requested} requested, "
              f"{member.joins_admitted} admitted, "
              f"{member.joins_rejected} rejected "
              f"({member.joins_queued} queued retries)")
        print(f"  departures      : {member.leaves} graceful, "
              f"{member.evictions} evicted")
        print(f"  epochs          : {member.n_epochs} "
              f"({member.invariant_checks} invariant checks, "
              f"{member.invariant_violations} violations)")
        admitted = [s for s in member.stats if s.join_latency_ms > 0]
        if admitted:
            lat = sum(s.join_latency_ms for s in admitted) / len(admitted)
            warm = sum(s.warmup_ms for s in admitted) / len(admitted)
            print(f"  join latency    : {lat:.1f} ms mean "
                  f"(warm-up {warm:.1f} ms)")
    if hub is not None and slo_results is not None:
        print("  -- metrics --")
        print(f"  series          : {len(hub.series)} "
              f"({hub.samples_taken} sample boundaries)")
        for slo in slo_results:
            if slo.attainment is None:
                status = "n/a (series absent)"
            else:
                status = (f"{100.0 * slo.attainment:.1f} % attained, "
                          f"worst burn {slo.worst_burn:.1f}x")
            alerts = f", {len(slo.alerts)} alert(s)" if slo.alerts else ""
            print(f"  slo {slo.spec.name:<18}: {status}{alerts}")
        if args.metrics:
            n = write_metrics_jsonl(
                args.metrics, hub, slo_results=slo_results,
                meta={"system": args.system, "game": args.game,
                      "players": args.players, "seed": args.seed,
                      "duration_s": args.duration},
            )
            print(f"  metrics dump    : {n} records -> {args.metrics} "
                  f"(compare with `repro report --diff A B`)")
        if args.openmetrics:
            write_openmetrics(args.openmetrics, hub)
            print(f"  openmetrics     : -> {args.openmetrics}")
    if tracer is not None:
        if args.trace:
            n = write_chrome_trace(args.trace, tracer.records)
            print(f"  trace           : {n} events -> {args.trace} "
                  f"(load in Perfetto / chrome://tracing)")
        if args.events:
            n = write_events_jsonl(args.events, tracer.records)
            print(f"  event log       : {n} records -> {args.events} "
                  f"(analyze with `repro report {args.events}`)")
    if args.perf:
        print()
        print(perf.report())
    return 0


def _first_divergence(a, b) -> Optional[str]:
    """First observable difference between two RunResults, or None.

    Compares the roster shape, every player's SessionMetrics field by
    field, the raw FrameRecord timelines, the aggregate traffic counters,
    and the membership summary — the full determinism surface a run
    exposes.  Returns a one-line human-readable description of the first
    mismatch found.
    """
    if len(a.players) != len(b.players):
        return (f"player count differs: {len(a.players)} vs "
                f"{len(b.players)}")
    for pa, pb in zip(a.players, b.players):
        if pa.metrics != pb.metrics:
            for field in dataclasses.fields(pa.metrics):
                va = getattr(pa.metrics, field.name)
                vb = getattr(pb.metrics, field.name)
                if va != vb:
                    return (f"player {pa.player_id} metrics.{field.name}: "
                            f"{va!r} vs {vb!r}")
        if pa.records != pb.records:
            for i, (ra, rb) in enumerate(zip(pa.records, pb.records)):
                if ra != rb:
                    return (f"player {pa.player_id} frame {i} "
                            f"(t={ra.t_ms:.3f} ms): {ra!r} vs {rb!r}")
            return (f"player {pa.player_id} frame count: "
                    f"{len(pa.records)} vs {len(pb.records)}")
        if pa.fetches != pb.fetches:
            return (f"player {pa.player_id} fetches: "
                    f"{pa.fetches} vs {pb.fetches}")
    if a.be_mbps != b.be_mbps:
        return f"be_mbps: {a.be_mbps!r} vs {b.be_mbps!r}"
    if a.fi_kbps != b.fi_kbps:
        return f"fi_kbps: {a.fi_kbps!r} vs {b.fi_kbps!r}"
    if repr(a.membership) != repr(b.membership):
        return f"membership: {a.membership!r} vs {b.membership!r}"
    return None


def _verify_determinism(args, impairment, faults, churn, predict, sync) -> int:
    """Run the experiment twice and fail loudly on any bit divergence.

    Both runs use identical configs with tracing/metrics disabled (those
    are observers, not state).  Exit 0 when every per-player metric,
    frame record, and aggregate counter is bit-identical; exit 1 with a
    first-divergence report otherwise.
    """
    def make_config() -> SessionConfig:
        return SessionConfig(
            duration_s=args.duration, seed=args.seed,
            wifi_mbps=args.wifi_mbps, impairment=impairment,
            faults=faults, adapt=AbrConfig() if args.abr else None,
            churn=churn, max_players=args.max_players,
            predict=predict, sync=sync, kernels=args.kernels,
        )

    label = f"{args.system} on {args.game}, {args.players} player(s), " \
            f"{args.duration:g}s, seed {args.seed}"
    print(f"determinism check: {label}")
    result_a = run_system(args.system, args.game, args.players, make_config())
    result_b = run_system(args.system, args.game, args.players, make_config())
    divergence = _first_divergence(result_a, result_b)
    frames = sum(len(p.records) for p in result_a.players)
    if divergence is not None:
        print(f"  run 1 vs run 2 DIVERGED: {divergence}", file=sys.stderr)
        return 1
    print(f"  run 1 == run 2: {len(result_a.players)} player(s), "
          f"{frames} frame records, BE {result_a.be_mbps:.6f} Mbps, "
          f"FI {result_a.fi_kbps:.6f} Kbps -- bit-identical")
    return 0


def _kernels_summary(mode: str) -> str:
    """One-line frame-pipeline kernel summary from the perf registry.

    Reports the active kernel mode, the wall-clock spent in the raster
    stage, and — when the dirty-block codec ran — the block reuse ratio.
    """
    raster_s = perf.stage_names().get("raster", 0.0)
    parts = [f"raster {1000 * raster_s:.0f} ms"]
    total = perf.counter("codec.blocks_total")
    if total:
        reused = perf.counter("codec.blocks_reused")
        parts.append(f"block reuse {100 * reused / total:.0f} % of {total}")
    return f"{mode} ({', '.join(parts)})"


def _is_metrics_jsonl(path: str) -> bool:
    """True when the file's first record looks like a metrics dump."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                return (
                    isinstance(record, dict)
                    and record.get("kind") in ("meta", "series",
                                               "histogram", "slo")
                )
    except (OSError, ValueError):
        return False
    return False


def _report_metrics(path: str) -> int:
    """SLO attainment + worst burn windows from a metrics JSONL dump."""
    try:
        dump = read_metrics_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics dump: {exc}", file=sys.stderr)
        return 2
    if not dump.series:
        print(f"metrics dump {path} has no series records "
              "(empty or truncated dump)", file=sys.stderr)
        return 2
    meta = dump.meta or {}
    label = " ".join(
        str(meta[k]) for k in ("system", "game", "players") if k in meta
    )
    print(f"metrics dump {path}" + (f" ({label})" if label else "") + ":")
    print(f"  series          : {len(dump.series)}")
    for slo in results_from_dump(dump):
        name = slo["name"]
        if slo["attainment"] is None:
            print(f"  slo {name:<18}: n/a (series absent)")
            continue
        print(f"  slo {name:<18}: {100.0 * slo['attainment']:.1f} % "
              f"attained ({slo['compliant']}/{slo['evaluated']} windows, "
              f"{len(slo['alerts'])} alert(s))")
        for t_ms, burn in slo["worst"]:
            print(f"      worst burn  : {burn:8.2f}x at t={t_ms:.0f} ms")
    return 0


def _report_diff(path_a: str, path_b: str) -> int:
    """Run-diff forensics: exit 0 clean, 1 regression, 2 parse error."""
    try:
        dump_a = read_metrics_jsonl(path_a)
        dump_b = read_metrics_jsonl(path_b)
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics dump: {exc}", file=sys.stderr)
        return 2
    rows = diff_dumps(dump_a, dump_b)
    print(render_diff(rows, path_a, path_b))
    return 1 if any(row.regressed for row in rows) else 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.diff is not None:
        return _report_diff(*args.diff)
    if args.events is None:
        print("report needs an EVENTS.jsonl/METRICS.jsonl argument "
              "or --diff A B", file=sys.stderr)
        return 2
    try:
        with open(args.events, "r", encoding="utf-8") as fh:
            has_records = any(line.strip() for line in fh)
    except OSError as exc:
        print(f"cannot read event log: {exc}", file=sys.stderr)
        return 2
    if not has_records:
        print(f"event log {args.events} is empty (no records)",
              file=sys.stderr)
        return 2
    if _is_metrics_jsonl(args.events):
        return _report_metrics(args.events)
    try:
        report = FrameBudgetReport.from_jsonl(args.events)
    except (OSError, ValueError) as exc:
        print(f"cannot read event log: {exc}", file=sys.stderr)
        return 2
    if not report.frames:
        print(f"event log {args.events} contains no frame spans "
              "(truncated run or wrong file?)", file=sys.stderr)
        return 2
    print(report.render())
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    world = load_game(args.game)
    config = SessionConfig(seed=args.seed, kernels=args.kernels)
    artifacts = prepare_artifacts(
        world,
        config,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    stats = artifacts.cutoff_map.stats()
    radii = sorted(artifacts.cutoff_map.leaf_radii())
    print(f"offline preprocessing for {world.spec.title}:")
    print(f"  leaf regions     : {stats.leaf_count}")
    print(f"  quadtree depth   : {stats.avg_depth:.2f} avg / {stats.max_depth} max")
    print(f"  cutoff radii     : {radii[0]:.1f} - {radii[-1]:.1f} m "
          f"(median {radii[len(radii) // 2]:.1f})")
    print(f"  FI budget        : {artifacts.budget.fi_ms:.1f} ms "
          f"-> near BE {artifacts.budget.near_be_budget_ms:.1f} ms")
    print(f"  far-BE frame     : ~{artifacts.far_size_model.mean_bytes / 1000:.0f} KB")
    print(f"  whole-BE frame   : ~{artifacts.whole_size_model.mean_bytes / 1000:.0f} KB")
    print(f"  modeled offline  : "
          f"{artifacts.cutoff_map.modeled_processing_hours():.2f} h on-device")
    if artifacts.disk_cache is not None:
        cache = artifacts.disk_cache
        print(f"  disk cache       : {cache.entry_count()} entries, "
              f"{cache.size_bytes() / 1e6:.1f} MB in {cache.root}")
    if args.perf:
        print()
        print(perf.report())
    return 0


def _fleet_config(args: argparse.Namespace,
                  arrivals: Optional[ArrivalTrace],
                  games: tuple) -> FleetConfig:
    """Assemble the :class:`FleetConfig` a ``repro fleet`` run uses."""
    return FleetConfig(
        workload=args.workload,
        rate_per_s=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        games=games,
        arrivals=arrivals,
        lobby=LobbyConfig(
            session_size=args.session_size,
            min_session_size=args.min_session_size,
            max_wait_ms=args.max_wait_ms,
            retry_ms=args.retry_ms,
            patience_ms=args.patience_ms,
        ),
        budget=FleetBudget(
            gpu_slots=args.gpu_slots,
            render_ms=args.render_ms,
            bandwidth_mbps=args.fleet_mbps,
            max_sessions=args.max_sessions,
        ),
        session_duration_s=args.session_duration,
        warmup_points=args.warmup_points,
        batch_max=args.batch_max,
        deadline_ms=args.deadline_ms,
        shared=not args.isolated,
        fidelity=args.fidelity,
        system=args.system,
    )


def _print_fleet_summary(summary) -> None:
    """Render the fleet summary block (the tentpole's headline output)."""
    s = summary
    print("  -- matchmaking --")
    print(f"  players         : {s.players_arrived} arrived, "
          f"{s.players_matched} matched, {s.players_rejected} rejected, "
          f"{s.players_unmatched} unmatched")
    print(f"  sessions        : {s.sessions_formed} formed, "
          f"{s.sessions_admitted} admitted "
          f"({s.sessions_rejected} rejected, "
          f"{s.admission_retries} retries)")
    if s.rejects_by_reason:
        reasons = ", ".join(
            f"{reason} x{count}" for reason, count in s.rejects_by_reason
        )
        print(f"  reject reasons  : {reasons}")
    print(f"  join latency    : mean {s.join_mean_ms:.1f} ms "
          f"(p50 {s.join_p50_ms:.1f}, p99 {s.join_p99_ms:.1f})")
    farm = s.farm
    print("  -- render farm --")
    print(f"  renders         : {farm.renders} in {farm.batches} batches "
          f"(mean {farm.mean_batch:.2f}/batch, peak queue {farm.queue_peak})")
    print(f"  farm wait       : mean {farm.mean_wait_ms:.1f} ms "
          f"(p99 {farm.p99_wait_ms:.1f}, "
          f"{farm.deadline_misses} deadline misses)")
    print(f"  coalesced       : {farm.coalesced} in-flight dedups")
    print("  -- shared store --")
    print(f"  dedup           : {s.store_hits}/{s.store_lookups} hits "
          f"({100.0 * s.dedup_ratio:.1f} % fleet-wide)")
    print("  -- throughput --")
    print(f"  sessions/sec    : {s.sessions_per_s:.4f} "
          f"({s.sessions_completed} completed in "
          f"{s.makespan_ms / 1000.0:.1f} s)")


def _verify_fleet_determinism(config: FleetConfig) -> int:
    """Run the fleet twice; exit 1 unless the summaries are bit-identical."""
    result_a = run_fleet(config)
    result_b = run_fleet(config)
    if result_a.summary != result_b.summary:
        for fld in dataclasses.fields(result_a.summary):
            va = getattr(result_a.summary, fld.name)
            vb = getattr(result_b.summary, fld.name)
            if va != vb:
                print(f"  run 1 vs run 2 DIVERGED: summary.{fld.name}: "
                      f"{va!r} vs {vb!r}", file=sys.stderr)
                return 1
        print("  run 1 vs run 2 DIVERGED", file=sys.stderr)
        return 1
    if result_a.sessions != result_b.sessions:
        print("  run 1 vs run 2 DIVERGED: per-session reports differ",
              file=sys.stderr)
        return 1
    s = result_a.summary
    print(f"  run 1 == run 2: {s.sessions_completed} session(s), "
          f"{s.farm.renders} renders, dedup {100.0 * s.dedup_ratio:.1f} % "
          "-- bit-identical")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    games = tuple(g.strip() for g in args.games.split(",") if g.strip())
    unknown = [g for g in games if g not in ALL_GAMES]
    if unknown:
        print(f"unknown game(s) {', '.join(unknown)}; "
              f"known: {', '.join(ALL_GAMES)}", file=sys.stderr)
        return 2
    arrivals = None
    if args.arrivals is not None:
        try:
            arrivals = ArrivalTrace.from_file(args.arrivals)
        except (OSError, ValueError) as exc:
            print(f"invalid --arrivals trace: {exc}", file=sys.stderr)
            return 2
        trace_games = [g for g in arrivals.games() if g not in ALL_GAMES]
        if trace_games:
            print(f"--arrivals trace requests unknown game(s) "
                  f"{', '.join(trace_games)}; known: {', '.join(ALL_GAMES)}",
                  file=sys.stderr)
            return 2
        if not len(arrivals):
            print(f"--arrivals trace {args.arrivals} is empty",
                  file=sys.stderr)
            return 2
    try:
        config = _fleet_config(args, arrivals, games)
    except ValueError as exc:
        print(f"invalid fleet configuration: {exc}", file=sys.stderr)
        return 2
    if args.verify_determinism:
        trace = config.resolve_arrivals()
        print(f"fleet determinism check: {args.workload} workload, "
              f"{len(trace)} arrivals, seed {args.seed}")
        return _verify_fleet_determinism(config)
    metered = bool(args.metrics or args.openmetrics)
    hub = MetricsHub() if metered else None
    result = run_fleet(config, metrics=hub)
    summary = result.summary
    source = (f"trace {args.arrivals}" if arrivals is not None
              else f"{args.workload} arrivals")
    print(f"fleet: {source}, {len(summary.games)} game(s), "
          f"{summary.arrivals} player(s) over "
          f"{summary.horizon_ms / 1000.0:.1f} s:")
    _print_fleet_summary(summary)
    if config.fidelity == "full" and result.session_runs:
        total_frames = sum(
            p.metrics.frames
            for run in result.session_runs
            for p in run.players
        )
        print("  -- full fidelity --")
        print(f"  session replays : {len(result.session_runs)} "
              f"({total_frames} frame records through the "
              f"{config.system} engine)")
    if hub is not None:
        slo_results = SloEngine(fleet_slos()).evaluate(hub.series)
        print("  -- metrics --")
        print(f"  series          : {len(hub.series)} "
              f"({hub.samples_taken} sample boundaries)")
        for slo in slo_results:
            if slo.attainment is None:
                status = "n/a (series absent)"
            else:
                status = (f"{100.0 * slo.attainment:.1f} % attained, "
                          f"worst burn {slo.worst_burn:.1f}x")
            alerts = f", {len(slo.alerts)} alert(s)" if slo.alerts else ""
            print(f"  slo {slo.spec.name:<18}: {status}{alerts}")
        if args.metrics:
            n = write_metrics_jsonl(
                args.metrics, hub, slo_results=slo_results,
                meta={"workload": args.workload, "seed": args.seed,
                      "games": ",".join(summary.games),
                      "arrivals": summary.arrivals},
            )
            print(f"  metrics dump    : {n} records -> {args.metrics} "
                  f"(compare with `repro report --diff A B`)")
        if args.openmetrics:
            write_openmetrics(args.openmetrics, hub)
            print(f"  openmetrics     : -> {args.openmetrics}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coterie (ASPLOS 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    games = sub.add_parser("games", help="list the nine study games")
    games.set_defaults(func=_cmd_games)

    run = sub.add_parser("run", help="simulate one experiment")
    run.add_argument("system", choices=SYSTEMS)
    run.add_argument("game", choices=ALL_GAMES)
    run.add_argument("players", type=_player_count, nargs="?", default=2,
                     help=f"initial player count (1-{MAX_CLI_PLAYERS})")
    run.add_argument("--duration", type=float, default=10.0,
                     help="simulated seconds of game play")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--wifi-mbps", type=float, default=500.0)
    run.add_argument("--loss", type=float, default=0.0,
                     help="bursty packet-loss rate on the link (0-0.5)")
    run.add_argument("--faults", default=None,
                     help="fault schedule, e.g. "
                          "'dip@3000-8000:0.02,stall@1000-1500:25,outage@2000-4000:1'")
    run.add_argument("--churn", default=None,
                     help="membership churn schedule, e.g. "
                          "'join@2000,crash@5000:1,leave@7000:0,"
                          "flap@3000-9000:2~800'")
    run.add_argument("--max-players", type=int, default=None,
                     help="admission-control roster cap (default 8)")
    run.add_argument("--trace-profile", default=None, metavar="NAME|FILE",
                     help="time-varying link-capacity trace: one of "
                          f"{', '.join(TRACE_PROFILES)} (seeded by --seed), "
                          "or a 'start_ms capacity_factor' trace file")
    run.add_argument("--abr", action="store_true",
                     help="enable the closed-loop adaptation controller "
                          "(CRF ladder, prefetch throttling, frame drops)")
    run.add_argument("--predict", action="store_true",
                     help="enable speculative pose-prediction prefetch "
                          "with digest-checked rollback (coterie only)")
    run.add_argument("--predict-horizon", type=int, default=None,
                     metavar="FRAMES",
                     help="pose-forecast lookahead in frames "
                          "(default 6; requires --predict)")
    run.add_argument("--sync-check", action="store_true",
                     help="run the cross-peer desync validator: exchange "
                          "deterministic state hashes on a fixed cadence "
                          "and resync on mismatch (coterie only)")
    run.add_argument("--verify-determinism", action="store_true",
                     help="run the experiment twice and exit 1 with a "
                          "first-divergence report unless both runs are "
                          "bit-identical")
    run.add_argument("--trace", default=None, metavar="OUT.json",
                     help="write a Perfetto/chrome://tracing trace of the run")
    run.add_argument("--events", default=None, metavar="OUT.jsonl",
                     help="write the JSONL span log (input to `repro report`)")
    run.add_argument("--metrics", default=None, metavar="OUT.jsonl",
                     help="sample sim-time metrics and write the "
                          "schema-versioned JSONL series dump "
                          "(input to `repro report` / `report --diff`)")
    run.add_argument("--openmetrics", default=None, metavar="OUT.txt",
                     help="write an OpenMetrics text exposition snapshot "
                          "of the run's final metric values")
    run.add_argument("--dashboard", action="store_true",
                     help="render a live terminal dashboard (sparklines + "
                          "SLO status) while the run progresses")
    run.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                     help="frame-pipeline kernel mode for both the offline "
                          "pipeline and the online hot path (default: the "
                          "RenderConfig default, currently 'vector')")
    run.add_argument("--perf", action="store_true",
                     help="print the per-stage perf report afterwards")
    run.set_defaults(func=_cmd_run)

    rep = sub.add_parser(
        "report",
        help="frame-budget attribution from an event log, SLO summary "
             "from a metrics dump, or a two-run metrics diff",
    )
    rep.add_argument("events", metavar="LOG.jsonl", nargs="?", default=None,
                     help="JSONL event log from `repro run --events`, or a "
                          "metrics dump from `repro run --metrics`")
    rep.add_argument("--diff", nargs=2, metavar=("A.jsonl", "B.jsonl"),
                     default=None,
                     help="compare two metrics dumps; exit 1 when run B "
                          "regresses run A beyond per-metric thresholds")
    rep.set_defaults(func=_cmd_report)

    pre = sub.add_parser("preprocess", help="run the offline pipeline")
    pre.add_argument("game", choices=ALL_GAMES)
    pre.add_argument("--seed", type=int, default=3)
    pre.add_argument("--workers", type=int, default=1,
                     help="process count for the parallel driver (1 = serial)")
    pre.add_argument("--cache-dir", default=None,
                     help="persistent panorama/artifact cache directory")
    pre.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                     help="frame-pipeline kernel mode (default: the "
                          "RenderConfig default, currently 'vector')")
    pre.add_argument("--perf", action="store_true",
                     help="print the per-stage perf report afterwards")
    pre.set_defaults(func=_cmd_preprocess)

    fleet = sub.add_parser(
        "fleet",
        help="simulate fleet-scale multi-session serving on a shared "
             "render farm with cross-session panorama dedup",
    )
    fleet.add_argument("workload", choices=WORKLOADS, nargs="?",
                       default="poisson",
                       help="synthetic player-arrival workload "
                            "(ignored with --arrivals)")
    fleet.add_argument("--arrivals", default=None, metavar="TRACE.txt",
                       help="replay a committed arrival trace file "
                            "('t_ms game' lines) instead of generating one")
    fleet.add_argument("--rate", type=float, default=2.0,
                       help="mean player arrivals per second")
    fleet.add_argument("--duration", type=float, default=30.0,
                       help="arrival-window length in seconds")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--games", default="racing",
                       help="comma-separated games players arrive for")
    fleet.add_argument("--session-size", type=int, default=4,
                       help="target party size per session")
    fleet.add_argument("--min-session-size", type=int, default=2,
                       help="smallest party a lobby timeout may launch")
    fleet.add_argument("--max-wait-ms", type=float, default=1500.0,
                       help="lobby fill timeout before forming short")
    fleet.add_argument("--retry-ms", type=float, default=250.0,
                       help="admission retry interval for rejected sessions")
    fleet.add_argument("--patience-ms", type=float, default=4000.0,
                       help="total wait before a rejected party gives up")
    fleet.add_argument("--session-duration", type=float, default=10.0,
                       help="simulated seconds each admitted session plays")
    fleet.add_argument("--gpu-slots", type=int, default=4,
                       help="concurrent render batches the farm sustains")
    fleet.add_argument("--render-ms", type=float, default=30.0,
                       help="GPU milliseconds per panorama render")
    fleet.add_argument("--batch-max", type=int, default=8,
                       help="renders dispatched per farm batch")
    fleet.add_argument("--deadline-ms", type=float, default=250.0,
                       help="render deadline for session warm-up points")
    fleet.add_argument("--warmup-points", type=int, default=4,
                       help="renders a session blocks on before going live")
    fleet.add_argument("--fleet-mbps", type=float, default=2000.0,
                       help="serving-backhaul capacity (Constraint 2)")
    fleet.add_argument("--max-sessions", type=int, default=None,
                       help="hard concurrent-session cap (default: none)")
    fleet.add_argument("--isolated", action="store_true",
                       help="disable cross-session dedup: namespace every "
                            "panorama address per session (the bench_fleet "
                            "comparator)")
    fleet.add_argument("--fidelity", choices=FIDELITIES, default="model",
                       help="'model' simulates demand only; 'full' replays "
                            "every admitted session through the "
                            "single-session engine afterwards")
    fleet.add_argument("--system", choices=SYSTEMS, default="coterie",
                       help="engine used for --fidelity full replays")
    fleet.add_argument("--verify-determinism", action="store_true",
                       help="run the fleet twice and exit 1 unless both "
                            "summaries are bit-identical")
    fleet.add_argument("--metrics", default=None, metavar="OUT.jsonl",
                       help="sample fleet metrics and write the JSONL "
                            "series dump (input to `repro report`)")
    fleet.add_argument("--openmetrics", default=None, metavar="OUT.txt",
                       help="write an OpenMetrics snapshot of the fleet run")
    fleet.set_defaults(func=_cmd_fleet)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error on our side.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
