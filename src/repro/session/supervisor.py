"""The session supervisor: roster owner, failure detector, epoch source.

One :class:`SessionSupervisor` per run owns the membership state of every
player slot and is the only component allowed to mutate it.  It is shared
by all system loops exactly the way :class:`~repro.faults.FaultInjector`
is: Coterie, Multi-Furion, and Thin-client all experience the same churn
timeline because they all consult the same supervisor.

Three cooperating pieces, all deterministic in sim time (the supervisor
holds no RNG):

* the **driver** process walks the :class:`~repro.faults.ChurnSchedule`
  and turns events into join attempts (through admission control) or
  pending leave/crash flags the client loops observe at their next poll;
* the **monitor** process is the heartbeat failure detector: a client
  whose last heartbeat is older than ``suspect_after_ms`` turns SUSPECT,
  and a SUSPECT older than ``evict_after_ms`` is evicted (CRASHED) and
  removed from the PUN room — so a crashed client is discovered the way
  a real PUN room discovers one, by silence, not by fiat;
* the client loops call :meth:`poll` once per frame iteration — this is
  the heartbeat — and :meth:`poll` returning False tells the loop to
  stop producing frames (left, crashed, or evicted; an evicted client
  does *not* silently resume after a long outage, which is precisely the
  behaviour PR 2's outage windows could not express).

Every state change bumps the monotone membership epoch and is appended
to the epoch log; the :class:`~repro.session.invariants.InvariantChecker`
asserts the legal-transition, roster/FI-fanout, and Constraint-2
invariants at each one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..faults.churn import ChurnSchedule, CrashEvent, JoinEvent, LeaveEvent
from ..sim import Simulator
from ..telemetry import as_tracer
from .admission import AdmissionController, AdmissionDecision
from .invariants import InvariantChecker
from .membership import (
    ACTIVE,
    ALLOWED_TRANSITIONS,
    CRASHED,
    DISPLAYING,
    IDLE,
    JOINING,
    LEFT,
    SUSPECT,
    WARMING,
    EpochLog,
    MembershipEvent,
    SlotStats,
    new_stats,
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-detector and admission timing knobs (all sim-time ms)."""

    monitor_interval_ms: float = 100.0  # failure-detector scan period
    suspect_after_ms: float = 400.0  # heartbeat silence before SUSPECT
    evict_after_ms: float = 1200.0  # heartbeat silence before eviction
    admission_retry_ms: float = 400.0  # queued-join retry interval
    max_admission_wait_ms: float = 4000.0  # queue patience before reject
    warmup_fetches: int = 3  # panoramas streamed before ACTIVE
    max_players: int = 8  # hard roster cap
    utilization_bound: float = 0.8  # Constraint 2's usable-capacity bound

    def __post_init__(self) -> None:
        if self.monitor_interval_ms <= 0:
            raise ValueError("monitor_interval_ms must be positive")
        if self.suspect_after_ms <= 0 or self.evict_after_ms <= self.suspect_after_ms:
            raise ValueError(
                "need 0 < suspect_after_ms < evict_after_ms"
            )
        if self.admission_retry_ms <= 0 or self.max_admission_wait_ms < 0:
            raise ValueError("admission timings must be positive")
        if self.warmup_fetches < 1:
            raise ValueError("warmup_fetches must be >= 1")
        if self.max_players < 1:
            raise ValueError("max_players must be >= 1")
        if not 0 < self.utilization_bound <= 1.0:
            raise ValueError("utilization_bound must be in (0, 1]")


@dataclass(frozen=True)
class MembershipSummary:
    """Aggregated membership outcome of one run (part of RunResult)."""

    total_slots: int
    initial_players: int
    epochs: Tuple[MembershipEvent, ...]
    joins_requested: int
    joins_admitted: int
    joins_rejected: int
    joins_queued: int
    leaves: int
    evictions: int
    stale_events: int  # schedule events that found the slot ineligible
    invariant_checks: int
    invariant_violations: int
    final_states: Tuple[str, ...]
    stats: Tuple[SlotStats, ...]

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    @property
    def final_active(self) -> Tuple[int, ...]:
        return tuple(
            slot for slot, state in enumerate(self.final_states)
            if state == ACTIVE
        )

    def fingerprint(self) -> Tuple[Tuple, ...]:
        """Byte-comparable epoch-log identity (determinism tests)."""
        return tuple(event.key() for event in self.epochs)


class SessionSupervisor:
    """Owns and mutates the membership state of one game session."""

    def __init__(
        self,
        sim: Simulator,
        schedule: ChurnSchedule,
        n_initial: int,
        total_slots: int,
        config: Optional[SupervisorConfig] = None,
        pun=None,
        tracer=None,
        metrics=None,
        horizon_ms: float = math.inf,
    ) -> None:
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        if total_slots < n_initial:
            raise ValueError("total_slots must cover the initial players")
        schedule.validate_slots(total_slots)
        self.sim = sim
        self.schedule = schedule
        self.config = config or SupervisorConfig()
        self.pun = pun
        self.tracer = as_tracer(tracer)
        # Metrics hub (repro.telemetry.MetricsHub or None): membership
        # gauges/counters updated at _transition, the single mutation
        # point, so the series mirror the epoch log exactly.
        self._metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        if self._metrics is not None:
            hub = self._metrics
            self._members_gauge = hub.gauge("members_active")
            self._epochs_counter = hub.counter("membership_epochs_total")
            self._suspects_counter = hub.counter("membership_suspects_total")
            self._evictions_counter = hub.counter("membership_evictions_total")
            self._join_latency_gauge = hub.gauge("join_latency_ms")
        self.n_initial = n_initial
        self.total_slots = total_slots
        self.horizon_ms = horizon_ms

        self.invariants = InvariantChecker()
        self.log = EpochLog()
        self.epoch = 0
        self.stats: Dict[int, SlotStats] = new_stats(total_slots)
        self.decisions: List[Tuple[float, int, AdmissionDecision]] = []

        self._states: List[str] = [IDLE] * total_slots
        self._in_room: List[bool] = [False] * total_slots
        self._pre_suspect: List[str] = [ACTIVE] * total_slots
        self._last_heartbeat: List[float] = [0.0] * total_slots
        self._leave_pending: List[bool] = [False] * total_slots
        self._crash_pending: List[bool] = [False] * total_slots
        self._join_requested_ms: Dict[int, float] = {}
        self._warm_started_ms: Dict[int, float] = {}

        self.joins_requested = 0
        self.joins_admitted = 0
        self.joins_rejected = 0
        self.joins_queued = 0
        self.leaves = 0
        self.evictions = 0
        self.stale_events = 0

        self._admission: Optional[AdmissionController] = None
        self._spawn_client: Optional[Callable[[int, bool], None]] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(
        self,
        spawn_client: Callable[[int, bool], None],
        admission: AdmissionController,
    ) -> None:
        """Seat the initial roster and launch the driver + monitor.

        ``spawn_client(slot, rejoining)`` starts one client process;
        the supervisor calls it for the initial players immediately and
        for every later admission at warm-up start.
        """
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        self._admission = admission
        self._spawn_client = spawn_client
        now = self.sim.now
        # Seat the whole initial roster before the first transition so
        # the FI-fanout invariant (pun.n_players == room size) holds on
        # every epoch, including the seating ones.
        for slot in range(self.n_initial):
            self._in_room[slot] = True
            self._last_heartbeat[slot] = now
            self.stats[slot].incarnations += 1
        for slot in range(self.n_initial):
            self._transition(slot, ACTIVE, "initial")
        for slot in range(self.n_initial):
            spawn_client(slot, False)
        self.sim.spawn(self._driver())
        self.sim.spawn(self._monitor())

    def _resolved_events(self):
        """Schedule events with anonymous joins bound to fresh slots.

        Fresh slots are assigned in deterministic event order starting
        after the initial roster, so (schedule, seed) fully determines
        who occupies which slot.
        """
        next_slot = self.n_initial
        resolved = []
        for event in self.schedule.events_sorted():
            if isinstance(event, JoinEvent) and event.slot is None:
                event = JoinEvent(event.t_ms, slot=next_slot)
                next_slot += 1
            resolved.append(event)
        return resolved

    # ------------------------------------------------------------------
    # Queries (client loops and tests)
    # ------------------------------------------------------------------

    def state(self, slot: int) -> str:
        """Current membership state of ``slot`` (one of the state constants)."""
        return self._states[slot]

    def active_slots(self) -> List[int]:
        """Slots currently ACTIVE (Constraint 2's roster)."""
        return [s for s in range(self.total_slots) if self._states[s] == ACTIVE]

    def room_size(self) -> int:
        """Players currently in the PUN room (ACTIVE or suspected)."""
        return sum(self._in_room)

    def _constraint_roster(self) -> List[int]:
        """Slots whose traffic the admission arithmetic must count:
        everyone in the room plus anyone already warming up."""
        return [
            s for s in range(self.total_slots)
            if self._in_room[s] or self._states[s] == WARMING
        ]

    # ------------------------------------------------------------------
    # Client-facing protocol
    # ------------------------------------------------------------------

    def poll(self, slot: int) -> bool:
        """Heartbeat + liveness check, called once per loop iteration.

        Returns False when the client must stop producing frames: it
        left, crashed, or was evicted.  A pending crash returns False
        *without* recording a heartbeat — the client dies silently and
        the failure detector, not the schedule, discovers it.
        """
        state = self._states[slot]
        if state not in (WARMING, ACTIVE, SUSPECT):
            return False
        if self._crash_pending[slot]:
            return False
        if self._leave_pending[slot]:
            self._leave_pending[slot] = False
            self.leaves += 1
            self._depart(slot, LEFT, "leave")
            return False
        if state == SUSPECT:
            # The detector was wrong (slow frames, outage window): the
            # heartbeat resumed before eviction, so restore the state
            # the player was in before suspicion.
            self._transition(slot, self._pre_suspect[slot], "recovered")
        self._last_heartbeat[slot] = self.sim.now
        return True

    def activate(self, slot: int) -> bool:
        """Warm-up finished: the player enters the room and turns ACTIVE.

        Returns False when the slot is no longer WARMING (it crashed,
        left, or was evicted mid-handshake) — the client must stop.
        """
        if self._states[slot] != WARMING:
            return False
        now = self.sim.now
        self._last_heartbeat[slot] = now
        stats = self.stats[slot]
        stats.join_latency_ms += now - self._join_requested_ms.get(slot, now)
        stats.warmup_ms += now - self._warm_started_ms.get(slot, now)
        if self._metrics is not None:
            self._join_latency_gauge.set(
                now - self._join_requested_ms.get(slot, now)
            )
        self._in_room[slot] = True
        if self.pun is not None:
            self.pun.add_player()
        self._transition(slot, ACTIVE, "warmed-up")
        return True

    def note_frame(self, slot: int, t_ms: float) -> None:
        """Invariant 5: frames go only to displaying (ACTIVE/SUSPECT)
        players — a SUSPECT frame was in flight when heartbeats stopped."""
        self.invariants.require(
            self._states[slot] in DISPLAYING,
            "frame delivered to a non-displaying player",
            slot=slot, state=self._states[slot], t_ms=t_ms,
        )

    # ------------------------------------------------------------------
    # Internal processes
    # ------------------------------------------------------------------

    def _driver(self):
        """Walk the churn schedule, in order, in sim time."""
        for event in self._resolved_events():
            if event.t_ms >= self.horizon_ms:
                break
            delay = event.t_ms - self.sim.now
            if delay > 0:
                yield delay
            if isinstance(event, JoinEvent):
                self.sim.spawn(self._admit(event.slot))
            elif isinstance(event, LeaveEvent):
                if self._states[event.slot] in (WARMING, ACTIVE, SUSPECT):
                    self._leave_pending[event.slot] = True
                else:
                    self.stale_events += 1
            elif isinstance(event, CrashEvent):
                if self._states[event.slot] in (JOINING, WARMING, ACTIVE, SUSPECT):
                    self._crash_pending[event.slot] = True
                else:
                    self.stale_events += 1

    def _admit(self, slot: int):
        """One join attempt: admission control, queueing, warm-up spawn."""
        if self._states[slot] not in (IDLE, LEFT, CRASHED):
            self.stale_events += 1
            return
        requested_ms = self.sim.now
        self.joins_requested += 1
        self._transition(slot, JOINING, "join-request")
        queued = False
        while True:
            if self._crash_pending[slot]:
                # Crash-mid-handshake before admission even finished.
                self._crash_pending[slot] = False
                self.joins_rejected += 1
                self.stats[slot].rejections += 1
                self._transition(slot, IDLE, "crashed-before-admission")
                return
            decision = self._admission.evaluate(self._constraint_roster(), slot)
            self.decisions.append((self.sim.now, slot, decision))
            if decision.admitted:
                break
            waited = self.sim.now - requested_ms
            out_of_patience = (
                waited + self.config.admission_retry_ms
                > self.config.max_admission_wait_ms
            )
            past_horizon = (
                self.sim.now + self.config.admission_retry_ms >= self.horizon_ms
            )
            if out_of_patience or past_horizon:
                self.joins_rejected += 1
                self.stats[slot].rejections += 1
                self._transition(slot, IDLE, f"rejected:{decision.reason}")
                return
            if not queued:
                queued = True
                self.joins_queued += 1
            yield self.config.admission_retry_ms
        self.joins_admitted += 1
        self.stats[slot].incarnations += 1
        rejoining = self.stats[slot].incarnations > 1
        self._join_requested_ms[slot] = requested_ms
        self._warm_started_ms[slot] = self.sim.now
        self._last_heartbeat[slot] = self.sim.now
        self._leave_pending[slot] = False
        self._transition(slot, WARMING, "admitted")
        self._spawn_client(slot, rejoining)

    def _monitor(self):
        """The heartbeat failure detector (SUSPECT, then evict)."""
        config = self.config
        while self.sim.now < self.horizon_ms:
            yield config.monitor_interval_ms
            now = self.sim.now
            for slot in range(self.total_slots):
                state = self._states[slot]
                age = now - self._last_heartbeat[slot]
                if state in (WARMING, ACTIVE) and age > config.suspect_after_ms:
                    self._pre_suspect[slot] = state
                    self._transition(slot, SUSPECT, "heartbeat-timeout")
                elif state == SUSPECT and age > config.evict_after_ms:
                    self.evictions += 1
                    self.stats[slot].evictions += 1
                    self._crash_pending[slot] = False
                    self._leave_pending[slot] = False
                    self._depart(slot, CRASHED, "evicted")

    # ------------------------------------------------------------------
    # State mutation (the only paths that touch _states)
    # ------------------------------------------------------------------

    def _depart(self, slot: int, to_state: str, cause: str) -> None:
        """Leave the PUN room (if in it), then transition out."""
        if self._in_room[slot]:
            self._in_room[slot] = False
            if self.pun is not None:
                self.pun.remove_player()
        self._transition(slot, to_state, cause)

    def _transition(self, slot: int, to_state: str, cause: str) -> MembershipEvent:
        """Apply one state change: epoch bump, log, invariants, trace."""
        from_state = self._states[slot]
        self.invariants.require(
            (from_state, to_state) in ALLOWED_TRANSITIONS,
            "illegal membership transition",
            slot=slot, from_state=from_state, to_state=to_state, cause=cause,
        )
        self._states[slot] = to_state
        self.epoch += 1
        active = tuple(
            s for s in range(self.total_slots) if self._states[s] == ACTIVE
        )
        previous = self.log.events[-1] if self.log.events else None
        event = MembershipEvent(
            epoch=self.epoch, t_ms=self.sim.now, slot=slot,
            from_state=from_state, to_state=to_state, cause=cause,
            active=active,
        )
        self.invariants.require(
            previous is None
            or (event.epoch > previous.epoch and event.t_ms >= previous.t_ms),
            "membership epochs must be monotone",
            epoch=event.epoch, t_ms=event.t_ms,
        )
        self.log.append(event)
        for s in active:
            self.stats[s].epochs_survived += 1
        if self.pun is not None:
            self.invariants.require(
                self.pun.n_players == sum(self._in_room),
                "FI fanout must match the room size",
                pun_players=self.pun.n_players, room=sum(self._in_room),
            )
        if cause == "warmed-up" and self._admission is not None:
            # Constraint 2 must hold for every epoch an admission creates.
            revalidation = self._admission.validate(self._constraint_roster())
            self.invariants.require(
                revalidation.admitted,
                "admitted epoch violates Constraint 2",
                slot=slot, epoch=self.epoch,
                utilization=revalidation.utilization,
            )
        if self.tracer.enabled:
            self.tracer.instant(
                f"member.{to_state}", slot, "member", self.sim.now,
                cat="membership",
                args={"epoch": self.epoch, "from": from_state, "cause": cause},
            )
        if self._metrics is not None:
            self._members_gauge.set(float(len(active)))
            self._epochs_counter.set_total(float(self.epoch))
            if to_state == SUSPECT:
                self._suspects_counter.inc()
            if cause == "evicted":
                self._evictions_counter.inc()
        return event

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def summary(self) -> MembershipSummary:
        """Freeze the run's membership outcome."""
        return MembershipSummary(
            total_slots=self.total_slots,
            initial_players=self.n_initial,
            epochs=tuple(self.log.events),
            joins_requested=self.joins_requested,
            joins_admitted=self.joins_admitted,
            joins_rejected=self.joins_rejected,
            joins_queued=self.joins_queued,
            leaves=self.leaves,
            evictions=self.evictions,
            stale_events=self.stale_events,
            invariant_checks=self.invariants.checks,
            invariant_violations=self.invariants.violations,
            final_states=tuple(self._states),
            stats=tuple(self.stats[s] for s in range(self.total_slots)),
        )
