"""Runtime invariants the supervision subsystem must never break.

The supervisor asserts these at every membership transition (and the
system loops at every frame), so a violation aborts the run at the
moment the state corrupted — not thousands of simulated frames later
when a metric looks odd.  The checks:

1. **Legal transitions only** — every state change follows an edge of
   :data:`~repro.session.membership.ALLOWED_TRANSITIONS`.
2. **Monotone epochs** — the epoch counter strictly increases and the
   log timestamps never run backwards.
3. **FI fanout matches the roster** — ``PunChannel.n_players`` equals
   the number of slots currently in the room.
4. **Constraint 2 per admitted epoch** — every epoch created by an
   admission still satisfies the aggregate-bandwidth check for the new
   ACTIVE set.
5. **Frames only to displaying players** — a frame may be recorded for
   an ACTIVE player (or a SUSPECT one: a frame already in flight when
   the detector lost its heartbeats), never for an idle, joining,
   warming, left, or crashed slot.

All checks are pure assertions over supervisor state: the checker never
touches the simulator, RNG, or the network, so a run with churn enabled
but no churn events is bit-identical to one without a supervisor.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class InvariantViolation(AssertionError):
    """A supervision invariant failed; the run's state is corrupt."""

    def __init__(self, message: str, context: Optional[Dict[str, Any]] = None):
        if context:
            details = ", ".join(f"{k}={v!r}" for k, v in context.items())
            message = f"{message} ({details})"
        super().__init__(message)
        self.context = context or {}


class InvariantChecker:
    """Counts and enforces the membership invariants.

    ``checks`` counts every assertion evaluated (the chaos tests require
    it to be non-zero — a suite that silently skipped its invariants
    would pass vacuously); ``violations`` stays zero on any surviving
    run because :meth:`require` raises on the first failure.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.violations = 0

    def require(
        self,
        condition: bool,
        message: str,
        **context: Any,
    ) -> None:
        """Assert one invariant; raise with context on failure."""
        self.checks += 1
        if not condition:
            self.violations += 1
            raise InvariantViolation(message, context)
