"""The per-player membership state machine and the epoch log.

Player lifecycle (the tentpole of the supervision subsystem)::

    IDLE ──join──▶ JOINING ──admitted──▶ WARMING ──warmed-up──▶ ACTIVE
      ▲               │                    │  ▲                  │  ▲
      └──rejected─────┘                    ▼  └────recovered─────▼  │
                                         SUSPECT ◀───heartbeat───────┘
                                           │         timeout
              LEFT ◀──graceful leave── (WARMING/ACTIVE/SUSPECT)
           CRASHED ◀──evicted────────── SUSPECT

``IDLE`` is the pre-session (and post-rejection) state: the slot exists —
its trajectory is generated, its metrics collector allocated — but the
player is not part of the room.  ``LEFT`` and ``CRASHED`` are terminal
for one *incarnation*; a rejoin starts a new incarnation from the same
slot (fresh cache, same trajectory), which is what distinguishes a
deliberate rejoin from PR 2's outage windows, where a "crashed" player
silently resumed with the same identity.

Every transition bumps the session-wide *membership epoch* — a
monotonically increasing counter — and appends a :class:`MembershipEvent`
to the epoch log, so two runs of the same (schedule, seed) produce
byte-identical logs (asserted by the determinism tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

# Lifecycle states.
IDLE = "idle"
JOINING = "joining"
WARMING = "warming"
ACTIVE = "active"
SUSPECT = "suspect"
LEFT = "left"
CRASHED = "crashed"

ALL_STATES = (IDLE, JOINING, WARMING, ACTIVE, SUSPECT, LEFT, CRASHED)

# States that count toward the PUN room (FI fanout) are tracked
# separately by the supervisor (a SUSPECT player reached via WARMING was
# never in the room); these are the states in which a slot may still
# *display* frames.
DISPLAYING = frozenset({ACTIVE, SUSPECT})

# The legal edges of the state machine; anything else is a supervisor
# bug and trips the invariant checker.
ALLOWED_TRANSITIONS = frozenset({
    (IDLE, JOINING),       # join request received
    (IDLE, ACTIVE),        # initial roster at session start
    (JOINING, WARMING),    # admission control said yes
    (JOINING, IDLE),       # admission control said no (may retry later)
    (WARMING, ACTIVE),     # warm-up streamed the working set
    (WARMING, SUSPECT),    # heartbeats stopped mid-handshake
    (WARMING, LEFT),       # graceful leave before activation
    (ACTIVE, SUSPECT),     # heartbeat timeout
    (ACTIVE, LEFT),        # graceful leave
    (SUSPECT, ACTIVE),     # heartbeat resumed (was active before)
    (SUSPECT, WARMING),    # heartbeat resumed (was still warming)
    (SUSPECT, LEFT),       # graceful leave while suspected
    (SUSPECT, CRASHED),    # evicted by the failure detector
    (LEFT, JOINING),       # rejoin: new incarnation
    (CRASHED, JOINING),    # rejoin after a crash: new incarnation
})


@dataclass(frozen=True)
class MembershipEvent:
    """One membership epoch: a single slot's state transition."""

    epoch: int
    t_ms: float
    slot: int
    from_state: str
    to_state: str
    cause: str
    # The ACTIVE roster *after* this transition (Constraint 2's domain).
    active: Tuple[int, ...]

    def key(self) -> Tuple:
        """Comparable fingerprint for determinism assertions."""
        return (self.epoch, self.t_ms, self.slot, self.from_state,
                self.to_state, self.cause, self.active)


@dataclass
class SlotStats:
    """Per-slot membership statistics, aggregated over incarnations."""

    incarnations: int = 0  # admissions (initial presence counts as one)
    join_latency_ms: float = 0.0  # join request -> ACTIVE, summed
    warmup_ms: float = 0.0  # WARMING -> ACTIVE, summed
    epochs_survived: int = 0  # epochs during which this slot was ACTIVE
    evictions: int = 0  # times the failure detector evicted this slot
    rejections: int = 0  # join requests refused by admission control


def new_stats(total_slots: int) -> Dict[int, SlotStats]:
    """One zeroed stats record per slot."""
    return {slot: SlotStats() for slot in range(total_slots)}


@dataclass
class EpochLog:
    """Append-only transition log; the supervisor's public history."""

    events: list = field(default_factory=list)

    def append(self, event: MembershipEvent) -> None:
        """Record one membership transition at the end of the log."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def fingerprint(self) -> Tuple[Tuple, ...]:
        """Byte-comparable log identity (determinism tests)."""
        return tuple(event.key() for event in self.events)

    def last_epoch(self) -> int:
        """Epoch number of the most recent transition (0 when empty)."""
        return self.events[-1].epoch if self.events else 0
