"""Admission control: re-validate the paper's constraints per join.

The offline pipeline sizes Coterie's cutoffs and dist-thresh for a
*fixed* party (§4.2-4.3); a join changes the party, so the supervisor
re-runs the same feasibility logic online before a new player may warm
up:

* **Constraint 2** (aggregate bandwidth): per-player BE fetch-rate
  estimates — for Coterie, player speed over the dist-thresh at the
  joiner's position times the mean far-BE wire size, i.e. exactly the
  quantities ``core.dist_thresh`` trades off offline — plus the
  closed-form FI fanout for the post-join roster must fit the medium's
  usable capacity (:func:`~repro.core.constraint.satisfies_bandwidth_constraint`).
* **Constraint 1** (render budget): the joiner's device must be able to
  render FI + near BE at the cutoff radius of its spawn region
  (:func:`~repro.core.constraint.satisfies_constraint`); the system
  runner supplies this as a ``render_check`` callback.
* **Roster cap** — ``--max-players``.

A rejected join may be *queued*: the supervisor retries it on an
interval until the schedule's patience runs out, so a leave can make
room for a previously refused player.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.constraint import BandwidthBudget, satisfies_bandwidth_constraint


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission evaluation (logged per attempt)."""

    admitted: bool
    reason: str  # "ok" or the first constraint that failed
    roster_after: int  # players counted if this join were admitted
    predicted_be_kbps: float  # aggregate BE estimate for that roster
    predicted_fi_kbps: float  # closed-form FI fanout for that roster
    utilization: float  # predicted fraction of *nominal* capacity

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Evaluates joins against the live roster's constraint envelope.

    ``be_kbps_for(slot)`` estimates one player's BE fetch bandwidth
    (system-specific: Coterie derives it from dist-thresh, Furion-style
    systems fetch whole-BE frames every interval); ``fi_kbps_for(n)``
    is the closed-form FI bandwidth at roster size ``n`` (the live
    :meth:`~repro.net.pun.PunChannel.expected_bandwidth_kbps`);
    ``render_check(slot)``, when given, enforces Constraint 1 at the
    joiner's position.  The controller is pure — no simulator, no RNG —
    so admission outcomes are a deterministic function of (roster,
    joiner, time).
    """

    def __init__(
        self,
        budget: BandwidthBudget,
        be_kbps_for: Callable[[int], float],
        fi_kbps_for: Callable[[int], float],
        max_players: int,
        render_check: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if max_players < 1:
            raise ValueError("max_players must be >= 1")
        self.budget = budget
        self.be_kbps_for = be_kbps_for
        self.fi_kbps_for = fi_kbps_for
        self.max_players = max_players
        self.render_check = render_check

    # ------------------------------------------------------------------

    def _measure(self, slots: Sequence[int]) -> AdmissionDecision:
        """Constraint-2 arithmetic for a hypothetical roster."""
        be_kbps = [self.be_kbps_for(slot) for slot in slots]
        fi_kbps = self.fi_kbps_for(len(slots))
        fits = satisfies_bandwidth_constraint(be_kbps, fi_kbps, self.budget)
        total_mbps = (sum(be_kbps) + fi_kbps) / 1000.0
        return AdmissionDecision(
            admitted=fits,
            reason="ok" if fits else "constraint-2",
            roster_after=len(slots),
            predicted_be_kbps=sum(be_kbps),
            predicted_fi_kbps=fi_kbps,
            utilization=total_mbps / self.budget.capacity_mbps,
        )

    def evaluate(self, roster: Sequence[int], joiner: int) -> AdmissionDecision:
        """May ``joiner`` enter given the current ``roster``?

        Checks are ordered cheapest-first; the decision records the
        first failure so rejections are attributable.
        """
        candidate = [*roster, joiner]
        if len(candidate) > self.max_players:
            return AdmissionDecision(
                admitted=False, reason="roster-full",
                roster_after=len(candidate),
                predicted_be_kbps=0.0, predicted_fi_kbps=0.0,
                utilization=0.0,
            )
        if self.render_check is not None and not self.render_check(joiner):
            return AdmissionDecision(
                admitted=False, reason="constraint-1",
                roster_after=len(candidate),
                predicted_be_kbps=0.0, predicted_fi_kbps=0.0,
                utilization=0.0,
            )
        return self._measure(candidate)

    def validate(self, roster: Sequence[int]) -> AdmissionDecision:
        """Constraint 2 for the roster *as is* (epoch re-validation)."""
        return self._measure(list(roster))
