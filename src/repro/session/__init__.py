"""Session supervision: membership, failure detection, admission control.

Makes player membership a first-class, mutable, fault-tolerant part of
every run: a :class:`SessionSupervisor` owns the roster, a heartbeat
failure detector notices crashed clients, and admission control
re-validates the paper's Constraints 1 and 2 for every join before a
late joiner warms its cache and turns ACTIVE.
"""

from .admission import AdmissionController, AdmissionDecision
from .invariants import InvariantChecker, InvariantViolation
from .membership import (
    ACTIVE,
    ALL_STATES,
    ALLOWED_TRANSITIONS,
    CRASHED,
    DISPLAYING,
    IDLE,
    JOINING,
    LEFT,
    SUSPECT,
    WARMING,
    EpochLog,
    MembershipEvent,
    SlotStats,
)
from .supervisor import MembershipSummary, SessionSupervisor, SupervisorConfig
from .sync import (
    DesyncAlarm,
    SlotSyncStats,
    SyncConfig,
    SyncValidator,
    cache_state_digest,
    state_digest,
)

__all__ = [
    "ACTIVE",
    "ALL_STATES",
    "ALLOWED_TRANSITIONS",
    "AdmissionController",
    "AdmissionDecision",
    "CRASHED",
    "DesyncAlarm",
    "DISPLAYING",
    "EpochLog",
    "IDLE",
    "InvariantChecker",
    "InvariantViolation",
    "JOINING",
    "LEFT",
    "MembershipEvent",
    "MembershipSummary",
    "SessionSupervisor",
    "SlotStats",
    "SlotSyncStats",
    "SupervisorConfig",
    "SUSPECT",
    "SyncConfig",
    "SyncValidator",
    "WARMING",
    "cache_state_digest",
    "state_digest",
]
