"""Cross-peer desync detection over deterministic state hashes.

Coterie's correctness story for speculation is GGPO's: speculate
eagerly, *hash deterministically*, detect divergence, converge
bit-identically.  The :class:`SyncValidator` implements the detection
leg: on a fixed cadence every peer computes a 64-bit FNV-1a digest of
its authoritative session state — last displayed pose (float64 bit
patterns), displayed-frame oracle digest, and the cache roster in
insertion order — and exchanges it over the PUN fast-path channel.  A
submitted hash that disagrees with the authoritative recomputation is a
desync: the validator raises a :class:`DesyncAlarm` within one cadence
of the divergence (bounded detection latency) and, when resync is
enabled, asks the frame loop to re-warm from authoritative state (a
blocking fetch with the PR 2 retry/backoff discipline, plus dropping
every unconfirmed speculative cache entry).

Because both the submitted and authoritative digests derive from the
same deterministic simulation state, a clean run can never raise a
false alarm — only a scripted :class:`~repro.faults.DesyncInjection`
(which corrupts one peer's submitted hash in flight) or a genuine
nondeterminism bug produces a mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from ..predict.digest import digest_ints, fnv1a, int_bits, pose_digest

#: XOR mask applied to a submitted hash by an injected desync — any
#: single-bit perturbation would do; a wide mask makes hexdumps obvious.
CORRUPTION_MASK = 0xDEAD_BEEF_DEAD_BEEF


@dataclass(frozen=True)
class SyncConfig:
    """Knobs for the cross-peer sync validator.

    ``cadence_ms`` is the digest-exchange period (and therefore the
    detection-latency bound); ``digest_bytes`` the wire size of one
    peer's state-hash packet (header + 64-bit hash + pose summary);
    ``resync`` enables the recovery protocol on alarm.
    """

    cadence_ms: float = 250.0
    digest_bytes: int = 40
    resync: bool = True

    def __post_init__(self) -> None:
        if self.cadence_ms <= 0:
            raise ValueError("cadence_ms must be positive")
        if self.digest_bytes < 8:
            raise ValueError("digest_bytes must be >= 8")


@dataclass(frozen=True)
class DesyncAlarm:
    """One detected cross-peer state divergence."""

    t_ms: float  # validation round that caught it
    slot: int  # the divergent peer
    expected: int  # authoritative state hash
    observed: int  # what the peer submitted
    detection_ms: float  # divergence instant -> this round


@dataclass
class SlotSyncStats:
    """Per-slot sync-validation outcome counters."""

    alarms: int = 0
    max_detection_ms: float = 0.0
    resyncs: int = 0
    recovery_ms: float = 0.0  # alarm -> next clean round, summed


def cache_state_digest(cache) -> int:
    """Digest a frame cache's roster: grid points in insertion order.

    Covers each resident entry's grid point, wire size, speculative
    flag, and oracle digest — two caches that disagree in any entry,
    order, or confirmation state hash differently.
    """
    h = digest_ints([len(cache)])
    for frame in cache.frames():
        h = fnv1a(int_bits(frame.grid_point[0], frame.grid_point[1],
                           frame.size_bytes, 1 if frame.speculative else 0), h)
        h = digest_ints([frame.digest], seed=h)
    return h


def state_digest(
    t_ms: float, x: float, y: float, heading: float,
    frame_digest: int, cache, seed_slot: int,
) -> int:
    """One peer's full per-round state hash (pose + frame + cache roster)."""
    h = pose_digest(t_ms, x, y, heading)
    h = digest_ints([seed_slot, frame_digest], seed=h)
    h = digest_ints([cache_state_digest(cache)], seed=h)
    return h


@dataclass
class SyncValidator:
    """Fixed-cadence cross-peer state-hash exchange and alarm engine.

    The owning system loop wires the callbacks:

    * ``roster`` — the slots currently active;
    * ``authoritative`` — recompute a slot's state hash from live state;
    * ``injected_at`` — scripted desync time for a slot in a window, or
      None (the injection corrupts that slot's *submitted* hash);
    * ``record_bytes`` — account the digest exchange on the shared link;
    * ``request_resync`` — ask the frame loop to re-warm a slot.
    """

    sim: object
    config: SyncConfig
    horizon_ms: float
    n_slots: int
    roster: Callable[[], Iterable[int]]
    authoritative: Callable[[int], int]
    injected_at: Callable[[int, float, float], Optional[float]]
    record_bytes: Callable[[int], None]
    request_resync: Callable[[int], None]
    tracer: Optional[object] = None
    rounds: int = 0
    alarms: List[DesyncAlarm] = field(default_factory=list)
    stats: List[SlotSyncStats] = field(default_factory=list)
    _last_round_ms: float = 0.0
    _pending_recovery: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stats:
            self.stats = [SlotSyncStats() for _ in range(self.n_slots)]

    def process(self):
        """The validator's sim process: one exchange every cadence."""
        while self.sim.now + self.config.cadence_ms <= self.horizon_ms:
            yield self.config.cadence_ms
            self.run_round()

    def run_round(self) -> None:
        """Exchange state hashes once and judge every active peer."""
        now = self.sim.now
        peers = list(self.roster())
        if peers:
            # Each peer uploads its packet and the server fans it out to
            # the others — the PUN fast-path accounting model.
            n = len(peers)
            self.record_bytes(self.config.digest_bytes * n * max(1, n - 1))
            for slot in peers:
                expected = self.authoritative(slot)
                observed = expected
                injected = self.injected_at(slot, self._last_round_ms, now)
                if injected is not None:
                    observed = expected ^ CORRUPTION_MASK
                if observed != expected:
                    self._alarm(slot, now, expected, observed, injected)
                elif slot in self._pending_recovery:
                    # First clean round after an alarm: recovered.
                    alarm_ms = self._pending_recovery.pop(slot)
                    stats = self.stats[slot]
                    stats.recovery_ms += now - alarm_ms
                    if self.tracer is not None and self.tracer.enabled:
                        self.tracer.instant(
                            "sync.recovered", slot, "net", now, cat="sync",
                            args={"recovery_ms": round(now - alarm_ms, 4)},
                        )
        self.rounds += 1
        self._last_round_ms = now

    def _alarm(
        self,
        slot: int,
        now: float,
        expected: int,
        observed: int,
        injected: Optional[float],
    ) -> None:
        """Raise a desync alarm and kick off resync for ``slot``."""
        detection_ms = now - injected if injected is not None else 0.0
        alarm = DesyncAlarm(
            t_ms=now, slot=slot, expected=expected, observed=observed,
            detection_ms=detection_ms,
        )
        self.alarms.append(alarm)
        stats = self.stats[slot]
        stats.alarms += 1
        stats.max_detection_ms = max(stats.max_detection_ms, detection_ms)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                "sync.alarm", slot, "net", now, cat="sync",
                args={"expected": f"{expected:016x}",
                      "observed": f"{observed:016x}",
                      "detection_ms": round(detection_ms, 4)},
            )
        if self.config.resync:
            stats.resyncs += 1
            self._pending_recovery.setdefault(slot, now)
            self.request_resync(slot)

    @property
    def total_alarms(self) -> int:
        """Alarms raised across every peer."""
        return len(self.alarms)

    def max_detection_ms(self) -> float:
        """Worst injection-to-alarm latency seen (0 when no alarms)."""
        if not self.alarms:
            return 0.0
        return max(alarm.detection_ms for alarm in self.alarms)
