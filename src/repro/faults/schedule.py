"""Declarative fault schedules for the online runtime.

A :class:`FaultSchedule` scripts *when* things go wrong during a run, in
simulated milliseconds, independent of which system is running — the
same schedule can be applied to Coterie, Multi-Furion, and Thin-client
so their degradation behaviour is directly comparable.  Three fault
kinds cover the failure modes that matter for shared-WiFi VR:

* :class:`LinkDegradation` — an interference window: the medium serves at
  a fraction of nominal capacity and/or carries extra bursty loss.  These
  windows are compiled into the link-impairment model's
  :class:`~repro.net.impairment.DipEpisode` schedule.
* :class:`ServerStall` — the frame server responds slowly (GC pause,
  overload): every fetch issued during the window pays extra latency.
* :class:`ClientOutage` — a player's device drops off the network (or the
  player pauses); the client produces no frames until the window ends and
  then must recover (Coterie re-warms its frame cache on reconnect).

Schedules are plain frozen dataclasses — hashable, comparable, trivially
serialisable — and :meth:`FaultSchedule.parse` reads the compact CLI
spec, e.g. ``"dip@3000-8000:0.02,stall@1000-1500:25,outage@2000-4000:1"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..net.impairment import DipEpisode


def _check_window(start_ms: float, end_ms: float) -> None:
    if start_ms < 0 or end_ms <= start_ms:
        raise ValueError("fault window must satisfy 0 <= start < end")


@dataclass(frozen=True)
class LinkDegradation:
    """An interference window on the shared medium."""

    start_ms: float
    end_ms: float
    capacity_factor: float = 1.0  # fraction of nominal capacity left
    loss_rate: float = 0.0  # extra bursty loss during the window

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if not 0.0 < self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def to_dip(self) -> DipEpisode:
        """The equivalent impairment-model episode."""
        return DipEpisode(
            start_ms=self.start_ms,
            end_ms=self.end_ms,
            capacity_factor=self.capacity_factor,
            loss_rate=self.loss_rate,
        )


@dataclass(frozen=True)
class ServerStall:
    """A window during which the frame server responds slowly."""

    start_ms: float
    end_ms: float
    extra_ms: float = 25.0  # added response latency per fetch

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")


@dataclass(frozen=True)
class ClientOutage:
    """A window during which one (or every) client is disconnected."""

    start_ms: float
    end_ms: float
    player_id: int = -1  # -1: every player

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.player_id < -1:
            raise ValueError("player_id must be >= -1")

    def covers(self, player_id: int, now_ms: float) -> bool:
        """Whether this outage pauses ``player_id`` at ``now_ms``."""
        if self.player_id not in (-1, player_id):
            return False
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class PoseJump:
    """An instantaneous trajectory discontinuity (teleport / snap-turn).

    From ``t_ms`` on, the affected player's pose is offset by
    ``(dx, dy)`` meters and ``dheading`` radians — a permanent
    discontinuity that a constant-velocity pose predictor cannot have
    seen coming, so it exercises the misprediction/rollback path.
    """

    t_ms: float
    player_id: int = -1  # -1: every player
    dx: float = 0.0
    dy: float = 0.0
    dheading: float = 0.0

    def __post_init__(self) -> None:
        if self.t_ms < 0:
            raise ValueError("t_ms must be non-negative")
        if self.player_id < -1:
            raise ValueError("player_id must be >= -1")

    def applies(self, player_id: int, now_ms: float) -> bool:
        """Whether this jump has taken effect for ``player_id``."""
        if self.player_id not in (-1, player_id):
            return False
        return now_ms >= self.t_ms


@dataclass(frozen=True)
class SpeculationStorm:
    """A window during which pose observations freeze (stale speculation).

    The predictor keeps issuing forecasts from its last pre-storm state
    while the player keeps moving — a burst of stale speculative
    prefetches that must all expire or roll back without corrupting the
    display.
    """

    start_ms: float
    end_ms: float
    player_id: int = -1  # -1: every player

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.player_id < -1:
            raise ValueError("player_id must be >= -1")

    def covers(self, player_id: int, now_ms: float) -> bool:
        """Whether this storm freezes ``player_id`` at ``now_ms``."""
        if self.player_id not in (-1, player_id):
            return False
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class SpeculationCorruption:
    """A window during which speculative frame payloads arrive corrupted.

    Admitted speculative entries carry a perturbed oracle digest, so the
    validation step must detect the mismatch and roll the entry back
    before anything is displayed from it.
    """

    start_ms: float
    end_ms: float
    player_id: int = -1  # -1: every player

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.player_id < -1:
            raise ValueError("player_id must be >= -1")

    def covers(self, player_id: int, now_ms: float) -> bool:
        """Whether ``player_id``'s speculative fetches corrupt at ``now_ms``."""
        if self.player_id not in (-1, player_id):
            return False
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class DesyncInjection:
    """A scripted state divergence for one player at one instant.

    The player's next exchanged state hash is corrupted in flight; the
    :class:`~repro.session.sync.SyncValidator` must raise a desync alarm
    within one validation cadence of ``t_ms``.
    """

    t_ms: float
    player_id: int

    def __post_init__(self) -> None:
        if self.t_ms < 0:
            raise ValueError("t_ms must be non-negative")
        if self.player_id < 0:
            raise ValueError("desync injection needs an explicit player_id")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything scripted to go wrong during one run."""

    link: Tuple[LinkDegradation, ...] = ()
    stalls: Tuple[ServerStall, ...] = ()
    outages: Tuple[ClientOutage, ...] = ()
    poses: Tuple[PoseJump, ...] = ()
    spec_storms: Tuple[SpeculationStorm, ...] = ()
    spec_corruptions: Tuple[SpeculationCorruption, ...] = ()
    desyncs: Tuple[DesyncInjection, ...] = ()

    def __bool__(self) -> bool:
        return bool(
            self.link or self.stalls or self.outages or self.poses
            or self.spec_storms or self.spec_corruptions or self.desyncs
        )

    def dips(self) -> Tuple[DipEpisode, ...]:
        """The link windows as impairment-model dip episodes."""
        return tuple(window.to_dip() for window in self.link)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse the compact CLI syntax into a schedule.

        Comma-separated entries; windowed kinds use
        ``kind@start-end[:arg]``, instant kinds use ``kind@t[:arg]``
        (times in simulated ms):

        * ``dip@3000-8000:0.02`` — capacity drops to 2 % of nominal;
        * ``loss@3000-8000:0.3`` — 30 % bursty loss in the window;
        * ``stall@1000-1500:25`` — server adds 25 ms per fetch;
        * ``outage@2000-4000:1`` — player 1 disconnects (``all`` or no
          arg: every player);
        * ``teleport@3000:1~8`` — player 1 jumps 8 m at t=3000 (no
          player / ``all``: everyone; default 10 m);
        * ``snapturn@3000:1~90`` — player 1 snap-turns 90° (default 90);
        * ``specstorm@2000-3500:1`` — player 1's pose observations
          freeze (stale speculation; ``all`` or no arg: every player);
        * ``speccorrupt@2000-3500:1`` — player 1's speculative fetches
          arrive corrupted;
        * ``desync@2500:1`` — player 1's next exchanged state hash is
          corrupted (player required).
        """
        link = []
        stalls = []
        outages = []
        poses = []
        storms = []
        corruptions = []
        desyncs = []

        def bad(entry: str, cause: Exception) -> ValueError:
            """The uniform parse-failure error for one entry."""
            return ValueError(
                f"bad fault entry {entry!r}; expected kind@start-end[:arg] "
                f"(or kind@t[:arg] for instant kinds)"
            )

        def split_player_arg(arg: str, default: float):
            """Parse ``[player][~value]`` into (player_id, value)."""
            player_s, _, value_s = arg.partition("~")
            player_s = player_s.strip()
            player = -1 if player_s in ("", "all") else int(player_s)
            value = float(value_s) if value_s else default
            return player, value

        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
            except ValueError as exc:
                raise bad(entry, exc) from exc
            kind = kind.strip().lower()
            window, _, arg = rest.partition(":")
            if kind in ("teleport", "snapturn", "desync"):
                # Instant kinds: kind@t[:arg].
                try:
                    t_ms = float(window)
                except ValueError as exc:
                    raise bad(entry, exc) from exc
                if kind == "teleport":
                    try:
                        player, meters = split_player_arg(arg, default=10.0)
                    except ValueError as exc:
                        raise bad(entry, exc) from exc
                    poses.append(PoseJump(t_ms, player_id=player, dx=meters))
                elif kind == "snapturn":
                    try:
                        player, degrees = split_player_arg(arg, default=90.0)
                    except ValueError as exc:
                        raise bad(entry, exc) from exc
                    poses.append(PoseJump(
                        t_ms, player_id=player,
                        dheading=math.radians(degrees),
                    ))
                else:  # desync
                    try:
                        player = int(arg)
                    except ValueError as exc:
                        raise ValueError(
                            f"bad fault entry {entry!r}; desync needs an "
                            f"explicit player, e.g. desync@2500:1"
                        ) from exc
                    desyncs.append(DesyncInjection(t_ms, player_id=player))
                continue
            try:
                start_s, end_s = window.split("-", 1)
                start_ms, end_ms = float(start_s), float(end_s)
            except ValueError as exc:
                raise bad(entry, exc) from exc
            if kind == "dip":
                link.append(LinkDegradation(
                    start_ms, end_ms,
                    capacity_factor=float(arg) if arg else 0.1,
                ))
            elif kind == "loss":
                link.append(LinkDegradation(
                    start_ms, end_ms,
                    loss_rate=float(arg) if arg else 0.2,
                ))
            elif kind == "stall":
                stalls.append(ServerStall(
                    start_ms, end_ms,
                    extra_ms=float(arg) if arg else 25.0,
                ))
            elif kind == "outage":
                player = -1 if arg in ("", "all") else int(arg)
                outages.append(ClientOutage(start_ms, end_ms, player_id=player))
            elif kind == "specstorm":
                player = -1 if arg in ("", "all") else int(arg)
                storms.append(SpeculationStorm(
                    start_ms, end_ms, player_id=player,
                ))
            elif kind == "speccorrupt":
                player = -1 if arg in ("", "all") else int(arg)
                corruptions.append(SpeculationCorruption(
                    start_ms, end_ms, player_id=player,
                ))
            else:
                raise ValueError(
                    f"unknown fault kind {kind!r}; use dip/loss/stall/outage/"
                    f"teleport/snapturn/specstorm/speccorrupt/desync"
                )
        return cls(link=tuple(link), stalls=tuple(stalls),
                   outages=tuple(outages), poses=tuple(poses),
                   spec_storms=tuple(storms),
                   spec_corruptions=tuple(corruptions),
                   desyncs=tuple(desyncs))
