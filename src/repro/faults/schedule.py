"""Declarative fault schedules for the online runtime.

A :class:`FaultSchedule` scripts *when* things go wrong during a run, in
simulated milliseconds, independent of which system is running — the
same schedule can be applied to Coterie, Multi-Furion, and Thin-client
so their degradation behaviour is directly comparable.  Three fault
kinds cover the failure modes that matter for shared-WiFi VR:

* :class:`LinkDegradation` — an interference window: the medium serves at
  a fraction of nominal capacity and/or carries extra bursty loss.  These
  windows are compiled into the link-impairment model's
  :class:`~repro.net.impairment.DipEpisode` schedule.
* :class:`ServerStall` — the frame server responds slowly (GC pause,
  overload): every fetch issued during the window pays extra latency.
* :class:`ClientOutage` — a player's device drops off the network (or the
  player pauses); the client produces no frames until the window ends and
  then must recover (Coterie re-warms its frame cache on reconnect).

Schedules are plain frozen dataclasses — hashable, comparable, trivially
serialisable — and :meth:`FaultSchedule.parse` reads the compact CLI
spec, e.g. ``"dip@3000-8000:0.02,stall@1000-1500:25,outage@2000-4000:1"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..net.impairment import DipEpisode


def _check_window(start_ms: float, end_ms: float) -> None:
    if start_ms < 0 or end_ms <= start_ms:
        raise ValueError("fault window must satisfy 0 <= start < end")


@dataclass(frozen=True)
class LinkDegradation:
    """An interference window on the shared medium."""

    start_ms: float
    end_ms: float
    capacity_factor: float = 1.0  # fraction of nominal capacity left
    loss_rate: float = 0.0  # extra bursty loss during the window

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if not 0.0 < self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def to_dip(self) -> DipEpisode:
        """The equivalent impairment-model episode."""
        return DipEpisode(
            start_ms=self.start_ms,
            end_ms=self.end_ms,
            capacity_factor=self.capacity_factor,
            loss_rate=self.loss_rate,
        )


@dataclass(frozen=True)
class ServerStall:
    """A window during which the frame server responds slowly."""

    start_ms: float
    end_ms: float
    extra_ms: float = 25.0  # added response latency per fetch

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")


@dataclass(frozen=True)
class ClientOutage:
    """A window during which one (or every) client is disconnected."""

    start_ms: float
    end_ms: float
    player_id: int = -1  # -1: every player

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.player_id < -1:
            raise ValueError("player_id must be >= -1")

    def covers(self, player_id: int, now_ms: float) -> bool:
        """Whether this outage pauses ``player_id`` at ``now_ms``."""
        if self.player_id not in (-1, player_id):
            return False
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class FaultSchedule:
    """Everything scripted to go wrong during one run."""

    link: Tuple[LinkDegradation, ...] = ()
    stalls: Tuple[ServerStall, ...] = ()
    outages: Tuple[ClientOutage, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.link or self.stalls or self.outages)

    def dips(self) -> Tuple[DipEpisode, ...]:
        """The link windows as impairment-model dip episodes."""
        return tuple(window.to_dip() for window in self.link)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse the compact CLI syntax into a schedule.

        Comma-separated entries of ``kind@start-end[:arg]`` (times in
        simulated ms):

        * ``dip@3000-8000:0.02`` — capacity drops to 2 % of nominal;
        * ``loss@3000-8000:0.3`` — 30 % bursty loss in the window;
        * ``stall@1000-1500:25`` — server adds 25 ms per fetch;
        * ``outage@2000-4000:1`` — player 1 disconnects (``all`` or no
          arg: every player).
        """
        link = []
        stalls = []
        outages = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
                window, _, arg = rest.partition(":")
                start_s, end_s = window.split("-", 1)
                start_ms, end_ms = float(start_s), float(end_s)
            except ValueError as exc:
                raise ValueError(
                    f"bad fault entry {entry!r}; expected kind@start-end[:arg]"
                ) from exc
            kind = kind.strip().lower()
            if kind == "dip":
                link.append(LinkDegradation(
                    start_ms, end_ms,
                    capacity_factor=float(arg) if arg else 0.1,
                ))
            elif kind == "loss":
                link.append(LinkDegradation(
                    start_ms, end_ms,
                    loss_rate=float(arg) if arg else 0.2,
                ))
            elif kind == "stall":
                stalls.append(ServerStall(
                    start_ms, end_ms,
                    extra_ms=float(arg) if arg else 25.0,
                ))
            elif kind == "outage":
                player = -1 if arg in ("", "all") else int(arg)
                outages.append(ClientOutage(start_ms, end_ms, player_id=player))
            else:
                raise ValueError(
                    f"unknown fault kind {kind!r}; use dip/loss/stall/outage"
                )
        return cls(link=tuple(link), stalls=tuple(stalls),
                   outages=tuple(outages))
