"""Fault injection: scripted link/server/client failures for any run."""

from .churn import ChurnSchedule, CrashEvent, JoinEvent, LeaveEvent
from .injector import FaultInjector
from .schedule import (
    ClientOutage,
    FaultSchedule,
    LinkDegradation,
    ServerStall,
)

__all__ = [
    "ChurnSchedule",
    "ClientOutage",
    "CrashEvent",
    "FaultInjector",
    "FaultSchedule",
    "JoinEvent",
    "LeaveEvent",
    "LinkDegradation",
    "ServerStall",
]
