"""Fault injection: scripted link/server/client failures for any run."""

from .churn import ChurnSchedule, CrashEvent, JoinEvent, LeaveEvent
from .injector import FaultInjector
from .schedule import (
    ClientOutage,
    DesyncInjection,
    FaultSchedule,
    LinkDegradation,
    PoseJump,
    ServerStall,
    SpeculationCorruption,
    SpeculationStorm,
)

__all__ = [
    "ChurnSchedule",
    "ClientOutage",
    "CrashEvent",
    "DesyncInjection",
    "FaultInjector",
    "FaultSchedule",
    "JoinEvent",
    "LeaveEvent",
    "LinkDegradation",
    "PoseJump",
    "ServerStall",
    "SpeculationCorruption",
    "SpeculationStorm",
]
