"""Fault injection: scripted link/server/client failures for any run."""

from .injector import FaultInjector
from .schedule import (
    ClientOutage,
    FaultSchedule,
    LinkDegradation,
    ServerStall,
)

__all__ = [
    "ClientOutage",
    "FaultInjector",
    "FaultSchedule",
    "LinkDegradation",
    "ServerStall",
]
