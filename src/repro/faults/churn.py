"""Declarative session-churn schedules: who joins, leaves, or crashes when.

Churn is the membership counterpart of :class:`FaultSchedule`: a scripted
timeline, in simulated milliseconds, of players entering and exiting one
game session.  The same schedule drives Coterie, Multi-Furion, and
Thin-client through the :class:`~repro.session.SessionSupervisor`, so all
systems react to an identical churn timeline — mirroring how the
:class:`~repro.faults.FaultInjector` is shared.

Three event kinds cover the membership failure modes that matter:

* :class:`JoinEvent` — a join request.  ``slot=None`` asks for a fresh
  player slot (assigned deterministically at supervisor start);
  ``slot=k`` re-admits a previously known player (a *rejoin* — the slot
  keeps its trajectory but gets a new incarnation and a cold cache).
* :class:`LeaveEvent` — a graceful leave: the client announces departure
  and the roster shrinks immediately.
* :class:`CrashEvent` — a silent death: the client simply stops
  heartbeating and the failure detector must notice (SUSPECT → evict).

Schedules are plain frozen dataclasses and :meth:`ChurnSchedule.parse`
reads the compact CLI spec, e.g.
``"join@2000,join@2500:3,leave@5000:0,crash@4000:1,flap@3000-9000:2~800"``.
Churn events compose freely with link impairment and outage windows from
the fault schedule: a crashed player is detected through the same
heartbeat silence an outage produces, but — unlike an outage — it never
silently resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union


def _check_time(t_ms: float) -> None:
    if t_ms < 0:
        raise ValueError("churn event time must be non-negative")


@dataclass(frozen=True)
class JoinEvent:
    """A join request at ``t_ms``; ``slot=None`` allocates a fresh slot."""

    t_ms: float
    slot: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time(self.t_ms)
        if self.slot is not None and self.slot < 0:
            raise ValueError("slot must be non-negative")


@dataclass(frozen=True)
class LeaveEvent:
    """A graceful leave: ``slot`` announces departure at ``t_ms``."""

    t_ms: float
    slot: int

    def __post_init__(self) -> None:
        _check_time(self.t_ms)
        if self.slot < 0:
            raise ValueError("slot must be non-negative")


@dataclass(frozen=True)
class CrashEvent:
    """A silent crash: ``slot`` stops heartbeating at ``t_ms``."""

    t_ms: float
    slot: int

    def __post_init__(self) -> None:
        _check_time(self.t_ms)
        if self.slot < 0:
            raise ValueError("slot must be non-negative")


ChurnEvent = Union[JoinEvent, LeaveEvent, CrashEvent]

# Same-timestamp ordering: joins first (a rejoin at the instant of a
# leave would otherwise race), then leaves, then crashes.
_KIND_ORDER = {JoinEvent: 0, LeaveEvent: 1, CrashEvent: 2}


@dataclass(frozen=True)
class ChurnSchedule:
    """Everything scripted to change the roster during one run."""

    joins: Tuple[JoinEvent, ...] = ()
    leaves: Tuple[LeaveEvent, ...] = ()
    crashes: Tuple[CrashEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.joins or self.leaves or self.crashes)

    def new_player_count(self) -> int:
        """How many fresh slots the schedule's anonymous joins need."""
        return sum(1 for j in self.joins if j.slot is None)

    def max_explicit_slot(self) -> int:
        """Largest slot referenced by name, or -1 when none is."""
        slots = [j.slot for j in self.joins if j.slot is not None]
        slots += [e.slot for e in self.leaves]
        slots += [e.slot for e in self.crashes]
        return max(slots) if slots else -1

    def events_sorted(self) -> List[ChurnEvent]:
        """All events in deterministic execution order."""
        events: List[ChurnEvent] = [*self.joins, *self.leaves, *self.crashes]
        return sorted(events, key=lambda e: (e.t_ms, _KIND_ORDER[type(e)]))

    def validate_slots(self, total_slots: int) -> None:
        """Reject explicit slot references outside the session's range."""
        worst = self.max_explicit_slot()
        if worst >= total_slots:
            raise ValueError(
                f"churn schedule references slot {worst} but the session "
                f"only has slots 0..{total_slots - 1}"
            )

    @classmethod
    def parse(cls, spec: str) -> "ChurnSchedule":
        """Parse the compact CLI syntax into a schedule.

        Comma-separated entries (times in simulated ms):

        * ``join@2000`` — one anonymous player asks to join at 2 s;
        * ``join@2000:3`` — a join storm: three anonymous joins at once;
        * ``rejoin@4000:1`` — slot 1 (previously left/crashed) rejoins;
        * ``leave@5000:0`` — slot 0 leaves gracefully;
        * ``crash@4000:1`` — slot 1 dies silently (heartbeats stop);
        * ``flap@3000-9000:2`` — slot 2 alternates leave/rejoin over the
          window (default 1000 ms half-period; ``~800`` overrides it).

        Conflicting entries are rejected with the 1-based entry number:
        two events of the same kind targeting the same slot at the same
        instant are a duplicate, and two flap windows on the same slot
        must not overlap (their interleaved leave/rejoin trains would
        silently corrupt each other's on/offline state).
        """
        joins: List[JoinEvent] = []
        leaves: List[LeaveEvent] = []
        crashes: List[CrashEvent] = []
        # Conflict detection: (kind, t_ms, slot) -> first declaring entry,
        # plus every flap window per slot.  Populated as entries parse so
        # errors can cite both colliding entry numbers.
        seen_slots: dict = {}
        flap_windows: List[Tuple[int, float, float, int]] = []

        def note_slot_event(kind_name: str, t_ms: float, slot: int,
                            index: int, entry: str) -> None:
            """Reject a second same-kind event for one slot at one time."""
            key = (kind_name, t_ms, slot)
            first = seen_slots.get(key)
            if first is not None:
                raise ValueError(
                    f"churn spec entry {index} ({entry!r}): duplicate "
                    f"{kind_name} for slot {slot} at {t_ms:g} ms "
                    f"(first declared in entry {first})"
                )
            seen_slots[key] = index

        def note_flap_window(slot: int, start_ms: float, end_ms: float,
                             index: int, entry: str) -> None:
            """Reject overlapping flap windows targeting the same slot."""
            for other_slot, other_start, other_end, other_index in flap_windows:
                if other_slot != slot:
                    continue
                if start_ms < other_end and other_start < end_ms:
                    raise ValueError(
                        f"churn spec entry {index} ({entry!r}): flap window "
                        f"{start_ms:g}-{end_ms:g} ms for slot {slot} overlaps "
                        f"the {other_start:g}-{other_end:g} ms window from "
                        f"entry {other_index}"
                    )
            flap_windows.append((slot, start_ms, end_ms, index))

        for index, raw in enumerate(spec.split(","), start=1):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
                when, _, arg = rest.partition(":")
            except ValueError as exc:
                raise ValueError(
                    f"bad churn entry {entry!r}; expected kind@time[:arg]"
                ) from exc
            kind = kind.strip().lower()
            try:
                if kind == "join":
                    t_ms = float(when)
                    count = int(arg) if arg else 1
                    if count < 1:
                        raise ValueError("join count must be >= 1")
                    joins.extend(JoinEvent(t_ms) for _ in range(count))
                elif kind == "rejoin":
                    t_ms, slot = float(when), int(arg)
                    note_slot_event("rejoin", t_ms, slot, index, entry)
                    joins.append(JoinEvent(t_ms, slot=slot))
                elif kind == "leave":
                    t_ms, slot = float(when), int(arg)
                    note_slot_event("leave", t_ms, slot, index, entry)
                    leaves.append(LeaveEvent(t_ms, slot=slot))
                elif kind == "crash":
                    t_ms, slot = float(when), int(arg)
                    note_slot_event("crash", t_ms, slot, index, entry)
                    crashes.append(CrashEvent(t_ms, slot=slot))
                elif kind == "flap":
                    start_s, end_s = when.split("-", 1)
                    slot_s, _, period_s = arg.partition("~")
                    start_ms, end_ms = float(start_s), float(end_s)
                    if end_ms <= start_ms:
                        raise ValueError("flap window must satisfy start < end")
                    slot = int(slot_s)
                    half_period = float(period_s) if period_s else 1000.0
                    if half_period <= 0:
                        raise ValueError("flap period must be positive")
                    note_flap_window(slot, start_ms, end_ms, index, entry)
                    # Expand into an alternating leave / rejoin train; the
                    # generated events register for duplicate detection so
                    # a flap silently colliding with an explicit leave /
                    # rejoin is rejected too.
                    t, leaving = start_ms, True
                    while t < end_ms:
                        if leaving:
                            note_slot_event("leave", t, slot, index, entry)
                            leaves.append(LeaveEvent(t, slot=slot))
                        else:
                            note_slot_event("rejoin", t, slot, index, entry)
                            joins.append(JoinEvent(t, slot=slot))
                        leaving = not leaving
                        t += half_period
                    if not leaving:
                        # Never strand the player offline at window end.
                        note_slot_event("rejoin", end_ms, slot, index, entry)
                        joins.append(JoinEvent(end_ms, slot=slot))
                else:
                    raise ValueError(
                        f"unknown churn kind {kind!r}; "
                        "use join/rejoin/leave/crash/flap"
                    )
            except ValueError as exc:
                if "churn" in str(exc) or "flap" in str(exc) or "join" in str(exc):
                    raise
                raise ValueError(
                    f"bad churn entry {entry!r}; expected kind@time[:arg]"
                ) from exc
        return cls(joins=tuple(joins), leaves=tuple(leaves),
                   crashes=tuple(crashes))
