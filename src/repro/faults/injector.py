"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a live run.

The injector is the single point the system loops query — "is this player
offline right now?", "how slow is the server right now?" — so every system
(Coterie, Multi-Furion, Thin-client) experiences an identical fault
timeline.  It is pure bookkeeping over the schedule: all randomness lives
in the seeded link-impairment model, so a (schedule, seed) pair is fully
deterministic.
"""

from __future__ import annotations

from typing import Optional

from .schedule import FaultSchedule


class FaultInjector:
    """Query interface over a fault schedule during a simulation."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule

    def server_stall_ms(self, now_ms: float) -> float:
        """Extra server response latency for a fetch issued at ``now_ms``."""
        extra = 0.0
        for stall in self.schedule.stalls:
            if stall.start_ms <= now_ms < stall.end_ms:
                extra += stall.extra_ms
        return extra

    def outage_resume_ms(self, player_id: int, now_ms: float) -> Optional[float]:
        """When a player paused at ``now_ms`` may resume, or None if online.

        Back-to-back outage windows are chased to the latest reachable
        end, so a schedule cannot strand a client mid-outage.
        """
        resume = None
        t = now_ms
        advanced = True
        while advanced:
            advanced = False
            for outage in self.schedule.outages:
                if outage.covers(player_id, t) and (
                    resume is None or outage.end_ms > resume
                ):
                    resume = outage.end_ms
                    t = outage.end_ms
                    advanced = True
        return resume

    def outage_count(self, player_id: int) -> int:
        """How many outage windows apply to ``player_id``."""
        return sum(
            1 for outage in self.schedule.outages
            if outage.player_id in (-1, player_id)
        )

    # ------------------------------------------------------------------
    # Speculation / sync faults (repro.predict, repro.session.sync)
    # ------------------------------------------------------------------

    def speculation_frozen(self, player_id: int, now_ms: float) -> bool:
        """Whether a stale-speculation storm freezes pose observations."""
        return any(
            storm.covers(player_id, now_ms)
            for storm in self.schedule.spec_storms
        )

    def speculation_corrupted(self, player_id: int, now_ms: float) -> bool:
        """Whether a speculative fetch completing now arrives corrupted."""
        return any(
            window.covers(player_id, now_ms)
            for window in self.schedule.spec_corruptions
        )

    def desync_event_ms(
        self, player_id: int, since_ms: float, until_ms: float
    ) -> Optional[float]:
        """Earliest scripted desync for ``player_id`` in ``(since, until]``.

        The sync validator calls this once per validation round to decide
        whether the player's exchanged state hash was corrupted in flight
        since the previous round; the returned injection time anchors the
        detection-latency measurement.
        """
        best = None
        for desync in self.schedule.desyncs:
            if desync.player_id != player_id:
                continue
            if since_ms < desync.t_ms <= until_ms:
                if best is None or desync.t_ms < best:
                    best = desync.t_ms
        return best
