"""Sim-time metrics: counters, gauges, histograms, ring-buffered series.

The tracer (PR 3) answers "what happened inside one frame"; this module
answers "how did the run evolve" — continuous, comparable time series of
link utilization, cache hit ratio, queue depths, ABR state — the signal
shape the SLO engine (:mod:`repro.telemetry.slo`), the live dashboard
(:mod:`repro.telemetry.dashboard`) and the run-diff forensics
(:mod:`repro.telemetry.diff`) all consume.

Design constraints mirror the tracer's, in the same order:

1. **The disabled path must be free.**  Instrumentation sites guard on
   ``hub.enabled`` before touching any instrument, and the
   :class:`NullMetricsHub` methods are single-statement no-ops, so a run
   without ``--metrics`` stays bit-identical to the unmetered seed.
2. **Metering must not perturb the simulation.**  Sampling is *pumped*
   from code that already runs (the simulator dispatch loop, the frame
   loops) and stamped retroactively at deterministic sim-time boundaries;
   the hub never schedules simulator events, spawns processes, or touches
   RNG state.
3. **Sim-time stamps.**  Every sample is stamped with a sample-period
   boundary in simulated ms, so two runs of the same (config, seed)
   produce byte-identical series dumps.

Instruments follow the OpenMetrics vocabulary:

* :class:`Counter` — monotone cumulative count (``*_total`` names);
* :class:`Gauge` — a value that goes up and down;
* :class:`Histogram` — fixed upper-bound buckets plus sum and count.

Each instrument is sampled into a ring-buffered ``(t_ms, value)`` series
(:attr:`MetricsHub.series`) every :attr:`MetricsHub.sample_period_ms` of
sim time.  *Probes* registered with :meth:`MetricsHub.register_probe`
run immediately before each sample so gauges mirroring external state
(queue depth, cache occupancy) are fresh at every boundary.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

# Bumped whenever the metrics-JSONL record layout changes; readers refuse
# files from a different version instead of misparsing them.
METRICS_SCHEMA_VERSION = 1

#: Default sim-time sampling cadence (10 Hz of simulated time).
DEFAULT_SAMPLE_PERIOD_MS = 100.0

#: Ring capacity per series: at the default cadence this holds ~400 s of
#: simulated time, far beyond any current run horizon; longer runs keep
#: the most recent window (which is all the SLO engine needs).
DEFAULT_RING_CAPACITY = 4096

#: Default latency buckets (ms upper bounds) for per-stage histograms;
#: 16.7 ms is the 60 FPS frame budget.  An implicit +Inf bucket follows.
LATENCY_BUCKETS_MS = (1.0, 2.0, 4.0, 8.0, 16.7, 25.0, 50.0, 100.0, 250.0)


def render_name(base: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The full series name: ``base{k="v",...}`` with sorted label keys."""
    if not labels:
        return base
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{base}{{{inner}}}"


def split_name(name: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`render_name`: ``base{k="v"}`` -> (base, labels)."""
    if "{" not in name:
        return name, {}
    base, _, rest = name.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key] = value.strip('"')
    return base, labels


class Counter:
    """A monotone cumulative count (OpenMetrics counter)."""

    kind = "counter"
    __slots__ = ("name", "base", "labels", "value")

    def __init__(self, base: str, labels: Optional[Mapping[str, str]] = None):
        self.base = base
        self.labels = dict(labels or {})
        self.name = render_name(base, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters are monotone)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally maintained cumulative total.

        For probes that read a pre-existing monotone quantity (cache
        eviction count, membership epoch) instead of incrementing inline.
        """
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot go backwards "
                f"({self.value} -> {value})"
            )
        self.value = value

    def sample_value(self) -> float:
        """Current cumulative total (what the sampler records)."""
        return self.value


class Gauge:
    """A value that goes up and down (OpenMetrics gauge).

    Unset gauges (never ``set()``) produce no samples, so a series only
    starts once its quantity first exists (e.g. displayed SSIM in
    emulated runs never appears at all).
    """

    kind = "gauge"
    __slots__ = ("name", "base", "labels", "value")

    def __init__(self, base: str, labels: Optional[Mapping[str, str]] = None):
        self.base = base
        self.labels = dict(labels or {})
        self.name = render_name(base, labels)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value of the gauged quantity."""
        self.value = value

    def sample_value(self) -> Optional[float]:
        """Current value, or None while the gauge has never been set."""
        return self.value


class Histogram:
    """Fixed-bucket histogram (OpenMetrics histogram).

    ``edges`` are inclusive upper bounds; an implicit +Inf bucket
    catches the overflow.  The sampled time series carries the
    cumulative observation *count* (rates diff cleanly); the full bucket
    vector, sum, and count are exported once per dump.
    """

    kind = "histogram"
    __slots__ = ("name", "base", "labels", "edges", "counts", "sum", "count")

    def __init__(
        self,
        base: str,
        labels: Optional[Mapping[str, str]] = None,
        edges: Sequence[float] = LATENCY_BUCKETS_MS,
    ):
        if len(edges) < 1:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges):
            raise ValueError("histogram edges must be sorted ascending")
        self.base = base
        self.labels = dict(labels or {})
        self.name = render_name(base, labels)
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)  # +Inf overflow last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Drop one observation into its bucket (first edge >= value)."""
        index = len(self.edges)  # +Inf by default
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.sum / self.count

    def sample_value(self) -> float:
        """Cumulative observation count (rates diff cleanly over time)."""
        return float(self.count)


Instrument = Union[Counter, Gauge, Histogram]


class MetricsHub:
    """Registry of instruments plus their sim-time sampled series.

    Single-threaded, like the simulator.  Hot-path cost is one method
    call per instrument update; sampling work happens only at period
    boundaries.  ``on_sample`` (when set) is called after each boundary
    batch with the latest boundary time — the live dashboard's refresh
    hook.
    """

    enabled = True

    def __init__(
        self,
        sample_period_ms: float = DEFAULT_SAMPLE_PERIOD_MS,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if sample_period_ms <= 0:
            raise ValueError("sample_period_ms must be positive")
        if ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        self.sample_period_ms = sample_period_ms
        self.ring_capacity = ring_capacity
        self._instruments: Dict[str, Instrument] = {}
        self.series: Dict[str, Deque[Tuple[float, float]]] = {}
        self._probes: List[Callable[[], None]] = []
        self._next_sample_ms = sample_period_ms
        self.samples_taken = 0
        self.on_sample: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # Instrument registry
    # ------------------------------------------------------------------

    def _get(self, cls, base: str, labels, **kwargs) -> Instrument:
        name = render_name(base, labels)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(base, labels, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(
        self, base: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get-or-create a counter (name convention: ``*_total``)."""
        return self._get(Counter, base, labels)

    def gauge(
        self, base: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get-or-create a gauge."""
        return self._get(Gauge, base, labels)

    def histogram(
        self,
        base: str,
        labels: Optional[Mapping[str, str]] = None,
        edges: Sequence[float] = LATENCY_BUCKETS_MS,
    ) -> Histogram:
        """Get-or-create a fixed-bucket histogram."""
        return self._get(Histogram, base, labels, edges=edges)

    def instruments(self) -> List[Instrument]:
        """All instruments in registration order."""
        return list(self._instruments.values())

    def register_probe(self, probe: Callable[[], None]) -> None:
        """Run ``probe()`` before every sample boundary (gauge refresh)."""
        self._probes.append(probe)

    # ------------------------------------------------------------------
    # Sampling (the deterministic sim-time cadence)
    # ------------------------------------------------------------------

    def maybe_sample(self, now_ms: float) -> None:
        """Record samples for every period boundary elapsed by ``now_ms``.

        Called from code that already runs (the dispatch loop, the frame
        loops); each crossed boundary is stamped *retroactively* at its
        exact boundary time with the instruments' current values, so the
        series is deterministic regardless of how often the pump fires.
        """
        if now_ms < self._next_sample_ms:
            return
        t = self._next_sample_ms
        while self._next_sample_ms <= now_ms:
            t = self._next_sample_ms
            self._sample_at(t)
            self._next_sample_ms += self.sample_period_ms
        if self.on_sample is not None:
            self.on_sample(t)

    def _sample_at(self, t_ms: float) -> None:
        for probe in self._probes:
            probe()
        series = self.series
        capacity = self.ring_capacity
        for name, instrument in self._instruments.items():
            value = instrument.sample_value()
            if value is None:
                continue
            ring = series.get(name)
            if ring is None:
                ring = series[name] = deque(maxlen=capacity)
            ring.append((t_ms, float(value)))
        self.samples_taken += 1

    def series_types(self) -> Dict[str, str]:
        """Instrument kind per sampled series name."""
        return {
            name: self._instruments[name].kind
            for name in self.series
            if name in self._instruments
        }


class NullMetricsHub:
    """The disabled hub: every method is a no-op.

    Instrumentation sites check ``hub.enabled`` before touching any
    instrument, so a run with the null hub performs no metering work
    beyond one attribute read per site — the clean path stays
    bit-identical to the unmetered seed.
    """

    enabled = False
    series: Dict[str, Deque[Tuple[float, float]]] = {}  # shared, always empty
    samples_taken = 0
    sample_period_ms = DEFAULT_SAMPLE_PERIOD_MS

    def counter(self, *args: Any, **kwargs: Any) -> None:
        """No-op (metrics disabled)."""

    def gauge(self, *args: Any, **kwargs: Any) -> None:
        """No-op (metrics disabled)."""

    def histogram(self, *args: Any, **kwargs: Any) -> None:
        """No-op (metrics disabled)."""

    def register_probe(self, *args: Any, **kwargs: Any) -> None:
        """No-op (metrics disabled)."""

    def maybe_sample(self, *args: Any, **kwargs: Any) -> None:
        """No-op (metrics disabled)."""

    def instruments(self) -> List[Instrument]:
        """Always empty (metrics disabled)."""
        return []

    def series_types(self) -> Dict[str, str]:
        """Always empty (metrics disabled)."""
        return {}


# The process-wide disabled hub; sessions without metrics share it.
NULL_HUB = NullMetricsHub()


def as_hub(hub: Optional[Any]) -> Any:
    """Normalize an optional metrics hub to a usable one (None -> off)."""
    return NULL_HUB if hub is None else hub


# ----------------------------------------------------------------------
# OpenMetrics / Prometheus text exposition
# ----------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Stable numeric formatting for the text exposition."""
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.10g}"


def _family(instrument: Instrument) -> str:
    """OpenMetrics family name (counter samples keep their _total suffix)."""
    base = instrument.base
    if instrument.kind == "counter" and base.endswith("_total"):
        return base[: -len("_total")]
    return base


def to_openmetrics(hub: MetricsHub) -> str:
    """Render the hub's instruments in OpenMetrics text exposition.

    One ``# TYPE`` line per metric family, histogram ``_bucket``/
    ``_sum``/``_count`` expansion, terminated by ``# EOF``.
    """
    lines: List[str] = []
    seen_families: set = set()
    for instrument in hub.instruments():
        family = _family(instrument)
        if family not in seen_families:
            seen_families.add(family)
            lines.append(f"# TYPE {family} {instrument.kind}")
        if instrument.kind == "histogram":
            cumulative = 0
            for edge, count in zip(
                list(instrument.edges) + ["+Inf"],
                instrument.counts,
            ):
                cumulative += count
                le = edge if edge == "+Inf" else _fmt(edge)
                labels = dict(instrument.labels)
                labels["le"] = str(le)
                lines.append(
                    f"{render_name(instrument.base + '_bucket', labels)} "
                    f"{cumulative}"
                )
            suffix_labels = instrument.labels or None
            lines.append(
                f"{render_name(instrument.base + '_sum', suffix_labels)} "
                f"{_fmt(instrument.sum)}"
            )
            lines.append(
                f"{render_name(instrument.base + '_count', suffix_labels)} "
                f"{instrument.count}"
            )
        else:
            value = instrument.sample_value()
            if value is None:
                continue  # unset gauge: no sample line
            lines.append(f"{instrument.name} {_fmt(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: Union[str, Path], hub: MetricsHub) -> int:
    """Write the text exposition; returns the line count."""
    text = to_openmetrics(hub)
    Path(path).write_text(text)
    return text.count("\n")


# ----------------------------------------------------------------------
# Schema-versioned JSONL series dump
# ----------------------------------------------------------------------


@dataclass
class MetricsDump:
    """A parsed metrics-JSONL file (see :func:`write_metrics_jsonl`)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    series_types: Dict[str, str] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    slos: List[Dict[str, Any]] = field(default_factory=list)


def write_metrics_jsonl(
    path: Union[str, Path],
    hub: MetricsHub,
    slo_results: Optional[Sequence[Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the schema-versioned series dump; returns the record count.

    One JSON record per line: a ``meta`` header, one ``series`` record
    per sampled instrument, one ``histogram`` record per histogram's
    final bucket state, and one ``slo`` record per evaluated objective
    (``slo_results`` from :meth:`repro.telemetry.slo.SloEngine.evaluate`).
    """
    records: List[Dict[str, Any]] = []
    header: Dict[str, Any] = {
        "v": METRICS_SCHEMA_VERSION,
        "kind": "meta",
        "sample_period_ms": hub.sample_period_ms,
        "samples": hub.samples_taken,
    }
    if meta:
        header.update(meta)
    records.append(header)
    types = hub.series_types()
    for name, ring in hub.series.items():
        records.append({
            "v": METRICS_SCHEMA_VERSION,
            "kind": "series",
            "name": name,
            "type": types.get(name, "gauge"),
            "samples": [[round(t, 6), v] for t, v in ring],
        })
    for instrument in hub.instruments():
        if instrument.kind != "histogram":
            continue
        records.append({
            "v": METRICS_SCHEMA_VERSION,
            "kind": "histogram",
            "name": instrument.name,
            "le": list(instrument.edges),
            "counts": list(instrument.counts),
            "sum": instrument.sum,
            "count": instrument.count,
        })
    for result in slo_results or ():
        records.append({"v": METRICS_SCHEMA_VERSION, "kind": "slo",
                        **result.to_dict()})
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
    return len(records)


def read_metrics_jsonl(path: Union[str, Path]) -> MetricsDump:
    """Load a series dump back (version-checked; raises ValueError)."""
    dump = MetricsDump()
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
            version = payload.get("v")
            if version != METRICS_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{line_no}: unsupported metrics schema version "
                    f"{version!r} (this reader understands "
                    f"v{METRICS_SCHEMA_VERSION})"
                )
            kind = payload.get("kind")
            if kind == "meta":
                dump.meta = {
                    k: v for k, v in payload.items() if k not in ("v", "kind")
                }
            elif kind == "series":
                name = payload["name"]
                dump.series[name] = [
                    (float(t), float(v)) for t, v in payload["samples"]
                ]
                dump.series_types[name] = payload.get("type", "gauge")
            elif kind == "histogram":
                dump.histograms[payload["name"]] = {
                    "le": payload["le"],
                    "counts": payload["counts"],
                    "sum": payload["sum"],
                    "count": payload["count"],
                }
            elif kind == "slo":
                dump.slos.append(
                    {k: v for k, v in payload.items() if k not in ("v", "kind")}
                )
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown metrics record kind {kind!r}"
                )
    return dump
