"""Live terminal dashboard over a :class:`MetricsHub`'s series.

Unicode sparklines (the ``benchmarks/ascii_plot.py`` family of helpers —
that module re-exports :func:`sparkline` for bench scripts) plus an SLO
status footer.  The live view hooks the hub's ``on_sample`` callback, so
it refreshes on *sim-time* boundaries but throttles redraws by wall
clock; rendering reads series state only and never feeds anything back
into the simulation, keeping dashboarded runs bit-identical to plain
metered runs.
"""

from __future__ import annotations

import sys
import time
from typing import IO, List, Optional, Sequence

#: Eight-level block ramp, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Clear screen + cursor home (ANSI); used only on TTY streams.
_ANSI_HOME = "\x1b[H\x1b[2J"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render the last ``width`` values as a unicode block sparkline.

    Values are min-max normalized over the rendered window; a flat
    series renders at the lowest level.  Empty input renders empty.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    window = list(values)[-width:]
    if not window:
        return ""
    lo = min(window)
    hi = max(window)
    span = hi - lo
    if span <= 0:
        return SPARK_LEVELS[0] * len(window)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[min(top, int((v - lo) / span * len(SPARK_LEVELS)))]
        for v in window
    )


def _fmt_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_dashboard(
    hub,
    slo_results: Optional[Sequence] = None,
    width: int = 32,
    max_rows: int = 24,
) -> str:
    """One dashboard frame: per-series sparklines plus SLO status lines."""
    lines: List[str] = []
    names = sorted(hub.series)
    shown = names[:max_rows]
    for name in shown:
        ring = hub.series[name]
        values = [v for _, v in ring]
        last = values[-1] if values else 0.0
        lines.append(
            f"{name:<44.44} {sparkline(values, width):<{width}} "
            f"{_fmt_value(last):>10}"
        )
    if len(names) > len(shown):
        lines.append(f"... +{len(names) - len(shown)} more series")
    if slo_results:
        lines.append("-" * (44 + width + 12))
        for result in slo_results:
            spec = result.spec
            if result.attainment is None:
                status = "n/a"
            else:
                status = f"{100.0 * result.attainment:5.1f} %"
            alert = f"  ALERT x{len(result.alerts)}" if result.alerts else ""
            lines.append(
                f"slo {spec.name:<24.24} {status:>8}  "
                f"worst burn {result.worst_burn:6.1f}x{alert}"
            )
    return "\n".join(lines)


class LiveDashboard:
    """Streams dashboard frames to a terminal while a run progresses.

    Attach with :meth:`attach` before the run; each hub sample boundary
    triggers a redraw, throttled to ``min_interval_s`` of *wall* time so
    fast sims do not spam the terminal.  ``final()`` always renders one
    last frame (with SLO results, when an engine is provided).
    """

    def __init__(
        self,
        hub,
        engine=None,
        stream: Optional[IO[str]] = None,
        min_interval_s: float = 0.25,
        ansi: Optional[bool] = None,
    ) -> None:
        self.hub = hub
        self.engine = engine
        self.stream = stream if stream is not None else sys.stdout
        self.min_interval_s = min_interval_s
        if ansi is None:
            isatty = getattr(self.stream, "isatty", None)
            ansi = bool(isatty()) if callable(isatty) else False
        self.ansi = ansi
        self._last_draw = float("-inf")
        self.frames_drawn = 0

    def attach(self) -> None:
        """Hook the hub's sample callback (call before the run starts)."""
        self.hub.on_sample = self._on_sample

    def _on_sample(self, t_ms: float) -> None:
        now = time.monotonic()
        if now - self._last_draw < self.min_interval_s:
            return
        self._last_draw = now
        self._draw(t_ms, slo_results=None)

    def _draw(self, t_ms: float, slo_results) -> None:
        frame = render_dashboard(self.hub, slo_results=slo_results)
        header = f"sim t={t_ms:.0f} ms  series={len(self.hub.series)}"
        if self.ansi:
            self.stream.write(_ANSI_HOME)
        self.stream.write(header + "\n" + frame + "\n")
        self.stream.flush()
        self.frames_drawn += 1

    def final(self, t_ms: float, slo_results: Optional[Sequence] = None):
        """Render the closing frame (never throttled)."""
        if slo_results is None and self.engine is not None:
            slo_results = self.engine.evaluate(self.hub.series)
        self._draw(t_ms, slo_results)
        return slo_results
