"""Trace consumers: Chrome trace-event JSON and a JSONL event log.

Two serializations of the same :class:`~repro.telemetry.tracer.Span`
stream:

* :func:`to_chrome_trace` — the Chrome trace-event format (an array of
  ``ph``/``ts``/``dur``/``pid``/``tid`` objects) loadable directly in
  Perfetto or ``chrome://tracing``.  Each player becomes a *process*
  (pid) with one named *thread* (tid) per lane, so the four concurrent
  pipeline tasks of Eq. 2 render as parallel tracks under each player.
  Timestamps convert from simulated ms to the format's µs.
* :func:`write_events_jsonl` / :func:`read_events_jsonl` — one
  schema-versioned JSON record per line, the stable machine-readable log
  that ``repro report`` and the frame-budget analyzer consume.  Readers
  refuse records from an unknown schema version rather than misparse.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from .tracer import (
    KIND_COUNTER,
    KIND_INSTANT,
    KIND_SPAN,
    SCHEMA_VERSION,
    SESSION_TRACK,
    Span,
)

# Stable thread ordering inside each player's process so Perfetto shows
# the pipeline in pipeline order; unknown lanes sort after these.
LANE_ORDER = (
    "frame",
    "upload",
    "server",
    "render",
    "decode",
    "prefetch",
    "transfer",
    "sync",
    "merge",
    "wait",
    "net",
    "cache",
    "link",
    "sim",
)

MS_TO_US = 1000.0


def _pid(player: int) -> int:
    """Chrome pids must be non-negative; the session track becomes pid 0."""
    return 0 if player == SESSION_TRACK else player + 1


def _process_name(player: int) -> str:
    return "session" if player == SESSION_TRACK else f"player {player}"


def _lane_sort_key(lane: str) -> tuple:
    try:
        return (0, LANE_ORDER.index(lane))
    except ValueError:
        return (1, lane)


def to_chrome_trace(records: Sequence[Span]) -> List[Dict[str, Any]]:
    """Render records as a Chrome trace-event array.

    Spans become complete events (``ph: "X"``), instants thread-scoped
    instant events (``ph: "i"``), counters counter events (``ph: "C"``);
    metadata events name every process and thread.
    """
    # Assign a tid per (player, lane) in deterministic lane order.
    lanes_by_player: Dict[int, List[str]] = {}
    for r in records:
        lanes = lanes_by_player.setdefault(r.player, [])
        if r.lane not in lanes:
            lanes.append(r.lane)
    tid_map: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for player in sorted(lanes_by_player):
        pid = _pid(player)
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": _process_name(player)},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "ts": 0, "args": {"sort_index": pid},
        })
        for tid, lane in enumerate(
            sorted(lanes_by_player[player], key=_lane_sort_key)
        ):
            tid_map[(player, lane)] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": lane},
            })
            events.append({
                "ph": "M", "name": "thread_sort_index", "pid": pid,
                "tid": tid, "ts": 0, "args": {"sort_index": tid},
            })
    for r in records:
        pid = _pid(r.player)
        tid = tid_map[(r.player, r.lane)]
        ts = r.start_ms * MS_TO_US
        if r.kind == KIND_SPAN:
            events.append({
                "ph": "X", "name": r.name, "cat": r.cat, "pid": pid,
                "tid": tid, "ts": ts, "dur": r.dur_ms * MS_TO_US,
                "args": r.args or {},
            })
        elif r.kind == KIND_INSTANT:
            events.append({
                "ph": "i", "name": r.name, "cat": r.cat, "pid": pid,
                "tid": tid, "ts": ts, "s": "t", "args": r.args or {},
            })
        elif r.kind == KIND_COUNTER:
            events.append({
                "ph": "C", "name": r.name, "pid": pid, "tid": tid,
                "ts": ts, "args": dict(r.args or {}),
            })
    return events


def write_chrome_trace(path: Union[str, Path], records: Sequence[Span]) -> int:
    """Write a Perfetto-loadable trace JSON; returns the event count."""
    events = to_chrome_trace(records)
    Path(path).write_text(json.dumps(events, separators=(",", ":")))
    return len(events)


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------


def record_to_dict(r: Span) -> Dict[str, Any]:
    """One record as its JSONL dict (schema v1)."""
    out: Dict[str, Any] = {
        "v": SCHEMA_VERSION,
        "kind": r.kind,
        "name": r.name,
        "cat": r.cat,
        "player": r.player,
        "lane": r.lane,
        "t0_ms": round(r.start_ms, 6),
        "dur_ms": round(r.dur_ms, 6),
    }
    if r.args:
        out["args"] = r.args
    return out


def record_from_dict(payload: Dict[str, Any]) -> Span:
    """Parse one JSONL dict back into a record (version-checked)."""
    version = payload.get("v")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event-log schema version {version!r} "
            f"(this reader understands v{SCHEMA_VERSION})"
        )
    kind = payload["kind"]
    if kind not in (KIND_SPAN, KIND_INSTANT, KIND_COUNTER):
        raise ValueError(f"unknown event kind {kind!r}")
    return Span(
        kind,
        payload["name"],
        payload.get("cat", ""),
        int(payload["player"]),
        payload["lane"],
        float(payload["t0_ms"]),
        float(payload["dur_ms"]),
        payload.get("args"),
    )


def write_events_jsonl(path: Union[str, Path], records: Sequence[Span]) -> int:
    """Write the JSONL event log; returns the record count."""
    with open(path, "w") as fh:
        for r in records:
            fh.write(json.dumps(record_to_dict(r), separators=(",", ":")))
            fh.write("\n")
    return len(records)


def read_events_jsonl(path: Union[str, Path]) -> List[Span]:
    """Load a JSONL event log back into records."""
    records: List[Span] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
            records.append(record_from_dict(payload))
    return records


def validate_chrome_trace(events: Iterable[Dict[str, Any]]) -> None:
    """Assert the Chrome trace-event contract (tests, benches).

    Every event — metadata included — must carry ``ph``, numeric ``ts``,
    and integer ``pid``/``tid``; complete events additionally need a
    numeric ``dur`` and a name; counter series must be monotone in
    ``ts`` per (pid, name).  Raises ValueError on the first violation.
    """
    counter_ts: Dict[tuple, float] = {}
    for i, ev in enumerate(events):
        if "ph" not in ev:
            raise ValueError(f"event {i} lacks ph: {ev!r}")
        if not isinstance(ev.get("ts"), (int, float)):
            raise ValueError(f"event {i} ts not numeric: {ev!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"event {i} {key} not an int: {ev!r}")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                raise ValueError(f"event {i} dur not numeric: {ev!r}")
            if not ev.get("name"):
                raise ValueError(f"event {i} lacks name: {ev!r}")
        elif ev["ph"] == "C":
            key = (ev["pid"], ev.get("name"))
            last = counter_ts.get(key)
            if last is not None and ev["ts"] < last:
                raise ValueError(
                    f"event {i} counter {key} not monotone in ts: "
                    f"{ev['ts']} < {last}"
                )
            counter_ts[key] = ev["ts"]
