"""Declarative SLOs with multi-window burn-rate alert evaluation.

An :class:`SloSpec` states an objective over the metrics series — e.g.
"deadline-miss rate ≤ 1% over a 2 s rolling window" or "displayed SSIM
≥ 0.97" — and the :class:`SloEngine` evaluates it *post hoc* over a
:attr:`~repro.telemetry.metrics.MetricsHub.series` map (or a parsed
:class:`~repro.telemetry.metrics.MetricsDump`).  Evaluation is a pure
function of the sampled series: replaying the same run produces the
same attainment numbers and the same alert firings, bit for bit.

Burn rate is the SRE convention: how fast the error budget is being
consumed, as a multiple of the steady rate that would exactly exhaust
it.  ``burn == 1.0`` means "exactly at the objective"; ``burn == 10``
means "burning budget ten times too fast".  Alerts use the classic
*multi-window* rule — a short window (fast detection) AND a long window
(sustained, not a blip) must both exceed the rule's threshold — and fire
on the rising edge only, so one sustained episode produces one alert per
rule, not one per sample.

Three objective kinds cover the session's signals:

* ``ratio`` — bad-event counter over total-event counter, windowed by
  counter deltas (deadline misses / frames);
* ``value_min`` — a gauge whose windowed aggregate must stay **at or
  above** ``bound`` (displayed SSIM); burn is the deficit over the
  budget ``1 - bound`` (override with ``budget``);
* ``value_max`` — a gauge whose windowed aggregate must stay **at or
  below** ``bound`` (join latency p99); burn is ``value / bound``.

``percentile`` switches the gauge aggregate from mean to a percentile
(p99-style objectives).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..metrics.stats import percentile as _percentile
from .tracer import SESSION_TRACK

#: Alert when budget burns >= threshold x in BOTH windows (short AND
#: long).  The defaults are scaled-down versions of the SRE book's
#: 5m/1h @ 14.4 and 30m/6h @ 6 pairs, fit to multi-second sim runs:
#: a fast pair for acute outages, a slow pair for sustained degradation.
DEFAULT_BURN_RULES: Tuple["BurnRule", ...] = ()  # rebound below


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate alerting rule."""

    short_ms: float
    long_ms: float
    threshold: float

    def __post_init__(self) -> None:
        if not 0 < self.short_ms < self.long_ms:
            raise ValueError("need 0 < short_ms < long_ms")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


DEFAULT_BURN_RULES = (
    BurnRule(short_ms=500.0, long_ms=2000.0, threshold=10.0),
    BurnRule(short_ms=1000.0, long_ms=4000.0, threshold=2.5),
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective over the metrics series."""

    name: str
    #: "ratio" (bad/total counters), "value_min", or "value_max" (gauge).
    kind: str
    #: Series name of the bad-event counter (ratio) or the gauge (value_*).
    metric: str
    #: The objective: max bad fraction (ratio), min value (value_min),
    #: or max value (value_max).
    bound: float
    #: Series name of the total-event counter (ratio kind only).
    total: Optional[str] = None
    #: Compliance window for attainment accounting.
    window_ms: float = 2000.0
    #: Aggregate gauge windows at this percentile instead of the mean.
    percentile: Optional[float] = None
    #: Error budget for value_min burn (default ``1 - bound``, which
    #: suits unit-interval metrics like SSIM).
    budget: Optional[float] = None
    rules: Tuple[BurnRule, ...] = DEFAULT_BURN_RULES

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "value_min", "value_max"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "ratio" and not self.total:
            raise ValueError("ratio SLOs need a total counter series")
        if self.bound <= 0:
            raise ValueError("bound must be positive")
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if self.percentile is not None and not 0 <= self.percentile <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive")


@dataclass(frozen=True)
class SloAlert:
    """One rising-edge firing of a burn-rate rule."""

    slo: str
    t_ms: float
    short_ms: float
    long_ms: float
    threshold: float
    burn_short: float
    burn_long: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready alert record (embedded in SLO dump records)."""
        return {
            "t_ms": round(self.t_ms, 6),
            "short_ms": self.short_ms,
            "long_ms": self.long_ms,
            "threshold": self.threshold,
            "burn_short": round(self.burn_short, 4),
            "burn_long": round(self.burn_long, 4),
        }


@dataclass
class SloResult:
    """One objective's verdict over a whole run."""

    spec: SloSpec
    #: Fraction of evaluated boundaries whose compliance-window burn was
    #: <= 1.0 (None when the driving series never produced a window).
    attainment: Optional[float]
    evaluated: int
    compliant: int
    alerts: List[SloAlert] = field(default_factory=list)
    #: Worst (t_ms, burn) compliance windows, highest burn first.
    worst_windows: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def worst_burn(self) -> float:
        """Highest compliance-window burn seen (0 when never evaluated)."""
        if not self.worst_windows:
            return 0.0
        return self.worst_windows[0][1]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the ``kind: "slo"`` dump record shape)."""
        return {
            "name": self.spec.name,
            "slo_kind": self.spec.kind,
            "metric": self.spec.metric,
            "bound": self.spec.bound,
            "window_ms": self.spec.window_ms,
            "attainment": (
                None if self.attainment is None else round(self.attainment, 6)
            ),
            "evaluated": self.evaluated,
            "compliant": self.compliant,
            "alerts": [a.to_dict() for a in self.alerts],
            "worst": [[round(t, 6), round(b, 4)] for t, b in
                      self.worst_windows],
        }


Series = Sequence[Tuple[float, float]]


def _counter_at(series: Series, times: Sequence[float], t_ms: float) -> float:
    """Step-function counter value at ``t_ms`` (0 before the first sample)."""
    i = bisect_right(times, t_ms)
    if i == 0:
        return 0.0
    return series[i - 1][1]


def _window_values(
    series: Series, times: Sequence[float], t_ms: float, window_ms: float
) -> List[float]:
    """Gauge samples in the half-open window ``(t - w, t]``."""
    lo = bisect_right(times, t_ms - window_ms)
    hi = bisect_right(times, t_ms)
    return [series[i][1] for i in range(lo, hi)]


def default_slos() -> Tuple[SloSpec, ...]:
    """The session's stock objectives (the paper's quantitative promises)."""
    return (
        # ≥ 60 FPS promise: at most 1% of frames may miss the prefetch
        # deadline over any 2 s compliance window.
        SloSpec(
            name="deadline_miss_rate",
            kind="ratio",
            metric="deadline_misses_total",
            total="frames_total",
            bound=0.01,
            window_ms=2000.0,
        ),
        # Visual-quality promise: windowed mean displayed SSIM >= 0.97.
        SloSpec(
            name="displayed_ssim",
            kind="value_min",
            metric="displayed_ssim",
            bound=0.97,
            window_ms=2000.0,
        ),
        # Membership responsiveness: p99 join latency <= 1500 ms over a
        # 5 s window (PUN room join plus supervisor admission).
        SloSpec(
            name="join_latency_p99",
            kind="value_max",
            metric="join_latency_ms",
            bound=1500.0,
            window_ms=5000.0,
            percentile=99.0,
        ),
    )


class SloEngine:
    """Evaluates a set of SLO specs over sampled metric series."""

    def __init__(self, specs: Optional[Sequence[SloSpec]] = None) -> None:
        self.specs: Tuple[SloSpec, ...] = tuple(
            default_slos() if specs is None else specs
        )

    # ------------------------------------------------------------------
    # Burn computation
    # ------------------------------------------------------------------

    def _burn(
        self,
        spec: SloSpec,
        series_map: Mapping[str, Series],
        times_map: Mapping[str, Sequence[float]],
        t_ms: float,
        window_ms: float,
    ) -> Optional[float]:
        """Budget burn rate over ``(t - w, t]``; None when unevaluable."""
        if spec.kind == "ratio":
            bad = series_map.get(spec.metric, ())
            total = series_map.get(spec.total or "", ())
            if not total:
                return None
            total_times = times_map[spec.total or ""]
            total_delta = (
                _counter_at(total, total_times, t_ms)
                - _counter_at(total, total_times, t_ms - window_ms)
            )
            if total_delta <= 0:
                return 0.0  # no events in window: no budget burned
            if bad:
                bad_times = times_map[spec.metric]
                bad_delta = (
                    _counter_at(bad, bad_times, t_ms)
                    - _counter_at(bad, bad_times, t_ms - window_ms)
                )
            else:
                bad_delta = 0.0
            return (bad_delta / total_delta) / spec.bound
        series = series_map.get(spec.metric, ())
        if not series:
            return None
        values = _window_values(
            series, times_map[spec.metric], t_ms, window_ms
        )
        if not values:
            return None
        if spec.percentile is not None:
            aggregate = _percentile(values, spec.percentile)
        else:
            aggregate = sum(values) / len(values)
        if spec.kind == "value_min":
            budget = spec.budget
            if budget is None:
                budget = max(1e-9, 1.0 - spec.bound)
            return max(0.0, spec.bound - aggregate) / budget
        return aggregate / spec.bound  # value_max

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate_spec(
        self, spec: SloSpec, series_map: Mapping[str, Series]
    ) -> SloResult:
        """Evaluate one objective over a series map (pure, deterministic)."""
        driver_name = spec.total if spec.kind == "ratio" else spec.metric
        driver = series_map.get(driver_name or "", ())
        times_map: Dict[str, Sequence[float]] = {
            name: [t for t, _ in series]
            for name, series in series_map.items()
        }
        evaluated = 0
        compliant = 0
        windows: List[Tuple[float, float]] = []
        alerts: List[SloAlert] = []
        firing = [False] * len(spec.rules)
        for t_ms, _ in driver:
            burn = self._burn(spec, series_map, times_map, t_ms,
                              spec.window_ms)
            if burn is None:
                continue
            evaluated += 1
            if burn <= 1.0:
                compliant += 1
            windows.append((t_ms, burn))
            for i, rule in enumerate(spec.rules):
                burn_short = self._burn(
                    spec, series_map, times_map, t_ms, rule.short_ms
                )
                burn_long = self._burn(
                    spec, series_map, times_map, t_ms, rule.long_ms
                )
                now_firing = (
                    burn_short is not None
                    and burn_long is not None
                    and burn_short >= rule.threshold
                    and burn_long >= rule.threshold
                )
                if now_firing and not firing[i]:
                    alerts.append(SloAlert(
                        slo=spec.name, t_ms=t_ms,
                        short_ms=rule.short_ms, long_ms=rule.long_ms,
                        threshold=rule.threshold,
                        burn_short=burn_short, burn_long=burn_long,
                    ))
                firing[i] = now_firing
        windows.sort(key=lambda tb: (-tb[1], tb[0]))
        return SloResult(
            spec=spec,
            attainment=(compliant / evaluated) if evaluated else None,
            evaluated=evaluated,
            compliant=compliant,
            alerts=alerts,
            worst_windows=windows[:3],
        )

    def evaluate(self, series_map: Mapping[str, Series]) -> List[SloResult]:
        """Evaluate every spec; results in spec order."""
        return [self.evaluate_spec(spec, series_map) for spec in self.specs]


def emit_slo_instants(tracer, results: Sequence[SloResult]) -> int:
    """Mirror alert firings into the tracer as ``slo.<name>`` instants.

    Returns the number of instants emitted; a null/absent tracer emits
    none.  Called after the run, so the instants land in the trace file
    alongside the stage spans they explain.
    """
    if tracer is None or not tracer.enabled:
        return 0
    emitted = 0
    for result in results:
        for alert in result.alerts:
            tracer.instant(
                f"slo.{alert.slo}", SESSION_TRACK, "slo", alert.t_ms,
                cat="slo",
                args={
                    "burn_short": round(alert.burn_short, 3),
                    "burn_long": round(alert.burn_long, 3),
                    "threshold": alert.threshold,
                    "short_ms": alert.short_ms,
                    "long_ms": alert.long_ms,
                },
            )
            emitted += 1
    return emitted


def results_from_dump(dump) -> List[Dict[str, Any]]:
    """SLO summaries from a parsed dump: stored records, else re-evaluated.

    Returns plain dicts shaped like :meth:`SloResult.to_dict` either way,
    so ``repro report`` renders stored and recomputed results identically.
    """
    if dump.slos:
        return list(dump.slos)
    engine = SloEngine()
    return [r.to_dict() for r in engine.evaluate(dump.series)]
