"""Sim-time tracing and telemetry for the online simulation.

(Named ``telemetry`` to avoid colliding with :mod:`repro.trace`, the
head-pose trace package.)

Three layers:

* :mod:`~repro.telemetry.tracer` — span/instant/counter recording in
  simulated milliseconds (:class:`SpanTracer`), with an allocation-free
  :class:`NullTracer` for the disabled path;
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON (Perfetto /
  chrome://tracing) and a schema-versioned JSONL event log;
* :mod:`~repro.telemetry.report` — per-frame critical-path attribution
  and the deadline-miss breakdown behind ``repro report``.
"""

from .export import (
    read_events_jsonl,
    record_from_dict,
    record_to_dict,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .report import (
    FRAME_BUDGET_MS,
    FrameAttribution,
    FrameBudgetReport,
    StageRow,
    attribute_frame,
)
from .tracer import (
    NULL_TRACER,
    SCHEMA_VERSION,
    SESSION_TRACK,
    NullTracer,
    Span,
    SpanTracer,
    as_tracer,
)

__all__ = [
    "FRAME_BUDGET_MS",
    "FrameAttribution",
    "FrameBudgetReport",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "SESSION_TRACK",
    "Span",
    "SpanTracer",
    "StageRow",
    "as_tracer",
    "attribute_frame",
    "read_events_jsonl",
    "record_from_dict",
    "record_to_dict",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
]
