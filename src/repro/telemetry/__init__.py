"""Sim-time tracing and telemetry for the online simulation.

(Named ``telemetry`` to avoid colliding with :mod:`repro.trace`, the
head-pose trace package.)

Six layers:

* :mod:`~repro.telemetry.tracer` — span/instant/counter recording in
  simulated milliseconds (:class:`SpanTracer`), with an allocation-free
  :class:`NullTracer` for the disabled path;
* :mod:`~repro.telemetry.metrics` — counters/gauges/histograms sampled
  on a deterministic sim-time cadence into ring-buffered time series
  (:class:`MetricsHub`), with OpenMetrics text exposition and a
  schema-versioned JSONL series dump;
* :mod:`~repro.telemetry.slo` — declarative service objectives with
  multi-window burn-rate alert evaluation over the sampled series;
* :mod:`~repro.telemetry.dashboard` — sparkline terminal dashboard over
  the live hub (``repro run --dashboard``);
* :mod:`~repro.telemetry.diff` — run-diff forensics across two series
  dumps (``repro report --diff A B``);
* :mod:`~repro.telemetry.export` / :mod:`~repro.telemetry.report` —
  Chrome trace-event JSON, the JSONL event log, and the per-frame
  critical-path attribution behind ``repro report``.
"""

from .dashboard import LiveDashboard, render_dashboard, sparkline
from .diff import (
    DEFAULT_DIFF_RULES,
    HIGH_BAD,
    INFO,
    LOW_BAD,
    DiffRow,
    DiffRule,
    diff_dumps,
    render_diff,
    rule_for,
)
from .export import (
    read_events_jsonl,
    record_from_dict,
    record_to_dict,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .metrics import (
    LATENCY_BUCKETS_MS,
    METRICS_SCHEMA_VERSION,
    NULL_HUB,
    Counter,
    Gauge,
    Histogram,
    MetricsDump,
    MetricsHub,
    NullMetricsHub,
    as_hub,
    read_metrics_jsonl,
    render_name,
    split_name,
    to_openmetrics,
    write_metrics_jsonl,
    write_openmetrics,
)
from .report import (
    FRAME_BUDGET_MS,
    FrameAttribution,
    FrameBudgetReport,
    StageRow,
    attribute_frame,
)
from .slo import (
    DEFAULT_BURN_RULES,
    BurnRule,
    SloAlert,
    SloEngine,
    SloResult,
    SloSpec,
    default_slos,
    emit_slo_instants,
    results_from_dump,
)
from .tracer import (
    NULL_TRACER,
    SCHEMA_VERSION,
    SESSION_TRACK,
    NullTracer,
    Span,
    SpanTracer,
    as_tracer,
)

__all__ = [
    "DEFAULT_BURN_RULES",
    "DEFAULT_DIFF_RULES",
    "FRAME_BUDGET_MS",
    "HIGH_BAD",
    "INFO",
    "LATENCY_BUCKETS_MS",
    "LOW_BAD",
    "METRICS_SCHEMA_VERSION",
    "NULL_HUB",
    "NULL_TRACER",
    "BurnRule",
    "Counter",
    "DiffRow",
    "DiffRule",
    "FrameAttribution",
    "FrameBudgetReport",
    "Gauge",
    "Histogram",
    "LiveDashboard",
    "MetricsDump",
    "MetricsHub",
    "NullMetricsHub",
    "NullTracer",
    "SCHEMA_VERSION",
    "SESSION_TRACK",
    "SloAlert",
    "SloEngine",
    "SloResult",
    "SloSpec",
    "Span",
    "SpanTracer",
    "StageRow",
    "as_hub",
    "as_tracer",
    "attribute_frame",
    "default_slos",
    "diff_dumps",
    "emit_slo_instants",
    "read_events_jsonl",
    "read_metrics_jsonl",
    "record_from_dict",
    "record_to_dict",
    "render_dashboard",
    "render_diff",
    "render_name",
    "results_from_dump",
    "rule_for",
    "sparkline",
    "split_name",
    "to_chrome_trace",
    "to_openmetrics",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_jsonl",
    "write_openmetrics",
]
