"""Frame-budget attribution: who spent each displayed frame's interval.

The paper's QoE argument is per-frame: Eq. 2 makes the display interval
the ``max`` of four concurrent tasks plus merging, and a frame misses the
16.7 ms budget exactly when one of those stages blows it.  Session means
cannot say *which* one; this module reconstructs it from a trace.

For each displayed frame (a ``frame`` span) the analyzer performs a
critical-path sweep over the frame's stage spans: every instant of the
interval is attributed to the overlapping stage span that *ends last* —
the one actually gating progress at that moment.  Concurrent stages
(render/decode/prefetch/sync all start at the interval's origin) thus
charge the interval to the slowest of them, the merge tail charges to
``merge``, and any uncovered remainder (the vsync wait of a pipeline
faster than 60 Hz) charges to ``wait``.  By construction the per-stage
attributions of a frame sum exactly to its interval, which doubles as a
self-check (:attr:`FrameAttribution.residual_ms`).

Outputs:

* a per-stage table of attributed time with p50/p95/p99 over frames;
* a deadline-miss breakdown: for every frame that blew the budget, which
  stage dominated it and under which fault episode it happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .tracer import KIND_SPAN, Span

# Stages whose spans participate in the critical-path sweep; the frame
# span itself and point lanes (net/cache) are containers, not stages.
NON_STAGE_LANES = ("frame", "net", "cache", "link", "sim")

# 60 Hz display budget the miss breakdown is measured against.
FRAME_BUDGET_MS = 1000.0 / 60.0

# Tolerance used by sum self-checks: attribution is exact up to float
# rounding, so anything beyond this indicates a malformed trace.
SUM_TOLERANCE = 1e-6


@dataclass
class FrameAttribution:
    """One displayed frame's interval, split over its stages."""

    player: int
    frame: int
    t0_ms: float
    interval_ms: float
    by_stage: Dict[str, float]
    critical_stage: str
    deadline_missed: bool = False
    fault: str = ""
    cache: Optional[str] = None

    @property
    def attributed_ms(self) -> float:
        return sum(self.by_stage.values())

    @property
    def residual_ms(self) -> float:
        """Interval time the sweep failed to attribute (should be ~0)."""
        return self.interval_ms - self.attributed_ms

    @property
    def over_budget(self) -> bool:
        return self.interval_ms > FRAME_BUDGET_MS + SUM_TOLERANCE


def attribute_frame(
    frame_span: Span, stage_spans: Sequence[Span]
) -> Dict[str, float]:
    """Critical-path sweep: split a frame's interval over its stages.

    Boundaries are the clipped stage endpoints; each elementary segment
    is charged to the covering span with the latest end time (ties break
    by lane name for determinism), uncovered segments to ``wait``.
    """
    t0 = frame_span.start_ms
    t1 = frame_span.end_ms
    clipped: List[Tuple[float, float, str]] = []
    for span in stage_spans:
        lo = max(t0, span.start_ms)
        hi = min(t1, span.end_ms)
        if hi > lo:
            clipped.append((lo, hi, span.lane))
    cuts = sorted({t0, t1, *(c[0] for c in clipped), *(c[1] for c in clipped)})
    out: Dict[str, float] = {}
    for lo, hi in zip(cuts, cuts[1:]):
        covering = [c for c in clipped if c[0] <= lo and c[1] >= hi]
        if covering:
            # The span ending last is the one gating progress here.
            lane = max(covering, key=lambda c: (c[1], c[2]))[2]
        else:
            lane = "wait"
        out[lane] = out.get(lane, 0.0) + (hi - lo)
    return out


def _critical(by_stage: Dict[str, float]) -> str:
    """The stage that dominated a frame (``wait`` only if nothing else)."""
    busy = {k: v for k, v in by_stage.items() if k != "wait"}
    pool = busy or by_stage
    if not pool:
        return "wait"
    return max(sorted(pool), key=lambda k: pool[k])


@dataclass
class StageRow:
    """One stage's line of the report table."""

    stage: str
    frames: int
    total_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    share: float  # fraction of all attributed time


@dataclass
class FrameBudgetReport:
    """Aggregated frame-budget attribution for one traced run."""

    frames: List[FrameAttribution] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Span]) -> "FrameBudgetReport":
        """Build from a record stream (tracer contents or a parsed JSONL)."""
        spans = [r for r in records if r.kind == KIND_SPAN]
        frame_spans = [s for s in spans if s.lane == "frame" and s.name == "frame"]
        stage_by_key: Dict[Tuple[int, int], List[Span]] = {}
        for span in spans:
            if span.lane in NON_STAGE_LANES:
                continue
            frame = span.arg("frame")
            if frame is None:
                continue
            stage_by_key.setdefault((span.player, int(frame)), []).append(span)
        frames: List[FrameAttribution] = []
        for fs in frame_spans:
            frame = fs.arg("frame")
            if frame is None:
                continue
            key = (fs.player, int(frame))
            by_stage = attribute_frame(fs, stage_by_key.get(key, ()))
            frames.append(
                FrameAttribution(
                    player=fs.player,
                    frame=int(frame),
                    t0_ms=fs.start_ms,
                    interval_ms=fs.dur_ms,
                    by_stage=by_stage,
                    critical_stage=_critical(by_stage),
                    deadline_missed=bool(fs.arg("deadline_missed", False)),
                    fault=str(fs.arg("fault", "") or ""),
                    cache=fs.arg("cache"),
                )
            )
        frames.sort(key=lambda f: (f.player, f.frame))
        return cls(frames=frames)

    @classmethod
    def from_jsonl(cls, path: str) -> "FrameBudgetReport":
        from .export import read_events_jsonl

        return cls.from_records(read_events_jsonl(path))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def players(self) -> List[int]:
        """Player ids that contributed frames, ascending."""
        return sorted({f.player for f in self.frames})

    def max_residual_ms(self) -> float:
        """Worst per-frame attribution error (self-check; ~0 by design)."""
        if not self.frames:
            return 0.0
        return max(abs(f.residual_ms) for f in self.frames)

    def stage_table(self) -> List[StageRow]:
        """Per-stage attributed time with p50/p95/p99 over the frames that
        spent any time in the stage, sorted by total attributed time."""
        from ..metrics.stats import percentile

        samples: Dict[str, List[float]] = {}
        for f in self.frames:
            for stage, ms in f.by_stage.items():
                if ms > 0.0:
                    samples.setdefault(stage, []).append(ms)
        grand_total = sum(sum(v) for v in samples.values()) or 1.0
        rows = [
            StageRow(
                stage=stage,
                frames=len(values),
                total_ms=sum(values),
                p50_ms=percentile(values, 50.0),
                p95_ms=percentile(values, 95.0),
                p99_ms=percentile(values, 99.0),
                share=sum(values) / grand_total,
            )
            for stage, values in samples.items()
        ]
        rows.sort(key=lambda r: -r.total_ms)
        return rows

    def miss_breakdown(self) -> List[Tuple[str, str, int]]:
        """(critical stage, fault episode, count) over budget-miss frames.

        A frame counts as a miss when its interval exceeded the 16.7 ms
        budget *or* its prefetch missed the per-frame deadline (a stale
        fallback keeps the interval at cadence while still degrading).
        """
        counts: Dict[Tuple[str, str], int] = {}
        for f in self.frames:
            if not (f.over_budget or f.deadline_missed):
                continue
            key = (f.critical_stage, f.fault or "none")
            counts[key] = counts.get(key, 0) + 1
        return sorted(
            ((stage, fault, n) for (stage, fault), n in counts.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )

    def miss_count(self) -> int:
        """Frames that blew the budget or missed their prefetch deadline."""
        return sum(1 for f in self.frames if f.over_budget or f.deadline_missed)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The human-readable report ``repro report`` prints."""
        if not self.frames:
            return "no frame spans in trace (was the run traced?)"
        lines: List[str] = []
        players = self.players()
        lines.append(
            f"frame-budget attribution: {len(self.frames)} frames, "
            f"{len(players)} player(s), "
            f"max attribution residual {self.max_residual_ms():.2e} ms"
        )
        rows = self.stage_table()
        width = max(5, *(len(r.stage) for r in rows))
        lines.append(
            f"  {'stage':{width}} {'frames':>7} {'total ms':>10} "
            f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'share':>7}"
        )
        for r in rows:
            lines.append(
                f"  {r.stage:{width}} {r.frames:>7} {r.total_ms:>10.1f} "
                f"{r.p50_ms:>8.2f} {r.p95_ms:>8.2f} {r.p99_ms:>8.2f} "
                f"{100 * r.share:>6.1f}%"
            )
        misses = self.miss_breakdown()
        lines.append(
            f"  deadline/budget misses: {self.miss_count()} "
            f"of {len(self.frames)} frames"
        )
        if misses:
            stage_w = max(5, *(len(s) for s, _, _ in misses))
            fault_w = max(5, *(len(f) for _, f, _ in misses))
            lines.append(
                f"  {'stage':{stage_w}} {'fault':{fault_w}} {'frames':>7}"
            )
            for stage, fault, n in misses:
                lines.append(f"  {stage:{stage_w}} {fault:{fault_w}} {n:>7}")
        return "\n".join(lines)
