"""Span-based tracing in **simulated milliseconds**.

The online simulation needs what the paper's evaluation had: per-frame
timing decompositions, not session means.  This tracer records *spans*
(named intervals on a per-player track), *instants* (point events such as
cache lookups), and *counters* (sampled values such as the simulator's
event-queue depth), all stamped with the simulation clock — never the
wall clock — so a traced run is exactly as deterministic as an untraced
one and two runs of the same (config, seed) produce byte-identical
traces.

Design constraints, in order:

1. **The disabled path must be free.**  Every instrumentation site in the
   hot loops is guarded by ``tracer.enabled`` before any argument dict is
   built, and the :class:`NullTracer` methods are single-statement
   no-ops, so a run without ``--trace`` allocates nothing and schedules
   nothing — the pinned clean regression stays bit-identical.
2. **Tracing must not perturb the simulation.**  Spans are recorded
   *retroactively* (``complete(start, dur)``) by the code that already
   knows both endpoints; the tracer never schedules simulator events,
   spawns processes, or touches RNG state.  A traced run therefore
   produces the same metrics as an untraced one.
3. **Sim-time stamps.**  All timestamps are simulated ms (the unit of the
   whole code base); the exporters convert to Chrome's µs on the way out.

Consumers: :mod:`repro.telemetry.export` (Perfetto / chrome://tracing
JSON and a schema-versioned JSONL event log) and
:mod:`repro.telemetry.report` (per-frame budget attribution).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

# Bumped whenever the JSONL record layout changes; readers refuse files
# from a different major version instead of misparsing them.
SCHEMA_VERSION = 1

# Record kinds (match Chrome trace-event phases where one exists).
KIND_SPAN = "span"
KIND_INSTANT = "instant"
KIND_COUNTER = "counter"

# The session-wide track (shared link, simulator) — not a player.
SESSION_TRACK = -1


class Span:
    """One trace record: a completed span, an instant, or a counter sample.

    ``player`` selects the track (``SESSION_TRACK`` for the shared link /
    simulator); ``lane`` the sub-track within it (``frame``, ``render``,
    ``decode``, ``prefetch``, ``sync``, ``merge``, ``wait``, ``net``,
    ``cache``, ``link``, ``sim``).  Instants have ``dur_ms == 0.0``;
    counters carry their value in ``args["value"]``.
    """

    __slots__ = ("kind", "name", "cat", "player", "lane", "start_ms", "dur_ms", "args")

    def __init__(
        self,
        kind: str,
        name: str,
        cat: str,
        player: int,
        lane: str,
        start_ms: float,
        dur_ms: float,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.kind = kind
        self.name = name
        self.cat = cat
        self.player = player
        self.lane = lane
        self.start_ms = start_ms
        self.dur_ms = dur_ms
        self.args = args

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.dur_ms

    def arg(self, key: str, default: Any = None) -> Any:
        """One attribute, or ``default`` when absent."""
        if self.args is None:
            return default
        return self.args.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.kind} {self.name!r} p{self.player}/{self.lane} "
            f"@{self.start_ms:.3f}+{self.dur_ms:.3f})"
        )


class SpanTracer:
    """Collects trace records for one run.

    Append-only and single-threaded (the simulator is single-threaded);
    every method is a list append.  Memory: one small object per record —
    a 20 s 4-player Coterie run emits ~10 k records.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[Span] = []

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def complete(
        self,
        name: str,
        player: int,
        lane: str,
        start_ms: float,
        dur_ms: float,
        cat: str = "stage",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span whose endpoints are already known.

        This is the only way spans enter the trace: the instrumented code
        measures in sim time and stamps the span after the fact, so
        tracing can never alter event ordering.
        """
        if dur_ms < 0:
            raise ValueError(f"span {name!r} has negative duration {dur_ms}")
        self.records.append(
            Span(KIND_SPAN, name, cat, player, lane, start_ms, dur_ms, args)
        )

    def instant(
        self,
        name: str,
        player: int,
        lane: str,
        at_ms: float,
        cat: str = "event",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a point event (cache lookup, retry, abort, ...)."""
        self.records.append(
            Span(KIND_INSTANT, name, cat, player, lane, at_ms, 0.0, args)
        )

    def counter(
        self, name: str, at_ms: float, value: float, player: int = SESSION_TRACK
    ) -> None:
        """Record one sample of a time-varying quantity."""
        self.records.append(
            Span(KIND_COUNTER, name, "counter", player, name, at_ms, 0.0,
                 {"value": value})
        )

    # ------------------------------------------------------------------
    # Introspection (tests, report builders)
    # ------------------------------------------------------------------

    def spans(
        self, name: Optional[str] = None, player: Optional[int] = None
    ) -> List[Span]:
        """Completed spans, optionally filtered by name and/or player."""
        return [
            r
            for r in self.records
            if r.kind == KIND_SPAN
            and (name is None or r.name == name)
            and (player is None or r.player == player)
        ]

    def instants(
        self, name: Optional[str] = None, player: Optional[int] = None
    ) -> List[Span]:
        """Instant events, optionally filtered by name and/or player."""
        return [
            r
            for r in self.records
            if r.kind == KIND_INSTANT
            and (name is None or r.name == name)
            and (player is None or r.player == player)
        ]

    def lanes(self, player: int) -> List[str]:
        """Distinct span lanes recorded for one player's track."""
        seen: List[str] = []
        for r in self.records:
            if r.kind == KIND_SPAN and r.player == player and r.lane not in seen:
                seen.append(r.lane)
        return seen

    def clear(self) -> None:
        """Drop all recorded events (reuse one tracer across runs)."""
        self.records.clear()


class NullTracer:
    """The disabled tracer: every method is a no-op.

    Instrumentation sites check ``tracer.enabled`` before building
    argument dicts, so a run with the null tracer performs no tracing
    work beyond one attribute read per site — the clean path stays
    allocation-free and bit-identical to the untraced seed.
    """

    enabled = False
    records: List[Span] = []  # always empty; shared intentionally

    def complete(self, *args: Any, **kwargs: Any) -> None:
        """No-op (tracing disabled)."""

    def instant(self, *args: Any, **kwargs: Any) -> None:
        """No-op (tracing disabled)."""

    def counter(self, *args: Any, **kwargs: Any) -> None:
        """No-op (tracing disabled)."""

    def spans(self, *args: Any, **kwargs: Any) -> List[Span]:
        """Always empty (tracing disabled)."""
        return []

    def instants(self, *args: Any, **kwargs: Any) -> List[Span]:
        """Always empty (tracing disabled)."""
        return []

    def lanes(self, player: int) -> List[str]:
        """Always empty (tracing disabled)."""
        return []

    def __len__(self) -> int:
        return 0


# The process-wide disabled tracer; sessions without tracing share it.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[Any]) -> Any:
    """Normalize an optional tracer to a usable one (None -> disabled)."""
    return NULL_TRACER if tracer is None else tracer


def iter_spans(records: Iterable[Span]) -> Iterable[Span]:
    """Just the completed spans of a record stream."""
    return (r for r in records if r.kind == KIND_SPAN)
