"""Run-diff forensics over two metrics-JSONL series dumps.

``repro report --diff A B`` aligns two dumps by metric name and sim
time and judges each series against a per-metric threshold rule, the
same exit-code contract as ``benchmarks/check_regression.py``: 0 clean,
1 regression, 2 parse/usage error.

Comparison semantics per instrument type:

* **counters** — compared on their final cumulative value (the run
  total); deltas beyond the rule's threshold in the bad direction fail;
* **gauges / histograms** — compared on the mean over time-aligned
  samples (sim-time stamps are deterministic, so two runs of the same
  config align exactly); the maximum pointwise divergence is also
  reported for forensics;
* a series present in only one run is always a regression — a signal
  silently vanishing (or appearing) must not read as "no change".

Rules match on the longest base-name prefix, so ``deadline_misses``
matches ``deadline_misses_total`` and every labeled variant.  Unmatched
series are compared informationally (reported, never failing), which
keeps the diff useful as new instrumentation lands before rules exist
for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsDump, split_name

#: Directions: which way a delta counts against the run under test (B).
HIGH_BAD = "high_bad"   # B above A beyond threshold regresses
LOW_BAD = "low_bad"     # B below A beyond threshold regresses
INFO = "info"           # reported only, never a regression


@dataclass(frozen=True)
class DiffRule:
    """Per-metric-prefix comparison policy."""

    prefix: str
    direction: str
    #: Additive slack before a delta counts.
    tolerance_abs: float = 0.0
    #: Relative slack as a fraction of |A|; threshold is
    #: ``tolerance_abs + tolerance_rel * |A|``.
    tolerance_rel: float = 0.0

    def threshold(self, a_value: float) -> float:
        """Allowed |delta| before a comparison against ``a_value`` fails."""
        return self.tolerance_abs + self.tolerance_rel * abs(a_value)


#: Default policy for the session's stock instrumentation.  Counters of
#: work done (frames) regress when they *fall*; counters of failures
#: (misses, drops, stales, evictions) regress when they *rise*; quality
#: gauges regress when they fall; cost gauges when they rise.
DEFAULT_DIFF_RULES: Tuple[DiffRule, ...] = (
    DiffRule("frames_total", LOW_BAD, tolerance_abs=1.0, tolerance_rel=0.02),
    DiffRule("deadline_misses", HIGH_BAD, tolerance_abs=1.0,
             tolerance_rel=0.05),
    DiffRule("frames_dropped", HIGH_BAD, tolerance_abs=1.0,
             tolerance_rel=0.05),
    DiffRule("stale_frames", HIGH_BAD, tolerance_abs=1.0, tolerance_rel=0.05),
    DiffRule("cache_hit_ratio", LOW_BAD, tolerance_abs=0.05),
    DiffRule("cache_evictions", HIGH_BAD, tolerance_abs=2.0,
             tolerance_rel=0.10),
    DiffRule("displayed_ssim", LOW_BAD, tolerance_abs=0.01),
    DiffRule("deadline_margin_ms", LOW_BAD, tolerance_abs=2.0),
    DiffRule("abr_crf", HIGH_BAD, tolerance_abs=3.0),
    DiffRule("abr_degraded", HIGH_BAD, tolerance_abs=0.25),
    DiffRule("link_utilization", HIGH_BAD, tolerance_abs=0.10),
    DiffRule("join_latency_ms", HIGH_BAD, tolerance_abs=100.0,
             tolerance_rel=0.25),
    DiffRule("members_active", LOW_BAD, tolerance_abs=0.5),
)


def rule_for(
    name: str, rules: Sequence[DiffRule] = DEFAULT_DIFF_RULES
) -> Optional[DiffRule]:
    """Longest-prefix rule match on the series' base name, or None."""
    base, _ = split_name(name)
    best: Optional[DiffRule] = None
    for rule in rules:
        if base.startswith(rule.prefix):
            if best is None or len(rule.prefix) > len(best.prefix):
                best = rule
    return best


@dataclass(frozen=True)
class DiffRow:
    """One series' comparison verdict."""

    name: str
    direction: str
    a_value: Optional[float]
    b_value: Optional[float]
    #: Largest pointwise |B - A| over aligned timestamps (gauges only).
    max_divergence: Optional[float]
    regressed: bool
    note: str = ""

    def line(self) -> str:
        """One human-readable report row."""
        def show(v):
            return "-" if v is None else f"{v:.4g}"

        verdict = "FAIL" if self.regressed else (
            "info" if self.direction == INFO else "ok"
        )
        extra = f"  ({self.note})" if self.note else ""
        return (f"  {self.name:<46.46} A {show(self.a_value):>9}  "
                f"B {show(self.b_value):>9}  {verdict}{extra}")


def _aligned(
    a: Sequence[Tuple[float, float]], b: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float, float]]:
    """(t, a_value, b_value) for timestamps present in both series."""
    b_map = dict(b)
    return [(t, v, b_map[t]) for t, v in a if t in b_map]


def _compare_series(
    name: str,
    series_type: str,
    a: Sequence[Tuple[float, float]],
    b: Sequence[Tuple[float, float]],
    rule: Optional[DiffRule],
) -> DiffRow:
    direction = rule.direction if rule is not None else INFO
    if series_type == "counter":
        a_value = a[-1][1] if a else 0.0
        b_value = b[-1][1] if b else 0.0
        max_div = None
        note = "final total"
    else:
        pairs = _aligned(a, b)
        if not pairs:
            # Different sampling grids (e.g. different durations with no
            # overlap) still get a mean-vs-mean comparison.
            a_value = sum(v for _, v in a) / len(a) if a else 0.0
            b_value = sum(v for _, v in b) / len(b) if b else 0.0
            max_div = None
            note = "mean (no aligned samples)"
        else:
            a_value = sum(av for _, av, _ in pairs) / len(pairs)
            b_value = sum(bv for _, _, bv in pairs) / len(pairs)
            max_div = max(abs(bv - av) for _, av, bv in pairs)
            note = f"mean over {len(pairs)} aligned samples"
    regressed = False
    if rule is not None and direction != INFO:
        delta = b_value - a_value
        bad = delta if direction == HIGH_BAD else -delta
        regressed = bad > rule.threshold(a_value)
    return DiffRow(
        name=name, direction=direction, a_value=a_value, b_value=b_value,
        max_divergence=max_div, regressed=regressed, note=note,
    )


def diff_dumps(
    a: MetricsDump,
    b: MetricsDump,
    rules: Sequence[DiffRule] = DEFAULT_DIFF_RULES,
) -> List[DiffRow]:
    """Compare two dumps series-by-series; rows sorted by name.

    Identical dumps produce zero regressed rows; any asymmetry in the
    series *set* is itself a regression.
    """
    rows: List[DiffRow] = []
    names = sorted(set(a.series) | set(b.series))
    for name in names:
        rule = rule_for(name, rules)
        in_a = name in a.series
        in_b = name in b.series
        if not (in_a and in_b):
            missing = "B" if in_a else "A"
            rows.append(DiffRow(
                name=name,
                direction=rule.direction if rule else INFO,
                a_value=a.series[name][-1][1] if in_a and a.series[name]
                else None,
                b_value=b.series[name][-1][1] if in_b and b.series[name]
                else None,
                max_divergence=None,
                regressed=True,
                note=f"series missing in run {missing}",
            ))
            continue
        series_type = (
            a.series_types.get(name) or b.series_types.get(name) or "gauge"
        )
        rows.append(_compare_series(
            name, series_type, a.series[name], b.series[name], rule
        ))
    return rows


def render_diff(
    rows: Sequence[DiffRow], label_a: str = "A", label_b: str = "B"
) -> str:
    """Human-readable diff report (regressions first, then the rest)."""
    failures = [r for r in rows if r.regressed]
    lines = [f"metrics diff: A={label_a}  B={label_b}  "
             f"({len(rows)} series, {len(failures)} regression(s))"]
    for row in sorted(rows, key=lambda r: (not r.regressed, r.name)):
        lines.append(row.line())
    return "\n".join(lines)
