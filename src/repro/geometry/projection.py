"""Projection math for panoramic and field-of-view rendering.

Coterie prefetches *panoramic* far-BE frames (the paper uses 3840x2160
equirectangular frames) so any head orientation can be served by cropping.
This module maps world-space directions to equirectangular pixel
coordinates, computes angular sizes under perspective projection, and crops
a field-of-view window out of a panorama.

The "near-object" effect (§4.2) falls directly out of these formulas: an
object of radius ``r`` at distance ``d`` subtends ``atan(r/d)`` radians, and
a player displacement ``delta`` shifts its image by roughly ``delta/d``
radians — both inversely proportional to distance, which is why nearby
objects dominate frame-to-frame change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .vec import Vec3

TWO_PI = 2.0 * math.pi


def direction_to_angles(direction: Vec3) -> Tuple[float, float]:
    """World direction -> (azimuth, elevation) in radians.

    Azimuth is measured counter-clockwise from +x in [0, 2*pi); elevation is
    in [-pi/2, pi/2] with +z up.
    """
    azimuth = math.atan2(direction.y, direction.x) % TWO_PI
    horiz = math.hypot(direction.x, direction.y)
    elevation = math.atan2(direction.z, horiz)
    return azimuth, elevation


def angles_to_direction(azimuth: float, elevation: float) -> Vec3:
    """Inverse of :func:`direction_to_angles`; returns a unit vector."""
    ce = math.cos(elevation)
    return Vec3(ce * math.cos(azimuth), ce * math.sin(azimuth), math.sin(elevation))


def angles_to_pixel(
    azimuth: float, elevation: float, width: int, height: int
) -> Tuple[float, float]:
    """Map (azimuth, elevation) to fractional equirectangular pixel coords.

    Column 0 is azimuth 0; rows run from elevation +pi/2 (top) to -pi/2
    (bottom), the standard equirectangular layout.
    """
    u = (azimuth % TWO_PI) / TWO_PI * width
    v = (0.5 - elevation / math.pi) * height
    return u, v


def pixel_to_angles(
    u: float, v: float, width: int, height: int
) -> Tuple[float, float]:
    """Inverse of :func:`angles_to_pixel` for fractional pixel coords."""
    azimuth = (u / width) * TWO_PI % TWO_PI
    elevation = (0.5 - v / height) * math.pi
    return azimuth, elevation


def angular_radius(physical_radius: float, distance: float) -> float:
    """Half-angle subtended by a sphere of ``physical_radius`` at ``distance``.

    When the viewer is inside the sphere the object fills the view
    (pi radians).  This is the perspective-projection size law the paper's
    near-object analysis rests on.
    """
    if physical_radius < 0:
        raise ValueError("physical_radius must be non-negative")
    if distance <= physical_radius:
        return math.pi
    return math.asin(physical_radius / distance)


def angular_displacement(displacement: float, distance: float) -> float:
    """Approximate image-space shift (radians) of an object at ``distance``
    when the viewer moves ``displacement`` metres perpendicular to it."""
    if distance <= 0:
        return math.pi
    return math.atan2(displacement, distance)


@dataclass(frozen=True)
class FovSpec:
    """A rectilinear field-of-view window for headset display.

    Daydream-class headsets show ~90-100 degrees horizontally; the default
    matches that with a 16:9-ish aspect.
    """

    h_fov: float = math.radians(100.0)
    v_fov: float = math.radians(90.0)

    def __post_init__(self) -> None:
        if not (0 < self.h_fov < TWO_PI and 0 < self.v_fov < math.pi):
            raise ValueError(f"invalid FoV spec: {self}")


def crop_fov(
    panorama: np.ndarray,
    yaw: float,
    pitch: float,
    fov: FovSpec,
    out_width: int,
    out_height: int,
) -> np.ndarray:
    """Crop a rectilinear FoV frame from an equirectangular panorama.

    ``panorama`` is an (H, W) or (H, W, C) array.  ``yaw``/``pitch`` give
    the view centre.  Nearest-neighbour sampling — the paper notes the crop
    happens "at almost no cost or delay", so we keep it cheap too.
    """
    if panorama.ndim not in (2, 3):
        raise ValueError("panorama must be a 2D or 3D array")
    pano_h, pano_w = panorama.shape[:2]

    # Tangent-plane grid of view directions for each output pixel.
    xs = np.tan(np.linspace(-fov.h_fov / 2, fov.h_fov / 2, out_width))
    ys = np.tan(np.linspace(fov.v_fov / 2, -fov.v_fov / 2, out_height))
    tan_x, tan_y = np.meshgrid(xs, ys)

    # Camera-space direction (forward=+1), rotated by pitch then yaw.
    fwd = np.ones_like(tan_x)
    cp, sp = math.cos(pitch), math.sin(pitch)
    dir_f = fwd * cp - tan_y * sp
    dir_z = fwd * sp + tan_y * cp
    azimuth = (yaw + np.arctan2(tan_x, dir_f)) % TWO_PI
    elevation = np.arctan2(dir_z, np.hypot(dir_f, tan_x))

    u = (azimuth / TWO_PI * pano_w).astype(np.intp) % pano_w
    v = np.clip(((0.5 - elevation / math.pi) * pano_h).astype(np.intp), 0, pano_h - 1)
    return panorama[v, u]
