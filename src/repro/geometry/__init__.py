"""Geometry substrate: vectors, grids, quadtrees, projections, rays."""

from .grid import GridPoint, Rect, WorldGrid
from .projection import (
    FovSpec,
    angles_to_direction,
    angles_to_pixel,
    angular_displacement,
    angular_radius,
    crop_fov,
    direction_to_angles,
    pixel_to_angles,
)
from .quadtree import QuadNode, QuadTree, QuadTreeStats
from .rays import Ray, camera_height, find_foothold, intersect_sphere, march_heightfield
from .vec import Vec2, Vec3

__all__ = [
    "FovSpec",
    "GridPoint",
    "QuadNode",
    "QuadTree",
    "QuadTreeStats",
    "Ray",
    "Rect",
    "Vec2",
    "Vec3",
    "WorldGrid",
    "angles_to_direction",
    "angles_to_pixel",
    "angular_displacement",
    "angular_radius",
    "camera_height",
    "crop_fov",
    "direction_to_angles",
    "find_foothold",
    "intersect_sphere",
    "march_heightfield",
    "pixel_to_angles",
]
