"""Ray queries against terrain heightfields and scene objects.

The paper's offline preprocessing module "appl[ies] ray tracing to find the
foothold of the players and then adjust[s] the height of the camera to gain
the same views as the players" (§6).  :func:`find_foothold` is that query:
drop a vertical ray onto the terrain to find where a player stands, and
derive the camera (eye) elevation from it.  Sphere intersection supports
visibility tests in the renderer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from .vec import Vec2, Vec3

HeightField = Callable[[Vec2], float]


@dataclass(frozen=True)
class Ray:
    """A ray with origin and (not necessarily unit) direction."""

    origin: Vec3
    direction: Vec3

    def at(self, t: float) -> Vec3:
        """Point at parameter ``t`` along the ray."""
        return self.origin + self.direction * t


def find_foothold(terrain: HeightField, position: Vec2) -> Vec3:
    """Where a player standing at ground position ``position`` rests.

    Equivalent to casting a vertical ray down onto the terrain heightfield;
    for an explicit heightfield the intersection is direct evaluation.
    """
    return Vec3(position.x, position.y, terrain(position))


def camera_height(terrain: HeightField, position: Vec2, eye_height: float) -> float:
    """Camera elevation for a player at ``position``: foothold + eye height.

    ``eye_height`` is the headset height above the foothold (~1.7 m for a
    standing player, lower for a seated racing pose).
    """
    if eye_height < 0:
        raise ValueError("eye_height must be non-negative")
    return find_foothold(terrain, position).z + eye_height


def intersect_sphere(ray: Ray, center: Vec3, radius: float) -> Optional[float]:
    """Smallest non-negative ray parameter hitting the sphere, else None."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    oc = ray.origin - center
    a = ray.direction.norm_sq()
    if a == 0.0:
        return None
    b = 2.0 * oc.dot(ray.direction)
    c = oc.norm_sq() - radius * radius
    disc = b * b - 4 * a * c
    if disc < 0:
        return None
    sqrt_disc = math.sqrt(disc)
    t0 = (-b - sqrt_disc) / (2 * a)
    t1 = (-b + sqrt_disc) / (2 * a)
    if t0 >= 0:
        return t0
    if t1 >= 0:
        return t1
    return None


def march_heightfield(
    terrain: HeightField,
    ray: Ray,
    max_distance: float,
    step: float = 0.25,
) -> Optional[Vec3]:
    """First point where a ray passes below the terrain surface, by marching.

    Used for line-of-sight style queries over rolling terrain.  Refines the
    crossing with one bisection pass for sub-step accuracy.
    """
    if step <= 0 or max_distance <= 0:
        raise ValueError("step and max_distance must be positive")
    dir_norm = ray.direction.norm()
    if dir_norm == 0.0:
        return None
    unit = ray.direction / dir_norm

    prev_t = 0.0
    prev_above = ray.origin.z - terrain(ray.origin.ground()) >= 0
    t = step
    while t <= max_distance:
        p = ray.origin + unit * t
        above = p.z - terrain(p.ground()) >= 0
        if prev_above and not above:
            lo, hi = prev_t, t
            for _ in range(16):
                mid = (lo + hi) / 2.0
                pm = ray.origin + unit * mid
                if pm.z - terrain(pm.ground()) >= 0:
                    lo = mid
                else:
                    hi = mid
            return ray.origin + unit * ((lo + hi) / 2.0)
        prev_t, prev_above = t, above
        t += step
    return None
