"""Region quadtree used by the adaptive cutoff scheme (§4.3).

The paper recursively partitions the 2D game world "until the cutoff
radiuses within each subregion become roughly uniform".  The partitioning
logic itself is generic: a predicate decides whether a region must split,
and a payload function computes the value stored at each leaf.  The Coterie
specific policy (K random samples, radius agreement, Constraint 1) lives in
:mod:`repro.core.cutoff`; this module owns only the tree structure, point
lookup, and summary statistics reported in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from .grid import Rect
from .vec import Vec2

T = TypeVar("T")

# Decides whether a region is uniform enough to become a leaf.  Returns
# ``(stop, payload)``: if ``stop`` the region becomes a leaf carrying
# ``payload``; otherwise it splits into 4 quadrants.
SplitPolicy = Callable[[Rect, int], Tuple[bool, T]]


@dataclass
class QuadNode(Generic[T]):
    """A node of the region quadtree; leaves carry a payload."""

    region: Rect
    depth: int
    payload: Optional[T] = None
    children: Optional[Tuple["QuadNode[T]", ...]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


@dataclass
class QuadTreeStats:
    """The quadtree summary the paper reports per game in Table 3."""

    leaf_count: int
    max_depth: int
    avg_depth: float
    node_count: int


class QuadTree(Generic[T]):
    """A region quadtree built by recursive predicate-driven subdivision."""

    def __init__(self, root: QuadNode[T]) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        world: Rect,
        policy: SplitPolicy,
        max_depth: int = 12,
    ) -> "QuadTree[T]":
        """Recursively partition ``world`` according to ``policy``.

        ``max_depth`` bounds recursion for pathological policies; a region
        at the depth limit becomes a leaf with whatever payload the policy
        produced, matching the paper's implicit bound (regions cannot shrink
        below the grid pitch).
        """
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")

        def recurse(region: Rect, depth: int) -> QuadNode[T]:
            stop, payload = policy(region, depth)
            if stop or depth >= max_depth:
                return QuadNode(region=region, depth=depth, payload=payload)
            children = tuple(
                recurse(quad, depth + 1) for quad in region.quadrants()
            )
            return QuadNode(region=region, depth=depth, children=children)

        return cls(recurse(world, 0))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def leaf_for(self, point: Vec2) -> QuadNode[T]:
        """The leaf region containing ``point``.

        Frame-cache lookups must agree on region membership between the
        cached frame and the requested grid point (criterion 2 in §5.3), so
        boundary points resolve deterministically via half-open containment,
        with the world's outer max edges treated as closed.
        """
        if not self.root.region.contains_closed(point):
            raise ValueError(
                f"point {point} outside world bounds {self.root.region}"
            )
        node = self.root
        while not node.is_leaf:
            assert node.children is not None
            advanced = False
            for child in node.children:
                if child.region.contains(point):
                    node = child
                    advanced = True
                    break
            if not advanced:
                # Point sits on the world's max edge: pick the quadrant whose
                # closed region contains it, preferring the last (NE) one.
                for child in reversed(node.children):
                    if child.region.contains_closed(point):
                        node = child
                        advanced = True
                        break
            if not advanced:  # pragma: no cover - defensive
                raise RuntimeError(f"quadtree descent lost point {point}")
        return node

    # ------------------------------------------------------------------
    # Traversal and statistics
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[QuadNode[T]]:
        """Iterate all leaf nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                assert node.children is not None
                stack.extend(node.children)

    def leaf_payloads(self) -> List[T]:
        """Payloads of all leaves that carry one."""
        return [leaf.payload for leaf in self.leaves() if leaf.payload is not None]

    def stats(self) -> QuadTreeStats:
        """Leaf/depth/node summary (Table 3's columns)."""
        leaf_count = 0
        node_count = 0
        depth_sum = 0
        max_depth = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            node_count += 1
            if node.is_leaf:
                leaf_count += 1
                depth_sum += node.depth
                max_depth = max(max_depth, node.depth)
            else:
                assert node.children is not None
                stack.extend(node.children)
        avg_depth = depth_sum / leaf_count if leaf_count else 0.0
        return QuadTreeStats(
            leaf_count=leaf_count,
            max_depth=max_depth,
            avg_depth=avg_depth,
            node_count=node_count,
        )
