"""Small fixed-dimension vector types used throughout the simulator.

The virtual world is fundamentally 2D for player movement (the paper's
adaptive cutoff scheme partitions in 2D because "players move in 2D in the
virtual world in typical VR games") but 3D for rendering, so both ``Vec2``
and ``Vec3`` are provided.  Both are immutable value types: frame-cache
metadata, trajectory samples, and quadtree regions all hold them as keys or
stable coordinates, and accidental in-place mutation of a cached location
would corrupt cache lookups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Vec2:
    """An immutable 2D vector / point in the virtual-world ground plane."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared length (avoids the sqrt)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit vector in this direction."""
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize a zero vector")
        return Vec2(self.x / n, self.y / n)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: self at t=0, other at t=1."""
        return Vec2(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def angle(self) -> float:
        """Heading of the vector in radians, measured from the +x axis."""
        return math.atan2(self.y, self.x)

    def rotated(self, radians: float) -> "Vec2":
        """Counter-clockwise rotation about the origin."""
        c, s = math.cos(radians), math.sin(radians)
        return Vec2(self.x * c - self.y * s, self.x * s + self.y * c)

    def as_tuple(self) -> Tuple[float, float]:
        """Plain-tuple form (hashable key)."""
        return (self.x, self.y)

    @staticmethod
    def from_angle(radians: float, length: float = 1.0) -> "Vec2":
        return Vec2(math.cos(radians) * length, math.sin(radians) * length)

    @staticmethod
    def zero() -> "Vec2":
        return Vec2(0.0, 0.0)


@dataclass(frozen=True)
class Vec3:
    """An immutable 3D vector / point; ``z`` is elevation above the ground."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def dot(self, other: "Vec3") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Right-handed cross product."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)

    def norm_sq(self) -> float:
        """Squared length (avoids the sqrt)."""
        return self.x * self.x + self.y * self.y + self.z * self.z

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to another point."""
        return (self - other).norm()

    def normalized(self) -> "Vec3":
        """Unit vector in this direction."""
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize a zero vector")
        return self / n

    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        """Linear interpolation: self at t=0, other at t=1."""
        return Vec3(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )

    def ground(self) -> Vec2:
        """Project onto the 2D ground plane (drop elevation)."""
        return Vec2(self.x, self.y)

    def as_tuple(self) -> Tuple[float, float, float]:
        """Plain-tuple form (hashable key)."""
        return (self.x, self.y, self.z)

    @staticmethod
    def from_ground(point: Vec2, z: float = 0.0) -> "Vec3":
        return Vec3(point.x, point.y, z)

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)
